"""The repo-wide invariant this PR establishes: ``src/`` lints clean."""

import pathlib

from repro.lint import format_findings, lint_paths

import pytest

pytestmark = pytest.mark.lint

SRC = pathlib.Path(__file__).resolve().parents[2] / "src"


def test_src_tree_has_zero_findings():
    findings = lint_paths([SRC])
    assert findings == [], "\n" + format_findings(findings)


def test_hot_path_manifest_names_existing_functions():
    # The manifest must not drift: every enrolled qualname still exists in
    # the named file (a rename would silently un-enroll the kernel).
    import ast

    from repro.lint.hotpaths import HOT_PATH_MANIFEST

    for rel_path, quals in HOT_PATH_MANIFEST.items():
        path = SRC / rel_path
        assert path.exists(), rel_path
        tree = ast.parse(path.read_text())
        defined = set()

        def walk(node, prefix=""):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    defined.add(f"{prefix}{child.name}")
                    walk(child, f"{prefix}{child.name}.")
                elif isinstance(child, ast.ClassDef):
                    walk(child, f"{prefix}{child.name}.")
                else:
                    walk(child, prefix)

        walk(tree)
        missing = quals - defined
        assert not missing, f"{rel_path}: manifest names {missing} not defined"
