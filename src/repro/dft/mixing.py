"""Density mixing for the SCF loop.

Two mixers: plain linear damping and Anderson/Pulay (DIIS) acceleration on
density residuals — the standard combination for plane-wave SCF convergence.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.utils.validation import check_positive


class LinearMixer:
    """``n_next = n_in + beta (n_out - n_in)``."""

    def __init__(self, beta: float = 0.3) -> None:
        check_positive(beta, "beta")
        self.beta = beta

    def mix(self, n_in: np.ndarray, n_out: np.ndarray) -> np.ndarray:
        return n_in + self.beta * (n_out - n_in)

    def reset(self) -> None:  # symmetry with AndersonMixer
        pass

    def state_dict(self) -> dict:
        """Serializable mixer state (stateless: empty)."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        pass


class AndersonMixer:
    """Anderson acceleration (equivalently Pulay/DIIS on residuals).

    Keeps the last ``history`` (input, residual) pairs and extrapolates the
    input that minimizes the linear-combination residual, then applies a
    linear step ``beta`` on top.  Falls back to linear mixing whenever the
    least-squares system is degenerate (e.g. first iteration).
    """

    def __init__(self, beta: float = 0.5, history: int = 5) -> None:
        check_positive(beta, "beta")
        check_positive(history, "history")
        self.beta = beta
        self.history = history
        self._inputs: deque[np.ndarray] = deque(maxlen=history)
        self._residuals: deque[np.ndarray] = deque(maxlen=history)

    def reset(self) -> None:
        self._inputs.clear()
        self._residuals.clear()

    def state_dict(self) -> dict:
        """Serializable mixer state: the stacked (input, residual) history.

        Restoring this via :meth:`load_state_dict` makes a restarted SCF
        loop extrapolate exactly as the uninterrupted one would.
        """
        if not self._inputs:
            return {"inputs": None, "residuals": None}
        return {
            "inputs": np.stack(self._inputs, axis=0),
            "residuals": np.stack(self._residuals, axis=0),
        }

    def load_state_dict(self, state: dict) -> None:
        self.reset()
        inputs = state.get("inputs")
        residuals = state.get("residuals")
        if inputs is None or residuals is None:
            return
        for n_in, res in zip(np.asarray(inputs), np.asarray(residuals)):
            self._inputs.append(np.array(n_in))
            self._residuals.append(np.array(res))

    def mix(self, n_in: np.ndarray, n_out: np.ndarray) -> np.ndarray:
        residual = n_out - n_in
        self._inputs.append(n_in.copy())
        self._residuals.append(residual.copy())

        m = len(self._residuals)
        if m == 1:
            return n_in + self.beta * residual

        r_mat = np.stack(self._residuals, axis=0)  # (m, N)
        x_mat = np.stack(self._inputs, axis=0)
        # Minimize || sum_j c_j r_j || subject to sum c_j = 1: solve with the
        # difference parametrization against the newest residual.
        diffs = r_mat[:-1] - r_mat[-1]  # (m-1, N)
        gram = diffs @ diffs.T
        rhs = -diffs @ r_mat[-1]
        try:
            alpha = np.linalg.solve(
                gram + 1e-12 * np.trace(gram) * np.eye(m - 1) / max(m - 1, 1), rhs
            )
        except np.linalg.LinAlgError:
            return n_in + self.beta * residual
        coeffs = np.empty(m)
        coeffs[:-1] = alpha
        coeffs[-1] = 1.0 - alpha.sum()

        n_opt = coeffs @ x_mat
        r_opt = coeffs @ r_mat
        mixed = n_opt + self.beta * r_opt
        # Densities must stay non-negative; extrapolation can overshoot.
        return np.maximum(mixed, 0.0)
