"""Mixed-precision policy: tier resolution, fp32 stages, forced fallbacks.

The tier guarantees under test (see :mod:`repro.precision`): ``strict64``
is bit-identical to the historical fp64 behaviour, ``mixed`` keeps every
stage inside its documented tolerance, and any stage whose a-posteriori
error estimate exceeds its tolerance falls back to fp64 — producing the
strict64 result bit-for-bit from the fallback point and recording a
:class:`repro.resilience.events.DegradationEvent`.
"""

import numpy as np
import pytest

from repro.core import kmeans as kmeans_mod
from repro.core.fitting import fit_interpolation_vectors
from repro.core.kmeans import weighted_kmeans
from repro.core.pair_products import pair_products
from repro.precision import PRECISION_MODES, PrecisionConfig, resolve_precision
from repro.resilience import resilience_log


@pytest.fixture()
def log():
    """The process-wide resilience log plus its length on entry; tests
    assert only on events they appended."""
    log = resilience_log()
    return log, len(log)


class TestResolvePrecision:
    def test_none_is_strict64(self):
        cfg = resolve_precision(None)
        assert cfg.mode == "strict64"
        assert not cfg.any_fp32

    @pytest.mark.parametrize("mode", PRECISION_MODES)
    def test_mode_string_round_trips(self, mode):
        cfg = resolve_precision(mode)
        assert cfg.mode == mode
        assert cfg == resolve_precision(mode)  # frozen: value equality

    def test_config_passes_through(self):
        cfg = PrecisionConfig(mode="mixed", fit_fp32=True, fit_tol=1e-3)
        assert resolve_precision(cfg) is cfg

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            resolve_precision("float16")

    def test_bad_mode_in_config_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            PrecisionConfig(mode="mixed32")

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="fit_tol"):
            PrecisionConfig(fit_tol=-1e-6)

    def test_tier_ladder(self):
        strict = resolve_precision("strict64")
        mixed = resolve_precision("mixed")
        fast = resolve_precision("fast32")
        assert not strict.any_fp32
        assert mixed.any_fp32 and fast.any_fp32
        # mixed keeps SCF fp64 and the bit-identical K-Means recheck;
        # fast32 drops both.
        assert mixed.kmeans_recheck and not mixed.scf_fft_fp32
        assert fast.scf_fft_fp32 and not fast.kmeans_recheck
        # verification stays on in every tier.
        assert strict.verify and mixed.verify and fast.verify

    def test_replace_is_frozen_safe(self):
        base = resolve_precision("mixed")
        forced = base.replace(fit_tol=0.0)
        assert forced.fit_tol == 0.0 and base.fit_tol > 0.0
        assert forced != base


class TestMixedFit:
    @pytest.fixture()
    def problem(self, rng):
        psi_v = rng.standard_normal((8, 2048))
        psi_c = rng.standard_normal((8, 2048))
        # n_mu well below the n_v * n_c Hadamard-Gram rank bound so the
        # fit is well-posed (an ill-conditioned Gram amplifies *any*
        # perturbation through the solve, fp32 or not).
        idx = np.sort(rng.choice(2048, size=32, replace=False))
        return psi_v, psi_c, idx

    def test_mixed_within_tolerance_no_fallback(self, problem, log):
        psi_v, psi_c, idx = problem
        log, before = log
        theta64 = fit_interpolation_vectors(psi_v, psi_c, idx)
        theta32 = fit_interpolation_vectors(
            psi_v, psi_c, idx, precision="mixed"
        )
        err = np.linalg.norm(theta32 - theta64) / np.linalg.norm(theta64)
        assert err <= resolve_precision("mixed").fit_tol
        assert len(log) == before

    def test_forced_fallback_is_bit_identical_and_logged(self, problem, log):
        psi_v, psi_c, idx = problem
        log, before = log
        theta64 = fit_interpolation_vectors(psi_v, psi_c, idx)
        forced = resolve_precision("mixed").replace(fit_tol=0.0)
        theta = fit_interpolation_vectors(psi_v, psi_c, idx, precision=forced)
        np.testing.assert_array_equal(theta, theta64)
        events = log.events()[before:]
        assert [(e.stage, e.action) for e in events] == [
            ("isdf-fit", "fallback-fp64")
        ]

    def test_verify_off_skips_the_check(self, problem, log):
        psi_v, psi_c, idx = problem
        log, before = log
        unchecked = resolve_precision("mixed").replace(
            fit_tol=0.0, verify=False
        )
        theta = fit_interpolation_vectors(
            psi_v, psi_c, idx, precision=unchecked
        )
        # No event, and the fp32-GEMM result (not the fp64 refit) came back.
        assert len(log) == before
        theta64 = fit_interpolation_vectors(psi_v, psi_c, idx)
        assert not np.array_equal(theta, theta64)


class TestMixedKmeans:
    @pytest.fixture()
    def problem(self, rng):
        points = rng.random((2000, 3))
        weights = rng.random(2000) + 0.1
        return points, weights

    def test_mixed_inertia_within_tolerance(self, problem, log):
        points, weights = problem
        log, before = log
        strict = weighted_kmeans(
            points, weights, 16, rng=np.random.default_rng(0)
        )
        mixed = weighted_kmeans(
            points, weights, 16, rng=np.random.default_rng(0),
            precision="mixed",
        )
        drift = abs(mixed[2] - strict[2]) / abs(strict[2])
        assert drift <= 1e-2
        assert len(log) == before

    def test_recheck_mismatch_reruns_in_fp64(self, problem, log, monkeypatch):
        """A failed fp64 assignment recheck re-runs the whole clustering in
        fp64 — the returned result is exactly the strict64 one, and the
        fallback lands in the resilience log."""
        points, weights = problem
        log, before = log
        init = points[:8].copy()
        strict = weighted_kmeans(
            points, weights, 8, initial_centroids=init
        )

        real = kmeans_mod._classify_tiled
        tampered_once = []

        def tampered(pts, pts_sq, centroids, active, tile_bytes):
            labels, d2n, d2s = real(pts, pts_sq, centroids, active, tile_bytes)
            # Corrupt exactly the first fp64 classification: in mixed mode
            # the loop classifies against fp32 centroids, so the first
            # fp64 call *is* the converged-assignment recheck.
            if centroids.dtype == np.float64 and not tampered_once:
                tampered_once.append(True)
                labels = labels.copy()
                labels[0] = (labels[0] + 1) % centroids.shape[0]
            return labels, d2n, d2s

        monkeypatch.setattr(kmeans_mod, "_classify_tiled", tampered)
        mixed = weighted_kmeans(
            points, weights, 8, initial_centroids=init, precision="mixed"
        )
        events = log.events()[before:]
        assert [(e.stage, e.action) for e in events] == [
            ("kmeans-classify", "fallback-fp64")
        ]
        np.testing.assert_array_equal(mixed[0], strict[0])
        np.testing.assert_array_equal(mixed[1], strict[1])
        assert mixed[2] == strict[2]
        assert mixed[3:] == strict[3:]

    def test_fast32_skips_the_recheck(self, problem, log):
        points, weights = problem
        log, before = log
        fast = weighted_kmeans(
            points, weights, 16, rng=np.random.default_rng(0),
            precision="fast32",
        )
        strict = weighted_kmeans(
            points, weights, 16, rng=np.random.default_rng(0)
        )
        drift = abs(fast[2] - strict[2]) / abs(strict[2])
        assert drift <= 1e-2
        assert len(log) == before


class TestPairProducts:
    def test_fp32_output_within_rounding(self, rng):
        psi_v = rng.standard_normal((4, 512))
        psi_c = rng.standard_normal((4, 512))
        z64 = pair_products(psi_v, psi_c)
        z32 = pair_products(psi_v, psi_c, dtype=np.float32)
        assert z32.dtype == np.float32
        scale = np.abs(z64).max()
        assert np.abs(z32.astype(np.float64) - z64).max() / scale <= 1e-5
