"""Excitation character analysis.

Turns Casida eigenvectors into chemistry: which valence->conduction
transitions dominate an excitation, how collective it is (participation
ratio), and real-space electron/hole densities — the quantities behind the
paper's Figure 9b insets (isosurfaces of the lowest excited-state electron
and hole).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require


@dataclass(frozen=True)
class TransitionWeight:
    """One valence->conduction contribution to an excitation."""

    valence: int
    conduction: int
    weight: float  #: |X_vc|^2, summing to 1 over all pairs


def dominant_transitions(
    wavefunction: np.ndarray,
    n_v: int,
    n_c: int,
    *,
    n_top: int = 3,
) -> list[TransitionWeight]:
    """The ``n_top`` largest |X_vc|^2 contributions of one excitation.

    ``wavefunction`` is one Casida eigenvector of length ``n_v * n_c`` in
    the library's pair ordering.
    """
    require(
        wavefunction.shape == (n_v * n_c,),
        f"wavefunction must have length {n_v * n_c}, got {wavefunction.shape}",
    )
    weights = np.abs(wavefunction) ** 2
    total = weights.sum()
    require(total > 0, "zero wavefunction")
    weights = weights / total
    order = np.argsort(weights)[::-1][:n_top]
    return [
        TransitionWeight(int(idx // n_c), int(idx % n_c), float(weights[idx]))
        for idx in order
    ]


def participation_ratio(wavefunction: np.ndarray) -> float:
    """Inverse participation ratio ``1 / sum_p |X_p|^4`` (normalized X).

    1 = a single KS transition; ``N_cv`` = perfectly collective.
    """
    w = np.abs(np.asarray(wavefunction)) ** 2
    total = w.sum()
    require(total > 0, "zero wavefunction")
    w = w / total
    return float(1.0 / np.sum(w * w))


def electron_hole_densities(
    wavefunction: np.ndarray,
    psi_v: np.ndarray,
    psi_c: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Real-space electron and hole densities of one excitation.

    ``n_e(r) = sum_c |sum_v X_vc psi_v? |`` — in the TDA the standard
    definitions are

        n_h(r) = sum_v [sum_c X_vc^2 ...]  via the transition density matrix:
        n_e(r) = sum_{c c'} (X^T X)_{c c'} psi_c(r) psi_c'(r),
        n_h(r) = sum_{v v'} (X X^T)_{v v'} psi_v(r) psi_v'(r).

    Both integrate to 1 for a normalized eigenvector.
    """
    n_v, n_r = psi_v.shape
    n_c = psi_c.shape[0]
    x = np.asarray(wavefunction).reshape(n_v, n_c)
    x = x / np.linalg.norm(x)
    # Electron: rho_e = psi_c^T (X^T X) psi_c evaluated on the diagonal.
    gram_c = x.T @ x  # (n_c, n_c)
    gram_v = x @ x.T  # (n_v, n_v)
    n_e = np.einsum("cr,cd,dr->r", psi_c, gram_c, psi_c, optimize=True)
    n_h = np.einsum("vr,vw,wr->r", psi_v, gram_v, psi_v, optimize=True)
    return n_e, n_h
