"""Runtime SPMD sanitizer: collective matching, write detection, deadlock
diagnosis for the thread-per-rank runtime.

Enabled with ``spmd_run(..., sanitize=True)`` or ``REPRO_SANITIZE=1``; the
communicator then reports every collective to a shared
:class:`SpmdSanitizer` *before* executing it, which buys three guarantees
the bare runtime does not have:

* **Matched collectives** — each rank's ops are tagged with a per-rank
  sequence number and an op signature (name, root, payload description).
  When the ranks of one epoch disagree — ``allreduce`` on rank 0 paired
  with ``bcast`` on rank 1 — every rank raises a :class:`SanitizerError`
  quoting *all* ranks' signatures and call sites instead of silently
  exchanging mismatched payloads.
* **Shared-write detection** — arrays handed through a collective travel
  by reference in this runtime, so an in-place write before the next
  synchronization races with every aliasing rank.  Payload arrays are
  fingerprinted at publish time and re-checked at the next epoch; a changed
  fingerprint names the owning rank, the publishing op and its call site.
  (Mutating a buffer *after* the next barrier is synchronized and legal —
  the one-epoch window is exactly the race window.)
* **Deadlock diagnosis** — the sanitizer's internal sync carries a
  timeout, and a rank returning from its program is recorded.  A collective
  that can never complete (a rank skipped it, or already finished) turns
  into a :class:`SanitizerError` naming the stuck ranks and their last
  collectives, rather than a hang.

Signatures must agree in op name and root for every collective; payload
shape/dtype must additionally agree for ``allreduce``/``reduce`` (whose
contributions are combined element-wise).  ``gather``/``allgather``/
``alltoall`` legitimately carry per-rank shapes (variable block sizes).

Overhead: two extra barriers plus one payload hash per collective — for
debugging and CI smoke runs, not production paths (see
``docs/static-analysis.md``).
"""

from __future__ import annotations

import hashlib
import os
import threading
import traceback
from dataclasses import dataclass

import numpy as np

__all__ = ["SanitizerError", "SpmdSanitizer", "describe_payload"]

#: Arrays above this size are not fingerprinted (hash cost would dominate).
_MAX_TRACKED_BYTES = 64 * 1024 * 1024
_ENV_ENABLE = "REPRO_SANITIZE"
_ENV_TIMEOUT = "REPRO_SANITIZE_TIMEOUT"

#: collectives whose contributions are combined element-wise, so payload
#: shape/dtype must match across ranks (others may differ legitimately).
_SYMMETRIC_PAYLOAD_OPS = frozenset({"allreduce", "reduce"})


class SanitizerError(RuntimeError):
    """A diagnosed SPMD correctness violation (mismatch, race or deadlock)."""


def env_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` asks for sanitized runs."""
    return os.environ.get(_ENV_ENABLE, "").strip() not in ("", "0", "false", "off")


def env_timeout(default: float = 10.0) -> float:
    value = os.environ.get(_ENV_TIMEOUT, "").strip()
    return float(value) if value else default


def describe_payload(value, _depth: int = 0) -> str:
    """Compact structural signature of a collective payload."""
    if isinstance(value, np.ndarray):
        shape = "x".join(str(s) for s in value.shape)
        return f"ndarray[{value.dtype},{shape}]"
    if isinstance(value, (list, tuple)):
        kind = "list" if isinstance(value, list) else "tuple"
        if _depth >= 2:
            return f"{kind}(n={len(value)})"
        inner = ",".join(describe_payload(v, _depth + 1) for v in value[:3])
        if len(value) > 3:
            inner += ",..."
        return f"{kind}[{inner}]"
    if value is None:
        return "none"
    return type(value).__name__


def _call_site() -> str:
    """First stack frame outside the comm/sanitizer layer, as ``file:line``."""
    here = os.path.dirname(os.path.abspath(__file__))
    internal = tuple(
        os.path.join(here, name)
        for name in (
            "comm.py",
            "sanitizer.py",
            "process_backend.py",
            "process_sanitizer.py",
        )
    )
    for frame in reversed(traceback.extract_stack()):
        if os.path.abspath(frame.filename) not in internal:
            return f"{frame.filename}:{frame.lineno} in {frame.name}"
    return "<unknown>"


@dataclass(frozen=True)
class OpRecord:
    """One rank's entry into one collective."""

    rank: int
    seq: int
    op: str
    detail: str  # root etc. — must match on every rank
    payload: str  # structural payload signature
    site: str

    def render(self) -> str:
        extra = f", {self.detail}" if self.detail else ""
        return (
            f"rank {self.rank} seq {self.seq}: {self.op}({self.payload}{extra}) "
            f"at {self.site}"
        )


@dataclass
class _TrackedArray:
    array: np.ndarray
    fingerprint: str
    record: OpRecord


def _hash_bytes(data) -> str:
    """blake2b-16 of a bytes-like buffer (shared with the process port)."""
    return hashlib.blake2b(bytes(data), digest_size=16).hexdigest()


def _fingerprint(arr: np.ndarray) -> str:
    return _hash_bytes(np.ascontiguousarray(arr).tobytes())


def _payload_arrays(value, _depth: int = 0):
    if isinstance(value, np.ndarray):
        if 0 < value.nbytes <= _MAX_TRACKED_BYTES:
            yield value
    elif isinstance(value, (list, tuple)) and _depth < 3:
        for v in value:
            yield from _payload_arrays(v, _depth + 1)


class SpmdSanitizer:
    """Shared sanitizer state for one SPMD run (thread-safe)."""

    def __init__(
        self,
        size: int,
        *,
        barrier_timeout: float | None = None,
        track_writes: bool = True,
    ) -> None:
        self.size = size
        self.timeout = env_timeout() if barrier_timeout is None else barrier_timeout
        # A single rank has nobody to race or mismatch with.
        self.track_writes = track_writes and size > 1
        self._barrier = threading.Barrier(size)
        self._lock = threading.Lock()
        self._seq = [0] * size
        self._current: list[OpRecord | None] = [None] * size
        self._last: list[OpRecord | None] = [None] * size
        self._done = [False] * size
        self._aborted = False
        self._verdict: str | None = None
        self._tracked: list[_TrackedArray] = []
        #: Completed synchronization epochs (for tests / the smoke check).
        self.n_synced = 0

    # -- hooks called by the communicator / executor -------------------------

    def on_collective(
        self, rank: int, op: str, value=None, detail: str = "", track: bool = True
    ) -> None:
        """Validate one collective entry; raises :class:`SanitizerError`.

        ``track=False`` skips shared-write fingerprinting for this
        payload (used by ``ireduce``, whose contribution is copied at
        post time, so later mutation of the caller's buffer is legal).
        """
        record = OpRecord(
            rank=rank,
            seq=self._seq[rank],
            op=op,
            detail=detail,
            payload=describe_payload(value),
            site=_call_site(),
        )
        with self._lock:
            self._seq[rank] += 1
            self._current[rank] = record
            finished = [r for r in range(self.size) if self._done[r]]
        if finished:
            raise SanitizerError(self._diagnose(record, finished=finished))

        leader = self._wait(record) == 0
        if leader:
            with self._lock:
                self._verdict = self._validate()
        self._wait(record)

        verdict = self._verdict
        if verdict is not None:
            raise SanitizerError(verdict)
        with self._lock:
            self._last[rank] = record
            if rank == 0:
                self.n_synced += 1
            if self.track_writes and track:
                for arr in _payload_arrays(value):
                    self._tracked.append(
                        _TrackedArray(arr, _fingerprint(arr), record)
                    )

    def rank_done(self, rank: int) -> None:
        """Called by the executor when a rank's program returns."""
        with self._lock:
            self._done[rank] = True
            waiting = self._barrier.n_waiting
        if waiting > 0:
            # Peers are inside a collective this rank will never join —
            # break the sync so they diagnose instead of timing out.
            self._barrier.abort()

    def abort(self) -> None:
        """Called by the executor when any rank failed: unwind, don't hang."""
        with self._lock:
            self._aborted = True
        self._barrier.abort()

    # -- internals -----------------------------------------------------------

    def _wait(self, record: OpRecord) -> int:
        try:
            return self._barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError:
            with self._lock:
                aborted = self._aborted
            if aborted:
                from repro.parallel.comm import SpmdAbort

                raise SpmdAbort(
                    f"rank {record.rank}: sanitized run aborted by a rank failure"
                ) from None
            raise SanitizerError(self._diagnose(record)) from None

    def _validate(self) -> str | None:
        """Leader check once every rank deposited its record (lock held)."""
        mutated = self._check_tracked_writes()
        if mutated is not None:
            return mutated
        records = [r for r in self._current if r is not None]
        if len(records) < self.size:
            return None  # unreachable once the barrier passed; be safe
        reference = records[0]
        mismatch = any(
            r.op != reference.op or r.detail != reference.detail for r in records
        ) or (
            reference.op in _SYMMETRIC_PAYLOAD_OPS
            and any(r.payload != reference.payload for r in records)
        )
        if mismatch:
            lines = "\n  ".join(r.render() for r in records)
            return (
                "mismatched collectives — the ranks of this epoch disagree:\n  "
                f"{lines}"
            )
        return None

    def _check_tracked_writes(self) -> str | None:
        """Re-fingerprint last epoch's payload arrays (lock held)."""
        tracked, self._tracked = self._tracked, []
        for entry in tracked:
            if _fingerprint(entry.array) != entry.fingerprint:
                return (
                    "unsynchronized shared-array write: "
                    f"{describe_payload(entry.array)} published by "
                    f"{entry.record.render()} was mutated before the next "
                    "synchronization; aliasing ranks observed a torn buffer — "
                    "mutate a .copy(), or mutate only after the next barrier"
                )
        return None

    def _diagnose(self, record: OpRecord, finished: list[int] | None = None) -> str:
        with self._lock:
            if finished is None:
                finished = [r for r in range(self.size) if self._done[r]]
            lines = []
            for rank in range(self.size):
                current = self._current[rank]
                last = self._last[rank]
                if self._done[rank]:
                    tail = f" (last completed: {last.render()})" if last else ""
                    lines.append(f"rank {rank}: program finished{tail}")
                elif current is not None and current is not last:
                    lines.append(f"rank {rank}: entered {current.render()}")
                elif last is not None:
                    lines.append(f"rank {rank}: last completed {last.render()}")
                else:
                    lines.append(f"rank {rank}: no collective entered yet")
        reason = (
            "a peer rank finished its program without this collective"
            if finished
            else f"collective sync did not complete within {self.timeout:g}s"
        )
        table = "\n  ".join(lines)
        return (
            f"rank {record.rank} stuck in {record.op} at {record.site}: "
            f"{reason} — per-rank state:\n  {table}"
        )
