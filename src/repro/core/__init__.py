"""The paper's primary contribution: low-rank accelerated LR-TDDFT.

Layout mirrors Section 3-4 of the paper:

* :mod:`repro.core.pair_products` — the face-splitting product P_vc,
* :mod:`repro.core.kernel` — the f_Hxc Hartree-exchange-correlation operator,
* :mod:`repro.core.casida` — naive explicit Hamiltonian + dense solve,
* :mod:`repro.core.qrcp` / :mod:`repro.core.kmeans` — interpolation-point
  selection (Sections 4.1.1 and 4.2),
* :mod:`repro.core.fitting` / :mod:`repro.core.isdf` — interpolation
  vectors and the ISDF decomposition (Section 4.1.2),
* :mod:`repro.core.isdf_hamiltonian` — the compressed explicit Hamiltonian,
* :mod:`repro.core.implicit` — the matrix-free operator of Section 4.3,
* :mod:`repro.core.driver` — the five versions of Table 4 behind one API.
"""

from repro.core.pair_products import pair_index, pair_products, pair_weights
from repro.core.kernel import HxcKernel
from repro.core.casida import (
    build_casida_hamiltonian,
    build_vhxc,
    solve_casida_dense,
    transition_diagonal,
)
from repro.core.qrcp import QRCPResult, select_points_qrcp
from repro.core.kmeans import (
    KMeansResult,
    classify_points,
    select_points_kmeans,
    weighted_kmeans,
)
from repro.core.fitting import coefficient_matrix, fit_interpolation_vectors
from repro.core.isdf import ISDFDecomposition, isdf_decompose
from repro.core.isdf_hamiltonian import build_isdf_hamiltonian, project_kernel
from repro.core.implicit import ImplicitCasidaOperator
from repro.core.full_casida import (
    ImplicitFullCasidaOperator,
    build_full_casida_matrix,
    solve_full_casida_dense,
)
from repro.core.driver import (
    METHODS,
    LRTDDFTResult,
    LRTDDFTSolver,
    TDDFTWarmStart,
)
from repro.core.spectra import oscillator_strengths, transition_dipoles

__all__ = [
    "pair_products",
    "pair_index",
    "pair_weights",
    "HxcKernel",
    "build_vhxc",
    "build_casida_hamiltonian",
    "solve_casida_dense",
    "transition_diagonal",
    "QRCPResult",
    "select_points_qrcp",
    "KMeansResult",
    "weighted_kmeans",
    "classify_points",
    "select_points_kmeans",
    "coefficient_matrix",
    "fit_interpolation_vectors",
    "ISDFDecomposition",
    "isdf_decompose",
    "build_isdf_hamiltonian",
    "project_kernel",
    "ImplicitCasidaOperator",
    "ImplicitFullCasidaOperator",
    "build_full_casida_matrix",
    "solve_full_casida_dense",
    "LRTDDFTSolver",
    "TDDFTWarmStart",
    "LRTDDFTResult",
    "METHODS",
    "transition_dipoles",
    "oscillator_strengths",
]
