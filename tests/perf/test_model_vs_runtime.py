"""Cross-layer validation: the cost model's communication volumes must
match what the real SPMD runtime actually moves.

The model predicts times from byte volumes; the runtime traces bytes
exactly. If the two disagree on *volume*, every modeled scaling figure is
suspect — so this is the keystone test tying `repro.perf` to
`repro.parallel`.
"""

import numpy as np
import pytest

from repro.core import HxcKernel
from repro.parallel import (
    BlockDistribution1D,
    distributed_build_vhxc,
    distributed_isdf_vtilde,
    spmd_run,
)
from repro.synthetic import synthetic_ground_state
from repro.atoms import bulk_silicon
from repro.core import isdf_decompose
from repro.utils.rng import default_rng


@pytest.fixture(scope="module")
def problem():
    gs = synthetic_ground_state(
        bulk_silicon(8), ecut=5.0, n_valence=6, n_conduction=4, seed=3
    )
    psi_v, _, psi_c, _ = gs.select_transition_space()
    kernel = HxcKernel(gs.basis, gs.density)
    return gs, psi_v, psi_c, kernel


def test_naive_alltoall_volume_matches_model_formula(problem):
    """Model formula: two transposes of the (N_r x N_cv) pair matrix, each
    moving the off-diagonal fraction of 8 N_r N_cv bytes."""
    gs, psi_v, psi_c, kernel = problem
    n_ranks = 4
    dist = BlockDistribution1D(gs.basis.n_r, n_ranks)

    def prog(comm):
        sl = dist.local_slice(comm.rank)
        distributed_build_vhxc(comm, psi_v[:, sl], psi_c[:, sl], kernel, dist)

    _, traffic = spmd_run(n_ranks, prog, return_traffic=True)

    n_cv = psi_v.shape[0] * psi_c.shape[0]
    total = 8.0 * gs.basis.n_r * n_cv
    # Off-diagonal tiles: sum over src != dst of rows(src) x cols(dst).
    pair_dist = BlockDistribution1D(n_cv, n_ranks)
    expected = sum(
        dist.count(s) * pair_dist.count(d) * 8
        for s in range(n_ranks)
        for d in range(n_ranks)
        if s != d
    ) * 2  # two transposes
    assert traffic.bytes_by_op["alltoall"] == expected
    # The model's (P-1)/P closed form agrees within the uneven-split slack.
    closed_form = 2 * total * (n_ranks - 1) / n_ranks
    assert traffic.bytes_by_op["alltoall"] == pytest.approx(closed_form, rel=0.05)


def test_isdf_alltoall_volume_scales_with_rank_ratio(problem):
    """The optimized pipeline's traffic is (N_mu / N_cv) of the naive one —
    the byte-level version of the paper's complexity reduction."""
    gs, psi_v, psi_c, kernel = problem
    n_cv = psi_v.shape[0] * psi_c.shape[0]
    isdf = isdf_decompose(psi_v, psi_c, 12, method="qrcp", rng=default_rng(0))
    dist = BlockDistribution1D(gs.basis.n_r, 3)

    def naive_prog(comm):
        sl = dist.local_slice(comm.rank)
        distributed_build_vhxc(comm, psi_v[:, sl], psi_c[:, sl], kernel, dist)

    def isdf_prog(comm):
        theta_local = isdf.theta[dist.local_slice(comm.rank)]
        distributed_isdf_vtilde(comm, theta_local, kernel, dist)

    _, t_naive = spmd_run(3, naive_prog, return_traffic=True)
    _, t_isdf = spmd_run(3, isdf_prog, return_traffic=True)
    ratio = t_isdf.bytes_by_op["alltoall"] / t_naive.bytes_by_op["alltoall"]
    assert ratio == pytest.approx(isdf.n_mu / n_cv, rel=1e-6)


def test_allreduce_volume_matches_matrix_size(problem):
    """Line 8 of Algorithm 1 reduces exactly one N_cv x N_cv matrix; the
    trace convention is 2 (P-1)/P x payload x P."""
    gs, psi_v, psi_c, kernel = problem
    n_ranks = 2
    n_cv = psi_v.shape[0] * psi_c.shape[0]
    dist = BlockDistribution1D(gs.basis.n_r, n_ranks)

    def prog(comm):
        sl = dist.local_slice(comm.rank)
        distributed_build_vhxc(comm, psi_v[:, sl], psi_c[:, sl], kernel, dist)

    _, traffic = spmd_run(n_ranks, prog, return_traffic=True)
    payload = 8 * n_cv * n_cv
    expected = int(2 * (n_ranks - 1) / n_ranks * payload * n_ranks)
    assert traffic.bytes_by_op["allreduce"] == expected
