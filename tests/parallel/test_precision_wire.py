"""fp32 wire on the pipelined GEMM+Reduce: bytes, error bound, fallback.

The wire dtype is decoupled from the accumulate dtype: blocks travel as
fp32, reduction buffers stay fp64.  Both SPMD backends share the same
accumulate-combine, so thread and process runs must stay bit-identical to
*each other* in every precision tier; the process-backend class carries
the ``process_backend`` marker (real forked ranks and /dev/shm slabs).
"""

import numpy as np
import pytest

from repro.parallel import spmd_run
from repro.parallel.pipeline import pipelined_vhxc_full
from repro.precision import resolve_precision
from repro.resilience import resilience_log

MODES = ("strict64", "mixed", "fast32")


def _prog(precision, n_pairs=24, n_mu=8):
    def body(comm):
        rng = np.random.default_rng(17 + comm.rank)
        z_local = rng.standard_normal((n_mu, n_pairs))
        k_local = rng.standard_normal((n_mu, n_pairs))
        return pipelined_vhxc_full(comm, z_local, k_local, 0.2,
                                   precision=precision)
    return body


class TestThreadWire:
    def test_fp32_wire_within_tolerance(self):
        base = spmd_run(3, _prog("strict64"))
        mixed = spmd_run(3, _prog("mixed"))
        scale = max(float(np.abs(r).max()) for r in base)
        err = max(
            float(np.abs(a - b).max()) for a, b in zip(mixed, base)
        ) / scale
        assert err <= resolve_precision("mixed").wire_tol
        # Accumulation stays fp64 regardless of the wire dtype.
        assert all(r.dtype == np.float64 for r in mixed)

    def test_forced_fallback_recovers_strict64_and_logs(self):
        log = resilience_log()
        before = len(log)
        forced = resolve_precision("mixed").replace(wire_tol=0.0)
        out = spmd_run(3, _prog(forced))
        base = spmd_run(3, _prog("strict64"))
        for a, b in zip(out, base):
            np.testing.assert_array_equal(a, b)
        events = log.events()[before:]
        assert [(e.stage, e.action) for e in events] == [
            ("wire-reduce", "fallback-fp64")
        ]

    def test_ireduce_wire_dtype_keeps_fp64_result(self):
        def body(comm):
            value = np.full(8, 1.0 / 3.0) * (comm.rank + 1)
            handle = comm.ireduce(value, root=0, wire_dtype=np.float32)
            return handle.wait()

        results = spmd_run(3, body)
        total = results[0]
        assert total.dtype == np.float64
        exact = np.full(8, 1.0 / 3.0) * 6.0
        np.testing.assert_allclose(total, exact, rtol=1e-6)


@pytest.mark.process_backend
class TestProcessWire:
    def test_reduce_wire_bytes_halve(self):
        _, t64 = spmd_run(
            2, _prog("strict64"), backend="process", return_traffic=True
        )
        _, t32 = spmd_run(
            2, _prog("mixed"), backend="process", return_traffic=True
        )
        b64 = t64.shm_bytes_by_op["reduce"]
        b32 = t32.shm_bytes_by_op["reduce"]
        assert b64 > 0
        assert 2 * b32 <= b64

    @pytest.mark.parametrize("mode", MODES)
    def test_backends_bit_identical_in_every_tier(self, mode):
        threads = spmd_run(2, _prog(mode), backend="thread")
        procs = spmd_run(2, _prog(mode), backend="process")
        for a, b in zip(threads, procs):
            np.testing.assert_array_equal(a, b)
