"""Fault-injection harness: every fault kind fires, and recovery recovers."""

import numpy as np
import pytest

from repro.parallel import spmd_run, spmd_run_resilient
from repro.parallel.comm import MessageTimeout
from repro.resilience import (
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    InjectedRankFailure,
    RetryPolicy,
    reliable_recv,
    reliable_send,
    verified_allreduce,
    with_retry,
)

NO_SLEEP = lambda s: None  # noqa: E731
FAST = RetryPolicy(max_retries=3, backoff=0.0, timeout=0.2)


def _allreduce_prog(comm):
    return comm.allreduce(float(comm.rank + 1), op="sum")


class TestFaultSpec:
    def test_known_kinds(self):
        for kind in ("kill_rank", "drop_message", "delay_message",
                     "corrupt_reduce", "kill_loop"):
            assert kind in FAULT_KINDS

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(kind="meteor_strike")

    def test_one_shot_deactivates(self):
        spec = FaultSpec(kind="kill_rank", rank=0)
        assert spec.active
        injector = FaultInjector([spec])
        with pytest.raises(InjectedRankFailure):
            injector.on_collective(0, "allreduce")
        assert not spec.active
        injector.on_collective(0, "allreduce")  # second call is a no-op


class TestKillRank:
    def test_kill_rank_propagates_through_spmd_run(self):
        injector = FaultInjector([FaultSpec(kind="kill_rank", rank=1)])
        with pytest.raises(InjectedRankFailure):
            spmd_run(3, _allreduce_prog, fault_injector=injector)

    def test_resilient_run_retries_one_shot_fault_to_success(self):
        injector = FaultInjector([FaultSpec(kind="kill_rank", rank=1)])
        results = spmd_run_resilient(
            3, _allreduce_prog,
            policy=FAST, fault_injector=injector, sleep=NO_SLEEP,
        )
        assert results == [6.0, 6.0, 6.0]
        assert any(e.startswith("kill_rank") for e in injector.events)

    def test_resilient_run_gives_up_on_persistent_fault(self):
        injector = FaultInjector(
            [FaultSpec(kind="kill_rank", rank=0, once=False)]
        )
        with pytest.raises(InjectedRankFailure):
            spmd_run_resilient(
                2, _allreduce_prog,
                policy=FAST, fault_injector=injector, sleep=NO_SLEEP,
            )


class TestMessageFaults:
    def test_drop_message_recovered_by_reliable_send(self):
        injector = FaultInjector(
            [FaultSpec(kind="drop_message", rank=0, tag=7)]
        )

        def prog(comm):
            if comm.rank == 0:
                attempts = reliable_send(
                    comm, np.arange(4.0), dest=1, tag=7, policy=FAST
                )
                return attempts
            return reliable_recv(comm, source=0, tag=7, policy=FAST)

        attempts, received = spmd_run(2, prog, fault_injector=injector)
        assert attempts == 2  # first copy dropped, resend delivered
        np.testing.assert_array_equal(received, np.arange(4.0))

    def test_plain_recv_times_out_on_dropped_message(self):
        injector = FaultInjector(
            [FaultSpec(kind="drop_message", rank=0, tag=3)]
        )

        def prog(comm):
            if comm.rank == 0:
                comm.send("lost", dest=1, tag=3)
                return None
            with pytest.raises(MessageTimeout):
                comm.recv(0, tag=3, timeout=0.05)
            return "timed out"

        assert spmd_run(2, prog, fault_injector=injector)[1] == "timed out"

    def test_delay_message_still_delivers(self):
        injector = FaultInjector(
            [FaultSpec(kind="delay_message", rank=0, delay=0.01)]
        )

        def prog(comm):
            if comm.rank == 0:
                comm.send("late but intact", dest=1)
                return None
            return comm.recv(0, timeout=5.0)

        assert spmd_run(2, prog, fault_injector=injector)[1] == "late but intact"


class TestCorruptReduce:
    def test_corruption_poisons_plain_allreduce(self):
        injector = FaultInjector(
            [FaultSpec(kind="corrupt_reduce", rank=0, op="allreduce")]
        )
        results = spmd_run(2, _allreduce_prog, fault_injector=injector)
        assert all(not np.isfinite(r) for r in results)

    def test_verified_allreduce_retries_to_correct_value(self):
        injector = FaultInjector(
            [FaultSpec(kind="corrupt_reduce", rank=0, op="allreduce")]
        )

        def prog(comm):
            return verified_allreduce(
                comm, float(comm.rank + 1), op="sum", policy=FAST
            )

        assert spmd_run(4, prog, fault_injector=injector) == [10.0] * 4

    def test_verified_allreduce_exhausts_budget(self):
        injector = FaultInjector(
            [FaultSpec(kind="corrupt_reduce", op="allreduce", once=False)]
        )

        def prog(comm):
            with pytest.raises(ArithmeticError):
                verified_allreduce(comm, 1.0, op="sum", policy=FAST)
            return "gave up"

        assert spmd_run(2, prog, fault_injector=injector) == ["gave up"] * 2


class TestWithRetry:
    def test_retries_until_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise InjectedFault("transient")
            return "ok"

        assert with_retry(flaky, policy=FAST, sleep=NO_SLEEP) == "ok"
        assert calls["n"] == 3

    def test_non_retryable_error_passes_through(self):
        def broken():
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            with_retry(broken, policy=FAST, sleep=NO_SLEEP)

    def test_backoff_schedule_is_exponential(self):
        policy = RetryPolicy(max_retries=3, backoff=0.1, backoff_factor=2.0)
        assert [policy.delay(a) for a in range(3)] == [0.1, 0.2, 0.4]


class TestInjectorLog:
    def test_events_record_site_and_step(self):
        injector = FaultInjector([FaultSpec(kind="kill_rank", rank=1)])
        with pytest.raises(InjectedRankFailure):
            spmd_run(2, _allreduce_prog, fault_injector=injector)
        assert injector.events
        event = injector.events[0]
        assert event.startswith("kill_rank")
        assert "rank=1" in event
