"""``repro.lint`` — AST lint passes for this codebase's parallel hazards.

The generic engine (rule registry, suppression comments, text/JSON output)
lives in :mod:`repro.lint.engine`; the passes encoding the invariants the
reproduction actually relies on live in :mod:`repro.lint.rules`:

* ``no-alloc-in-hot`` — per-call allocations inside hot kernels,
* ``collective-in-branch`` — collectives guarded by ``if rank`` branches,
* ``nondeterminism-in-replay`` — wall-clock/global-RNG/dict-order inside
  checkpoint-replayed loops,
* ``mutated-recv-buffer`` — in-place writes to arrays received through the
  comm layer without a defensive copy,
* ``no-blind-except`` — ``except Exception`` handlers that swallow
  everything.

Run it via ``repro lint [paths]``, ``python tools/run_checks.py``, or the
API below.  See ``docs/static-analysis.md`` for rule rationale and the
suppression syntax.
"""

from repro.lint.engine import (
    Finding,
    LintRule,
    all_rules,
    format_findings,
    get_rules,
    lint_file,
    lint_paths,
    lint_source,
    register_rule,
)
from repro.lint.hotpaths import HOT_DECORATORS, HOT_PATH_MANIFEST, hot_functions_for

# Importing the rules module populates the registry.
from repro.lint import rules as _rules  # noqa: F401  (registration side effect)

__all__ = [
    "Finding",
    "LintRule",
    "all_rules",
    "format_findings",
    "get_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register_rule",
    "HOT_DECORATORS",
    "HOT_PATH_MANIFEST",
    "hot_functions_for",
]
