"""Event channels: ordered history, replaying subscriptions, terminality."""

import threading

import pytest

from repro.serve import EventChannel


def test_history_is_ordered_and_dense():
    ch = EventChannel("job-1")
    ch.publish("queued")
    ch.publish("running")
    ch.publish("progress", {"iteration": 1, "residual": 0.5})
    events = ch.history()
    assert [e.type for e in events] == ["queued", "running", "progress"]
    assert [e.seq for e in events] == [0, 1, 2]
    assert all(e.job_id == "job-1" for e in events)
    assert events[2].payload["residual"] == 0.5


def test_late_subscriber_replays_full_history():
    ch = EventChannel("job-1")
    ch.publish("queued")
    ch.publish("running")
    sub = ch.subscribe()  # subscribes *after* two events
    ch.publish("done")
    assert [e.type for e in sub] == ["queued", "running", "done"]


def test_early_and_late_subscribers_see_identical_streams():
    ch = EventChannel("job-1")
    early = ch.subscribe()
    ch.publish("queued")
    ch.publish("progress", {"iteration": 1})
    ch.publish("done")
    late = ch.subscribe()
    early_types = [(e.seq, e.type) for e in early]
    late_types = [(e.seq, e.type) for e in late]
    assert early_types == late_types


def test_iteration_ends_at_terminal_event():
    ch = EventChannel("job-1")
    ch.publish("running")
    ch.publish("cancelled")
    sub = ch.subscribe()
    assert [e.type for e in sub] == ["running", "cancelled"]
    # The stream is finished: further gets return None immediately.
    assert sub.get(timeout=0.01) is None


def test_publish_after_terminal_raises():
    ch = EventChannel("job-1")
    ch.publish("done")
    assert ch.finished
    with pytest.raises(RuntimeError, match="finished"):
        ch.publish("progress")


def test_event_to_dict_is_json_primitives():
    ch = EventChannel("job-1")
    event = ch.publish("progress", {"iteration": 3})
    d = event.to_dict()
    assert d == {
        "seq": 0,
        "job_id": "job-1",
        "type": "progress",
        "payload": {"iteration": 3},
    }


def test_live_streaming_across_threads():
    ch = EventChannel("job-1")
    sub = ch.subscribe()
    seen = []

    def consume():
        for event in sub:
            seen.append(event.type)

    thread = threading.Thread(target=consume)
    thread.start()
    ch.publish("running")
    ch.publish("done")
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert seen == ["running", "done"]


def test_subscription_close_unblocks_consumer():
    ch = EventChannel("job-1")
    sub = ch.subscribe()
    ch.publish("running")
    sub.close()
    assert [e.type for e in sub] == ["running"]
