"""Tests for the complexity tables (paper Tables 2 and 4)."""

import pytest

from repro.perf import (
    complexity_table_2,
    complexity_table_4,
    evaluate_complexity,
    silicon_workload,
)


def test_table2_has_five_phases():
    rows = complexity_table_2()
    assert len(rows) == 5
    assert rows[-1][0].startswith("ScaLAPACK")


def test_table4_has_five_versions():
    rows = complexity_table_4()
    assert len(rows) == 5
    assert rows[0].version == "naive"
    assert rows[-1].version == "implicit-kmeans-isdf-lobpcg"


def test_implicit_memory_is_nmu_squared():
    assert complexity_table_4()[-1].diag_memory == "O(Nmu^2)"


class TestNumericEvaluation:
    @pytest.fixture()
    def workload(self):
        return silicon_workload(1000)

    def test_all_versions_evaluate(self, workload):
        for row in complexity_table_4():
            values = evaluate_complexity(row.version, workload)
            assert all(v > 0 for v in values.values())

    def test_unknown_version(self, workload):
        with pytest.raises(ValueError):
            evaluate_complexity("bogus", workload)

    def test_construction_compute_ordering(self, workload):
        """Optimized construction costs must be far below the naive one."""
        naive = evaluate_complexity("naive", workload)
        implicit = evaluate_complexity("implicit-kmeans-isdf-lobpcg", workload)
        assert implicit["construct_compute"] < naive["construct_compute"] / 10

    def test_diag_compute_two_orders_reduction(self, workload):
        """Abstract claim: computation reduced ~2 orders of magnitude."""
        naive = evaluate_complexity("naive", workload)
        implicit = evaluate_complexity("implicit-kmeans-isdf-lobpcg", workload)
        assert implicit["diag_compute"] < naive["diag_compute"] / 100

    def test_diag_memory_two_orders_reduction(self, workload):
        naive = evaluate_complexity("naive", workload)
        implicit = evaluate_complexity("implicit-kmeans-isdf-lobpcg", workload)
        assert implicit["diag_memory"] < naive["diag_memory"] / 100

    def test_kmeans_beats_qrcp_selection_term(self, workload):
        """Table 4 rows 2 vs 3 differ only in the Nmu Nr^2 vs Nmu Nr'^2 term."""
        qrcp = evaluate_complexity("qrcp-isdf", workload)
        kmeans = evaluate_complexity("kmeans-isdf", workload)
        assert kmeans["construct_compute"] < qrcp["construct_compute"]

    def test_lobpcg_reduces_diag_vs_dense(self, workload):
        dense = evaluate_complexity("kmeans-isdf", workload)
        lobpcg = evaluate_complexity("kmeans-isdf-lobpcg", workload)
        assert lobpcg["diag_compute"] < dense["diag_compute"]

    def test_32gb_example_from_section_4(self):
        """Section 4: N_c = N_v = 256 in double precision -> a 32 GB matrix."""
        n_cv = 256 * 256
        assert n_cv**2 * 8 == pytest.approx(32 * 1024**3, rel=0.05)
