"""Graceful degradation: FFT engine, ISDF selection, eigensolver fallbacks."""

import numpy as np
import pytest

from repro import api
from repro.atoms import silicon_primitive_cell
from repro.backend.fft_engine import (
    FFTEngine,
    NumpyFFTEngine,
    default_fft_engine,
    reset_default_fft_backend,
)
from repro.core import isdf as isdf_mod
from repro.core.isdf import isdf_decompose
from repro.resilience import ResilientFFTEngine
from repro.synthetic import synthetic_ground_state


class BoomFFTEngine(FFTEngine):
    """Primary engine that fails on every transform."""

    name = "boom"

    def __init__(self):
        super().__init__()
        self.calls = 0

    def fftn(self, a, axes):
        self.calls += 1
        raise RuntimeError("simulated FFT backend failure")

    def ifftn(self, a, axes):
        self.calls += 1
        raise RuntimeError("simulated FFT backend failure")


@pytest.fixture(scope="module")
def tiny_gs():
    return synthetic_ground_state(
        silicon_primitive_cell(), ecut=4.0, n_valence=4, n_conduction=4, seed=11
    )


@pytest.fixture
def clean_fft_default():
    reset_default_fft_backend()
    yield
    reset_default_fft_backend()


class TestFFTFallback:
    def test_degrades_to_numpy_and_matches(self):
        engine = ResilientFFTEngine(BoomFFTEngine())
        assert not engine.degraded
        a = np.random.default_rng(0).standard_normal((4, 4, 4))
        out = engine.fftn(a.astype(complex), axes=(0, 1, 2))
        assert engine.degraded
        np.testing.assert_allclose(out, np.fft.fftn(a, axes=(0, 1, 2)))

    def test_degradation_is_permanent(self):
        primary = BoomFFTEngine()
        engine = ResilientFFTEngine(primary)
        a = np.ones((2, 2, 2), dtype=complex)
        engine.fftn(a, axes=(0, 1, 2))
        engine.fftn(a, axes=(0, 1, 2))
        assert primary.calls == 1  # never consulted again after the failure

    def test_healthy_primary_is_untouched(self):
        engine = ResilientFFTEngine(NumpyFFTEngine())
        a = np.ones((2, 2, 2), dtype=complex)
        engine.fftn(a, axes=(0, 1, 2))
        assert not engine.degraded

    def test_round_trip_after_degradation(self):
        engine = ResilientFFTEngine(BoomFFTEngine())
        a = np.random.default_rng(1).standard_normal((3, 3, 3)).astype(complex)
        back = engine.ifftn(engine.fftn(a, axes=(0, 1, 2)), axes=(0, 1, 2))
        np.testing.assert_allclose(back, a, atol=1e-12)

    def test_install_is_idempotent(self, clean_fft_default):
        first = api.install_fft_fallback()
        second = api.install_fft_fallback()
        assert first is second
        assert isinstance(default_fft_engine(), ResilientFFTEngine)


class TestSelectionFallback:
    @pytest.fixture(scope="class")
    def transition_space(self):
        gs = synthetic_ground_state(
            silicon_primitive_cell(), ecut=4.0, n_valence=4, n_conduction=4,
            seed=3,
        )
        psi_v, _, psi_c, _ = gs.select_transition_space()
        return psi_v, psi_c, gs.basis.grid.cartesian_points

    def test_kmeans_exception_falls_back_to_qrcp(
        self, transition_space, monkeypatch
    ):
        psi_v, psi_c, grid_points = transition_space

        def broken_kmeans(*args, **kwargs):
            raise RuntimeError("simulated K-Means failure")

        monkeypatch.setattr(isdf_mod, "select_points_kmeans", broken_kmeans)
        result = isdf_decompose(
            psi_v, psi_c, n_mu=10, method="kmeans", grid_points=grid_points,
            rng=np.random.default_rng(0), fallback="qrcp",
        )
        assert result.method == "qrcp"
        assert result.indices.shape == (10,)

    def test_kmeans_exception_without_fallback_raises(
        self, transition_space, monkeypatch
    ):
        psi_v, psi_c, grid_points = transition_space
        monkeypatch.setattr(
            isdf_mod, "select_points_kmeans",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        with pytest.raises(RuntimeError, match="boom"):
            isdf_decompose(
                psi_v, psi_c, n_mu=10, method="kmeans",
                grid_points=grid_points, rng=np.random.default_rng(0),
            )

    def test_qrcp_result_matches_direct_qrcp(self, transition_space, monkeypatch):
        psi_v, psi_c, grid_points = transition_space
        direct = isdf_decompose(
            psi_v, psi_c, n_mu=10, method="qrcp",
            rng=np.random.default_rng(0),
        )
        monkeypatch.setattr(
            isdf_mod, "select_points_kmeans",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        fell_back = isdf_decompose(
            psi_v, psi_c, n_mu=10, method="kmeans", grid_points=grid_points,
            rng=np.random.default_rng(0), fallback="qrcp",
        )
        np.testing.assert_array_equal(fell_back.indices, direct.indices)
        np.testing.assert_array_equal(fell_back.theta, direct.theta)

    def test_bad_fallback_name_rejected(self, transition_space):
        psi_v, psi_c, grid_points = transition_space
        with pytest.raises(ValueError, match="fallback"):
            isdf_decompose(
                psi_v, psi_c, n_mu=10, method="kmeans",
                grid_points=grid_points, fallback="prayer",
            )


class TestDenseEigFallback:
    def test_unconverged_implicit_solve_falls_back_to_dense(self, tiny_gs):
        config = api.TDDFTConfig(
            method="implicit-kmeans-isdf-lobpcg",
            n_excitations=3, max_iter=1, tol=1e-14, seed=0,
        )
        result = api.solve_tddft(
            tiny_gs, config, resilience=api.ResilienceConfig()
        )
        assert result.converged
        assert result.method == "kmeans-isdf"

    def test_fallback_disabled_by_pair_budget(self, tiny_gs):
        config = api.TDDFTConfig(
            method="implicit-kmeans-isdf-lobpcg",
            n_excitations=3, max_iter=1, tol=1e-14, seed=0,
        )
        result = api.solve_tddft(
            tiny_gs, config,
            resilience=api.ResilienceConfig(dense_fallback_max_pairs=0),
        )
        assert not result.converged
        assert result.method == "implicit-kmeans-isdf-lobpcg"

    def test_no_resilience_means_no_fallback(self, tiny_gs):
        config = api.TDDFTConfig(
            method="implicit-kmeans-isdf-lobpcg",
            n_excitations=3, max_iter=1, tol=1e-14, seed=0,
        )
        result = api.solve_tddft(tiny_gs, config)
        assert not result.converged
        assert result.method == "implicit-kmeans-isdf-lobpcg"

    def test_fallback_energies_match_direct_dense(self, tiny_gs):
        config = api.TDDFTConfig(
            method="implicit-kmeans-isdf-lobpcg",
            n_excitations=3, max_iter=1, tol=1e-14, seed=0,
        )
        fallback = api.solve_tddft(
            tiny_gs, config, resilience=api.ResilienceConfig()
        )
        direct = api.solve_tddft(
            tiny_gs, config.replace(method="kmeans-isdf", max_iter=400)
        )
        np.testing.assert_allclose(
            fallback.energies[:3], direct.energies[:3], rtol=1e-8
        )
