"""Distributed real-time TDDFT: band-parallel propagation.

RT-TDDFT parallelizes along the band index — each rank propagates its own
occupied orbitals (the Krylov steps are independent) and the only coupling
is through the density, rebuilt once per step with one ``MPI_Allreduce``
of an ``N_r`` buffer.  This is exactly how the paper's RT-TDDFT
predecessor (Table 1's 2019 PWDFT row) distributes work.
"""

from __future__ import annotations

import numpy as np

from repro.dft.groundstate import GroundState
from repro.dft.hamiltonian import KohnShamHamiltonian
from repro.parallel.comm import Communicator
from repro.parallel.distributions import BlockDistribution1D
from repro.rt.propagator import expm_krylov_block
from repro.rt.tddft import RTResult
from repro.utils.validation import check_positive, require


def distributed_rt_propagate(
    comm: Communicator,
    ground_state: GroundState,
    *,
    kick_strength: float,
    kick_direction=(0.0, 0.0, 1.0),
    dt: float,
    n_steps: int,
    krylov_dim: int = 10,
    self_consistent: bool = True,
) -> RTResult:
    """Kick + propagate with bands distributed over ranks.

    Every rank returns the identical :class:`~repro.rt.tddft.RTResult`
    (observables are globally reduced each step).
    """
    check_positive(dt, "dt")
    check_positive(n_steps, "n_steps")
    basis = ground_state.basis
    n_occ = ground_state.n_occupied
    require(n_occ > 0, "no occupied orbitals")
    band_dist = BlockDistribution1D(n_occ, comm.size)
    sl = band_dist.local_slice(comm.rank)

    occupations_local = ground_state.occupations[:n_occ][sl]
    psi_local = basis.to_recip(
        ground_state.orbitals_real[:n_occ][sl].astype(complex)
    )

    # Minimum-image coordinates about the cell centre (as in the serial RT).
    frac = basis.grid.fractional_points
    wrapped = (frac - 0.5) - np.round(frac - 0.5)
    centered = wrapped @ basis.cell.lattice

    direction = np.asarray(kick_direction, dtype=float)
    direction = direction / np.linalg.norm(direction)
    phase = np.exp(1j * kick_strength * (centered @ direction))
    psi_real = basis.to_real(psi_local)
    psi_local = basis.to_recip(psi_real * phase)

    ham = KohnShamHamiltonian(basis)

    def global_density() -> np.ndarray:
        psi_r = basis.to_real(psi_local)
        local = np.einsum(
            "b,br->r", occupations_local, np.abs(psi_r) ** 2
        )
        return comm.allreduce(local)

    def observables() -> tuple[np.ndarray, float]:
        psi_r = basis.to_real(psi_local)
        weights = np.einsum("b,br->r", occupations_local, np.abs(psi_r) ** 2)
        dip_local = (weights @ centered) * basis.grid.dv
        norm_local = float(np.sum(np.abs(psi_local) ** 2))
        dip = comm.allreduce(dip_local)
        norm = comm.allreduce(np.array([norm_local]))[0]
        return dip, norm

    ham.update_density(global_density())
    times = [0.0]
    dip0, norm0 = observables()
    dipoles = [dip0]
    norms = [norm0]

    for step in range(1, n_steps + 1):
        if self_consistent:
            ham.update_density(global_density())
        psi_local = expm_krylov_block(
            ham.apply, psi_local, dt, krylov_dim=krylov_dim
        )
        times.append(step * dt)
        dip, norm = observables()
        dipoles.append(dip)
        norms.append(norm)

    return RTResult(
        times=np.asarray(times),
        dipoles=np.asarray(dipoles),
        norms=np.asarray(norms),
        kick_strength=kick_strength,
        kick_direction=direction,
    )
