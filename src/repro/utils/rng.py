"""Reproducible random number generation.

Every stochastic component of the library (randomized QRCP sketching,
K-Means initialization tie-breaking, synthetic orbital generation, test
fixtures) draws from generators created here so that a single seed makes a
full run bit-reproducible.
"""

from __future__ import annotations

import numpy as np

#: Seed used across the library when the caller does not supply one.
DEFAULT_SEED: int = 20220829  # ICPP'22 opening day.


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Return a PCG64 generator seeded deterministically.

    Parameters
    ----------
    seed:
        Explicit seed; when ``None`` the library-wide :data:`DEFAULT_SEED`
        is used (so "unseeded" code is still reproducible).
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` statistically independent child generators.

    Used by the SPMD runtime to hand every virtual rank its own stream
    while keeping the whole parallel run reproducible.
    """
    if n <= 0:
        raise ValueError(f"cannot spawn {n} generators")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
