"""Per-version wall-clock predictions and the scaling series.

Each of the paper's Table 4 versions is modeled as a sum of per-kernel
costs (:mod:`repro.perf.costmodel`) over the phases its algorithm executes.
The phase structure mirrors the instrumented code exactly — the same
breakdown (K-Means / FFT / MPI / GEMM+Allreduce) the paper plots in
Figure 8 — so the benches can print both the totals (Figure 7, weak
scaling, Table 6 extrapolations) and the stacked breakdown.

Absolute constants are calibrated against the paper's anchor timings (see
``repro.data.calibration``); shapes (speedups, efficiency bands, who wins
where) are what the reproduction asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.perf.costmodel import (
    time_allreduce,
    time_alltoall,
    time_dense_eig,
    time_fft_batch,
    time_gemm,
    time_kmeans,
    time_pair_product,
    time_reduce,
)
from repro.perf.machine import CORI_HASWELL, MachineSpec
from repro.perf.workloads import LRTDDFTWorkload
from repro.utils.validation import require

#: Version identifiers in Table 4 order.
VERSIONS = (
    "naive",
    "qrcp-isdf",
    "kmeans-isdf",
    "kmeans-isdf-lobpcg",
    "implicit-kmeans-isdf-lobpcg",
)

#: QRCP sustains a small fraction of peak and parallelizes poorly — the
#: paper's motivation for replacing it ("the terrible parallelism that
#: follows", Section 1).
_QRCP_EFFICIENCY = 0.20
_QRCP_MAX_CORES = 16


@dataclass(frozen=True)
class PhaseTimes:
    """Seconds per phase of one LR-TDDFT run (zero = phase not executed)."""

    selection: float = 0.0  #: K-Means or QRCP interpolation-point search
    fit: float = 0.0  #: ISDF least-squares interpolation vectors
    pair_product: float = 0.0  #: face-splitting product
    fft: float = 0.0  #: batched FFTs + reciprocal-space kernel
    mpi: float = 0.0  #: alltoall transposes + allreduce/reduce collectives
    gemm: float = 0.0  #: dense GEMMs of the Hamiltonian assembly
    diagonalization: float = 0.0  #: SYEVD or LOBPCG

    @property
    def construction(self) -> float:
        """Hamiltonian-construction time (everything but diagonalization)."""
        return (
            self.selection + self.fit + self.pair_product + self.fft
            + self.mpi + self.gemm
        )

    @property
    def total(self) -> float:
        return self.construction + self.diagonalization

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def _time_qrcp(w: LRTDDFTWorkload, spec: MachineSpec, cores: int) -> float:
    """Randomized QRCP point selection: ~4 N_r N_mu^2 flops, core-capped."""
    effective = min(cores, _QRCP_MAX_CORES)
    flops = 4.0 * w.n_r * float(w.n_mu) ** 2
    return flops / (effective * spec.flops_per_core * _QRCP_EFFICIENCY)


def _selection_time(
    w: LRTDDFTWorkload, spec: MachineSpec, cores: int, selection: str,
    threads_per_process: int = 4,
) -> float:
    if selection == "qrcp":
        return _time_qrcp(w, spec, cores)
    return time_kmeans(
        w.n_r_pruned, w.n_mu, w.kmeans_iters, spec, cores,
        threads_per_process=threads_per_process,
    )


def _fit_time(w: LRTDDFTWorkload, spec: MachineSpec, cores: int) -> float:
    """Theta = ZC^T (CC^T)^-1 via the separable Gram products."""
    t = time_gemm(w.n_r, w.n_mu, w.n_v + w.n_c, spec, cores)  # P_v, P_c
    t += time_gemm(w.n_r, w.n_mu, w.n_mu, spec, cores)  # triangular solves
    t += time_gemm(w.n_mu, w.n_mu, w.n_mu, spec, cores) / 3.0  # Cholesky
    return t


def _vtilde_phases(
    w: LRTDDFTWorkload, spec: MachineSpec, cores: int,
    threads_per_process: int = 4,
) -> tuple[float, float, float]:
    """(fft, mpi, gemm) seconds of the projected-kernel build (Eq. 7)."""
    tpp = threads_per_process
    fft = time_fft_batch(2.0 * w.n_mu, w.n_r, spec, cores)
    mpi = 2.0 * time_alltoall(
        8.0 * w.n_r * w.n_mu, spec, cores, threads_per_process=tpp
    )
    mpi += time_allreduce(
        8.0 * float(w.n_mu) ** 2, spec, cores, threads_per_process=tpp
    )
    gemm = time_gemm(w.n_mu, w.n_mu, w.n_r, spec, cores)
    return fft, mpi, gemm


def predict_version_time(
    version: str,
    w: LRTDDFTWorkload,
    cores: int,
    spec: MachineSpec = CORI_HASWELL,
    *,
    threads_per_process: int = 4,
) -> PhaseTimes:
    """Predicted phase times of one Table 4 version on ``cores`` cores.

    ``threads_per_process`` models the hybrid MPI/OpenMP layout: latency
    terms of the collectives scale with the process count
    (Section 6.3's observation that more OpenMP threads improve strong
    scalability; the paper's default layout is 4 threads, the Si_4096
    extreme-scale runs use 16).
    """
    require(version in VERSIONS, f"unknown version {version!r}")
    tpp = threads_per_process
    n_cv = float(w.n_pairs)

    if version == "naive":
        pair = time_pair_product(w.n_v, w.n_c, w.n_r, spec, cores)
        fft = time_fft_batch(2.0 * n_cv, w.n_r, spec, cores)
        mpi = 2.0 * time_alltoall(
            8.0 * w.n_r * n_cv, spec, cores, threads_per_process=tpp
        )
        mpi += time_allreduce(
            8.0 * n_cv**2, spec, cores, threads_per_process=tpp
        )
        gemm = time_gemm(n_cv, n_cv, w.n_r, spec, cores)
        diag = time_dense_eig(n_cv, spec, cores)
        return PhaseTimes(
            pair_product=pair, fft=fft, mpi=mpi, gemm=gemm, diagonalization=diag
        )

    selection = "qrcp" if version.startswith("qrcp") else "kmeans"
    sel = _selection_time(w, spec, cores, selection, tpp)
    fit = _fit_time(w, spec, cores)
    fft, mpi, gemm = _vtilde_phases(w, spec, cores, tpp)

    if version in ("qrcp-isdf", "kmeans-isdf", "kmeans-isdf-lobpcg"):
        # Explicit compressed H = D + 2 C^T Vtilde C.
        gemm += time_gemm(w.n_mu, n_cv, w.n_mu, spec, cores)
        gemm += time_gemm(n_cv, n_cv, w.n_mu, spec, cores)

    if version in ("qrcp-isdf", "kmeans-isdf"):
        diag = time_dense_eig(n_cv, spec, cores)
    elif version == "kmeans-isdf-lobpcg":
        # Explicit-H LOBPCG: k O(N_cv^2) per iteration (Table 4 row 4).
        diag = w.lobpcg_iters * time_gemm(n_cv, 3.0 * w.n_k, n_cv, spec, cores)
        diag += w.lobpcg_iters * time_allreduce(
            8.0 * (3.0 * w.n_k) ** 2, spec, cores, threads_per_process=tpp
        )
    else:  # implicit
        # k O(N_mu N_v N_c) per iteration (Table 4 row 5).
        per_iter = (
            time_gemm(w.n_mu, 3.0 * w.n_k, n_cv, spec, cores)
            + time_gemm(w.n_mu, 3.0 * w.n_k, w.n_mu, spec, cores)
            + time_gemm(n_cv, 3.0 * w.n_k, w.n_mu, spec, cores)
        )
        diag = w.lobpcg_iters * (
            per_iter
            + time_allreduce(
                8.0 * (3.0 * w.n_k) ** 2, spec, cores, threads_per_process=tpp
            )
        )
    return PhaseTimes(
        selection=sel, fit=fit, fft=fft, mpi=mpi, gemm=gemm, diagonalization=diag
    )


def predict_construction_breakdown(
    w: LRTDDFTWorkload,
    cores: int,
    spec: MachineSpec = CORI_HASWELL,
    version: str = "implicit-kmeans-isdf-lobpcg",
) -> dict[str, float]:
    """Figure 8's four construction phases for the optimized version."""
    times = predict_version_time(version, w, cores, spec)
    return {
        "kmeans": times.selection,
        "fft": times.fft,
        "mpi": times.mpi,
        "gemm_allreduce": times.gemm + times.fit + times.pair_product,
    }


def strong_scaling_series(
    version: str,
    w: LRTDDFTWorkload,
    core_counts: list[int],
    spec: MachineSpec = CORI_HASWELL,
) -> list[PhaseTimes]:
    """Figure 7: times over a core-count sweep at a fixed system."""
    return [predict_version_time(version, w, c, spec) for c in core_counts]


def weak_scaling_series(
    workloads: list[LRTDDFTWorkload],
    cores: int,
    spec: MachineSpec = CORI_HASWELL,
    version: str = "implicit-kmeans-isdf-lobpcg",
) -> list[PhaseTimes]:
    """Section 6.4: times over a system-size sweep at fixed cores."""
    return [predict_version_time(version, w, cores, spec) for w in workloads]


def parallel_efficiency(
    times: list[PhaseTimes], core_counts: list[int]
) -> list[float]:
    """Eq. 20: speedup relative to the first point over the core multiple."""
    require(len(times) == len(core_counts), "series length mismatch")
    require(len(times) >= 1, "empty series")
    t0 = times[0].total
    c0 = core_counts[0]
    return [
        (t0 / t.total) / (c / c0) for t, c in zip(times, core_counts)
    ]
