"""Tests for the dense linear-algebra helpers under the eigensolvers."""

import numpy as np
import pytest

from repro.utils.linalg import (
    orthonormalize,
    orthonormalize_against,
    rayleigh_ritz,
    relative_error,
    stable_generalized_eigh,
    symmetrize,
)


class TestSymmetrize:
    def test_output_is_hermitian(self, rng):
        a = rng.standard_normal((6, 6)) + 1j * rng.standard_normal((6, 6))
        s = symmetrize(a)
        np.testing.assert_allclose(s, s.conj().T)

    def test_hermitian_input_unchanged(self, rng):
        a = rng.standard_normal((5, 5))
        a = a + a.T
        np.testing.assert_allclose(symmetrize(a), a)


class TestOrthonormalize:
    def test_columns_become_orthonormal(self, rng):
        x = rng.standard_normal((40, 6))
        q = orthonormalize(x)
        np.testing.assert_allclose(q.conj().T @ q, np.eye(6), atol=1e-12)

    def test_span_is_preserved(self, rng):
        x = rng.standard_normal((30, 4))
        q = orthonormalize(x)
        # x must be representable in the q basis exactly.
        residual = x - q @ (q.T @ x)
        assert np.linalg.norm(residual) < 1e-10 * np.linalg.norm(x)

    def test_complex_input(self, rng):
        x = rng.standard_normal((25, 3)) + 1j * rng.standard_normal((25, 3))
        q = orthonormalize(x)
        np.testing.assert_allclose(q.conj().T @ q, np.eye(3), atol=1e-12)

    def test_rank_deficient_block_does_not_crash(self, rng):
        x = rng.standard_normal((20, 4))
        x[:, 3] = x[:, 0]  # exact dependence
        q = orthonormalize(x)
        assert np.all(np.isfinite(q))

    def test_nearly_dependent_columns(self, rng):
        x = rng.standard_normal((30, 3))
        x[:, 2] = x[:, 0] + 1e-14 * rng.standard_normal(30)
        q = orthonormalize(x)
        assert np.all(np.isfinite(q))


class TestOrthonormalizeAgainst:
    def test_result_orthogonal_to_basis(self, rng):
        basis = orthonormalize(rng.standard_normal((50, 5)))
        block = rng.standard_normal((50, 3))
        q = orthonormalize_against(block, basis)
        np.testing.assert_allclose(basis.conj().T @ q, 0.0, atol=1e-12)
        np.testing.assert_allclose(q.conj().T @ q, np.eye(3), atol=1e-12)


class TestRayleighRitz:
    def test_recovers_eigenvalues_in_invariant_subspace(self, rng):
        a = rng.standard_normal((30, 30))
        a = (a + a.T) / 2
        evals, evecs = np.linalg.eigh(a)
        s = evecs[:, :4]
        theta, coeffs = rayleigh_ritz(s, a @ s)
        np.testing.assert_allclose(theta, evals[:4], atol=1e-12)

    def test_nev_truncation(self, rng):
        a = rng.standard_normal((20, 20))
        a = (a + a.T) / 2
        s = rng.standard_normal((20, 6))
        theta, coeffs = rayleigh_ritz(s, a @ s, nev=2)
        assert theta.shape == (2,)
        assert coeffs.shape == (6, 2)


class TestStableGeneralizedEigh:
    def test_matches_scipy_for_well_conditioned(self, rng):
        a = rng.standard_normal((12, 12))
        a = (a + a.T) / 2
        b = rng.standard_normal((12, 12))
        b = b @ b.T + 12 * np.eye(12)
        import scipy.linalg as sla

        ref = sla.eigh(a, b, eigvals_only=True)
        got, _ = stable_generalized_eigh(a, b)
        np.testing.assert_allclose(got, ref, atol=1e-9)

    def test_b_orthonormal_vectors(self, rng):
        a = rng.standard_normal((10, 10))
        a = (a + a.T) / 2
        b = rng.standard_normal((10, 10))
        b = b @ b.T + 10 * np.eye(10)
        _, vecs = stable_generalized_eigh(a, b)
        np.testing.assert_allclose(vecs.T @ b @ vecs, np.eye(10), atol=1e-9)

    def test_singular_b_drops_directions(self, rng):
        a = np.diag(np.arange(1.0, 6.0))
        b = np.eye(5)
        b[4, 4] = 0.0  # singular metric
        evals, vecs = stable_generalized_eigh(a, b)
        assert evals.shape[0] == 4
        assert np.all(np.isfinite(vecs))

    def test_zero_b_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            stable_generalized_eigh(np.eye(3), np.zeros((3, 3)))


class TestRelativeError:
    def test_zero_for_identical(self, rng):
        x = rng.standard_normal(10)
        assert relative_error(x, x) == 0.0

    def test_scale_invariance(self, rng):
        x = rng.standard_normal(10)
        assert relative_error(1.01 * x, x) == pytest.approx(0.01, rel=1e-10)

    def test_zero_reference_returns_absolute(self):
        assert relative_error(np.array([3.0, 4.0]), np.zeros(2)) == pytest.approx(5.0)

    def test_scalar_inputs(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
