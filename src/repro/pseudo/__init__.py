"""HGH/GTH norm-conserving pseudopotentials (the paper's Section 6.1 choice)."""

from repro.pseudo.hgh import (
    HGHParameters,
    get_pseudopotential,
    local_potential_recip,
    local_potential_real,
    projector_radial_numeric,
    projector_radial_recip,
    projector_real,
)
from repro.pseudo.kb import NonlocalProjectors, build_projectors

__all__ = [
    "HGHParameters",
    "get_pseudopotential",
    "local_potential_recip",
    "local_potential_real",
    "projector_radial_recip",
    "projector_radial_numeric",
    "projector_real",
    "NonlocalProjectors",
    "build_projectors",
]
