"""Pluggable compute backends for the hot paths (FFT engines)."""

from repro.backend.fft_engine import (
    FFTEngine,
    NumpyFFTEngine,
    ScipyFFTEngine,
    available_backends,
    default_fft_engine,
    get_fft_engine,
    reset_default_fft_backend,
    set_default_fft_backend,
)

__all__ = [
    "FFTEngine",
    "NumpyFFTEngine",
    "ScipyFFTEngine",
    "available_backends",
    "default_fft_engine",
    "get_fft_engine",
    "reset_default_fft_backend",
    "set_default_fft_backend",
]
