"""Once-per-process deprecation warnings for legacy call signatures.

The facade (:mod:`repro.api`) replaced several kwarg-soup entry points with
typed config objects; the old signatures keep working but funnel through
:func:`warn_once` so each legacy pattern warns exactly once per process
(pytest runs ignore ``DeprecationWarning`` by project config, interactive
users see a single actionable nudge).
"""

from __future__ import annotations

import warnings

__all__ = ["reset_deprecation_warnings", "warn_once"]

_WARNED: set[str] = set()


def warn_once(key: str, message: str, *, stacklevel: int = 3) -> bool:
    """Emit ``DeprecationWarning`` for ``key`` the first time only.

    Returns True when the warning was actually emitted.
    """
    if key in _WARNED:
        return False
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
    return True


def reset_deprecation_warnings() -> None:
    """Forget which warnings fired (test helper)."""
    _WARNED.clear()
