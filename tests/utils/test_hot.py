"""Hot-kernel markers and the runtime side of ``@array_contract``.

The enforcement gate is decided at decoration time, so every enabled-mode
test sets ``REPRO_ARRAY_CONTRACTS`` *before* applying the decorator to a
fresh function.
"""

import numpy as np
import pytest

from repro.utils.hot import (
    ArrayContractError,
    array_contract,
    array_contracts_enabled,
    canonical_dtype,
    get_array_contract,
    hot_kernel,
    is_hot_kernel,
)

pytestmark = pytest.mark.lint


@pytest.fixture()
def enabled(monkeypatch):
    monkeypatch.setenv("REPRO_ARRAY_CONTRACTS", "1")


class TestHotKernelMarker:
    def test_bare_and_labelled_forms(self):
        @hot_kernel
        def a():
            pass

        @hot_kernel(label="fft/apply")
        def b():
            pass

        assert is_hot_kernel(a) and is_hot_kernel(b)
        assert b.__repro_hot_label__ == "fft/apply"
        assert not is_hot_kernel(lambda: None)


class TestCanonicalDtype:
    @pytest.mark.parametrize(
        "name, bucket",
        [
            ("int32", "int64"),
            ("uint8", "int64"),
            ("float16", "float32"),
            ("float64", "float64"),
            ("complex64", "complex128"),
            ("bool_", "bool"),
        ],
    )
    def test_buckets(self, name, bucket):
        assert canonical_dtype(np.dtype(name)) == bucket

    def test_foreign_dtype_is_none(self):
        assert canonical_dtype("datetime64[ns]") is None


class TestDecorationTimeValidation:
    def test_bad_dtype_name_raises(self):
        with pytest.raises(ValueError, match="lattice"):
            array_contract(dtypes={"x": "float128"})

    def test_bad_returns_key_raises(self):
        with pytest.raises(ValueError, match="returns"):
            array_contract(returns={"layout": "C"})

    def test_interior_ellipsis_raises(self):
        with pytest.raises(ValueError, match="leading"):
            array_contract(shapes={"x": ("n", "...", "m")})

    def test_non_tuple_shape_raises(self):
        with pytest.raises(ValueError, match="tuple"):
            array_contract(shapes={"x": 5})


class TestDisabledByDefault:
    def test_violations_pass_silently_and_fn_is_unwrapped(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARRAY_CONTRACTS", raising=False)
        assert not array_contracts_enabled()

        def raw(x):
            return x

        decorated = array_contract(dtypes={"x": "float64"})(raw)
        assert decorated is raw  # zero overhead: same function object
        decorated(np.zeros(3, dtype=np.float32))  # no enforcement

    def test_spec_is_still_attached(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARRAY_CONTRACTS", raising=False)

        @array_contract(dtypes={"x": ("float64", "complex128")})
        def f(x):
            return x

        spec = get_array_contract(f)
        assert spec is not None
        assert spec.dtypes["x"] == ("float64", "complex128")


class TestEnabledEnforcement:
    def test_wrong_dtype_raises(self, enabled):
        @array_contract(dtypes={"x": "float64"})
        def f(x):
            return x

        f(np.zeros(3))
        with pytest.raises(ArrayContractError, match="dtype"):
            f(np.zeros(3, dtype=np.float32))

    def test_dtype_buckets_fold_on_entry(self, enabled):
        @array_contract(dtypes={"x": "int64"})
        def f(x):
            return x

        f(np.zeros(3, dtype=np.int32))  # int32 folds onto the int64 bucket

    def test_non_contiguous_raises(self, enabled):
        @array_contract(contiguous=("x",))
        def f(x):
            return x

        a = np.zeros((4, 4))
        f(a)
        with pytest.raises(ArrayContractError, match="C-contiguous"):
            f(a.T)

    def test_rank_mismatch_raises(self, enabled):
        @array_contract(shapes={"x": ("n", "m")})
        def f(x):
            return x

        with pytest.raises(ArrayContractError, match="rank"):
            f(np.zeros(3))

    def test_literal_dim_is_pinned(self, enabled):
        @array_contract(shapes={"x": (3, "m")})
        def f(x):
            return x

        f(np.zeros((3, 7)))
        with pytest.raises(ArrayContractError, match="dim"):
            f(np.zeros((4, 7)))

    def test_symbolic_dims_unify_across_parameters(self, enabled):
        @array_contract(shapes={"a": ("n", "k"), "b": ("n",)})
        def f(a, b):
            return a

        f(np.zeros((5, 2)), np.zeros(5))
        with pytest.raises(ArrayContractError, match="symbolic dim"):
            f(np.zeros((5, 2)), np.zeros(6))

    def test_leading_ellipsis_matches_extra_axes(self, enabled):
        @array_contract(shapes={"x": ("...", "n")})
        def f(x):
            return x

        f(np.zeros(4))
        f(np.zeros((2, 3, 4)))
        with pytest.raises(ArrayContractError, match="trailing dims"):
            f(np.float64(1.0).reshape(()))  # rank 0 < 1 trailing dim

    def test_any_shape_constrains_nothing(self, enabled):
        @array_contract(shapes={"x": "any"}, contiguous=("x",))
        def f(x):
            return x

        f(np.zeros((2, 3, 4)))
        f(np.zeros(()))

    def test_non_array_arguments_are_skipped(self, enabled):
        @array_contract(shapes={"x": ("n",)}, dtypes={"x": "float64"})
        def f(x):
            return x

        f(None)
        f([1.0, 2.0])  # duck-typed payloads stay unconstrained

    def test_return_dtype_and_contiguity(self, enabled):
        @array_contract(returns={"dtype": "float64", "contiguous": True})
        def good():
            return np.zeros((2, 2))

        @array_contract(returns={"dtype": "float64"})
        def wrong_dtype():
            return np.zeros(2, dtype=np.complex128)

        @array_contract(returns={"contiguous": True})
        def transposed():
            return np.zeros((2, 3)).T

        good()
        with pytest.raises(ArrayContractError, match="dtype"):
            wrong_dtype()
        with pytest.raises(ArrayContractError, match="C-contiguous"):
            transposed()

    def test_return_shape_unifies_with_parameter_dims(self, enabled):
        @array_contract(
            shapes={"x": ("n",)}, returns={"shape": ("n",)}
        )
        def doubler(x):
            return np.concatenate([x, x])  # wrong: returns 2n

        with pytest.raises(ArrayContractError, match="symbolic dim"):
            doubler(np.zeros(3))

    def test_kwargs_are_validated_too(self, enabled):
        @array_contract(dtypes={"x": "float64"})
        def f(*, x=None):
            return x

        with pytest.raises(ArrayContractError, match="dtype"):
            f(x=np.zeros(3, dtype=np.float32))

    def test_vacuous_contract_never_wraps(self, enabled):
        def raw():
            return None

        decorated = array_contract()(raw)
        assert decorated is raw
        assert get_array_contract(decorated).is_vacuous()

    def test_wrapper_preserves_identity_metadata(self, enabled):
        @array_contract(dtypes={"x": "float64"})
        def my_kernel(x):
            """Docstring survives."""
            return x

        assert my_kernel.__name__ == "my_kernel"
        assert my_kernel.__doc__ == "Docstring survives."


class TestViolationMessages:
    """A violation must name the kernel, the offending argument and the
    expected-vs-actual dtype/shape/layout — a failure surfaced from a
    nested kernel three GEMMs deep has to read unambiguously."""

    def test_dtype_message_names_argument_and_both_dtypes(self, enabled):
        @array_contract(dtypes={"weights": "float64"})
        def classify(points, weights):
            return weights

        with pytest.raises(ArrayContractError) as err:
            classify(np.zeros(3), np.zeros((4, 8), dtype=np.float32))
        message = str(err.value)
        assert "classify()" in message
        assert "'weights'" in message
        assert "expected dtype float64" in message
        assert "float32 array of shape (4, 8)" in message

    def test_layout_message_reports_actual_strides(self, enabled):
        @array_contract(contiguous=("z",))
        def gemm(z):
            return z

        with pytest.raises(ArrayContractError) as err:
            gemm(np.zeros((4, 6)).T)
        message = str(err.value)
        assert "gemm()" in message and "'z'" in message
        assert "expected a C-contiguous layout" in message
        assert "non-contiguous" in message and "strides" in message

    def test_shape_message_shows_expected_and_actual(self, enabled):
        @array_contract(shapes={"x": ("n", 3)})
        def f(x):
            return x

        with pytest.raises(ArrayContractError) as err:
            f(np.zeros((5, 4)))
        message = str(err.value)
        assert "'x'" in message
        assert "float64 array of shape (5, 4)" in message

    def test_symbolic_dim_message_names_the_binding(self, enabled):
        @array_contract(shapes={"a": ("n",), "b": ("n",)})
        def f(a, b):
            return a

        with pytest.raises(ArrayContractError) as err:
            f(np.zeros(4), np.zeros(5))
        message = str(err.value)
        assert "'n'" in message and "4" in message

    def test_return_violation_says_return_value(self, enabled):
        @array_contract(returns={"dtype": "float64"})
        def f():
            return np.zeros(2, dtype=np.float32)

        with pytest.raises(ArrayContractError, match="return value"):
            f()


class TestPrecisionPolicy:
    def test_policy_is_attached_to_the_spec(self):
        @array_contract(
            dtypes={"x": "float64"}, precision_policy="fp32-compute"
        )
        def f(x):
            return x

        assert get_array_contract(f).precision_policy == "fp32-compute"

    def test_default_is_none(self):
        @array_contract(dtypes={"x": "float64"})
        def f(x):
            return x

        assert get_array_contract(f).precision_policy is None

    def test_empty_policy_rejected(self):
        with pytest.raises(ValueError, match="precision_policy"):
            array_contract(precision_policy="")

    def test_non_string_policy_rejected(self):
        with pytest.raises(ValueError, match="precision_policy"):
            array_contract(precision_policy=32)

    def test_policy_adds_no_runtime_checks(self, enabled):
        @array_contract(
            dtypes={"x": "float64"}, precision_policy="fp32-compute"
        )
        def f(x):
            return x.astype(np.float32)

        # The policy sanctions the downcast statically (lint); runtime
        # entry checks are unchanged and the fp32 return passes.
        assert f(np.zeros(3)).dtype == np.float32


class TestEnvParsing:
    @pytest.mark.parametrize("value", ["1", "true", "on", "yes"])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_ARRAY_CONTRACTS", value)
        assert array_contracts_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "  OFF  "])
    def test_falsy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_ARRAY_CONTRACTS", value)
        assert not array_contracts_enabled()
