"""Eigensolvers: blocked LOBPCG (paper Algorithm 2), block Davidson, dense.

All solvers share one operator protocol: ``apply(X)`` maps an ``(n, k)``
block of column vectors to ``H @ X`` without ever materializing ``H`` —
which is exactly what the implicit Hamiltonian method of Section 4.3 needs.
"""

from repro.eigen.results import EigenResult
from repro.eigen.lobpcg import lobpcg
from repro.eigen.davidson import davidson
from repro.eigen.dense import dense_eigh, dense_lowest

__all__ = ["EigenResult", "lobpcg", "davidson", "dense_eigh", "dense_lowest"]
