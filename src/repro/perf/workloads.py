"""Problem dimensions for the paper's silicon series.

Maps Si_N + E_cut to the sizes the cost model consumes: grid points (via
the paper's grid rule — Si_1000 at 20 Ha gives 104^3 = 1,124,864 points and
Si_4096 gives 166^3, both quoted in Section 6), valence/conduction counts,
and the ISDF rank.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive

#: Conventional silicon lattice constant in Bohr (matches repro.atoms).
_SILICON_A = 10.2625


@dataclass(frozen=True)
class LRTDDFTWorkload:
    """Dimensions of one LR-TDDFT problem instance."""

    label: str
    n_atoms: int
    n_v: int  #: valence (occupied) bands in the transition space
    n_c: int  #: conduction bands
    n_r: int  #: real-space grid points
    n_mu: int  #: ISDF rank
    n_k: int  #: number of requested lowest excitations
    prune_fraction: float = 0.10  #: N_r' / N_r surviving the weight pruning
    kmeans_iters: int = 30
    lobpcg_iters: int = 30

    @property
    def n_pairs(self) -> int:
        return self.n_v * self.n_c

    @property
    def n_r_pruned(self) -> int:
        return max(1, int(self.prune_fraction * self.n_r))

    def memory_naive_bytes(self) -> float:
        """Dominant naive memory: the pair matrix + the explicit Hamiltonian."""
        return 8.0 * (self.n_r * float(self.n_pairs) + float(self.n_pairs) ** 2)

    def memory_implicit_bytes(self) -> float:
        """Optimized memory: Theta + Vtilde + compressed coefficients."""
        return 8.0 * (
            self.n_r * float(self.n_mu)
            + float(self.n_mu) ** 2
            + self.n_mu * float(self.n_v + self.n_c)
        )


def _grid_points_for_silicon(n_atoms: int, ecut: float) -> int:
    """Paper grid rule on the cubic Si_N supercell (exact 166^3-style dims,
    no FFT-size rounding, to match the counts quoted in Section 6.1)."""
    k = round((n_atoms / 8) ** (1 / 3))
    length = k * _SILICON_A
    n_axis = int(np.ceil(np.sqrt(2.0 * ecut) * length / np.pi))
    return n_axis**3


def silicon_workload(
    n_atoms: int,
    *,
    ecut: float = 20.0,
    rank_factor: float = 8.0,
    n_k: int = 16,
    conduction_fraction: float = 1.0,
) -> LRTDDFTWorkload:
    """Workload for Si_N at the paper's settings.

    Si has 4 valence electrons/atom so ``N_v = 2 N_atoms``; the paper takes
    ``N_c ~ N_v`` (``conduction_fraction`` scales that) and
    ``N_mu = rank_factor * N_v`` (Table 3 probes 512-2048 for Si_64,
    i.e. 2x-16x ``N_v``).
    """
    check_positive(n_atoms, "n_atoms")
    n_v = 2 * n_atoms
    n_c = max(1, int(conduction_fraction * n_v))
    n_r = _grid_points_for_silicon(n_atoms, ecut)
    n_mu = int(rank_factor * n_v)
    return LRTDDFTWorkload(
        label=f"Si{n_atoms}",
        n_atoms=n_atoms,
        n_v=n_v,
        n_c=n_c,
        n_r=n_r,
        n_mu=min(n_mu, n_v * n_c),
        n_k=n_k,
    )
