"""Ewald summation of the ion-ion interaction energy.

Needed for meaningful total energies (the band-structure term alone is not
variational across geometries).  Standard split with automatic screening
parameter: real-space erfc sum + reciprocal Gaussian sum + self and
neutralizing-background corrections.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erfc

from repro.atoms.elements import get_element
from repro.pw.cell import UnitCell


def ewald_energy(cell: UnitCell, *, eta: float | None = None, tol: float = 1e-10) -> float:
    """Ion-ion electrostatic energy of the valence point charges (Hartree).

    Parameters
    ----------
    eta:
        Ewald screening parameter; chosen automatically from the cell volume
        when omitted.
    tol:
        Target truncation error for both lattice sums.
    """
    charges = np.array([get_element(s).valence for s in cell.species], dtype=float)
    positions = cell.cartesian_positions
    lattice = cell.lattice
    recip = cell.reciprocal_lattice
    volume = cell.volume
    n_atoms = cell.n_atoms
    if n_atoms == 0:
        return 0.0

    if eta is None:
        # Balance real/reciprocal work: eta ~ sqrt(pi) * (n/V^2)^(1/6).
        eta = np.sqrt(np.pi) * (n_atoms / volume**2) ** (1.0 / 6.0)

    # Truncation radii from the Gaussian tails.
    r_cut = np.sqrt(-np.log(tol)) / eta
    g_cut = 2.0 * eta * np.sqrt(-np.log(tol))

    # --- real-space sum over images --------------------------------------
    inv_lengths = np.linalg.norm(np.linalg.inv(lattice), axis=0)
    n_max = np.ceil(r_cut * inv_lengths).astype(int)
    shifts = np.array(
        [
            [i, j, k]
            for i in range(-n_max[0], n_max[0] + 1)
            for j in range(-n_max[1], n_max[1] + 1)
            for k in range(-n_max[2], n_max[2] + 1)
        ],
        dtype=float,
    )
    images = shifts @ lattice  # (n_images, 3)

    e_real = 0.0
    for a in range(n_atoms):
        deltas = positions[a] - positions  # (n_atoms, 3)
        # (n_images, n_atoms) distances
        d = np.linalg.norm(deltas[None, :, :] + images[:, None, :], axis=2)
        mask = (d > 1e-10) & (d < r_cut)
        contrib = np.zeros_like(d)
        contrib[mask] = erfc(eta * d[mask]) / d[mask]
        e_real += 0.5 * charges[a] * float((charges[None, :] * contrib).sum())

    # --- reciprocal-space sum --------------------------------------------
    lengths_recip = np.linalg.norm(recip, axis=1)
    m_max = np.ceil(g_cut / lengths_recip).astype(int)
    ms = np.array(
        [
            [i, j, k]
            for i in range(-m_max[0], m_max[0] + 1)
            for j in range(-m_max[1], m_max[1] + 1)
            for k in range(-m_max[2], m_max[2] + 1)
            if (i, j, k) != (0, 0, 0)
        ],
        dtype=float,
    )
    g = ms @ recip
    g2 = np.einsum("ij,ij->i", g, g)
    keep = g2 < g_cut * g_cut
    g, g2 = g[keep], g2[keep]
    phases = g @ positions.T  # (n_g, n_atoms)
    structure = (charges[None, :] * np.exp(1j * phases)).sum(axis=1)
    e_recip = (
        (2.0 * np.pi / volume)
        * float(
            (np.exp(-g2 / (4.0 * eta * eta)) / g2 * np.abs(structure) ** 2).sum()
        )
    )

    # --- corrections -------------------------------------------------------
    e_self = -eta / np.sqrt(np.pi) * float((charges * charges).sum())
    e_background = -np.pi / (2.0 * eta * eta * volume) * float(charges.sum()) ** 2

    return e_real + e_recip + e_self + e_background
