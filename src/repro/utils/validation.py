"""Small argument-validation helpers used across the library.

Raising early with a precise message is cheaper than debugging a shape error
three GEMMs downstream.
"""

from __future__ import annotations

import numpy as np


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive(value: float | int, name: str) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_shape(array: np.ndarray, shape: tuple[int, ...], name: str) -> None:
    """Require an exact shape; ``-1`` entries match any extent."""
    if array.ndim != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got shape {array.shape}"
        )
    for got, want in zip(array.shape, shape):
        if want != -1 and got != want:
            raise ValueError(f"{name} must have shape {shape}, got {array.shape}")


def check_square(matrix: np.ndarray, name: str) -> None:
    """Require a square 2-D array."""
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"{name} must be square, got shape {matrix.shape}")
