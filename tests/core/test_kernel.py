"""Tests for the f_Hxc kernel operator."""

import numpy as np
import pytest

from repro.core import HxcKernel
from repro.dft.hartree import hartree_potential
from repro.dft.xc import lda_kernel
from repro.pw import PlaneWaveBasis, UnitCell
from repro.utils.rng import default_rng


@pytest.fixture(scope="module")
def basis():
    return PlaneWaveBasis(UnitCell.cubic(9.0), ecut=6.0)


@pytest.fixture(scope="module")
def density(basis):
    rng = default_rng(0)
    n = rng.random(basis.n_r) + 0.1
    return n


def test_apply_is_hartree_plus_fxc(basis, density):
    rng = default_rng(1)
    field = rng.standard_normal(basis.n_r)
    kernel = HxcKernel(basis, density)
    expected = hartree_potential(field, basis) + lda_kernel(density) * field
    np.testing.assert_allclose(kernel.apply(field), expected, atol=1e-12)


def test_hartree_only_mode(basis, density):
    rng = default_rng(2)
    field = rng.standard_normal(basis.n_r)
    kernel = HxcKernel(basis, density, include_xc=False)
    np.testing.assert_allclose(
        kernel.apply(field), hartree_potential(field, basis), atol=1e-12
    )
    assert kernel.fxc_diagonal is None


def test_xc_only_mode(basis, density):
    rng = default_rng(3)
    field = rng.standard_normal(basis.n_r)
    kernel = HxcKernel(basis, density, include_hartree=False)
    np.testing.assert_allclose(kernel.apply(field), lda_kernel(density) * field)


def test_symmetric_operator(basis, density):
    """<a|f_Hxc|b> = <b|f_Hxc|a> for real fields."""
    rng = default_rng(4)
    a = rng.standard_normal(basis.n_r)
    b = rng.standard_normal(basis.n_r)
    kernel = HxcKernel(basis, density)
    lhs = (a * kernel.apply(b)).sum()
    rhs = (b * kernel.apply(a)).sum()
    assert lhs == pytest.approx(rhs)


def test_matrix_elements_symmetry(basis, density):
    rng = default_rng(5)
    fields = rng.standard_normal((4, basis.n_r))
    kernel = HxcKernel(basis, density)
    m = kernel.matrix_elements(fields, fields)
    np.testing.assert_allclose(m, m.T, atol=1e-12)


def test_hartree_part_is_positive_semidefinite(basis, density):
    """The Coulomb kernel alone must be PSD on zero-mean fields."""
    rng = default_rng(6)
    fields = rng.standard_normal((6, basis.n_r))
    kernel = HxcKernel(basis, density, include_xc=False)
    m = kernel.matrix_elements(fields, fields)
    evals = np.linalg.eigvalsh(0.5 * (m + m.T))
    assert evals.min() > -1e-10


def test_batched_apply(basis, density):
    rng = default_rng(7)
    fields = rng.standard_normal((3, basis.n_r))
    kernel = HxcKernel(basis, density)
    batched = kernel.apply(fields)
    for i in range(3):
        np.testing.assert_allclose(batched[i], kernel.apply(fields[i]), atol=1e-12)


def test_density_shape_validated(basis):
    with pytest.raises(ValueError, match="density"):
        HxcKernel(basis, np.zeros(10))
