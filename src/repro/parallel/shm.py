"""Named shared-memory slabs for the process-per-rank SPMD backend.

The process backend moves bulk arrays between ranks through POSIX shared
memory (``multiprocessing.shared_memory``) instead of pickled pipe
payloads: a sender writes array bytes into its :class:`SharedSlab` once,
receivers map the same segment and read through zero-copy numpy views.
Only a tiny descriptor (segment generation, offset, shape, dtype) crosses
a pipe.

Lifecycle discipline — the part that goes wrong in real codebases — is
centralized here:

* every segment name carries the run id (``reprospmd_<runid>_...``), so a
  whole run's segments are enumerable,
* each creating process tracks its segments in a :class:`SlabRegistry`
  and reaps them on normal exit *and* on abort (the fault injector kills
  ranks with exceptions, so ``finally`` blocks run),
* the parent executor calls :func:`reap_run_segments` after every run as
  a second line of defense: any segment a dying rank left behind is
  unlinked by scanning ``/dev/shm`` for the run prefix.  A kill mid-
  collective therefore leaves no residue (regression-tested).

Attaching registers nothing with the stdlib resource tracker (which would
otherwise double-unlink and warn); see :meth:`SharedSlab.attach`.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np

from repro.utils.hot import array_contract
from repro.utils.validation import require

__all__ = [
    "SharedSlab",
    "SlabArena",
    "SlabRegistry",
    "list_run_segments",
    "reap_run_segments",
    "run_prefix",
    "segment_name",
]

#: Global prefix for every segment this package creates.
_PREFIX = "reprospmd"

#: Where POSIX shared memory is mounted on Linux (used by the reaper).
_SHM_DIR = "/dev/shm"

#: Payload offsets are aligned for safe/efficient typed views.
ALIGNMENT = 64


def run_prefix(run_id: str) -> str:
    """Name prefix shared by every segment of one SPMD run."""
    return f"{_PREFIX}_{run_id}_"


def segment_name(run_id: str, rank: int, kind: str, gen: int = 0) -> str:
    """Deterministic segment name: run id, owning rank, role, generation."""
    return f"{run_prefix(run_id)}r{rank}_{kind}{gen}"


def align(nbytes: int) -> int:
    """Round ``nbytes`` up to the slab alignment."""
    return (int(nbytes) + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


class SharedSlab:
    """One named shared-memory segment with numpy view access.

    Create with :meth:`create` (owner) or :meth:`attach` (peer).  The
    owner should eventually :meth:`unlink`; every holder should
    :meth:`close`.  Views returned by :meth:`view` alias the mapping —
    they are invalidated by :meth:`close`, so callers either consume them
    before closing or copy.
    """

    def __init__(self, segment: shared_memory.SharedMemory, *, owner: bool) -> None:
        self._segment = segment
        self.owner = owner
        self.closed = False
        self.unlinked = False

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, name: str, nbytes: int) -> "SharedSlab":
        require(nbytes > 0, f"slab size must be positive, got {nbytes}")
        return cls(
            shared_memory.SharedMemory(name=name, create=True, size=int(nbytes)),
            owner=True,
        )

    @classmethod
    def attach(cls, name: str) -> "SharedSlab":
        """Map an existing segment without registering as its owner.

        The stdlib resource tracker would otherwise unlink the segment
        again when *this* process exits, racing the owner and printing
        leak warnings; Python 3.13 grew ``track=False`` for exactly this.
        Older versions need the registration call suppressed for the
        duration of the attach: sending ``unregister`` *after* attaching
        (the widely-copied workaround) is wrong with several processes
        sharing one tracker — the tracker's cache is a per-name set, so
        an attacher's unregister silently consumes the owner's
        registration and the owner's eventual unlink then logs a tracker
        ``KeyError``.
        """
        try:
            segment = shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
        except TypeError:  # Python < 3.13
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register
            resource_tracker.register = lambda *a, **k: None  # type: ignore[assignment]
            try:
                segment = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original_register  # type: ignore[assignment]
        return cls(segment, owner=False)

    # -- access --------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def size(self) -> int:
        return self._segment.size

    @property
    def buf(self) -> memoryview:
        return self._segment.buf

    @array_contract(returns={"contiguous": True})
    def view(self, shape, dtype, offset: int = 0) -> np.ndarray:
        """Zero-copy numpy view of ``shape``/``dtype`` at ``offset``."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        require(
            offset + nbytes <= self.size,
            f"view [{offset}, {offset + nbytes}) exceeds slab {self.name} "
            f"of {self.size} bytes",
        )
        return np.ndarray(shape, dtype=dtype, buffer=self._segment.buf, offset=offset)

    @array_contract(shapes={"data": "any"}, contiguous=("data",))
    def write(self, data: bytes | memoryview | np.ndarray, offset: int = 0) -> int:
        """Copy raw bytes into the slab; returns the byte count written.

        Array payloads should arrive C-contiguous (the publish paths stage
        them); the defensive ``ascontiguousarray`` below only protects
        direct callers outside the hot exchange."""
        if isinstance(data, np.ndarray):
            data = np.ascontiguousarray(data).view(np.uint8).reshape(-1).data
        nbytes = len(data)
        require(offset + nbytes <= self.size, f"write exceeds slab {self.name}")
        self._segment.buf[offset : offset + nbytes] = bytes(data) if not isinstance(
            data, (bytes, memoryview)
        ) else data
        return nbytes

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._segment.close()

    def unlink(self) -> None:
        """Remove the name; safe to call twice or on an already-reaped slab."""
        if self.unlinked:
            return
        self.unlinked = True
        try:
            self._segment.unlink()
        except FileNotFoundError:  # already reaped by the parent's leak guard
            pass

    def __enter__(self) -> "SharedSlab":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self.owner:
            self.unlink()


class SlabRegistry:
    """Per-process bookkeeping of owned and attached slabs.

    ``cleanup()`` is idempotent and exception-safe: it closes every
    attachment and unlinks every owned segment, tolerating segments the
    parent reaper already removed.
    """

    def __init__(self) -> None:
        self._owned: dict[str, SharedSlab] = {}
        self._attached: dict[str, SharedSlab] = {}

    def create(self, name: str, nbytes: int) -> SharedSlab:
        slab = SharedSlab.create(name, nbytes)
        self._owned[name] = slab
        return slab

    def attach(self, name: str) -> SharedSlab:
        slab = self._attached.get(name)
        if slab is None:
            slab = SharedSlab.attach(name)
            self._attached[name] = slab
        return slab

    def release(self, name: str) -> None:
        """Close (and for owned segments unlink) one slab by name."""
        slab = self._attached.pop(name, None)
        if slab is not None:
            slab.close()
        slab = self._owned.pop(name, None)
        if slab is not None:
            slab.close()
            slab.unlink()

    @property
    def owned_names(self) -> list[str]:
        return sorted(self._owned)

    def cleanup(self) -> None:
        for slab in self._attached.values():
            slab.close()
        self._attached.clear()
        for slab in self._owned.values():
            slab.close()
            slab.unlink()
        self._owned.clear()


class SlabArena:
    """Grow-only bump allocator over generations of shared segments.

    Asynchronous reduces (:meth:`Communicator.ireduce`) write each
    contribution at a fresh offset, so a consumer may read long after the
    producer moved on — nothing is overwritten within a run.  When the
    current segment is full a new *generation* is created (the old one
    stays mapped and valid for readers that still hold references to it);
    regions are addressed as ``(generation name, offset)``.
    """

    def __init__(
        self,
        registry: SlabRegistry,
        run_id: str,
        rank: int,
        kind: str,
        *,
        min_bytes: int = 1 << 20,
    ) -> None:
        self._registry = registry
        self._run_id = run_id
        self._rank = rank
        self._kind = kind
        self._min_bytes = min_bytes
        self._gen = -1
        self._slab: SharedSlab | None = None
        self._cursor = 0

    def _grow(self, nbytes: int) -> None:
        self._gen += 1
        size = max(self._min_bytes, align(nbytes) * 2)
        name = segment_name(self._run_id, self._rank, self._kind, self._gen)
        self._slab = self._registry.create(name, size)
        self._cursor = 0

    @array_contract(shapes={"arr": "any"})
    def write_array(self, arr: np.ndarray) -> tuple[str, int]:
        """Copy ``arr``'s bytes in; returns ``(segment name, offset)``."""
        arr = np.ascontiguousarray(arr)
        if self._slab is None or self._cursor + arr.nbytes > self._slab.size:
            self._grow(arr.nbytes)
        assert self._slab is not None
        offset = self._cursor
        if arr.nbytes:
            self._slab.write(arr, offset)
        self._cursor = align(offset + arr.nbytes)
        return self._slab.name, offset


# -- run-level leak guard ----------------------------------------------------


def list_run_segments(run_id: str) -> list[str]:
    """Names of this run's segments still present in ``/dev/shm``."""
    prefix = run_prefix(run_id)
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(prefix))


def reap_run_segments(run_id: str) -> list[str]:
    """Unlink every leftover segment of one run; returns the reaped names.

    Called by the parent executor after every process-backend run.  On a
    clean run the workers already unlinked their segments and this is a
    no-op; after a killed rank it removes whatever the dying process left
    mapped, so ``/dev/shm`` carries no residue into the resilient retry.
    """
    reaped = []
    for name in list_run_segments(run_id):
        try:
            os.unlink(os.path.join(_SHM_DIR, name))
        except OSError:
            continue
        reaped.append(name)
    return reaped
