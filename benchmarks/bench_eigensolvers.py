"""Eigensolver comparison on the LR-TDDFT operator (Section 4.3 context).

LOBPCG (the paper's choice), block Davidson (its classic competitor, paper
ref [8]) and the dense SYEVD stand-in, all extracting the lowest
excitations of the same ISDF-compressed Casida operator.
"""

import numpy as np
import pytest

from repro.core import HxcKernel, ImplicitCasidaOperator, isdf_decompose
from repro.eigen import davidson, dense_lowest, lobpcg
from repro.utils.rng import default_rng


@pytest.fixture(scope="module")
def operator(si8_state):
    gs = si8_state
    psi_v, eps_v, psi_c, eps_c = gs.select_transition_space()
    kernel = HxcKernel(gs.basis, gs.density)
    isdf = isdf_decompose(
        psi_v, psi_c, 80, method="kmeans",
        grid_points=gs.basis.grid.cartesian_points, rng=default_rng(0),
    )
    op = ImplicitCasidaOperator(isdf, eps_v, eps_c, kernel)
    x0 = default_rng(1).standard_normal((op.n_pairs, 8))
    return op, x0


def test_bench_lobpcg(benchmark, operator):
    op, x0 = operator
    res = benchmark(
        lambda: lobpcg(
            op.apply, x0, preconditioner=op.preconditioner,
            tol=1e-8, max_iter=400,
        )
    )
    assert res.converged


def test_bench_davidson(benchmark, operator):
    op, x0 = operator
    diag = op.diagonal()
    res = benchmark(
        lambda: davidson(op.apply, x0, diag, tol=1e-8, max_iter=400)
    )
    assert res.converged


def test_bench_dense(benchmark, operator):
    op, x0 = operator
    h = op.materialize()
    benchmark(lambda: dense_lowest(h, 8))


def test_solvers_agree(benchmark, operator, save_table):
    op, x0 = operator
    res_l = benchmark.pedantic(
        lambda: lobpcg(
            op.apply, x0, preconditioner=op.preconditioner,
            tol=1e-9, max_iter=400,
        ),
        rounds=1, iterations=1,
    )
    res_d = davidson(op.apply, x0, op.diagonal(), tol=1e-9, max_iter=400)
    ref, _ = dense_lowest(op.materialize(), 8)
    lines = [
        "Eigensolver agreement on the implicit Casida operator",
        "",
        f"LOBPCG:   {res_l.iterations:4d} iterations, "
        f"max |err| vs dense = {np.abs(res_l.eigenvalues - ref).max():.2e}",
        f"Davidson: {res_d.iterations:4d} iterations, "
        f"max |err| vs dense = {np.abs(res_d.eigenvalues - ref).max():.2e}",
    ]
    save_table("eigensolver_agreement", "\n".join(lines))
    np.testing.assert_allclose(res_l.eigenvalues, ref, atol=1e-7)
    np.testing.assert_allclose(res_d.eigenvalues, ref, atol=1e-7)
