"""Tests for argument validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import check_positive, check_shape, check_square, require


def test_require_passes_on_true():
    require(True, "never raised")


def test_require_raises_with_message():
    with pytest.raises(ValueError, match="broken thing"):
        require(False, "broken thing")


@pytest.mark.parametrize("value", [1, 0.5, 1e-300])
def test_check_positive_accepts(value):
    check_positive(value, "x")


@pytest.mark.parametrize("value", [0, -1, -0.5])
def test_check_positive_rejects(value):
    with pytest.raises(ValueError, match="x must be positive"):
        check_positive(value, "x")


def test_check_shape_exact_match():
    check_shape(np.zeros((3, 4)), (3, 4), "a")


def test_check_shape_wildcard():
    check_shape(np.zeros((7, 4)), (-1, 4), "a")


def test_check_shape_wrong_ndim():
    with pytest.raises(ValueError, match="dimensions"):
        check_shape(np.zeros(3), (3, 1), "a")


def test_check_shape_wrong_extent():
    with pytest.raises(ValueError, match="shape"):
        check_shape(np.zeros((3, 5)), (3, 4), "a")


def test_check_square_accepts_square():
    check_square(np.eye(3), "m")


@pytest.mark.parametrize("shape", [(3, 4), (3,), (2, 2, 2)])
def test_check_square_rejects(shape):
    with pytest.raises(ValueError, match="square"):
        check_square(np.zeros(shape), "m")
