"""Measured A/B comparison of the pluggable compute backends.

Two hot paths, benchmarked at (a scaled-down analogue of) the paper's
Figure-8 workload and emitted as a machine-readable report
(``BENCH_backend.json``):

* **batch-FFT Coulomb apply** — :meth:`HxcKernel.apply` on a block of real
  fields (lines 4-5 of Algorithm 1), numpy reference engine vs the scipy
  engine with its multi-worker pocketfft + rfftn real fast path,
* **K-Means point selection** — the naive full-classification Lloyd loop
  vs the bound-pruned Hamerly loop of :func:`repro.core.kmeans.weighted_kmeans`.

Both comparisons double as equivalence checks: the FFT outputs must agree
to 1e-10 and the K-Means labels/inertia must be bit-identical, so a
backend numerics regression fails the smoke run loudly before any
benchmark number is believed.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Callable

import numpy as np

from repro.backend import (
    ScipyFFTEngine,
    available_backends,
    reset_default_fft_backend,
    set_default_fft_backend,
)
from repro.core.kernel import HxcKernel
from repro.core.kmeans import weighted_kmeans
from repro.pw import PlaneWaveBasis, RealSpaceGrid, UnitCell
from repro.utils.timers import TimerRegistry


def _time_best(fn: Callable[[], object], repeats: int) -> tuple[float, object]:
    """Best-of-``repeats`` wall time after one untimed warmup call."""
    result = fn()  # warmup (also the returned payload)
    best = np.inf
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def blas_info() -> dict:
    """BLAS vendor / version / threading facts for benchmark ``meta`` blocks.

    GEMM-heavy numbers are meaningless without knowing which BLAS ran them
    and on how many threads, so every measured report embeds this.  Works
    from numpy's build metadata alone; ``threadpoolctl`` (optional) adds
    the *live* per-pool thread counts when present.
    """
    import os

    info: dict = {
        "cpu_count": os.cpu_count(),
        "omp_num_threads": os.environ.get("OMP_NUM_THREADS"),
        "openblas_num_threads": os.environ.get("OPENBLAS_NUM_THREADS"),
        "vendor": None,
        "version": None,
    }
    try:
        config = np.show_config(mode="dicts") or {}
        blas = (config.get("Build Dependencies") or {}).get("blas") or {}
        info["vendor"] = blas.get("name")
        info["version"] = blas.get("version")
        configuration = blas.get("openblas configuration")
        if configuration:
            info["configuration"] = str(configuration)
    except (TypeError, AttributeError, ValueError):
        pass  # older numpy without mode="dicts" — vendor stays None
    try:
        import threadpoolctl

        info["threadpools"] = [
            {
                "api": pool.get("internal_api"),
                "version": pool.get("version"),
                "num_threads": pool.get("num_threads"),
            }
            for pool in threadpoolctl.threadpool_info()
        ]
    except ImportError:
        info["threadpools"] = None
    return info


# -- batch-FFT Coulomb apply ------------------------------------------------


def bench_fft_coulomb(
    *,
    box: float = 10.0,
    ecut: float = 114.0,
    batch: int = 24,
    repeats: int = 3,
    seed: int = 7,
) -> dict:
    """Time ``HxcKernel.apply`` on a batch of real fields per FFT backend.

    The defaults give a 50^3 grid — the same order as one rank's slab of
    the paper's Si_1000 Figure-8 run — with a 24-field batch standing in
    for one LOBPCG block of pair densities.
    """
    basis = PlaneWaveBasis(UnitCell.cubic(box), ecut)
    rng = np.random.default_rng(seed)
    density = 0.05 + 0.01 * rng.random(basis.n_r)
    kernel = HxcKernel(basis, density)
    fields = rng.standard_normal((batch, basis.n_r))

    backends: dict[str, dict] = {}
    outputs: dict[str, np.ndarray] = {}
    try:
        for name in available_backends():
            engine = set_default_fft_backend(name)
            seconds, out = _time_best(lambda: kernel.apply(fields), repeats)
            backends[name] = {
                "seconds_per_apply": seconds,
                "workers": engine.workers,
                "real_fast_path": engine.supports_real,
            }
            outputs[name] = np.asarray(out)
    finally:
        reset_default_fft_backend()

    report: dict = {
        "workload": {
            "grid": list(basis.grid.shape),
            "n_r": basis.n_r,
            "batch": batch,
            "repeats": repeats,
            "transforms_per_apply": 2 * batch,
        },
        "backends": backends,
    }
    if "scipy" in backends:
        ref, opt = outputs["numpy"], outputs["scipy"]
        scale = float(np.abs(ref).max()) or 1.0
        max_abs = float(np.abs(ref - opt).max())
        report["speedup"] = (
            backends["numpy"]["seconds_per_apply"]
            / backends["scipy"]["seconds_per_apply"]
        )
        report["max_abs_diff"] = max_abs
        report["max_rel_diff"] = max_abs / scale
        report["within_1e-10"] = bool(max_abs / scale < 1e-10)
    return report


# -- K-Means point selection ------------------------------------------------


def _figure8_like_weights(
    grid: RealSpaceGrid, n_bumps: int, seed: int
) -> np.ndarray:
    """Synthetic pair weights: a sum of Gaussian orbital-density bumps.

    Mimics the numerically sparse ``w(r)`` of Eq. 14 (localized mass around
    atomic sites, near-zero elsewhere) without the cost of an SCF at
    benchmark scale.
    """
    rng = np.random.default_rng(seed)
    points = grid.cartesian_points
    lengths = grid.cell.lengths
    centers = rng.random((n_bumps, 3)) * lengths
    sigma = float(lengths.min()) / 12.0
    w = np.zeros(points.shape[0])
    for c in centers:
        delta = points - c
        # Minimum-image so bumps wrap like periodic orbital densities.
        delta -= np.round(delta / lengths) * lengths
        w += np.exp(-np.einsum("ij,ij->i", delta, delta) / (2.0 * sigma**2))
    return w * w  # squared, like the product of two densities


def bench_kmeans_selection(
    *,
    shape: tuple[int, int, int] = (40, 40, 40),
    box: float = 20.0,
    n_clusters: int = 196,
    n_bumps: int = 48,
    prune_threshold: float = 1e-6,
    max_iter: int = 300,
    tol: float = 0.0,
    repeats: int = 2,
    seed: int = 13,
) -> dict:
    """Naive Lloyd vs bound-pruned Hamerly on a Figure-8-sized candidate set.

    ``max_iter`` defaults high enough that the full workload actually
    converges (the shipped report's numbers are then end-to-end times of
    a *finished* clustering, not of an arbitrary iteration cap); both are
    surfaced as ``repro bench-backend --kmeans-max-iter/--kmeans-tol``.
    """
    grid = RealSpaceGrid(UnitCell.cubic(box), shape)
    weights_full = _figure8_like_weights(grid, n_bumps, seed)
    keep = np.flatnonzero(weights_full >= prune_threshold * weights_full.max())
    points = grid.cartesian_points[keep]
    weights = weights_full[keep]

    results: dict[str, tuple] = {}
    algorithms: dict[str, dict] = {}
    for algorithm in ("lloyd", "hamerly"):
        seconds, res = _time_best(
            lambda algorithm=algorithm: weighted_kmeans(
                points, weights, n_clusters,
                init="greedy-weight", max_iter=max_iter, tol=tol,
                algorithm=algorithm,
            ),
            repeats,
        )
        results[algorithm] = res
        algorithms[algorithm] = {
            "seconds": seconds,
            "n_iter": int(res[3]),
            "converged": bool(res[4]),
        }

    lloyd, hamerly = results["lloyd"], results["hamerly"]
    return {
        "workload": {
            "grid": list(shape),
            "n_candidates": int(points.shape[0]),
            "n_clusters": n_clusters,
            "prune_threshold": prune_threshold,
            "max_iter": max_iter,
            "tol": tol,
            "repeats": repeats,
        },
        "algorithms": algorithms,
        "speedup": algorithms["lloyd"]["seconds"] / algorithms["hamerly"]["seconds"],
        "labels_identical": bool(np.array_equal(lloyd[1], hamerly[1])),
        "inertia_identical": bool(lloyd[2] == hamerly[2]),
        "centroids_identical": bool(np.array_equal(lloyd[0], hamerly[0])),
    }


# -- observability spot check ----------------------------------------------


def _phase_metrics_sample(*, box: float, ecut: float, batch: int, seed: int) -> dict:
    """Exercise the counter-instrumented kernel once and report its metrics."""
    basis = PlaneWaveBasis(UnitCell.cubic(box), ecut)
    rng = np.random.default_rng(seed)
    density = 0.05 + 0.01 * rng.random(basis.n_r)
    timers = TimerRegistry(track_allocations=True)
    kernel = HxcKernel(basis, density, timers=timers)
    fields = rng.standard_normal((batch, basis.n_r))
    kernel.apply(fields)
    kernel.apply(fields)  # second call shows steady-state allocation
    return timers.metrics()


# -- top-level driver -------------------------------------------------------


def run_backend_bench(
    *,
    smoke: bool = False,
    kmeans_max_iter: int | None = None,
    kmeans_tol: float | None = None,
) -> dict:
    """Full (or smoke-sized) backend comparison, as a JSON-ready dict."""
    km_kwargs: dict = {}
    if kmeans_max_iter is not None:
        km_kwargs["max_iter"] = kmeans_max_iter
    if kmeans_tol is not None:
        km_kwargs["tol"] = kmeans_tol
    if smoke:
        fft = bench_fft_coulomb(box=6.0, ecut=35.0, batch=4, repeats=1)
        kmeans = bench_kmeans_selection(
            shape=(16, 16, 16), box=8.0, n_clusters=24, n_bumps=12, repeats=1,
            **km_kwargs,
        )
        metrics = _phase_metrics_sample(box=6.0, ecut=35.0, batch=4, seed=7)
    else:
        fft = bench_fft_coulomb()
        kmeans = bench_kmeans_selection(**km_kwargs)
        metrics = _phase_metrics_sample(box=10.0, ecut=114.0, batch=24, seed=7)
    return {
        "meta": {
            "mode": "smoke" if smoke else "full",
            "python": platform.python_version(),
            "numpy": np.__version__,
            "blas": blas_info(),
            "fft_backends": list(available_backends()),
            "cpu_count": __import__("os").cpu_count(),
            "scipy_workers": (
                ScipyFFTEngine().workers
                if "scipy" in available_backends()
                else None
            ),
        },
        "fft_coulomb_apply": fft,
        "kmeans_selection": kmeans,
        "phase_metrics": metrics,
    }


def format_summary(report: dict) -> str:
    """Terse human-readable digest of :func:`run_backend_bench` output."""
    fft = report["fft_coulomb_apply"]
    km = report["kmeans_selection"]
    lines = [f"backend bench ({report['meta']['mode']} mode)"]
    for name, stats in fft["backends"].items():
        lines.append(
            f"  fft[{name:<5s}]  {stats['seconds_per_apply'] * 1e3:9.2f} ms/apply"
            f"  (workers={stats['workers']}, rfft={stats['real_fast_path']})"
        )
    if "speedup" in fft:
        lines.append(
            f"  fft speedup {fft['speedup']:.2f}x  "
            f"(max rel diff {fft['max_rel_diff']:.2e}, "
            f"ok={fft['within_1e-10']})"
        )
    for name, stats in km["algorithms"].items():
        lines.append(
            f"  kmeans[{name:<7s}] {stats['seconds'] * 1e3:9.2f} ms"
            f"  ({stats['n_iter']} iter, converged={stats['converged']})"
        )
    lines.append(
        f"  kmeans speedup {km['speedup']:.2f}x  "
        f"(labels_identical={km['labels_identical']}, "
        f"inertia_identical={km['inertia_identical']})"
    )
    unconverged = [
        name
        for name, stats in km["algorithms"].items()
        if not stats["converged"]
    ]
    if unconverged:
        cap = km["workload"].get("max_iter", "?")
        lines.append(
            f"  WARNING: kmeans did not converge within max_iter={cap} "
            f"({', '.join(unconverged)}) — timings compare truncated runs, "
            "not finished clusterings; raise --kmeans-max-iter"
        )
    return "\n".join(lines)


def write_report(report: dict, path) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
