"""The job queue: tenant fairness, in-tenant priority, bounded admission.

Scheduling model:

* each *tenant* (a named submitter — a user, a pipeline, a CI lane) owns
  its own sub-queue, ordered by ``priority`` (lower runs sooner) and FIFO
  among equals;
* workers drain tenants **round-robin**, so one tenant queueing a thousand
  jobs cannot starve another's single job — the wait to first service is
  bounded by the number of active tenants, not the queue depth;
* admission control is explicit and machine-readable: a full queue or an
  over-quota tenant raises :class:`AdmissionError` with a ``reason`` of
  ``"queue_full"`` or ``"tenant_quota"`` — the server never silently
  drops or unboundedly buffers work.
"""

from __future__ import annotations

import heapq
import threading
from collections import OrderedDict

__all__ = ["AdmissionError", "JobQueue"]


class AdmissionError(RuntimeError):
    """A submission the queue refused to accept.

    Attributes
    ----------
    reason:
        Machine-readable cause: ``"queue_full"`` (total depth bound hit)
        or ``"tenant_quota"`` (this tenant's bound hit).
    """

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason


class JobQueue:
    """Bounded multi-tenant priority queue with round-robin fairness.

    Parameters
    ----------
    max_depth:
        Total queued-item bound across all tenants.
    max_per_tenant:
        Per-tenant bound; ``None`` leaves only the total bound.

    Notes
    -----
    Thread-safe.  :meth:`pop` blocks (optionally with timeout) until an
    item is available or the queue is closed; a closed queue pops ``None``
    immediately and rejects new pushes with reason ``"closed"``.
    """

    def __init__(self, max_depth: int = 64, max_per_tenant: int | None = None):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if max_per_tenant is not None and max_per_tenant < 1:
            raise ValueError(
                f"max_per_tenant must be >= 1 or None, got {max_per_tenant}"
            )
        self.max_depth = int(max_depth)
        self.max_per_tenant = max_per_tenant
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        # tenant -> heap of (priority, seq, item); OrderedDict preserves
        # round-robin rotation order (first-seen first).
        self._tenants: "OrderedDict[str, list]" = OrderedDict()
        self._size = 0
        self._seq = 0
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def depth_of(self, tenant: str) -> int:
        """Queued items currently held by ``tenant``."""
        with self._lock:
            return len(self._tenants.get(tenant, ()))

    def push(self, item, *, tenant: str = "default", priority: int = 0) -> None:
        """Enqueue ``item``; raises :class:`AdmissionError` when refused."""
        with self._not_empty:
            if self._closed:
                raise AdmissionError("closed", "queue is closed")
            if self._size >= self.max_depth:
                raise AdmissionError(
                    "queue_full",
                    f"queue depth {self._size} is at the bound "
                    f"({self.max_depth}); retry later",
                )
            heap = self._tenants.get(tenant)
            if (
                self.max_per_tenant is not None
                and heap is not None
                and len(heap) >= self.max_per_tenant
            ):
                raise AdmissionError(
                    "tenant_quota",
                    f"tenant {tenant!r} already has {len(heap)} queued "
                    f"jobs (quota {self.max_per_tenant}); retry later",
                )
            if heap is None:
                heap = []
                self._tenants[tenant] = heap
            heapq.heappush(heap, (priority, self._seq, item))
            self._seq += 1
            self._size += 1
            self._not_empty.notify()

    def pop(self, timeout: float | None = None):
        """Next item under the fairness policy, or ``None`` on timeout/close.

        Round-robin: the serving tenant is moved to the back of the
        rotation, so consecutive pops alternate across tenants with queued
        work; within a tenant the lowest ``priority`` (FIFO among equals)
        pops first.
        """
        with self._not_empty:
            while self._size == 0:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None
            # First tenant in rotation with queued work serves next.
            for tenant, heap in self._tenants.items():
                if heap:
                    break
            _, _, item = heapq.heappop(heap)
            self._size -= 1
            # Rotate: served tenant goes to the back.
            self._tenants.move_to_end(tenant)
            if not heap:
                del self._tenants[tenant]
            return item

    def remove(self, match) -> bool:
        """Remove the first queued item with ``match(item)`` true.

        Used to cancel a queued job without executing it.  Returns whether
        anything was removed.
        """
        with self._lock:
            for tenant, heap in self._tenants.items():
                for i, (_, _, item) in enumerate(heap):
                    if match(item):
                        heap[i] = heap[-1]
                        heap.pop()
                        heapq.heapify(heap)
                        self._size -= 1
                        if not heap:
                            del self._tenants[tenant]
                        return True
        return False

    def close(self) -> None:
        """Refuse new work and wake every blocked :meth:`pop` with ``None``."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()
