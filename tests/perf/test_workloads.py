"""Tests for the silicon workload dimension generator."""

import pytest

from repro.perf import silicon_workload
from repro.perf.workloads import _grid_points_for_silicon


class TestGridRule:
    def test_si4096_matches_paper(self):
        """Section 6.1: N_r = 166^3 = 4,574,296 for Si_4096 at 20 Ha."""
        assert _grid_points_for_silicon(4096, 20.0) == 166**3 == 4574296

    def test_si1000_matches_paper(self):
        """Section 6.3: N_r = 104^3 = 1,124,864 for Si_1000 at 20 Ha."""
        assert _grid_points_for_silicon(1000, 20.0) == 104**3 == 1124864

    def test_grows_with_cutoff(self):
        assert _grid_points_for_silicon(64, 40.0) > _grid_points_for_silicon(64, 20.0)


class TestWorkload:
    def test_valence_counts(self):
        w = silicon_workload(64)
        assert w.n_v == 128  # 4 electrons/atom, 2 per band
        assert w.label == "Si64"

    def test_pair_count(self):
        w = silicon_workload(64)
        assert w.n_pairs == w.n_v * w.n_c

    def test_rank_clipped_to_pairs(self):
        w = silicon_workload(8, rank_factor=10**6)
        assert w.n_mu <= w.n_pairs

    def test_pruned_points(self):
        w = silicon_workload(64)
        assert 1 <= w.n_r_pruned <= w.n_r
        assert w.n_r_pruned == int(w.prune_fraction * w.n_r)

    def test_memory_naive_exceeds_implicit(self):
        w = silicon_workload(512)
        assert w.memory_naive_bytes() > 10 * w.memory_implicit_bytes()

    def test_memory_reduction_factor_paper_scale(self):
        """The paper claims ~2 orders of magnitude memory reduction at its
        nominal scaling (N_v ~ N_c ~ N_e, N_mu ~ 10 N_e)."""
        w = silicon_workload(1000)
        ratio = w.memory_naive_bytes() / w.memory_implicit_bytes()
        assert ratio > 100

    def test_invalid_atoms(self):
        with pytest.raises(ValueError):
            silicon_workload(0)
