"""The LR-TDDFT solver: all five versions of the paper's Table 4.

=====  =============================  =====================  ==================
 #     method string                  Hamiltonian            diagonalization
=====  =============================  =====================  ==================
 (1)   ``naive``                      explicit, exact        dense (SYEVD)
 (2)   ``qrcp-isdf``                  explicit, compressed   dense (SYEVD)
 (3)   ``kmeans-isdf``                explicit, compressed   dense (SYEVD)
 (4)   ``kmeans-isdf-lobpcg``         explicit, compressed   LOBPCG, lowest k
 (5)   ``implicit-kmeans-isdf-lobpcg`` never formed          LOBPCG, lowest k
=====  =============================  =====================  ==================

(plus the ``qrcp`` twins of (4)/(5) for ablations.)  Per-phase wall-clock is
collected in a :class:`~repro.utils.timers.TimerRegistry` so the benchmark
harness can print the paper's Figure 8-style breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.casida import build_casida_hamiltonian, solve_casida_dense
from repro.core.full_casida import (
    ImplicitFullCasidaOperator,
    build_full_casida_matrix,
    solve_full_casida_dense,
)
from repro.core.implicit import ImplicitCasidaOperator
from repro.core.isdf import ISDFDecomposition, default_rank, isdf_decompose
from repro.core.isdf_hamiltonian import build_isdf_hamiltonian
from repro.core.kernel import HxcKernel
from repro.core.pair_products import pair_energies
from repro.dft.groundstate import GroundState
from repro.eigen.davidson import davidson
from repro.eigen.lobpcg import lobpcg
from repro.precision import resolve_precision
from repro.utils.deprecation import warn_once
from repro.utils.rng import default_rng
from repro.utils.serialization import SerializableResult
from repro.utils.timers import TimerRegistry
from repro.utils.validation import require

#: Method strings accepted by :meth:`LRTDDFTSolver.solve`, in Table 4 order.
METHODS: tuple[str, ...] = (
    "naive",
    "qrcp-isdf",
    "kmeans-isdf",
    "kmeans-isdf-lobpcg",
    "implicit-kmeans-isdf-lobpcg",
    "qrcp-isdf-lobpcg",
    "implicit-qrcp-isdf-lobpcg",
    "kmeans-isdf-davidson",
    "implicit-kmeans-isdf-davidson",
)

#: Sentinel distinguishing "keyword not passed" from an explicit value, so
#: the legacy kwarg signature of :meth:`LRTDDFTSolver.solve` can be detected
#: (and deprecation-warned) without changing its behavior.
_UNSET = object()


@dataclass(frozen=True)
class TDDFTWarmStart:
    """Cross-calculation reuse state for :meth:`LRTDDFTSolver.solve`.

    Carried between nearby structures by :mod:`repro.batch`; every field
    is optional and ``None`` falls back to the cold path.

    Attributes
    ----------
    isdf_indices:
        Interpolation points reused verbatim (selection is skipped and only
        the least-squares fit re-runs).  Takes precedence over
        ``kmeans_centroids``.
    kmeans_centroids:
        Warm-start centroids for the K-Means selection — iteration counts
        collapse to the few steps needed to track the perturbation.
    x0:
        ``(N_cv, k)`` eigensolver starting block (the previous frame's
        converged excitation vectors).  Used only when the shape matches
        the requested solve; otherwise ignored.
    """

    isdf_indices: np.ndarray | None = None
    kmeans_centroids: np.ndarray | None = None
    x0: np.ndarray | None = None


@dataclass
class LRTDDFTResult(SerializableResult):
    """Excitation energies and wavefunction coefficients.

    Attributes
    ----------
    energies:
        ``(k,)`` lowest excitation energies (Hartree), ascending.
    wavefunctions:
        ``(N_cv, k)`` excitation coefficient vectors in pair ordering.
    method:
        Which Table 4 version produced the result.
    n_mu:
        ISDF rank used (None for the naive version).
    timings:
        Per-phase wall-clock seconds.
    isdf:
        The ISDF decomposition (None for naive) for post-hoc diagnostics.
    eigensolver_iterations:
        LOBPCG iterations (0 for dense solves).
    converged:
        Eigensolver convergence flag (dense solves are always True) — the
        facade's dense-fallback policy keys off this.
    """

    energies: np.ndarray
    wavefunctions: np.ndarray
    method: str
    n_mu: int | None
    timings: dict[str, float] = field(default_factory=dict)
    isdf: ISDFDecomposition | None = None
    eigensolver_iterations: int = 0
    converged: bool = True

    @property
    def n_excitations(self) -> int:
        return self.energies.shape[0]

    def to_dict(self) -> dict:
        return {
            "energies": self.energies,
            "wavefunctions": self.wavefunctions,
            "method": self.method,
            "n_mu": None if self.n_mu is None else int(self.n_mu),
            "timings": {k: float(v) for k, v in self.timings.items()},
            "isdf": None if self.isdf is None else self.isdf.to_dict(),
            "eigensolver_iterations": int(self.eigensolver_iterations),
            "converged": bool(self.converged),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LRTDDFTResult":
        isdf = data.get("isdf")
        return cls(
            energies=np.array(data["energies"]),
            wavefunctions=np.array(data["wavefunctions"]),
            method=str(data["method"]),
            n_mu=None if data.get("n_mu") is None else int(data["n_mu"]),
            timings=dict(data.get("timings") or {}),
            isdf=None if isdf is None else ISDFDecomposition.from_dict(isdf),
            eigensolver_iterations=int(data.get("eigensolver_iterations", 0)),
            converged=bool(data.get("converged", True)),
        )


class LRTDDFTSolver:
    """LR-TDDFT (Casida/TDA) on top of a converged :class:`GroundState`.

    Parameters
    ----------
    ground_state:
        Converged KS ground state with conduction bands.
    n_valence / n_conduction:
        Size of the transition space (defaults: everything available).
    include_xc:
        Toggle the ALDA kernel (False = RPA/Hartree-only; ablation).
    spin:
        ``"singlet"`` (default) or ``"triplet"`` — triplet response drops
        the Hartree term and uses the spin-flip kernel
        (:func:`repro.dft.xc_spin.lda_kernel_triplet`).
    precision:
        Initial precision tier (mode string or
        :class:`repro.precision.PrecisionConfig`) for the Hxc kernel and
        the ISDF pipeline.  When :meth:`solve` is called with a
        :class:`repro.api.TDDFTConfig`, the config's ``precision`` takes
        precedence (the kernel is rebuilt if the tier changed — cheap, the
        FFT plan cache is keyed by dtype).
    """

    def __init__(
        self,
        ground_state: GroundState,
        *,
        n_valence: int | None = None,
        n_conduction: int | None = None,
        include_xc: bool = True,
        spin: str = "singlet",
        seed: int | None = None,
        precision=None,
    ) -> None:
        self.ground_state = ground_state
        (self.psi_v, self.eps_v, self.psi_c, self.eps_c) = (
            ground_state.select_transition_space(n_valence, n_conduction)
        )
        self.basis = ground_state.basis
        self.spin = spin
        self._include_xc = include_xc
        self.precision = resolve_precision(precision)
        self.kernel = HxcKernel(
            self.basis, ground_state.density, include_xc=include_xc, spin=spin,
            precision=self.precision,
        )
        self._seed = seed
        self._warm: TDDFTWarmStart | None = None
        self._selection_fallback: str | None = None
        self._isdf_checkpoint = None
        self._lobpcg_checkpoint = None

    # -- sizes --------------------------------------------------------------

    @property
    def n_v(self) -> int:
        return self.psi_v.shape[0]

    @property
    def n_c(self) -> int:
        return self.psi_c.shape[0]

    @property
    def n_pairs(self) -> int:
        return self.n_v * self.n_c

    def default_n_mu(self, rank_factor: float = 10.0) -> int:
        return default_rank(self.n_v, self.n_c, self.basis.n_r, rank_factor)

    # -- solving --------------------------------------------------------------

    def solve(
        self,
        method="implicit-kmeans-isdf-lobpcg",
        *,
        n_excitations: int | None = _UNSET,
        n_mu: int | None = _UNSET,
        rank_factor: float = _UNSET,
        tol: float = _UNSET,
        max_iter: int = _UNSET,
        tda: bool = _UNSET,
        isdf_kwargs: dict | None = _UNSET,
        resilience=None,
        warm: TDDFTWarmStart | None = None,
        progress=None,
    ) -> LRTDDFTResult:
        """Solve for the lowest excitations with the chosen Table 4 version.

        Parameters
        ----------
        method:
            Either a :class:`repro.api.TDDFTConfig` (preferred) or a Table 4
            method string.  Passing the individual solver keywords alongside
            a method string is the legacy signature and emits a one-time
            ``DeprecationWarning`` — build a ``TDDFTConfig`` instead.
        n_excitations:
            How many lowest pairs to return.  Iterative versions default to
            ``min(10, N_cv)``; dense versions return the full spectrum when
            omitted.
        n_mu:
            ISDF rank override (default: :meth:`default_n_mu`).
        tol / max_iter:
            LOBPCG controls (iterative versions).
        tda:
            ``True`` (default) solves within the Tamm-Dancoff approximation
            (the paper's Eq. 2); ``False`` solves the *full* Casida problem
            of Eq. 1 via the Hermitian reduction (see
            :mod:`repro.core.full_casida`) — including a matrix-free
            implicit variant.
        resilience:
            Optional :class:`repro.api.ResilienceConfig`.  Enables the
            K-Means -> QRCP selection fallback and, when ``checkpoint_dir``
            is set, stage checkpoints for the ISDF pipeline (tag ``isdf``)
            and iteration snapshots for the LOBPCG solve (tag ``lobpcg``)
            with ``restart`` resuming both.
        warm:
            Optional :class:`TDDFTWarmStart` carrying interpolation points,
            K-Means centroids and an eigensolver starting block from a
            nearby converged solve; ``None`` (default) is the cold path,
            bit-identical to previous releases.
        progress:
            Optional per-iteration observer for the iterative eigensolve
            (LOBPCG versions): called with ``{"iteration": i,
            "eigenvalues": (...), "max_residual": r}`` after every
            Rayleigh-Ritz step — the partial-spectrum stream of the job
            server.  Dense and Davidson paths emit no events.
        """
        legacy = {
            k: v
            for k, v in {
                "n_excitations": n_excitations,
                "n_mu": n_mu,
                "rank_factor": rank_factor,
                "tol": tol,
                "max_iter": max_iter,
                "tda": tda,
                "isdf_kwargs": isdf_kwargs,
            }.items()
            if v is not _UNSET
        }
        if isinstance(method, str):
            if legacy:
                warn_once(
                    "LRTDDFTSolver.solve:kwargs",
                    "passing solver keywords to LRTDDFTSolver.solve() is "
                    "deprecated; build a repro.api.TDDFTConfig and call "
                    "solve(config) (or use repro.api.solve_tddft)",
                )
            n_excitations = legacy.get("n_excitations")
            n_mu = legacy.get("n_mu")
            rank_factor = legacy.get("rank_factor", 10.0)
            tol = legacy.get("tol", 1e-8)
            max_iter = legacy.get("max_iter", 400)
            tda = legacy.get("tda", True)
            isdf_kwargs = legacy.get("isdf_kwargs")
        else:
            require(
                not legacy,
                "solve(config) does not accept additional solver keywords; "
                f"set them on the config instead (got {sorted(legacy)})",
            )
            config = method
            method = config.method
            n_excitations = config.n_excitations
            n_mu = config.n_mu
            rank_factor = config.rank_factor
            tol = config.tol
            max_iter = config.max_iter
            tda = config.tda
            isdf_kwargs = None
            self._set_precision(getattr(config, "precision", None))
        require(method in METHODS, f"unknown method {method!r}; choose from {METHODS}")
        timers = TimerRegistry()
        isdf_kwargs = dict(isdf_kwargs or {})
        self._warm = warm
        self._progress = progress
        self._configure_resilience(resilience)
        # Fresh generator per solve: every method sees identical ISDF points
        # and starting blocks, so cross-version comparisons are exact.
        self._rng = default_rng(self._seed)

        if method == "naive":
            result = self._solve_naive(n_excitations, timers, tda)
        else:
            selection = "qrcp" if method.startswith(("qrcp", "implicit-qrcp")) else "kmeans"
            eigensolver = "davidson" if method.endswith("davidson") else "lobpcg"
            if "implicit" in method:
                result = self._solve_implicit(
                    selection, n_excitations, n_mu, rank_factor, tol, max_iter,
                    timers, isdf_kwargs, tda, eigensolver,
                )
            else:
                use_iterative = method.endswith(("lobpcg", "davidson"))
                result = self._solve_isdf_explicit(
                    selection, use_iterative, n_excitations, n_mu, rank_factor,
                    tol, max_iter, timers, isdf_kwargs, tda, eigensolver,
                )
        result.method = method
        result.timings = timers.as_dict()
        return result

    def _eigensolver_callback(self):
        """LOBPCG ``callback`` adapter for the solve's ``progress`` hook."""
        progress = getattr(self, "_progress", None)
        if progress is None:
            return None

        def callback(iteration, theta, residual_norms):
            progress(
                {
                    "iteration": int(iteration),
                    "eigenvalues": tuple(float(t) for t in theta),
                    "max_residual": float(residual_norms.max()),
                }
            )

        return callback

    def _set_precision(self, precision) -> None:
        """Adopt a new precision tier, rebuilding the Hxc kernel if needed.

        The rebuild is cheap: the Coulomb kernel and its FFT plan come from
        the process-wide plan cache, which is keyed by dtype, so flipping
        between tiers reuses previously built plans.
        """
        resolved = resolve_precision(precision)
        if resolved == self.precision:
            return
        self.precision = resolved
        self.kernel = HxcKernel(
            self.basis, self.ground_state.density,
            include_xc=self._include_xc, spin=self.spin, precision=resolved,
        )

    def _configure_resilience(self, resilience) -> None:
        """Translate a ResilienceConfig into the solver-side hooks."""
        self._selection_fallback = None
        self._isdf_checkpoint = None
        self._lobpcg_checkpoint = None
        if resilience is None:
            return
        self._selection_fallback = resilience.selection_fallback
        if resilience.checkpoint_dir:
            from repro.resilience.checkpoint import (
                CheckpointManager,
                LoopCheckpointer,
            )

            self._isdf_checkpoint = LoopCheckpointer(
                CheckpointManager(resilience.checkpoint_dir, tag="isdf"),
                restart=resilience.restart,
                keep_last=resilience.keep_last,
            )
            self._lobpcg_checkpoint = LoopCheckpointer(
                CheckpointManager(resilience.checkpoint_dir, tag="lobpcg"),
                every=resilience.checkpoint_every,
                restart=resilience.restart,
                keep_last=resilience.keep_last,
            )

    # -- version implementations ------------------------------------------------

    def _solve_naive(
        self, n_excitations: int | None, timers: TimerRegistry, tda: bool
    ) -> LRTDDFTResult:
        with timers.scope("hamiltonian"):
            if tda:
                h = build_casida_hamiltonian(
                    self.psi_v, self.eps_v, self.psi_c, self.eps_c,
                    self.kernel, timers=timers,
                )
            else:
                h = build_full_casida_matrix(
                    self.psi_v, self.eps_v, self.psi_c, self.eps_c,
                    self.kernel, timers=timers,
                )
        with timers.scope("diagonalize"):
            if tda:
                evals, evecs = solve_casida_dense(h, n_excitations)
            else:
                evals, evecs = solve_full_casida_dense(h, n_excitations)
        return LRTDDFTResult(evals, evecs, "naive", None)

    def _decompose(
        self,
        selection: str,
        n_mu: int | None,
        rank_factor: float,
        timers: TimerRegistry,
        isdf_kwargs: dict,
    ) -> ISDFDecomposition:
        grid_points = (
            self.basis.grid.cartesian_points if selection == "kmeans" else None
        )
        warm = self._warm
        if warm is not None:
            if warm.isdf_indices is not None:
                isdf_kwargs = dict(isdf_kwargs, indices=warm.isdf_indices)
            elif warm.kmeans_centroids is not None and selection == "kmeans":
                isdf_kwargs = dict(
                    isdf_kwargs, initial_centroids=warm.kmeans_centroids
                )
        return isdf_decompose(
            self.psi_v,
            self.psi_c,
            n_mu,
            method=selection,
            grid_points=grid_points,
            rank_factor=rank_factor,
            rng=self._rng,
            timers=timers,
            fallback=self._selection_fallback,
            checkpoint=self._isdf_checkpoint,
            precision=self.precision,
            **isdf_kwargs,
        )

    def _solve_isdf_explicit(
        self,
        selection: str,
        use_iterative: bool,
        n_excitations: int | None,
        n_mu: int | None,
        rank_factor: float,
        tol: float,
        max_iter: int,
        timers: TimerRegistry,
        isdf_kwargs: dict,
        tda: bool,
        eigensolver: str = "lobpcg",
    ) -> LRTDDFTResult:
        isdf = self._decompose(selection, n_mu, rank_factor, timers, isdf_kwargs)
        with timers.scope("hamiltonian"):
            if tda:
                h = build_isdf_hamiltonian(
                    isdf, self.eps_v, self.eps_c, self.kernel, timers=timers
                )
            else:
                h = ImplicitFullCasidaOperator(
                    isdf, self.eps_v, self.eps_c, self.kernel, timers=timers
                ).materialize()
        iterations = 0
        if use_iterative:
            k = self._resolve_k(n_excitations)
            x0 = self._initial_block(k)
            diag = pair_energies(self.eps_v, self.eps_c)
            diag = diag if tda else diag**2
            floor = 1e-2 if tda else 1e-4

            def precond(r: np.ndarray, theta: np.ndarray) -> np.ndarray:
                # Positive-definite variant of the paper's Eq. 17 (see
                # ImplicitCasidaOperator.preconditioner).
                denom = np.maximum(np.abs(diag[:, None] - theta[None, :]), floor)
                return r / denom

            with timers.scope("diagonalize"):
                if eigensolver == "davidson":
                    res = davidson(
                        lambda x: h @ x, x0, np.diag(h).copy(), tol=tol,
                        max_iter=max_iter,
                    )
                else:
                    res = lobpcg(
                        lambda x: h @ x, x0, preconditioner=precond, tol=tol,
                        max_iter=max_iter, checkpoint=self._lobpcg_checkpoint,
                        callback=self._eigensolver_callback(),
                    )
            evals, evecs = res.eigenvalues, res.eigenvectors
            iterations = res.iterations
            converged = res.converged
            if not tda:
                evals = np.sqrt(np.maximum(evals, 0.0))
        else:
            converged = True
            with timers.scope("diagonalize"):
                if tda:
                    evals, evecs = solve_casida_dense(h, n_excitations)
                else:
                    evals, evecs = solve_full_casida_dense(h, n_excitations)
        return LRTDDFTResult(
            evals, evecs, "", isdf.n_mu, isdf=isdf,
            eigensolver_iterations=iterations, converged=converged,
        )

    def _solve_implicit(
        self,
        selection: str,
        n_excitations: int | None,
        n_mu: int | None,
        rank_factor: float,
        tol: float,
        max_iter: int,
        timers: TimerRegistry,
        isdf_kwargs: dict,
        tda: bool,
        eigensolver: str = "lobpcg",
    ) -> LRTDDFTResult:
        isdf = self._decompose(selection, n_mu, rank_factor, timers, isdf_kwargs)
        with timers.scope("hamiltonian"):
            if tda:
                op = ImplicitCasidaOperator(
                    isdf, self.eps_v, self.eps_c, self.kernel, timers=timers
                )
            else:
                op = ImplicitFullCasidaOperator(
                    isdf, self.eps_v, self.eps_c, self.kernel, timers=timers
                )
        k = self._resolve_k(n_excitations)
        x0 = self._initial_block(k)
        with timers.scope("diagonalize"):
            if eigensolver == "davidson":
                res = davidson(
                    op.apply, x0, op.diagonal(), tol=tol, max_iter=max_iter
                )
            else:
                res = lobpcg(
                    op.apply, x0, preconditioner=op.preconditioner, tol=tol,
                    max_iter=max_iter, checkpoint=self._lobpcg_checkpoint,
                    callback=self._eigensolver_callback(),
                )
        evals = res.eigenvalues
        if not tda:
            evals = np.sqrt(np.maximum(evals, 0.0))
        return LRTDDFTResult(
            evals, res.eigenvectors, "", isdf.n_mu, isdf=isdf,
            eigensolver_iterations=res.iterations, converged=res.converged,
        )

    # -- helpers -----------------------------------------------------------

    def _resolve_k(self, n_excitations: int | None) -> int:
        k = min(10, self.n_pairs) if n_excitations is None else n_excitations
        require(0 < k <= self.n_pairs, f"n_excitations must be in [1, {self.n_pairs}]")
        return k

    def _initial_block(self, k: int) -> np.ndarray:
        """Unit vectors on the ``k`` lowest independent-particle transitions.

        The physically-motivated warm start: the lowest Casida excitations
        are dominated by the lowest KS transitions, so LOBPCG starts inside
        the right subspace.  A small random admixture avoids exact-zero
        couplings in symmetric systems.
        """
        warm = self._warm
        if warm is not None and warm.x0 is not None and warm.x0.shape == (
            self.n_pairs, k
        ):
            return np.array(warm.x0, dtype=float)
        diag = pair_energies(self.eps_v, self.eps_c)
        lowest = np.argsort(diag)[:k]
        x0 = np.zeros((self.n_pairs, k))
        x0[lowest, np.arange(k)] = 1.0
        x0 += 1e-3 * self._rng.standard_normal(x0.shape)
        return x0
