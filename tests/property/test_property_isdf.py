"""Property-based tests for the ISDF decomposition invariants."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.core import (
    coefficient_matrix,
    fit_interpolation_vectors,
    pair_products,
    pair_weights,
)
from repro.utils.rng import default_rng


def _orbitals(seed, n_v, n_c, n_r):
    rng = default_rng(seed)
    return rng.standard_normal((n_v, n_r)), rng.standard_normal((n_c, n_r))


@settings(max_examples=25, deadline=None)
@given(
    st.integers(0, 10**6),
    st.integers(1, 4),
    st.integers(1, 4),
    st.integers(40, 120),
)
def test_full_rank_isdf_is_exact(seed, n_v, n_c, n_r):
    """Whenever N_mu = N_cv and the points are generic, Z = Theta C."""
    psi_v, psi_c = _orbitals(seed, n_v, n_c, n_r)
    rng = default_rng(seed + 1)
    idx = rng.choice(n_r, size=n_v * n_c, replace=False)
    c = coefficient_matrix(psi_v, psi_c, idx)
    # Random points can be nearly degenerate; exactness is only a meaningful
    # claim for a well-conditioned coefficient matrix.
    assume(np.linalg.cond(c) < 1e6)
    # Exactness is a property of the pure least-squares fit; the default
    # ridge trades a ~cond(C)^2-amplified bias for robustness.
    theta = fit_interpolation_vectors(psi_v, psi_c, idx, regularization=0.0)
    z = pair_products(psi_v, psi_c)
    assert np.linalg.norm(z - theta @ c) <= 1e-5 * max(np.linalg.norm(z), 1e-12)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10**6), st.integers(2, 4), st.integers(2, 4))
def test_residual_orthogonal_to_c_rows(seed, n_v, n_c):
    """Least-squares optimality of the Galerkin fit (Eq. 10)."""
    n_r = 80
    psi_v, psi_c = _orbitals(seed, n_v, n_c, n_r)
    rng = default_rng(seed + 2)
    n_mu = min(n_v * n_c - 1, 6)
    idx = rng.choice(n_r, size=n_mu, replace=False)
    theta = fit_interpolation_vectors(psi_v, psi_c, idx, regularization=0.0)
    c = coefficient_matrix(psi_v, psi_c, idx)
    z = pair_products(psi_v, psi_c)
    residual = z - theta @ c
    scale = max(np.linalg.norm(z) * np.linalg.norm(c), 1e-12)
    assert np.abs(residual @ c.T).max() <= 1e-7 * scale


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10**6), st.integers(1, 5), st.integers(1, 5))
def test_pair_weights_match_row_norms(seed, n_v, n_c):
    """Eq. 14 equals the squared row norms of Z for any orbitals."""
    psi_v, psi_c = _orbitals(seed, n_v, n_c, 50)
    z = pair_products(psi_v, psi_c)
    w = pair_weights(psi_v, psi_c)
    np.testing.assert_allclose(
        w, np.einsum("rp,rp->r", z, z), rtol=1e-10, atol=1e-12
    )


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10**6), st.floats(0.1, 10.0))
def test_fit_scale_equivariance(seed, scale):
    """Scaling psi_v by s scales Z by s; Theta must absorb it linearly
    (same interpolation points)."""
    psi_v, psi_c = _orbitals(seed, 3, 3, 60)
    rng = default_rng(seed + 3)
    idx = rng.choice(60, size=5, replace=False)
    theta1 = fit_interpolation_vectors(psi_v, psi_c, idx, regularization=0.0)
    theta2 = fit_interpolation_vectors(scale * psi_v, psi_c, idx, regularization=0.0)
    c1 = coefficient_matrix(psi_v, psi_c, idx)
    c2 = coefficient_matrix(scale * psi_v, psi_c, idx)
    # The reconstructions are proportional even though Theta/C split the
    # scale between themselves.
    np.testing.assert_allclose(
        theta2 @ c2, scale * (theta1 @ c1), rtol=1e-6, atol=1e-8
    )


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10**6))
def test_interpolation_points_reproduce_exactly(seed):
    """At the interpolation points themselves the fit is interpolatory:
    (Theta C)[r_mu, :] = Z[r_mu, :] when C has full row rank."""
    psi_v, psi_c = _orbitals(seed, 2, 3, 70)
    rng = default_rng(seed + 4)
    idx = np.sort(rng.choice(70, size=6, replace=False))
    theta = fit_interpolation_vectors(psi_v, psi_c, idx, regularization=0.0)
    c = coefficient_matrix(psi_v, psi_c, idx)
    z = pair_products(psi_v, psi_c)
    recon = theta @ c
    np.testing.assert_allclose(recon[idx], z[idx], atol=1e-6)
