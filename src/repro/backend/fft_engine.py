"""Pluggable FFT engines for the hot batch-transform paths.

The paper's Algorithm 1 spends most of its construction time in batched
FFTs (Figure 8), so the transform backend is abstracted behind
:class:`FFTEngine` with two implementations:

* :class:`NumpyFFTEngine` — ``np.fft`` pocketfft, single threaded, complex
  transforms only.  This is the *reference* engine: it reproduces the seed
  implementation's numerics bit-for-bit and is the automatic fallback.
* :class:`ScipyFFTEngine` — ``scipy.fft`` pocketfft with ``workers=N``
  multi-threaded batch transforms and a real-to-complex (``rfftn``) fast
  path for the real Γ-point fields of the Coulomb apply, which halves both
  the transform work and the spectrum memory traffic.

Selection is explicit (pass an engine to :class:`repro.pw.fft.FourierGrid`),
via :func:`set_default_fft_backend`, or via environment variables:

* ``REPRO_FFT_BACKEND`` — ``numpy`` | ``scipy`` | ``auto`` (default:
  ``auto`` = scipy when importable, else numpy),
* ``REPRO_FFT_WORKERS`` — worker threads for the scipy engine (default:
  all cores).

Engines also own a small scratch-buffer pool so repeated batch transforms
of the same shape reuse staging storage instead of reallocating — the
numpy analogue of caching FFTW plans with embedded buffers.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict

import numpy as np

from repro.utils.hot import array_contract

__all__ = [
    "FFTEngine",
    "NumpyFFTEngine",
    "ScipyFFTEngine",
    "available_backends",
    "default_fft_engine",
    "get_fft_engine",
    "reset_default_fft_backend",
    "set_default_fft_backend",
    "set_default_fft_engine",
]

_ENV_BACKEND = "REPRO_FFT_BACKEND"
_ENV_WORKERS = "REPRO_FFT_WORKERS"
_SCRATCH_SLOTS = 8


class FFTEngine:
    """Abstract FFT backend: n-dimensional transforms over trailing axes.

    Subclasses implement :meth:`fftn` / :meth:`ifftn` and, when
    :attr:`supports_real` is true, the real-to-complex pair
    :meth:`rfftn` / :meth:`irfftn` used by the Coulomb-apply fast path.
    """

    name: str = "abstract"
    #: Whether callers may route real fields through rfftn/irfftn.
    supports_real: bool = False
    #: Worker threads the engine uses for batch transforms.
    workers: int = 1

    def __init__(self) -> None:
        # Tiny per-thread LRU of reusable scratch arrays keyed by
        # (shape, dtype).  Thread-local because the SPMD runtime drives
        # ranks as threads sharing one engine.
        self._local = threading.local()

    # -- transforms (must be overridden) -----------------------------------

    def fftn(self, a: np.ndarray, axes: tuple[int, ...]) -> np.ndarray:
        raise NotImplementedError

    def ifftn(self, a: np.ndarray, axes: tuple[int, ...]) -> np.ndarray:
        raise NotImplementedError

    def rfftn(self, a: np.ndarray, axes: tuple[int, ...]) -> np.ndarray:
        raise NotImplementedError

    def irfftn(
        self, a: np.ndarray, s: tuple[int, ...], axes: tuple[int, ...]
    ) -> np.ndarray:
        raise NotImplementedError

    # -- scratch buffers ----------------------------------------------------

    @array_contract(returns={"contiguous": True})
    def scratch(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        """A reusable buffer of the requested shape/dtype (contents stale).

        Callers must finish with the buffer before requesting another of
        the same key — the pool hands out the *same* array again.  Intended
        for staging copies inside a single transform call.
        """
        pool: OrderedDict[tuple, np.ndarray] | None = getattr(
            self._local, "pool", None
        )
        if pool is None:
            pool = self._local.pool = OrderedDict()
            self._local.hits = 0
            self._local.misses = 0
        key = (tuple(shape), np.dtype(dtype).str)
        buf = pool.get(key)
        if buf is None:
            self._local.misses += 1
            buf = np.empty(shape, dtype=dtype)  # repro-lint: disable=no-alloc-in-hot -- pool miss: allocates once per (shape, dtype), then reused
            pool[key] = buf
            while len(pool) > _SCRATCH_SLOTS:
                pool.popitem(last=False)
        else:
            self._local.hits += 1
            pool.move_to_end(key)
        return buf

    def scratch_stats(self) -> dict[str, int]:
        """This thread's scratch-pool occupancy and hit/miss counters."""
        pool = getattr(self._local, "pool", None)
        return {
            "slots": 0 if pool is None else len(pool),
            "hits": int(getattr(self._local, "hits", 0)),
            "misses": int(getattr(self._local, "misses", 0)),
        }

    def describe(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, workers={self.workers}, "
            f"real_fast_path={self.supports_real})"
        )


class NumpyFFTEngine(FFTEngine):
    """``np.fft`` backend — seed-faithful reference numerics.

    ``use_rfft=True`` opts into the real fast path (numpy's rfftn is exact
    to machine precision but differs from the seed's complex path in the
    last ulp, so it is off by default for this engine).
    """

    name = "numpy"

    def __init__(self, *, use_rfft: bool = False) -> None:
        super().__init__()
        self.supports_real = bool(use_rfft)

    def fftn(self, a, axes):
        return np.fft.fftn(a, axes=axes)

    def ifftn(self, a, axes):
        return np.fft.ifftn(a, axes=axes)

    def rfftn(self, a, axes):
        return np.fft.rfftn(a, axes=axes)

    def irfftn(self, a, s, axes):
        return np.fft.irfftn(a, s=s, axes=axes)


class ScipyFFTEngine(FFTEngine):
    """``scipy.fft`` backend: multi-worker pocketfft + rfftn fast path."""

    name = "scipy"

    def __init__(self, *, workers: int | None = None, use_rfft: bool = True) -> None:
        super().__init__()
        import scipy.fft as _sfft  # deferred so import errors surface here

        self._fft = _sfft
        self.workers = _resolve_workers(workers)
        self.supports_real = bool(use_rfft)

    def fftn(self, a, axes):
        return self._fft.fftn(a, axes=axes, workers=self.workers)

    def ifftn(self, a, axes):
        return self._fft.ifftn(a, axes=axes, workers=self.workers)

    def rfftn(self, a, axes):
        return self._fft.rfftn(a, axes=axes, workers=self.workers)

    def irfftn(self, a, s, axes):
        return self._fft.irfftn(a, s=s, axes=axes, workers=self.workers)


def _resolve_workers(workers: int | None) -> int:
    if workers is None:
        env = os.environ.get(_ENV_WORKERS, "").strip()
        if env:
            workers = int(env)
        else:
            workers = os.cpu_count() or 1
    return max(1, int(workers))


def available_backends() -> tuple[str, ...]:
    """Backend names instantiable in this environment."""
    names = ["numpy"]
    try:  # pragma: no cover - exercised indirectly
        import scipy.fft  # noqa: F401

        names.append("scipy")
    except ImportError:
        pass
    return tuple(names)


def get_fft_engine(
    name: str | None = None, *, workers: int | None = None
) -> FFTEngine:
    """Build an engine by name with automatic fallback.

    ``name=None`` reads ``REPRO_FFT_BACKEND`` (default ``auto``).  Asking
    for ``scipy`` in an environment without scipy silently falls back to
    the numpy reference engine — callers never have to guard the import.
    """
    if name is None:
        name = os.environ.get(_ENV_BACKEND, "auto").strip().lower() or "auto"
    name = name.lower()
    if name == "auto":
        name = "scipy" if "scipy" in available_backends() else "numpy"
    if name == "scipy":
        try:
            return ScipyFFTEngine(workers=workers)
        except ImportError:
            return NumpyFFTEngine()
    if name == "numpy":
        return NumpyFFTEngine()
    raise ValueError(
        f"unknown FFT backend {name!r}; available: {available_backends()} + 'auto'"
    )


_default_engine: FFTEngine | None = None


def default_fft_engine() -> FFTEngine:
    """The process-wide default engine (built lazily from the environment)."""
    global _default_engine
    if _default_engine is None:
        _default_engine = get_fft_engine()
    return _default_engine


def set_default_fft_backend(
    name: str | None, *, workers: int | None = None
) -> FFTEngine:
    """Set (and return) the process-wide default engine."""
    global _default_engine
    _default_engine = get_fft_engine(name, workers=workers)
    return _default_engine


def set_default_fft_engine(engine: FFTEngine) -> FFTEngine:
    """Install a concrete engine instance as the process-wide default.

    Used by the resilience layer to wrap the current default in a
    fallback decorator (:class:`repro.resilience.ResilientFFTEngine`).
    """
    global _default_engine
    _default_engine = engine
    return engine


def reset_default_fft_backend() -> None:
    """Forget the cached default so the environment is re-read."""
    global _default_engine
    _default_engine = None
