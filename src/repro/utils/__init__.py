"""Shared infrastructure: timers, RNG, validation and linear-algebra helpers."""

from repro.utils.hot import hot_kernel, is_hot_kernel
from repro.utils.rng import default_rng, spawn_rng
from repro.utils.timers import Timer, TimerRegistry, timed
from repro.utils.linalg import (
    orthonormalize,
    orthonormalize_against,
    rayleigh_ritz,
    relative_error,
    symmetrize,
)
from repro.utils.validation import (
    check_positive,
    check_shape,
    check_square,
    require,
)

__all__ = [
    "Timer",
    "TimerRegistry",
    "timed",
    "default_rng",
    "spawn_rng",
    "hot_kernel",
    "is_hot_kernel",
    "orthonormalize",
    "orthonormalize_against",
    "rayleigh_ritz",
    "relative_error",
    "symmetrize",
    "check_positive",
    "check_shape",
    "check_square",
    "require",
]
