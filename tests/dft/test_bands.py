"""Tests for non-self-consistent band structures."""

import numpy as np
import pytest

from repro.constants import HARTREE_TO_EV
from repro.dft.bands import (
    BlochHamiltonian,
    band_structure,
    bands_at_k,
    build_projectors_at_k,
)
from repro.utils.rng import default_rng


class TestBlochHamiltonian:
    def test_gamma_reproduces_scf_bands(self, si2_ground_state):
        e = bands_at_k(si2_ground_state, [0, 0, 0], 8)
        np.testing.assert_allclose(
            e, si2_ground_state.energies[:8], atol=1e-8
        )

    def test_hermitian_at_general_k(self, si2_ground_state):
        ham = BlochHamiltonian(si2_ground_state, [0.3, 0.1, 0.2])
        rng = default_rng(0)
        a = si2_ground_state.basis.random_coefficients(1, rng)[0]
        b = si2_ground_state.basis.random_coefficients(1, rng)[0]
        lhs = np.vdot(a, ham.apply(b))
        rhs = np.vdot(b, ham.apply(a)).conjugate()
        assert lhs == pytest.approx(rhs, abs=1e-12)

    def test_projectors_at_gamma_match_static(self, si2_ground_state):
        from repro.pseudo import build_projectors

        basis = si2_ground_state.basis
        at_k = build_projectors_at_k(basis, np.zeros(3))
        static = build_projectors(basis)
        np.testing.assert_allclose(at_k.beta, static.beta, atol=1e-12)
        np.testing.assert_allclose(at_k.h, static.h)

    def test_time_reversal_symmetry(self, si2_ground_state):
        """eps(k) = eps(-k) for a real potential."""
        k = [0.21, 0.08, 0.13]
        e_plus = bands_at_k(si2_ground_state, k, 6)
        e_minus = bands_at_k(si2_ground_state, [-x for x in k], 6)
        np.testing.assert_allclose(e_plus, e_minus, atol=1e-6)

    def test_reciprocal_lattice_periodicity(self, si2_ground_state):
        """eps(k) = eps(k + G) up to the finite-basis asymmetry.

        Shifting k by a reciprocal-lattice vector relabels the plane waves;
        with a finite sphere the sets differ at the boundary, so low bands
        agree to basis-cutoff accuracy, not machine precision.
        """
        e_0 = bands_at_k(si2_ground_state, [0.1, 0.0, 0.0], 4)
        e_g = bands_at_k(si2_ground_state, [1.1, 0.0, 0.0], 4)
        np.testing.assert_allclose(e_0, e_g, atol=5e-3)

    def test_bad_k_shape_rejected(self, si2_ground_state):
        with pytest.raises(ValueError):
            BlochHamiltonian(si2_ground_state, [0.0, 0.0])


class TestSiliconPhysics:
    @pytest.fixture(scope="class")
    def bs(self, si2_ground_state):
        return band_structure(
            si2_ground_state,
            [
                ("L", np.array([0.5, 0.5, 0.5])),
                ("Gamma", np.array([0.0, 0.0, 0.0])),
                ("X", np.array([0.5, 0.0, 0.5])),
            ],
            n_bands=8,
            n_interpolate=4,
        )

    def test_silicon_gap_is_indirect(self, bs, si2_ground_state):
        """The CBM lies along Gamma-X, below the Gamma conduction state."""
        indirect = bs.indirect_gap(4)
        direct_gamma = si2_ground_state.homo_lumo_gap()
        assert 0.0 < indirect < direct_gamma

    def test_gap_magnitude_physical(self, bs):
        """LDA silicon indirect gap ~0.5 eV; coarse cutoff shifts it but it
        must stay within (0, 1.5) eV."""
        gap_ev = bs.indirect_gap(4) * HARTREE_TO_EV
        assert 0.0 < gap_ev < 1.5

    def test_valence_band_width_physical(self, bs):
        """Silicon valence bandwidth ~12 eV (LDA)."""
        n_occ = 4
        width = (
            bs.valence_maximum(n_occ)
            - bs.energies[:, 0].min()
        ) * HARTREE_TO_EV
        assert 10.0 < width < 14.0

    def test_x_point_degeneracies(self, si2_ground_state):
        """Diamond-structure X point: bands stick together in pairs."""
        e = bands_at_k(si2_ground_state, [0.5, 0.0, 0.5], 6)
        assert e[0] == pytest.approx(e[1], abs=2e-3)
        assert e[2] == pytest.approx(e[3], abs=2e-3)

    def test_labels_recorded(self, bs):
        names = [name for _, name in bs.labels]
        assert names == ["L", "Gamma", "X"]

    def test_path_length(self, bs):
        assert bs.n_k == 2 * 4 + 1
        assert bs.energies.shape == (bs.n_k, 8)
