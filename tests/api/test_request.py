"""CalculationRequest: canonical identity, cache-key stability, shims."""

import json
import warnings

import numpy as np
import pytest

from repro import api
from repro.api import (
    CalculationRequest,
    RTConfig,
    SCFConfig,
    TDDFTConfig,
    execute_request,
    reset_deprecation_warnings,
    structure_from_dict,
    structure_to_dict,
)
from repro.pw.cell import UnitCell


@pytest.fixture()
def cell():
    # Irrational-ish coordinates: the floats must survive repr round-trips.
    return UnitCell(
        10.0 * np.eye(3),
        ("H", "H"),
        np.array([[1 / 3, 0.1, 0.1], [2 / 3, 0.1, 0.1 + 1e-15]]),
    )


@pytest.fixture()
def scf_request(cell):
    return CalculationRequest(
        kind="scf", structure=cell, scf=SCFConfig(ecut=4.0, tol=1e-6)
    )


class TestConstruction:
    def test_kind_validated(self, cell):
        with pytest.raises(ValueError, match="kind"):
            CalculationRequest(kind="md", structure=cell)

    @pytest.mark.parametrize(
        ("kind", "extra"),
        [
            ("scf", {"tddft": TDDFTConfig()}),
            ("scf", {"rt": RTConfig()}),
            ("tddft", {"rt": RTConfig()}),
            ("rt", {"tddft": TDDFTConfig()}),
        ],
    )
    def test_irrelevant_configs_rejected(self, cell, kind, extra):
        with pytest.raises(ValueError, match="does not consume"):
            CalculationRequest(kind=kind, structure=cell, **extra)

    def test_batch_rejects_single_cell(self, cell):
        with pytest.raises(ValueError, match="sequence"):
            CalculationRequest(kind="batch", structure=cell)

    def test_scf_rejects_cell_list(self, cell):
        with pytest.raises(ValueError, match="single UnitCell"):
            CalculationRequest(kind="scf", structure=[cell, cell])

    def test_batch_structure_normalized_to_tuple(self, cell):
        request = CalculationRequest(kind="batch", structure=[cell, cell])
        assert isinstance(request.structure, tuple)
        assert request.batch is not None


class TestCacheKeyStability:
    def test_json_round_trip_is_identity(self, scf_request):
        """serialize -> parse -> rebuild reproduces the exact key."""
        rebuilt = CalculationRequest.from_dict(
            json.loads(scf_request.canonical_json())
        )
        assert rebuilt.cache_key() == scf_request.cache_key()
        assert rebuilt.canonical_json() == scf_request.canonical_json()

    def test_invariant_under_dict_key_ordering(self, scf_request):
        payload = scf_request.to_dict()
        shuffled = {k: payload[k] for k in reversed(sorted(payload))}
        shuffled["scf"] = {
            k: payload["scf"][k] for k in reversed(sorted(payload["scf"]))
        }
        assert (
            CalculationRequest.from_dict(shuffled).cache_key()
            == scf_request.cache_key()
        )

    def test_default_vs_explicit_config_is_canonical(self, cell):
        implicit = CalculationRequest(kind="scf", structure=cell)
        explicit = CalculationRequest(kind="scf", structure=cell, scf=SCFConfig())
        assert implicit.cache_key() == explicit.cache_key()

    def test_default_vs_explicit_field_value(self, cell):
        bare = CalculationRequest(kind="scf", structure=cell, scf=SCFConfig())
        spelled = CalculationRequest(
            kind="scf", structure=cell, scf=SCFConfig(ecut=10.0, mixer="anderson")
        )
        assert bare.cache_key() == spelled.cache_key()

    def test_structure_floats_exact(self, cell):
        rebuilt = structure_from_dict(structure_to_dict(cell))
        np.testing.assert_array_equal(
            rebuilt.fractional_positions, cell.fractional_positions
        )
        np.testing.assert_array_equal(rebuilt.lattice, cell.lattice)

    def test_different_structures_never_alias(self, cell):
        moved = UnitCell(
            cell.lattice,
            cell.species,
            cell.fractional_positions + np.array([[0.0, 0.0, 1e-12], [0, 0, 0]]),
        )
        a = CalculationRequest(kind="scf", structure=cell)
        b = CalculationRequest(kind="scf", structure=moved)
        assert a.cache_key() != b.cache_key()

    def test_config_difference_changes_key(self, cell):
        a = CalculationRequest(kind="scf", structure=cell, scf=SCFConfig(tol=1e-6))
        b = CalculationRequest(kind="scf", structure=cell, scf=SCFConfig(tol=1e-7))
        assert a.cache_key() != b.cache_key()

    def test_kind_changes_key(self, cell):
        scf = CalculationRequest(kind="scf", structure=cell)
        td = CalculationRequest(kind="tddft", structure=cell)
        assert scf.cache_key() != td.cache_key()

    def test_precision_tier_is_part_of_the_key(self, cell):
        # strict64 and mixed results are (deliberately) not interchangeable
        # in the content-addressed cache: the tier must enter the key, and
        # the default tier must alias its explicit spelling.
        strict = CalculationRequest(
            kind="tddft", structure=cell, tddft=TDDFTConfig()
        )
        explicit = CalculationRequest(
            kind="tddft", structure=cell,
            tddft=TDDFTConfig(precision="strict64"),
        )
        mixed = CalculationRequest(
            kind="tddft", structure=cell,
            tddft=TDDFTConfig(precision="mixed"),
        )
        assert strict.cache_key() == explicit.cache_key()
        assert strict.cache_key() != mixed.cache_key()

    def test_resilience_is_part_of_the_key(self, cell):
        plain = CalculationRequest(kind="scf", structure=cell)
        degraded = CalculationRequest(
            kind="scf",
            structure=cell,
            resilience=api.ResilienceConfig(max_retries=5),
        )
        assert plain.cache_key() != degraded.cache_key()

    def test_scf_subrequest_matches_plain_scf_request(self, cell):
        scf = SCFConfig(ecut=5.0)
        td = CalculationRequest(
            kind="tddft", structure=cell, scf=scf, tddft=TDDFTConfig()
        )
        rt = CalculationRequest(kind="rt", structure=cell, scf=scf)
        plain = CalculationRequest(kind="scf", structure=cell, scf=scf)
        assert td.scf_subrequest().cache_key() == plain.cache_key()
        assert rt.scf_subrequest().cache_key() == plain.cache_key()

    def test_from_dict_rejects_unknown_keys(self, scf_request):
        payload = scf_request.to_dict()
        payload["tenant"] = "a"
        with pytest.raises(ValueError, match="unknown"):
            CalculationRequest.from_dict(payload)


class TestExecution:
    def test_compute_runs_scf(self, scf_request):
        gs = scf_request.compute()
        assert gs.converged

    def test_execute_skips_scf_with_ground_state(self, cell, scf_request):
        gs = scf_request.compute()
        td = CalculationRequest(
            kind="tddft",
            structure=cell,
            scf=scf_request.scf,
            tddft=TDDFTConfig(n_excitations=2, n_valence=1, n_conduction=2, seed=0),
        )
        outcome = execute_request(td, ground_state=gs)
        assert outcome.scf_iterations == 0
        assert outcome.result.energies.shape == (2,)

    def test_progress_events_are_staged(self, scf_request):
        events = []
        execute_request(scf_request, progress=events.append)
        assert events, "no progress events published"
        assert {e["stage"] for e in events} == {"scf"}
        iterations = [e["iteration"] for e in events]
        assert iterations == sorted(iterations)
        assert events[-1]["converged"]


class TestLegacyShimsRouteThroughRequests:
    @pytest.fixture()
    def tiny_gs(self, cell):
        reset_deprecation_warnings()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            return api.run_scf(cell, SCFConfig(ecut=4.0, tol=1e-6))

    def _deprecations(self, caught):
        return [w for w in caught if issubclass(w.category, DeprecationWarning)]

    def test_run_scf_warns_once_and_matches_request(self, cell):
        reset_deprecation_warnings()
        request = CalculationRequest(
            kind="scf", structure=cell, scf=SCFConfig(ecut=4.0, tol=1e-6)
        )
        direct = request.compute()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = api.run_scf(cell, SCFConfig(ecut=4.0, tol=1e-6))
            api.run_scf(cell, SCFConfig(ecut=4.0, tol=1e-6))
        dep = self._deprecations(caught)
        assert len(dep) == 1
        assert "CalculationRequest" in str(dep[0].message)
        assert legacy.total_energy == direct.total_energy
        np.testing.assert_array_equal(legacy.density, direct.density)

    def test_run_rt_warns_once(self, tiny_gs):
        reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = api.run_rt(tiny_gs, n_steps=3, dt=0.1)
            api.run_rt(tiny_gs, n_steps=3, dt=0.1)
        dep = self._deprecations(caught)
        assert len(dep) == 1
        assert "RTConfig" in str(dep[0].message)
        assert len(result.times) > 0

    def test_run_batch_warns_once(self, cell):
        reset_deprecation_warnings()
        config = api.BatchConfig(
            scf=SCFConfig(ecut=4.0, tol=1e-6),
            tddft=TDDFTConfig(n_excitations=2, n_valence=1, n_conduction=2, seed=0),
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = api.run_batch([cell, cell], config)
            api.run_batch([cell, cell], config)
        dep = self._deprecations(caught)
        assert len(dep) == 1
        assert "BatchConfig" in str(dep[0].message)
        assert result.records[1].reused_identical
