"""Tests for the HGH pseudopotential forms.

The analytic reciprocal-space expressions are validated against independent
numerical radial transforms of the real-space definitions — the strongest
check available without external reference data.
"""

import numpy as np
import pytest

from repro.pseudo import (
    get_pseudopotential,
    local_potential_real,
    local_potential_recip,
    projector_radial_numeric,
    projector_radial_recip,
    projector_real,
)


class TestTable:
    @pytest.mark.parametrize("symbol,zion", [("H", 1), ("C", 4), ("O", 6), ("Si", 4)])
    def test_ionic_charges(self, symbol, zion):
        assert get_pseudopotential(symbol).zion == zion

    def test_unknown_species(self):
        with pytest.raises(KeyError):
            get_pseudopotential("Fe")

    def test_silicon_has_two_s_projectors(self):
        si = get_pseudopotential("Si")
        assert len(si.projectors[0][1]) == 2
        assert si.n_projector_channels == 3

    def test_hydrogen_is_local_only(self):
        assert get_pseudopotential("H").projectors == {}


class TestLocalPotential:
    def test_real_space_coulomb_tail(self):
        """V(r) -> -Z/r at large r (erf -> 1, Gaussian dies)."""
        si = get_pseudopotential("Si")
        r = np.array([8.0, 12.0])
        np.testing.assert_allclose(
            local_potential_real(si, r), -si.zion / r, rtol=1e-10
        )

    def test_real_space_finite_at_origin(self):
        si = get_pseudopotential("Si")
        v0 = local_potential_real(si, np.array([0.0]))[0]
        assert np.isfinite(v0)

    @pytest.mark.parametrize("symbol", ["H", "C", "O", "Si"])
    def test_recip_matches_numerical_transform(self, symbol):
        """(1/Omega) int V(r) e^{-iGr} dr via screened split, vs analytic."""
        params = get_pseudopotential(symbol)
        omega = 500.0
        r = np.linspace(1e-6, 30.0, 40000)
        short_ranged = local_potential_real(params, r) + params.zion / r
        for g in (0.4, 1.0, 2.5, 5.0):
            j0 = np.sin(g * r) / (g * r)
            numeric = (
                4 * np.pi * np.trapezoid(r * r * short_ranged * j0, r) / omega
                - 4 * np.pi * params.zion / (g * g * omega)
            )
            analytic = local_potential_recip(params, np.array([g * g]), omega)[0]
            assert analytic == pytest.approx(numeric, abs=1e-7)

    def test_g0_is_finite_regularized(self):
        si = get_pseudopotential("Si")
        v0 = local_potential_recip(si, np.array([0.0]), 100.0)[0]
        assert np.isfinite(v0)

    def test_volume_scaling(self):
        si = get_pseudopotential("Si")
        g2 = np.array([1.0])
        a = local_potential_recip(si, g2, 100.0)[0]
        b = local_potential_recip(si, g2, 200.0)[0]
        assert a == pytest.approx(2 * b)


class TestProjectors:
    @pytest.mark.parametrize("symbol,l,i", [("Si", 0, 1), ("Si", 0, 2), ("Si", 1, 1), ("C", 0, 1), ("O", 1, 1)])
    def test_analytic_matches_numeric(self, symbol, l, i):
        params = get_pseudopotential(symbol)
        g = np.linspace(0.05, 8.0, 9)
        analytic = projector_radial_recip(params, l, i, g)
        numeric = projector_radial_numeric(params, l, i, g)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-8, atol=1e-12)

    def test_real_space_normalization(self):
        """HGH projectors are L2-normalized: int r^2 p(r)^2 dr = 1."""
        si = get_pseudopotential("Si")
        r = np.linspace(0, 20, 40000)
        for l, i in [(0, 1), (0, 2), (1, 1)]:
            p = projector_real(si, l, i, r)
            norm = np.trapezoid(r * r * p * p, r)
            assert norm == pytest.approx(1.0, abs=1e-8)

    def test_p_projector_vanishes_at_g0(self):
        si = get_pseudopotential("Si")
        assert projector_radial_recip(si, 1, 1, np.array([0.0]))[0] == 0.0

    def test_missing_channel_raises(self):
        h = get_pseudopotential("H")
        with pytest.raises(ValueError):
            projector_real(h, 0, 1, np.array([1.0]))

    def test_unimplemented_closed_form(self):
        si = get_pseudopotential("Si")
        with pytest.raises(NotImplementedError):
            projector_radial_recip(si, 1, 3, np.array([1.0]))
