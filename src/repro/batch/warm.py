"""Warm-start state carried between consecutive batch frames.

:class:`BatchWarmState` watches the stream of completed frames and turns
them into warm-start payloads for the next one:

* **SCF** — the starting density is an extrapolation of the previous
  converged densities (quadratic over the last three frames when
  available, linear over two, otherwise a plain carry), clipped to be
  non-negative and renormalized to the electron count.  The previous
  frame's real orbitals seed the first LOBPCG band solve, and a residual
  hint (the RMS extrapolation correction, floored) lets the adaptive
  eigensolver tolerance start tight instead of burning a loose first
  solve at ``1e-3``.
* **K-Means** — the previous frame's converged centroids seed the next
  selection, collapsing the iteration count from tens to a handful.
* **ISDF** — the previous interpolation points are carried forward
  *unchanged* while the candidate-assignment drift stays below a
  threshold, skipping point selection entirely; past the threshold the
  centroids still warm-start a fresh selection.
* **Casida LOBPCG** — the previous frame's excitation eigenvectors seed
  the iterative eigensolve when the pair-space shape matches.

Mixer state is deliberately *not* carried: Anderson history encodes the
previous structure's response curvature, and measurements show reusing it
across a geometry change lengthens the SCF (stale quasi-Newton directions
mislead the extrapolation).  See ``docs/batching.md``.
"""

from __future__ import annotations

import numpy as np

from repro.core.driver import TDDFTWarmStart
from repro.core.kmeans import classify_points
from repro.dft.scf import SCFWarmStart
from repro.utils.validation import require

__all__ = ["BatchWarmState", "assignment_drift"]

#: Candidate pruning threshold of ``select_points_kmeans`` — the drift check
#: must prune with the same rule to compare like with like.
_PRUNE_THRESHOLD = 1e-6


def assignment_drift(
    candidate_indices: np.ndarray,
    labels: np.ndarray,
    new_candidate_indices: np.ndarray,
    new_labels: np.ndarray,
) -> float:
    """Fraction of the candidate union whose cluster membership changed.

    Counts candidates that (a) appear in only one of the two pruned sets,
    or (b) appear in both but moved to a different cluster, over the union
    of both sets.  0 means the clustering structure is unchanged; 1 means
    nothing survived.
    """
    common, in_new, in_old = np.intersect1d(
        new_candidate_indices, candidate_indices, return_indices=True
    )
    changed = int((new_labels[in_new] != labels[in_old]).sum())
    union = int(candidate_indices.size + new_candidate_indices.size - common.size)
    if union == 0:
        return 0.0
    return float(changed + (union - common.size)) / union


class BatchWarmState:
    """Rolling warm-start state over a sequence of related frames.

    Parameters
    ----------
    density_extrapolation:
        ``"quadratic"`` (default), ``"linear"``, or ``"none"`` (carry the
        previous density unmodified).
    isdf_drift_threshold:
        Reuse the previous interpolation points while the assignment
        drift (see :func:`assignment_drift`) stays at or below this
        fraction; 0 reselects whenever anything drifted at all, 1 reuses
        always.
    residual_hint_floor:
        Lower bound on the SCF residual hint, guarding against a zero
        hint when consecutive frames coincide.
    """

    def __init__(
        self,
        *,
        density_extrapolation: str = "quadratic",
        isdf_drift_threshold: float = 0.1,
        residual_hint_floor: float = 3e-5,
    ) -> None:
        require(
            density_extrapolation in ("none", "linear", "quadratic"),
            f"density_extrapolation must be none/linear/quadratic, "
            f"got {density_extrapolation!r}",
        )
        require(
            0.0 <= isdf_drift_threshold <= 1.0,
            f"isdf_drift_threshold must be in [0, 1], got {isdf_drift_threshold}",
        )
        self.density_extrapolation = density_extrapolation
        self.isdf_drift_threshold = float(isdf_drift_threshold)
        self.residual_hint_floor = float(residual_hint_floor)
        self._densities: list[np.ndarray] = []  # newest last, keeps <= 3
        self._ground_state = None
        self._tddft = None
        self._centroids: np.ndarray | None = None
        self._candidate_indices: np.ndarray | None = None
        self._labels: np.ndarray | None = None
        self._isdf_indices: np.ndarray | None = None

    # -- producing warm starts ---------------------------------------------

    def scf_warm_start(self) -> SCFWarmStart | None:
        """Warm start for the next frame's SCF (``None`` on the first)."""
        gs = self._ground_state
        if gs is None:
            return None
        hist = self._densities
        if self.density_extrapolation == "quadratic" and len(hist) >= 3:
            rho = 3.0 * hist[-1] - 3.0 * hist[-2] + hist[-3]
        elif self.density_extrapolation != "none" and len(hist) >= 2:
            rho = 2.0 * hist[-1] - hist[-2]
        else:
            rho = hist[-1].copy()
        rho = np.maximum(rho, 0.0)
        n_electrons = gs.n_electrons
        dv = gs.basis.grid.dv
        norm = float(rho.sum()) * dv
        require(norm > 0.0, "extrapolated density vanished")
        rho *= n_electrons / norm

        delta = rho - hist[-1]
        hint = float(np.sqrt((delta * delta).sum() * dv) / max(n_electrons, 1.0))
        return SCFWarmStart(
            density=rho,
            orbitals_real=gs.orbitals_real,
            residual_hint=max(hint, self.residual_hint_floor),
        )

    def tddft_warm_start(self, solver) -> TDDFTWarmStart | None:
        """Warm start for the next frame's LR-TDDFT solve.

        ``solver`` is the *new* frame's :class:`~repro.core.driver.
        LRTDDFTSolver`: its transition-space orbitals decide whether the
        previous interpolation points still describe the pair-density
        support (the drift check), which needs only a single
        classification pass — far cheaper than reselection.
        """
        if self._centroids is None:
            return None
        x0 = None if self._tddft is None else self._tddft.wavefunctions
        drift = self._current_drift(solver)
        if (
            drift is not None
            and drift <= self.isdf_drift_threshold
            and self._isdf_indices is not None
        ):
            return TDDFTWarmStart(isdf_indices=self._isdf_indices, x0=x0)
        return TDDFTWarmStart(kmeans_centroids=self._centroids, x0=x0)

    def _current_drift(self, solver) -> float | None:
        """Assignment drift of the new frame against the stored clustering."""
        if self._candidate_indices is None or self._labels is None:
            return None
        from repro.core.pair_products import pair_weights

        weights = pair_weights(solver.psi_v, solver.psi_c)
        w_max = float(weights.max())
        if w_max <= 0.0:
            return None
        keep = np.flatnonzero(weights >= _PRUNE_THRESHOLD * w_max)
        if keep.size == 0:
            return None
        grid_points = solver.ground_state.basis.grid.cartesian_points
        new_labels = classify_points(grid_points[keep], self._centroids)
        return assignment_drift(
            self._candidate_indices, self._labels, keep, new_labels
        )

    # -- observing completed frames ----------------------------------------

    def observe(self, ground_state, tddft_result=None) -> None:
        """Record one completed frame as the new warm-start source."""
        self._ground_state = ground_state
        # Pin the history to float64: a reduced-precision density slipping in
        # here would silently downcast the extrapolated SCF seed (and every
        # later frame blended with it) for the rest of the batch.
        self._densities.append(np.asarray(ground_state.density, dtype=np.float64))
        if len(self._densities) > 3:
            self._densities.pop(0)
        if tddft_result is None:
            return
        self._tddft = tddft_result
        isdf = tddft_result.isdf
        if isdf is None:
            return
        self._isdf_indices = isdf.indices
        info = isdf.selection_info
        if info is not None and getattr(info, "centroids", None) is not None:
            # Fresh selection ran: adopt its clustering as the reference.
            self._centroids = info.centroids
            self._candidate_indices = info.candidate_indices
            self._labels = info.labels
        # On index reuse (selection skipped) the previous clustering stays
        # the drift reference — drift accumulates against the last *actual*
        # selection, not the last frame, so slow monotonic geometry drift
        # still triggers reselection eventually.
