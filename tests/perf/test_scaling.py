"""Tests for the version time models and the paper's scaling claims.

These encode the *shape* assertions of the reproduction: who wins, by
roughly what factor, and how efficiency behaves — checked against the
calibrated model.
"""

import numpy as np
import pytest

from repro.data.calibration import (
    CALIBRATED_SPEC,
    STRONG_SCALING_CORES,
    TABLE6_CORES,
    WEAK_SCALING_CORES,
    paper_workload,
)
from repro.data.paper_reference import (
    PAPER_SPEEDUP_TABLE6,
    PAPER_WEAK_SCALING,
)
from repro.perf import (
    parallel_efficiency,
    predict_construction_breakdown,
    predict_version_time,
    silicon_workload,
    strong_scaling_series,
    weak_scaling_series,
)
from repro.perf.scaling import VERSIONS


class TestPhaseTimes:
    def test_total_is_sum(self):
        w = paper_workload(64)
        t = predict_version_time("naive", w, 128, CALIBRATED_SPEC)
        assert t.total == pytest.approx(t.construction + t.diagonalization)

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            predict_version_time("magic", paper_workload(64), 128)

    def test_naive_has_no_selection_phase(self):
        t = predict_version_time("naive", paper_workload(64), 128, CALIBRATED_SPEC)
        assert t.selection == 0.0
        assert t.fit == 0.0

    def test_isdf_versions_have_selection_phase(self):
        for version in VERSIONS[1:]:
            t = predict_version_time(version, paper_workload(64), 128, CALIBRATED_SPEC)
            assert t.selection > 0.0


class TestVersionOrdering:
    """Table 4's promise: each optimization level is faster than the last."""

    @pytest.mark.parametrize("n_atoms", [64, 216, 512, 1000])
    def test_monotone_improvement(self, n_atoms):
        w = paper_workload(n_atoms)
        totals = [
            predict_version_time(v, w, TABLE6_CORES, CALIBRATED_SPEC).total
            for v in (
                "naive",
                "kmeans-isdf",
                "kmeans-isdf-lobpcg",
                "implicit-kmeans-isdf-lobpcg",
            )
        ]
        assert totals[0] > totals[1] > totals[2] >= totals[3]

    def test_kmeans_selection_cheaper_than_qrcp(self):
        w = paper_workload(512)
        t_q = predict_version_time("qrcp-isdf", w, TABLE6_CORES, CALIBRATED_SPEC)
        t_k = predict_version_time("kmeans-isdf", w, TABLE6_CORES, CALIBRATED_SPEC)
        assert t_k.selection < t_q.selection


class TestTable6Shape:
    def test_speedups_in_paper_band(self):
        """Overall speedup ~10x (Section 6.5): every size in [3, 25]."""
        for label, (_, _, sp_ref) in PAPER_SPEEDUP_TABLE6.items():
            w = paper_workload(int(label[2:]))
            tn = predict_version_time("naive", w, TABLE6_CORES, CALIBRATED_SPEC).total
            to = predict_version_time(
                "implicit-kmeans-isdf-lobpcg", w, TABLE6_CORES, CALIBRATED_SPEC
            ).total
            speedup = tn / to
            assert 3.0 < speedup < 25.0
            # Within a factor 2 of the paper's reported speedup.
            assert 0.5 < speedup / sp_ref < 2.0

    def test_speedup_decreases_with_system_size(self):
        """The paper's Table 6 trend: 13.06 -> 9.89 -> 7.79 -> 6.26."""
        speedups = []
        for n in (64, 216, 512, 1000):
            w = paper_workload(n)
            tn = predict_version_time("naive", w, TABLE6_CORES, CALIBRATED_SPEC).total
            to = predict_version_time(
                "implicit-kmeans-isdf-lobpcg", w, TABLE6_CORES, CALIBRATED_SPEC
            ).total
            speedups.append(tn / to)
        assert all(a > b for a, b in zip(speedups, speedups[1:]))

    def test_absolute_times_within_factor_2(self):
        for label, (tn_ref, to_ref, _) in PAPER_SPEEDUP_TABLE6.items():
            w = paper_workload(int(label[2:]))
            tn = predict_version_time("naive", w, TABLE6_CORES, CALIBRATED_SPEC).total
            to = predict_version_time(
                "implicit-kmeans-isdf-lobpcg", w, TABLE6_CORES, CALIBRATED_SPEC
            ).total
            assert 0.5 < tn / tn_ref < 2.0
            assert 0.4 < to / to_ref < 2.5


class TestStrongScaling:
    def test_naive_efficiency_above_paper_floor(self):
        """Section 6.3: naive keeps >= 50% efficiency up to 2,048 cores."""
        w = paper_workload(1000)
        series = strong_scaling_series(
            "naive", w, list(STRONG_SCALING_CORES), CALIBRATED_SPEC
        )
        effs = parallel_efficiency(series, list(STRONG_SCALING_CORES))
        assert effs[-1] >= 0.5

    def test_times_decrease_with_cores(self):
        w = paper_workload(1000)
        for version in ("naive", "kmeans-isdf", "implicit-kmeans-isdf-lobpcg"):
            series = strong_scaling_series(
                version, w, list(STRONG_SCALING_CORES), CALIBRATED_SPEC
            )
            totals = [t.total for t in series]
            assert all(a > b for a, b in zip(totals, totals[1:]))

    def test_si4096_efficiency_near_paper(self):
        """Section 6.3: 87.34% efficiency from 8,192 to 12,288 cores."""
        w = paper_workload(4096)
        series = strong_scaling_series(
            "implicit-kmeans-isdf-lobpcg", w, [8192, 12288], CALIBRATED_SPEC
        )
        eff = parallel_efficiency(series, [8192, 12288])[1]
        assert 0.7 < eff <= 1.0

    def test_efficiency_of_first_point_is_one(self):
        w = paper_workload(1000)
        series = strong_scaling_series("naive", w, [128, 256], CALIBRATED_SPEC)
        assert parallel_efficiency(series, [128, 256])[0] == pytest.approx(1.0)


class TestWeakScaling:
    def test_monotone_in_system_size(self):
        workloads = [paper_workload(n) for n in (512, 1000, 1728, 2744, 4096)]
        series = weak_scaling_series(workloads, WEAK_SCALING_CORES, CALIBRATED_SPEC)
        totals = [t.total for t in series]
        assert all(a < b for a, b in zip(totals, totals[1:]))

    def test_growth_shape_near_paper(self):
        """Paper ratio Si4096/Si512 = 11.7; model must be within 2x."""
        t512 = predict_version_time(
            "implicit-kmeans-isdf-lobpcg", paper_workload(512),
            WEAK_SCALING_CORES, CALIBRATED_SPEC,
        ).total
        t4096 = predict_version_time(
            "implicit-kmeans-isdf-lobpcg", paper_workload(4096),
            WEAK_SCALING_CORES, CALIBRATED_SPEC,
        ).total
        paper_ratio = PAPER_WEAK_SCALING["Si4096"] / PAPER_WEAK_SCALING["Si512"]
        assert 0.5 < (t4096 / t512) / paper_ratio < 2.0


class TestBreakdown:
    def test_phases_sum_to_construction(self):
        w = paper_workload(1000)
        b = predict_construction_breakdown(w, 1024, CALIBRATED_SPEC)
        t = predict_version_time(
            "implicit-kmeans-isdf-lobpcg", w, 1024, CALIBRATED_SPEC
        )
        assert sum(b.values()) == pytest.approx(t.construction)

    def test_gemm_share_near_paper(self):
        """Section 6.3: GEMM+Allreduce is 12.87% of construction time."""
        w = paper_workload(1000)
        b = predict_construction_breakdown(w, 1024, CALIBRATED_SPEC)
        share = b["gemm_allreduce"] / sum(b.values())
        assert 0.05 < share < 0.25

    def test_all_phases_scale_down_with_cores(self):
        w = paper_workload(1000)
        b_lo = predict_construction_breakdown(w, 128, CALIBRATED_SPEC)
        b_hi = predict_construction_breakdown(w, 2048, CALIBRATED_SPEC)
        for phase in ("kmeans", "fft", "gemm_allreduce"):
            assert b_hi[phase] < b_lo[phase]
