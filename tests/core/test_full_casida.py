"""Tests for the full (non-TDA) Casida solver — the paper's Eq. 1."""

import numpy as np
import pytest

from repro.core import HxcKernel, LRTDDFTSolver, isdf_decompose
from repro.core.full_casida import (
    ImplicitFullCasidaOperator,
    build_full_casida_matrix,
    solve_full_casida_dense,
    solve_full_casida_direct,
)
from repro.utils.rng import default_rng


@pytest.fixture(scope="module")
def solver(si2_ground_state):
    return LRTDDFTSolver(si2_ground_state, seed=7)


@pytest.fixture(scope="module")
def pieces(solver):
    return (solver.psi_v, solver.eps_v, solver.psi_c, solver.eps_c, solver.kernel)


class TestHermitianReduction:
    def test_matches_direct_block_solve(self, pieces):
        """Omega from D^{1/2}(D+4K)D^{1/2} equals the eigenvalues of the
        unreduced non-Hermitian 2N x 2N problem (Eq. 1)."""
        psi_v, eps_v, psi_c, eps_c, kernel = pieces
        m = build_full_casida_matrix(psi_v, eps_v, psi_c, eps_c, kernel)
        omega, _ = solve_full_casida_dense(m)
        direct = solve_full_casida_direct(psi_v, eps_v, psi_c, eps_c, kernel)
        np.testing.assert_allclose(omega, direct, atol=1e-10)

    def test_matrix_is_symmetric(self, pieces):
        psi_v, eps_v, psi_c, eps_c, kernel = pieces
        m = build_full_casida_matrix(psi_v, eps_v, psi_c, eps_c, kernel)
        np.testing.assert_allclose(m, m.T, atol=1e-12)

    def test_negative_transition_energies_rejected(self, pieces):
        psi_v, eps_v, psi_c, eps_c, kernel = pieces
        with pytest.raises(ValueError, match="positive transition"):
            build_full_casida_matrix(psi_v, eps_v + 10.0, psi_c, eps_c, kernel)

    def test_truncation(self, pieces):
        psi_v, eps_v, psi_c, eps_c, kernel = pieces
        m = build_full_casida_matrix(psi_v, eps_v, psi_c, eps_c, kernel)
        omega3, vecs3 = solve_full_casida_dense(m, 3)
        omega_all, _ = solve_full_casida_dense(m)
        np.testing.assert_allclose(omega3, omega_all[:3])
        assert vecs3.shape[1] == 3


class TestPhysics:
    def test_full_below_tda(self, solver):
        """The B-block coupling lowers the lowest excitation vs TDA
        (standard variational ordering for stable references)."""
        tda = solver.solve("naive", n_excitations=3)
        full = solver.solve("naive", n_excitations=3, tda=False)
        assert full.energies[0] <= tda.energies[0] + 1e-12

    def test_full_and_tda_close_for_weak_coupling(self, solver):
        """For silicon's weakly coupled transitions, TDA error is small."""
        tda = solver.solve("naive", n_excitations=3)
        full = solver.solve("naive", n_excitations=3, tda=False)
        rel = np.abs((tda.energies - full.energies) / full.energies)
        assert rel.max() < 0.05


class TestImplicitOperator:
    @pytest.fixture(scope="class")
    def operator(self, solver):
        isdf = isdf_decompose(
            solver.psi_v, solver.psi_c, solver.n_pairs, method="qrcp",
            rng=default_rng(0),
        )
        return ImplicitFullCasidaOperator(
            isdf, solver.eps_v, solver.eps_c, solver.kernel
        )

    def test_apply_matches_materialized(self, operator, rng):
        x = rng.standard_normal((operator.n_pairs, 4))
        np.testing.assert_allclose(
            operator.apply(x), operator.materialize() @ x, atol=1e-10
        )

    def test_symmetric(self, operator, rng):
        a = rng.standard_normal(operator.n_pairs)
        b = rng.standard_normal(operator.n_pairs)
        assert a @ operator.apply(b) == pytest.approx(b @ operator.apply(a))

    def test_one_dimensional_input(self, operator, rng):
        x = rng.standard_normal(operator.n_pairs)
        assert operator.apply(x).shape == (operator.n_pairs,)

    def test_full_rank_matches_exact_full_casida(self, solver, operator, pieces):
        psi_v, eps_v, psi_c, eps_c, kernel = pieces
        m_exact = build_full_casida_matrix(psi_v, eps_v, psi_c, eps_c, kernel)
        np.testing.assert_allclose(operator.materialize(), m_exact, atol=1e-8)


class TestDriverIntegration:
    def test_all_methods_support_full_casida(self, solver):
        reference = solver.solve("naive", n_excitations=4, tda=False)
        for method in (
            "qrcp-isdf",
            "kmeans-isdf-lobpcg",
            "implicit-kmeans-isdf-lobpcg",
            "implicit-qrcp-isdf-lobpcg",
        ):
            res = solver.solve(method, n_excitations=4, tda=False, tol=1e-11)
            rel = np.abs(
                (res.energies - reference.energies[:4]) / reference.energies[:4]
            )
            assert rel.max() < 0.03, method

    def test_qrcp_full_rank_exact(self, solver):
        reference = solver.solve("naive", n_excitations=4, tda=False)
        res = solver.solve("qrcp-isdf", n_excitations=4, tda=False)
        np.testing.assert_allclose(res.energies, reference.energies[:4], atol=1e-8)

    def test_implicit_matches_explicit_same_isdf(self, solver):
        dense = solver.solve("kmeans-isdf", n_excitations=4, tda=False)
        implicit = solver.solve(
            "implicit-kmeans-isdf-lobpcg", n_excitations=4, tda=False, tol=1e-12
        )
        np.testing.assert_allclose(
            implicit.energies, dense.energies[:4], atol=1e-7
        )
