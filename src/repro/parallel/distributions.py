"""Data-distribution descriptors (paper Figure 3).

Three layouts drive the LR-TDDFT pipeline:

* **column block** — each rank owns contiguous whole columns (bands or
  orbital pairs); the FFT layout, since a rank can transform its pairs
  independently (Fig 3a),
* **row block** — each rank owns contiguous grid rows of every column; the
  GEMM / face-splitting-product layout (Fig 3b),
* **2-D block cyclic** — ScaLAPACK's layout for the dense diagonalization
  (Fig 3c).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require


@dataclass(frozen=True)
class BlockDistribution1D:
    """Contiguous block partition of ``n_global`` items over ``n_ranks``.

    The first ``n_global % n_ranks`` ranks get one extra item (the standard
    near-even split).
    """

    n_global: int
    n_ranks: int

    def __post_init__(self) -> None:
        require(self.n_global >= 0, "n_global must be non-negative")
        require(self.n_ranks >= 1, "n_ranks must be positive")

    def count(self, rank: int) -> int:
        """Number of items owned by ``rank``."""
        base, extra = divmod(self.n_global, self.n_ranks)
        return base + (1 if rank < extra else 0)

    def counts(self) -> np.ndarray:
        return np.array([self.count(r) for r in range(self.n_ranks)])

    def displacement(self, rank: int) -> int:
        """Global index of the first item owned by ``rank``."""
        base, extra = divmod(self.n_global, self.n_ranks)
        return rank * base + min(rank, extra)

    def local_slice(self, rank: int) -> slice:
        start = self.displacement(rank)
        return slice(start, start + self.count(rank))

    def owner(self, global_index: int) -> int:
        require(0 <= global_index < self.n_global, f"index {global_index} out of range")
        base, extra = divmod(self.n_global, self.n_ranks)
        threshold = extra * (base + 1)
        if global_index < threshold:
            return global_index // (base + 1)
        return extra + (global_index - threshold) // max(base, 1)

    def global_indices(self, rank: int) -> np.ndarray:
        s = self.local_slice(rank)
        return np.arange(s.start, s.stop)


@dataclass(frozen=True)
class BlockCyclic2D:
    """ScaLAPACK-style 2-D block-cyclic descriptor.

    Matrix of shape ``(m, n)`` over a ``p_rows x p_cols`` process grid with
    ``mb x nb`` blocks; the process holding global entry ``(i, j)`` is
    ``((i // mb) mod p_rows, (j // nb) mod p_cols)``.
    """

    m: int
    n: int
    mb: int
    nb: int
    p_rows: int
    p_cols: int

    def __post_init__(self) -> None:
        require(self.mb >= 1 and self.nb >= 1, "block sizes must be positive")
        require(self.p_rows >= 1 and self.p_cols >= 1, "grid dims must be positive")

    @property
    def n_ranks(self) -> int:
        return self.p_rows * self.p_cols

    def grid_coords(self, rank: int) -> tuple[int, int]:
        """Row-major rank -> (process row, process column)."""
        require(0 <= rank < self.n_ranks, f"bad rank {rank}")
        return divmod(rank, self.p_cols)[0], rank % self.p_cols

    def owner(self, i: int, j: int) -> int:
        pr = (i // self.mb) % self.p_rows
        pc = (j // self.nb) % self.p_cols
        return pr * self.p_cols + pc

    def local_rows(self, rank: int) -> np.ndarray:
        """Global row indices owned by ``rank`` (ascending)."""
        pr, _ = self.grid_coords(rank)
        rows = np.arange(self.m)
        return rows[(rows // self.mb) % self.p_rows == pr]

    def local_cols(self, rank: int) -> np.ndarray:
        _, pc = self.grid_coords(rank)
        cols = np.arange(self.n)
        return cols[(cols // self.nb) % self.p_cols == pc]

    def local_shape(self, rank: int) -> tuple[int, int]:
        return self.local_rows(rank).size, self.local_cols(rank).size

    def extract_local(self, matrix: np.ndarray, rank: int) -> np.ndarray:
        """Local block-cyclic tile of a (test-side) global matrix."""
        require(matrix.shape == (self.m, self.n), "matrix/descriptor mismatch")
        return matrix[np.ix_(self.local_rows(rank), self.local_cols(rank))]

    def assemble_global(self, locals_by_rank: list[np.ndarray]) -> np.ndarray:
        """Rebuild the global matrix from all local tiles."""
        require(len(locals_by_rank) == self.n_ranks, "need one tile per rank")
        out = np.zeros(
            (self.m, self.n), dtype=locals_by_rank[0].dtype if self.n_ranks else float
        )
        for rank, tile in enumerate(locals_by_rank):
            rows = self.local_rows(rank)
            cols = self.local_cols(rank)
            require(
                tile.shape == (rows.size, cols.size),
                f"rank {rank}: tile {tile.shape} vs expected {(rows.size, cols.size)}",
            )
            out[np.ix_(rows, cols)] = tile
        return out
