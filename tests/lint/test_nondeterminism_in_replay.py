"""The checkpoint-replay determinism pass."""

from repro.lint import lint_source

import pytest

pytestmark = pytest.mark.lint

RULE = ["nondeterminism-in-replay"]


def findings_in(src: str):
    return lint_source(src, rules=RULE)


class TestScope:
    def test_checkpoint_parameter_enables_the_rule(self):
        src = (
            "import time\n"
            "def loop(x, checkpoint=None):\n"
            "    return time.time()\n"
        )
        (finding,) = findings_in(src)
        assert "time.time" in finding.message

    def test_loopcheckpointer_usage_enables_the_rule(self):
        src = (
            "import time\n"
            "def loop(x, tmpdir):\n"
            "    cp = LoopCheckpointer(tmpdir, tag='scf')\n"
            "    return time.time()\n"
        )
        assert len(findings_in(src)) == 1

    def test_plain_function_is_out_of_scope(self):
        src = "import time\ndef loop(x):\n    return time.time()\n"
        assert findings_in(src) == []


class TestWallclockAndRng:
    def test_unseeded_global_rng_flagged(self):
        src = (
            "import numpy as np\n"
            "def loop(checkpoint):\n"
            "    return np.random.rand(3)\n"
        )
        (finding,) = findings_in(src)
        assert "unseeded" in finding.message

    def test_seeded_generator_factory_is_clean(self):
        src = (
            "import numpy as np\n"
            "def loop(checkpoint):\n"
            "    rng = np.random.default_rng(0)\n"
            "    return rng.normal(size=3)\n"
        )
        assert findings_in(src) == []


class TestDictIteration:
    def test_dict_items_feeding_accumulation_flagged(self):
        src = (
            "def loop(table, checkpoint):\n"
            "    total = 0.0\n"
            "    for key, val in table.items():\n"
            "        total += val\n"
            "    return total\n"
        )
        (finding,) = findings_in(src)
        assert "sorted" in finding.message

    def test_dict_values_feeding_comm_reduce_flagged(self):
        src = (
            "def loop(comm, table, checkpoint):\n"
            "    for val in table.values():\n"
            "        comm.allreduce(val)\n"
        )
        assert len(findings_in(src)) == 1

    def test_sorted_iteration_is_clean(self):
        src = (
            "def loop(table, checkpoint):\n"
            "    total = 0.0\n"
            "    for key in sorted(table):\n"
            "        total += table[key]\n"
            "    return total\n"
        )
        assert findings_in(src) == []

    def test_non_accumulating_dict_loop_is_clean(self):
        src = (
            "def loop(table, checkpoint):\n"
            "    for key, val in table.items():\n"
            "        print(key, val)\n"
        )
        assert findings_in(src) == []
