"""Cross-calculation batching: warm-started pipelines over structure sets.

See :func:`repro.batch.run_batch` (also exported as
:func:`repro.api.run_batch`) and ``docs/batching.md``.
"""

from repro.batch.engine import run_batch
from repro.batch.results import BatchResult, FrameRecord, FrameResult
from repro.batch.trajectory import frame_fingerprint, perturbed_trajectory
from repro.batch.warm import BatchWarmState, assignment_drift

__all__ = [
    "BatchResult",
    "BatchWarmState",
    "FrameRecord",
    "FrameResult",
    "assignment_drift",
    "frame_fingerprint",
    "perturbed_trajectory",
    "run_batch",
]
