"""Result objects round-trip exactly through the npz+json payload format."""

import numpy as np
import pytest

from repro import api
from repro.atoms import silicon_primitive_cell
from repro.core import LRTDDFTSolver
from repro.dft.groundstate import GroundState
from repro.rt.tddft import RTResult
from repro.synthetic import synthetic_ground_state
from repro.utils.serialization import (
    SerializationError,
    load_payload,
    save_payload,
)


@pytest.fixture(scope="module")
def tiny_gs():
    return synthetic_ground_state(
        silicon_primitive_cell(), ecut=4.0, n_valence=4, n_conduction=4, seed=7
    )


class TestPayload:
    def test_nested_round_trip(self, tmp_path):
        payload = {
            "arr": np.arange(6.0).reshape(2, 3),
            "cplx": np.array([1 + 2j, 3 - 4j]),
            "nested": {"list": [1, "two", None, np.ones(2)], "flag": True},
            "scalar": 0.1 + 0.2,
        }
        path = tmp_path / "p.npz"
        save_payload(path, payload)
        out = load_payload(path)
        np.testing.assert_array_equal(out["arr"], payload["arr"])
        np.testing.assert_array_equal(out["cplx"], payload["cplx"])
        assert out["nested"]["flag"] is True
        assert out["nested"]["list"][1] == "two"
        assert out["nested"]["list"][2] is None
        np.testing.assert_array_equal(out["nested"]["list"][3], np.ones(2))
        assert out["scalar"] == payload["scalar"]  # bit-exact float round-trip

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(SerializationError, match="reserved"):
            save_payload(tmp_path / "p.npz", {"__meta__": 1})

    def test_non_string_key_rejected(self, tmp_path):
        with pytest.raises(SerializationError, match="keys must be str"):
            save_payload(tmp_path / "p.npz", {1: "x"})

    def test_not_a_payload_file(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, a=np.ones(3))
        with pytest.raises(SerializationError, match="not a repro payload"):
            load_payload(path)


class TestGroundStateRoundTrip:
    def test_bit_identical(self, tiny_gs, tmp_path):
        path = tmp_path / "gs.npz"
        tiny_gs.save(path)
        loaded = GroundState.load(path)
        np.testing.assert_array_equal(loaded.energies, tiny_gs.energies)
        np.testing.assert_array_equal(
            loaded.orbitals_real, tiny_gs.orbitals_real
        )
        np.testing.assert_array_equal(loaded.occupations, tiny_gs.occupations)
        np.testing.assert_array_equal(loaded.density, tiny_gs.density)
        assert loaded.total_energy == tiny_gs.total_energy
        assert loaded.converged == tiny_gs.converged
        assert loaded.basis.n_r == tiny_gs.basis.n_r
        assert loaded.basis.cell.species == tiny_gs.basis.cell.species

    def test_loaded_state_is_usable(self, tiny_gs, tmp_path):
        path = tmp_path / "gs.npz"
        tiny_gs.save(path)
        loaded = GroundState.load(path)
        psi_v, eps_v, psi_c, eps_c = loaded.select_transition_space()
        assert psi_v.shape[0] == tiny_gs.n_occupied

    def test_class_tag_enforced(self, tiny_gs, tmp_path):
        path = tmp_path / "gs.npz"
        tiny_gs.save(path)
        with pytest.raises(SerializationError, match="GroundState"):
            RTResult.load(path)


class TestLRTDDFTResultRoundTrip:
    def test_round_trip_with_isdf(self, tiny_gs, tmp_path):
        solver = LRTDDFTSolver(tiny_gs, seed=0)
        result = solver.solve(api.TDDFTConfig(method="kmeans-isdf"))
        path = tmp_path / "td.npz"
        result.save(path)
        loaded = api.LRTDDFTResult.load(path)
        np.testing.assert_array_equal(loaded.energies, result.energies)
        np.testing.assert_array_equal(
            loaded.wavefunctions, result.wavefunctions
        )
        assert loaded.method == result.method
        assert loaded.n_mu == result.n_mu
        assert loaded.converged == result.converged
        np.testing.assert_array_equal(loaded.isdf.theta, result.isdf.theta)
        np.testing.assert_array_equal(loaded.isdf.indices, result.isdf.indices)

    def test_round_trip_naive_has_no_isdf(self, tiny_gs, tmp_path):
        solver = LRTDDFTSolver(tiny_gs, seed=0)
        result = solver.solve(api.TDDFTConfig(method="naive", n_excitations=3))
        path = tmp_path / "naive.npz"
        result.save(path)
        loaded = api.LRTDDFTResult.load(path)
        assert loaded.isdf is None
        np.testing.assert_array_equal(loaded.energies, result.energies)


class TestRTResultRoundTrip:
    def test_bit_identical(self, tmp_path):
        rng = np.random.default_rng(3)
        result = RTResult(
            times=np.linspace(0.0, 1.0, 6),
            dipoles=rng.standard_normal((6, 3)),
            norms=rng.random(6),
            kick_strength=1e-3,
            kick_direction=np.array([0.0, 0.0, 1.0]),
        )
        path = tmp_path / "rt.npz"
        result.save(path)
        loaded = RTResult.load(path)
        np.testing.assert_array_equal(loaded.times, result.times)
        np.testing.assert_array_equal(loaded.dipoles, result.dipoles)
        np.testing.assert_array_equal(loaded.norms, result.norms)
        assert loaded.kick_strength == result.kick_strength


class TestLoadResultDispatch:
    def test_dispatches_on_class_tag(self, tiny_gs, tmp_path):
        path = tmp_path / "gs.npz"
        tiny_gs.save(path)
        loaded = api.load_result(path)
        assert isinstance(loaded, GroundState)

    def test_unknown_tag_rejected(self, tmp_path):
        path = tmp_path / "odd.npz"
        save_payload(path, {"class": "Mystery", "data": {}})
        with pytest.raises(SerializationError, match="Mystery"):
            api.load_result(path)
