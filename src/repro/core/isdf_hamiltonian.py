"""ISDF-compressed explicit LR-TDDFT Hamiltonian (Eqs. 6-7).

With the pair products factored as ``Z ~= Theta C``, the
Hartree-exchange-correlation matrix collapses to

    V_Hxc ~= C^T  Vtilde  C,      Vtilde = Theta^T (f_Hxc Theta) dV,

so only ``N_mu`` kernel applications (FFTs) are needed instead of ``N_cv``,
and the heavy GEMMs shrink from ``N_r x N_cv`` to ``N_r x N_mu``.  These are
versions (2) and (3) of the paper's Table 4; the projected kernel
``Vtilde`` is also exactly the object the implicit method (version 5)
caches.
"""

from __future__ import annotations

import numpy as np

from repro.core.isdf import ISDFDecomposition
from repro.core.kernel import HxcKernel
from repro.core.pair_products import pair_energies
from repro.utils.linalg import symmetrize
from repro.utils.timers import TimerRegistry


def project_kernel(
    isdf: ISDFDecomposition,
    kernel: HxcKernel,
    *,
    timers: TimerRegistry | None = None,
) -> np.ndarray:
    """``Vtilde = Theta^T f_Hxc Theta`` of shape ``(N_mu, N_mu)`` (Eq. 7)."""
    timers = timers or TimerRegistry()
    with timers.scope("isdf_h/kernel_fft"):
        k_theta = kernel.apply(isdf.theta.T).T  # (N_r, N_mu)
    with timers.scope("isdf_h/gemm_project"):
        vtilde = (isdf.theta.T @ k_theta) * kernel.basis.grid.dv
    return symmetrize(vtilde)


def build_isdf_hamiltonian(
    isdf: ISDFDecomposition,
    eps_v: np.ndarray,
    eps_c: np.ndarray,
    kernel: HxcKernel,
    *,
    timers: TimerRegistry | None = None,
    vtilde: np.ndarray | None = None,
) -> np.ndarray:
    """Explicit ``H = D + 2 C^T Vtilde C`` of shape ``(N_cv, N_cv)``.

    ``vtilde`` may be passed in when already computed (ablations reuse it).
    """
    timers = timers or TimerRegistry()
    if vtilde is None:
        vtilde = project_kernel(isdf, kernel, timers=timers)
    with timers.scope("isdf_h/assemble"):
        c = isdf.coefficients()  # (N_mu, N_cv)
        h = 2.0 * (c.T @ (vtilde @ c))
        h = symmetrize(h)
        h[np.diag_indices_from(h)] += pair_energies(
            np.asarray(eps_v, float), np.asarray(eps_c, float)
        )
    return h
