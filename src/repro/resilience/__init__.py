"""Resilience subsystem: checkpoint/restart, fault injection, recovery policies.

The production context of the paper (PWDFT on Cori at 12,288 cores)
assumes long-running jobs that survive node loss and restart
mid-iteration.  This package supplies the three ingredients for the
reproduction:

* :mod:`repro.resilience.checkpoint` — versioned on-disk snapshots for the
  three iterative loops (SCF, LOBPCG, the ISDF pipeline) plus real-time
  propagation, built on :mod:`repro.utils.serialization`;
* :mod:`repro.resilience.faults` — a fault-injection harness wired into
  the SPMD executor and communicator: kill a rank, drop or delay a
  message, or corrupt a reduce buffer at a configured step;
* :mod:`repro.resilience.policies` — retry-with-backoff, reliable
  (ack-based) point-to-point delivery, verified collectives, and graceful
  degradation (scipy->numpy FFT, K-Means->QRCP selection, iterative->dense
  eigensolver).
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    CheckpointManager,
    LoopCheckpointer,
)
from repro.resilience.events import (
    DegradationEvent,
    ResilienceLog,
    resilience_log,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    InjectedRankFailure,
)
from repro.resilience.policies import (
    ResilientFFTEngine,
    RetryPolicy,
    reliable_recv,
    reliable_send,
    verified_allreduce,
    with_retry,
)

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "CheckpointManager",
    "DegradationEvent",
    "LoopCheckpointer",
    "FAULT_KINDS",
    "ResilienceLog",
    "resilience_log",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "InjectedRankFailure",
    "ResilientFFTEngine",
    "RetryPolicy",
    "reliable_recv",
    "reliable_send",
    "verified_allreduce",
    "with_retry",
]
