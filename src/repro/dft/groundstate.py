"""The ground-state container handed from KS-DFT to LR-TDDFT.

LR-TDDFT (Algorithm 1 of the paper) consumes exactly three things from the
ground state: orbital energies, occupations, and *real-valued* real-space
orbitals.  At the Gamma point of a real potential the KS orbitals can always
be chosen real; :func:`realify_orbitals` enforces that choice even inside
degenerate groups where a complex eigensolver returns arbitrary unitary
mixtures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.pw.basis import PlaneWaveBasis
from repro.pw.cell import UnitCell
from repro.utils.serialization import SerializableResult
from repro.utils.validation import require


def _degenerate_groups(energies: np.ndarray, tol: float = 1e-5) -> list[list[int]]:
    """Chain nearly-degenerate consecutive energies into groups."""
    groups: list[list[int]] = []
    for i, e in enumerate(energies):
        if groups and abs(e - energies[groups[-1][-1]]) < tol:
            groups[-1].append(i)
        else:
            groups.append([i])
    return groups


def realify_orbitals(
    coeffs: np.ndarray,
    energies: np.ndarray,
    basis: PlaneWaveBasis,
    apply_h: Callable[[np.ndarray], np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Rotate Gamma-point orbitals to a real-valued gauge.

    Parameters
    ----------
    coeffs:
        ``(n_bands, N_pw)`` complex sphere coefficients (rows = bands).
    energies:
        ``(n_bands,)`` eigenvalues, ascending.
    apply_h:
        The KS Hamiltonian block application (rows = bands), used to
        re-diagonalize inside degenerate groups after realification.

    Returns
    -------
    ``(orbitals_real, energies)`` with ``orbitals_real`` of shape
    ``(n_bands, N_r)``, float64, orthonormal under the grid metric.
    """
    psi = basis.to_real(coeffs)  # (nb, Nr) complex
    dv = basis.grid.dv
    out = np.empty_like(psi, dtype=float)
    new_energies = np.array(energies, dtype=float, copy=True)

    for group in _degenerate_groups(np.asarray(energies, dtype=float)):
        block = psi[group]  # (m, Nr)
        m = len(group)
        # Span of a conjugation-closed subspace: the real/imag parts contain
        # an m-dimensional real basis. Extract it with an SVD.
        stacked = np.vstack([block.real, block.imag])  # (2m, Nr)
        _, svals, vt = np.linalg.svd(stacked, full_matrices=False)
        require(
            svals[m - 1] > 1e-8 * max(svals[0], 1e-30),
            "degenerate group is not conjugation-closed; cannot realify "
            "(is the Hamiltonian real at Gamma?)",
        )
        real_basis = vt[:m] / np.sqrt(dv)  # orthonormal under grid metric
        if m == 1:
            # Align sign with the dominant-amplitude convention.
            peak = np.argmax(np.abs(real_basis[0]))
            if real_basis[0, peak] < 0:
                real_basis = -real_basis
            out[group[0]] = real_basis[0]
            continue
        # Re-diagonalize H inside the real subspace to restore eigenvectors.
        group_coeffs = basis.to_recip(real_basis.astype(complex))
        h_block = apply_h(group_coeffs)
        h_small = (group_coeffs.conj() @ h_block.T).real
        h_small = 0.5 * (h_small + h_small.T)
        evals, evecs = np.linalg.eigh(h_small)
        out[group] = evecs.T @ real_basis
        new_energies[group] = evals

    return out, new_energies


@dataclass
class GroundState(SerializableResult):
    """Converged (or synthetic) ground-state data.

    Attributes
    ----------
    basis:
        The plane-wave basis the orbitals live on.
    energies:
        ``(n_bands,)`` KS eigenvalues, ascending, in Hartree.
    orbitals_real:
        ``(n_bands, N_r)`` real orbitals, ``int |psi|^2 dr = 1``.
    occupations:
        ``(n_bands,)`` occupation numbers.
    density:
        ``(N_r,)`` electron density.
    total_energy:
        Total energy (Hartree); carries the usual G=0 convention constant.
    converged:
        SCF convergence flag (synthetic states set it True by construction).
    history:
        Per-SCF-iteration diagnostics.
    """

    basis: PlaneWaveBasis
    energies: np.ndarray
    orbitals_real: np.ndarray
    occupations: np.ndarray
    density: np.ndarray
    total_energy: float = 0.0
    converged: bool = True
    history: list[dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        nb = self.energies.shape[0]
        require(
            self.orbitals_real.shape == (nb, self.basis.n_r),
            f"orbitals must be ({nb}, {self.basis.n_r}), "
            f"got {self.orbitals_real.shape}",
        )
        require(
            self.occupations.shape == (nb,),
            f"occupations must be ({nb},), got {self.occupations.shape}",
        )

    @property
    def n_bands(self) -> int:
        return self.energies.shape[0]

    @property
    def n_electrons(self) -> float:
        return float(self.occupations.sum())

    @property
    def n_occupied(self) -> int:
        """Number of (essentially) filled bands."""
        return int((self.occupations > 1.0).sum())

    def homo_lumo_gap(self) -> float:
        """KS gap between highest occupied and lowest empty computed band."""
        n_occ = self.n_occupied
        require(0 < n_occ < self.n_bands, "need both occupied and empty bands")
        return float(self.energies[n_occ] - self.energies[n_occ - 1])

    def select_transition_space(
        self, n_valence: int | None = None, n_conduction: int | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Split into the (psi_v, eps_v, psi_c, eps_c) blocks LR-TDDFT uses.

        Defaults: all occupied bands as valence, all computed empty bands as
        conduction.  Explicit ``n_valence`` takes the *topmost* occupied
        bands (the ones that matter for low excitations).
        """
        n_occ = self.n_occupied
        require(n_occ >= 1, "no occupied bands")
        require(self.n_bands > n_occ, "no conduction bands were computed")
        nv = n_occ if n_valence is None else min(n_valence, n_occ)
        nc = (
            self.n_bands - n_occ
            if n_conduction is None
            else min(n_conduction, self.n_bands - n_occ)
        )
        v_slice = slice(n_occ - nv, n_occ)
        c_slice = slice(n_occ, n_occ + nc)
        return (
            self.orbitals_real[v_slice],
            self.energies[v_slice],
            self.orbitals_real[c_slice],
            self.energies[c_slice],
        )

    # -- serialization (see repro.utils.serialization) ----------------------

    def to_dict(self) -> dict:
        """Payload dict: the cell geometry + cutoff rebuild the basis."""
        cell = self.basis.cell
        return {
            "cell": {
                "lattice": np.asarray(cell.lattice, dtype=float),
                "species": list(cell.species),
                "fractional_positions": np.asarray(
                    cell.fractional_positions, dtype=float
                ),
            },
            "ecut": float(self.basis.ecut),
            "energies": self.energies,
            "orbitals_real": self.orbitals_real,
            "occupations": self.occupations,
            "density": self.density,
            "total_energy": float(self.total_energy),
            "converged": bool(self.converged),
            "history": self.history,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GroundState":
        cell_data = data["cell"]
        cell = UnitCell(
            lattice=np.array(cell_data["lattice"], dtype=float),
            species=tuple(cell_data["species"]),
            fractional_positions=np.array(
                cell_data["fractional_positions"], dtype=float
            ),
        )
        basis = PlaneWaveBasis(cell, float(data["ecut"]))
        return cls(
            basis=basis,
            energies=np.array(data["energies"]),
            orbitals_real=np.array(data["orbitals_real"]),
            occupations=np.array(data["occupations"]),
            density=np.array(data["density"]),
            total_energy=float(data["total_energy"]),
            converged=bool(data["converged"]),
            history=[dict(h) for h in data.get("history") or []],
        )
