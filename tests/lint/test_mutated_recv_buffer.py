"""The shared-receive-buffer mutation pass (static twin of the sanitizer's
shared-write detector)."""

from repro.lint import lint_source

import pytest

pytestmark = pytest.mark.lint

RULE = ["mutated-recv-buffer"]


def findings_in(src: str):
    return lint_source(src, rules=RULE)


class TestPositive:
    def test_subscript_write_into_recv(self):
        src = (
            "def prog(comm):\n"
            "    buf = comm.recv(0, tag=1)\n"
            "    buf[0] = 99.0\n"
        )
        (finding,) = findings_in(src)
        assert "buf" in finding.message and ".copy()" in finding.message
        assert finding.line == 3

    def test_augassign_on_bcast_result(self):
        src = (
            "def prog(comm, x):\n"
            "    view = comm.bcast(x, root=0)\n"
            "    view += 1.0\n"
        )
        assert len(findings_in(src)) == 1

    def test_mutating_method_on_scatter_result(self):
        src = (
            "def prog(comm, chunks):\n"
            "    mine = comm.scatter(chunks, root=0)\n"
            "    mine.sort()\n"
        )
        assert len(findings_in(src)) == 1

    def test_out_kwarg_targeting_redistribute_result(self):
        src = (
            "import numpy as np\n"
            "def prog(comm, a, dist):\n"
            "    block = transpose_to_row_block(comm, a, dist)\n"
            "    np.matmul(a, a, out=block)\n"
        )
        assert len(findings_in(src)) == 1

    def test_reliable_recv_result_is_tracked(self):
        src = (
            "def prog(comm):\n"
            "    v = reliable_recv(comm, source=0)\n"
            "    v[0] = 1\n"
        )
        assert len(findings_in(src)) == 1


class TestNegative:
    def test_copy_before_mutation_is_the_fix(self):
        src = (
            "def prog(comm):\n"
            "    buf = comm.recv(0, tag=1)\n"
            "    buf = buf.copy()\n"
            "    buf[0] = 99.0\n"
        )
        assert findings_in(src) == []

    def test_reading_recv_buffer_is_clean(self):
        src = (
            "def prog(comm):\n"
            "    buf = comm.recv(0, tag=1)\n"
            "    return buf[0] + buf.sum()\n"
        )
        assert findings_in(src) == []

    def test_mutating_a_local_array_is_clean(self):
        src = (
            "import numpy as np\n"
            "def prog(comm):\n"
            "    buf = np.zeros(4)\n"
            "    buf[0] = 1.0\n"
            "    return buf\n"
        )
        assert findings_in(src) == []

    def test_unrelated_method_calls_are_clean(self):
        src = (
            "def prog(comm):\n"
            "    buf = comm.recv(0, tag=1)\n"
            "    return buf.reshape(2, 2)\n"
        )
        assert findings_in(src) == []
