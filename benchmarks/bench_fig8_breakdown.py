"""Paper Figure 8: phase breakdown of Hamiltonian construction vs cores.

The paper splits the optimized construction into four parts — (1) K-Means,
(2) FFT, (3) MPI, (4) GEMM and Allreduce — and shows each scaling to 2,048
cores, with GEMM+Allreduce only ~12.87% of the total (the price of the
implicit method's extra reduction traffic, called "a trade-off between
efficiency and strong scaling").
"""

import pytest

from repro.data.calibration import (
    CALIBRATED_SPEC,
    STRONG_SCALING_CORES,
    paper_workload,
)
from repro.data.paper_reference import PAPER_GEMM_ALLREDUCE_SHARE
from repro.perf import predict_construction_breakdown

PHASES = ("kmeans", "fft", "mpi", "gemm_allreduce")


def test_fig8_breakdown(benchmark, save_table):
    w = paper_workload(1000)
    cores = list(STRONG_SCALING_CORES)

    def run():
        return {
            c: predict_construction_breakdown(w, c, CALIBRATED_SPEC)
            for c in cores
        }

    table = benchmark(run)

    lines = [
        "Figure 8 — construction-phase breakdown, Si_1000 (modeled seconds)",
        "",
        f"{'cores':>7s}" + "".join(f"{p:>16s}" for p in PHASES)
        + f"{'total':>10s} {'gemm share':>11s}",
    ]
    for c in cores:
        b = table[c]
        total = sum(b.values())
        lines.append(
            f"{c:7d}"
            + "".join(f"{b[p]:16.3f}" for p in PHASES)
            + f"{total:10.3f} {b['gemm_allreduce'] / total:10.1%}"
        )
    lines += [
        "",
        f"paper: GEMM+Allreduce is {PAPER_GEMM_ALLREDUCE_SHARE:.2%} of "
        "construction time (Section 6.3).",
    ]
    save_table("fig8_breakdown", "\n".join(lines))

    # Every compute phase keeps scaling to 2,048 cores (the figure's point).
    for phase in ("kmeans", "fft", "gemm_allreduce"):
        series = [table[c][phase] for c in cores]
        assert all(a > b for a, b in zip(series, series[1:])), phase

    # GEMM+Allreduce stays a small share, near the paper's 12.87%.
    for c in cores:
        share = table[c]["gemm_allreduce"] / sum(table[c].values())
        assert 0.03 < share < 0.3

    # MPI share *grows* with core count (the scaling limiter the paper
    # attributes the efficiency loss to).
    mpi_share = [table[c]["mpi"] / sum(table[c].values()) for c in cores]
    assert mpi_share[-1] > mpi_share[0]
