"""Distributed weighted K-Means must reproduce the serial algorithm."""

import numpy as np
import pytest

from repro.core import pair_weights
from repro.core.kmeans import weighted_kmeans
from repro.parallel import BlockDistribution1D, distributed_kmeans, spmd_run


@pytest.fixture(scope="module")
def workload(si8_synthetic):
    gs = si8_synthetic
    psi_v, _, psi_c, _ = gs.select_transition_space()
    w = pair_weights(psi_v, psi_c)
    keep = np.flatnonzero(w >= 1e-6 * w.max())
    return gs.basis.grid.cartesian_points[keep], w[keep]


@pytest.fixture(scope="module")
def serial_result(workload):
    points, weights = workload
    return weighted_kmeans(points, weights, 20, init="greedy-weight")


@pytest.mark.parametrize("n_ranks", [1, 2, 3, 4, 8])
def test_matches_serial(workload, serial_result, n_ranks):
    points, weights = workload
    c_ref, l_ref, i_ref, n_ref, conv_ref = serial_result
    dist = BlockDistribution1D(len(points), n_ranks)

    def prog(comm):
        sl = dist.local_slice(comm.rank)
        return distributed_kmeans(
            comm, points[sl], weights[sl], 20, dist
        )

    results = spmd_run(n_ranks, prog)
    centroids = results[0][0]
    labels = np.concatenate([r[1] for r in results])
    inertia = results[0][2]
    converged = results[0][4]

    assert converged == conv_ref
    np.testing.assert_allclose(centroids, c_ref, atol=1e-12)
    np.testing.assert_array_equal(labels, l_ref)
    assert inertia == pytest.approx(i_ref, rel=1e-12)


def test_centroids_replicated_across_ranks(workload):
    points, weights = workload
    dist = BlockDistribution1D(len(points), 3)

    def prog(comm):
        sl = dist.local_slice(comm.rank)
        c, *_ = distributed_kmeans(comm, points[sl], weights[sl], 10, dist)
        return c

    results = spmd_run(3, prog)
    np.testing.assert_array_equal(results[0], results[1])
    np.testing.assert_array_equal(results[0], results[2])


def test_handles_rank_with_no_points():
    rng = np.random.default_rng(0)
    points = rng.standard_normal((3, 3))
    weights = np.ones(3)
    dist = BlockDistribution1D(3, 5)  # ranks 3, 4 own nothing

    def prog(comm):
        sl = dist.local_slice(comm.rank)
        return distributed_kmeans(comm, points[sl], weights[sl], 2, dist)

    results = spmd_run(5, prog)
    assert results[0][0].shape == (2, 3)


def test_communication_is_small(workload):
    """Lloyd traffic must scale with n_clusters, not with the point count
    (only the initial seeding gathers the pruned candidates once)."""
    points, weights = workload
    dist = BlockDistribution1D(len(points), 4)

    def prog(comm):
        sl = dist.local_slice(comm.rank)
        distributed_kmeans(comm, points[sl], weights[sl], 10, dist)

    _, traffic = spmd_run(4, prog, return_traffic=True)
    lloyd_bytes = traffic.bytes_by_op.get("allreduce", 0)
    gather_bytes = traffic.bytes_by_op.get("allgather", 0)
    # Per-iteration allreduce payload: (10 clusters x 5 stats x 8 bytes).
    assert lloyd_bytes < 200 * 10 * 5 * 8 * 4  # generous iteration bound
    assert gather_bytes > 0  # the one-time seeding gather happened


def test_warm_start_converges_faster(workload, serial_result):
    """Centroid warm starts (the batch engine's K-Means reuse) must cut the
    iteration count and still land on the same fixed point."""
    points, weights = workload
    c_ref, _, _, n_ref, _ = serial_result
    dist = BlockDistribution1D(len(points), 2)

    def prog(comm):
        sl = dist.local_slice(comm.rank)
        return distributed_kmeans(
            comm, points[sl], weights[sl], 20, dist, initial_centroids=c_ref
        )

    results = spmd_run(2, prog)
    centroids, _, _, n_iter, converged = results[0]
    assert converged
    assert n_iter < n_ref
    np.testing.assert_allclose(centroids, c_ref, atol=1e-12)


@pytest.mark.process_backend
def test_warm_start_bit_identical_across_backends(workload, serial_result):
    """A warm-started distributed selection must return byte-for-byte the
    same clustering on the thread and process SPMD backends."""
    points, weights = workload
    c_ref = serial_result[0]
    dist = BlockDistribution1D(len(points), 2)

    def prog(comm):
        sl = dist.local_slice(comm.rank)
        return distributed_kmeans(
            comm, points[sl], weights[sl], 20, dist, initial_centroids=c_ref
        )

    thread = spmd_run(2, prog, backend="thread")
    process = spmd_run(2, prog, backend="process")
    for t, p in zip(thread, process):
        np.testing.assert_array_equal(t[0], p[0])  # centroids
        np.testing.assert_array_equal(t[1], p[1])  # labels
        assert t[2] == p[2]  # inertia, exact
        assert t[3:] == p[3:]  # n_iter, converged
