"""Runtime SPMD sanitizer: mismatch, race and deadlock diagnosis.

Every scenario that used to be a hang or silent corruption must become a
:class:`SanitizerError` naming the offending ranks — and clean programs must
run unchanged (same results with and without the sanitizer).
"""

import time

import numpy as np
import pytest

from repro.parallel import SanitizerError, spmd_run
from repro.parallel.sanitizer import SpmdSanitizer, describe_payload, env_enabled
from repro.resilience.faults import (
    FaultInjector,
    FaultSpec,
    InjectedRankFailure,
)
from repro.resilience.policies import RetryPolicy, reliable_recv, reliable_send

FAST = RetryPolicy(max_retries=2, backoff=0.0, timeout=0.2)
TIMEOUT = 2.0  # deadlock scenarios must diagnose well inside the suite budget


class TestCleanPrograms:
    def test_collectives_unchanged_under_sanitizer(self):
        def prog(comm):
            total = comm.allreduce(comm.rank)
            rows = comm.allgather(np.full(comm.rank + 1, comm.rank))
            root_view = comm.bcast(
                np.arange(3.0) if comm.rank == 0 else None, root=0
            )
            comm.barrier()
            return total, [r.shape[0] for r in rows], float(root_view.sum())

        plain = spmd_run(4, prog, sanitize=False)
        sanitized = spmd_run(4, prog, sanitize=True, sanitize_timeout=TIMEOUT)
        assert sanitized == plain
        assert sanitized[0] == (6, [1, 2, 3, 4], 3.0)

    def test_per_rank_payload_shapes_are_not_a_mismatch(self):
        # gather/allgather/alltoall legitimately carry different shapes.
        def prog(comm):
            blocks = comm.allgather(np.zeros((comm.rank + 1, 2)))
            return sum(b.shape[0] for b in blocks)

        assert spmd_run(3, prog, sanitize=True, sanitize_timeout=TIMEOUT) == [6, 6, 6]

    def test_single_rank_run_is_trivially_clean(self):
        assert spmd_run(1, lambda comm: comm.allreduce(1.0), sanitize=True) == [1.0]

    def test_epoch_counter_advances(self):
        san = SpmdSanitizer(1, barrier_timeout=TIMEOUT)
        san.on_collective(0, "allreduce", 1.0, detail="op=sum")
        san.on_collective(0, "barrier")
        assert san.n_synced == 2


class TestMismatchedCollectives:
    def test_divergent_ops_report_both_call_sites(self):
        def prog(comm):
            if comm.rank == 2:
                return comm.gather(comm.rank, root=0)
            return comm.allreduce(comm.rank)

        with pytest.raises(SanitizerError) as err:
            spmd_run(4, prog, sanitize=True, sanitize_timeout=TIMEOUT)
        text = str(err.value)
        assert "mismatched collectives" in text
        assert "allreduce" in text and "gather" in text
        assert "rank 2" in text
        assert "test_sanitizer.py" in text  # call sites, not comm internals

    def test_divergent_roots_are_a_mismatch(self):
        def prog(comm):
            root = 1 if comm.rank == 1 else 0
            return comm.bcast(comm.rank if comm.rank == root else None, root=root)

        with pytest.raises(SanitizerError, match="root="):
            spmd_run(3, prog, sanitize=True, sanitize_timeout=TIMEOUT)

    def test_divergent_allreduce_shapes_are_a_mismatch(self):
        def prog(comm):
            width = 3 if comm.rank == 0 else 2
            return comm.allreduce(np.ones(width))

        with pytest.raises(SanitizerError, match="ndarray"):
            spmd_run(2, prog, sanitize=True, sanitize_timeout=TIMEOUT)

    def test_unsanitized_mismatch_would_not_be_diagnosed(self):
        # The control experiment: without the sanitizer the same program
        # pairs the wrong collectives (or hangs); here both ops happen to
        # complete, exchanging garbage — exactly the failure mode the
        # sanitizer exists to catch.  We only assert it does NOT raise
        # SanitizerError, whatever else it does.
        def prog(comm):
            if comm.rank == 0:
                return comm.allgather(comm.rank)
            return comm.allgather(comm.rank)

        assert spmd_run(2, prog, sanitize=False) == [[0, 1], [0, 1]]


class TestDeadlockDiagnosis:
    def test_rank_skipping_a_collective_is_diagnosed(self):
        def prog(comm):
            if comm.rank == 1:
                return None  # returns without the collective
            return comm.allreduce(comm.rank)

        with pytest.raises(SanitizerError) as err:
            spmd_run(3, prog, sanitize=True, sanitize_timeout=TIMEOUT)
        text = str(err.value)
        assert "finished" in text
        assert "rank 1" in text

    def test_extra_collective_is_paired_with_the_wrong_op_and_diagnosed(self):
        # A rank issuing one collective too many pairs its barrier with the
        # peers' *next* op — the sanitizer reports it as a mismatch epoch
        # instead of letting the ops exchange garbage.
        def prog(comm):
            comm.barrier()
            if comm.rank == 0:
                comm.barrier()  # nobody will ever join this one
            return comm.allreduce(comm.rank)

        with pytest.raises(SanitizerError) as err:
            spmd_run(2, prog, sanitize=True, sanitize_timeout=TIMEOUT)
        text = str(err.value)
        assert "barrier" in text and "allreduce" in text

    def test_stalled_rank_times_out_with_state_table(self):
        def prog(comm):
            if comm.rank == 1:
                time.sleep(1.5)  # never reaches the collective in time
                return None
            return comm.allreduce(comm.rank)

        with pytest.raises(SanitizerError) as err:
            spmd_run(2, prog, sanitize=True, sanitize_timeout=0.3)
        text = str(err.value)
        assert "did not complete within" in text
        assert "per-rank state" in text
        assert "no collective entered yet" in text  # rank 1's row


class TestSharedWriteDetection:
    def test_mutating_published_buffer_before_next_sync_is_flagged(self):
        def prog(comm):
            buf = np.arange(4.0)
            comm.bcast(buf if comm.rank == 0 else None, root=0)
            if comm.rank == 0:
                buf[0] = 99.0  # peers hold this exact array by reference
            comm.barrier()
            return None

        with pytest.raises(SanitizerError, match="unsynchronized shared-array write"):
            spmd_run(2, prog, sanitize=True, sanitize_timeout=TIMEOUT)

    def test_mutation_after_the_next_barrier_is_legal(self):
        # The one-epoch window IS the race window: after every aliasing
        # rank has synchronized again, in-place reuse is the documented
        # pattern (see pipelined_vhxc_rows).
        def prog(comm):
            buf = np.arange(4.0)
            view = comm.bcast(buf if comm.rank == 0 else None, root=0)
            got = float(view.sum())
            comm.barrier()
            if comm.rank == 0:
                buf[0] = 99.0
            comm.barrier()
            return got

        assert spmd_run(2, prog, sanitize=True, sanitize_timeout=TIMEOUT) == [6.0, 6.0]


class TestFaultInjection:
    def test_kill_rank_unwinds_as_injected_failure_not_mismatch(self):
        # The injector fires before the sanitizer hook: a killed rank must
        # surface as InjectedRankFailure (abort path), never be misread as
        # a collective mismatch or deadlock.
        injector = FaultInjector([FaultSpec(kind="kill_rank", rank=1)])
        with pytest.raises(InjectedRankFailure):
            spmd_run(
                3,
                lambda comm: comm.allreduce(comm.rank),
                fault_injector=injector,
                sanitize=True,
                sanitize_timeout=TIMEOUT,
            )

    def test_dropped_message_recovery_is_sanitizer_clean(self):
        # Point-to-point traffic is not collective: retry-based recovery
        # must run under the sanitizer without tripping it.
        injector = FaultInjector([FaultSpec(kind="drop_message", rank=0, tag=7)])

        def prog(comm):
            if comm.rank == 0:
                attempts = reliable_send(
                    comm, np.arange(4.0), dest=1, tag=7, policy=FAST
                )
                comm.barrier()
                return attempts
            value = reliable_recv(comm, source=0, tag=7, policy=FAST)
            comm.barrier()
            return float(value.sum())

        attempts, received = spmd_run(
            2, prog, fault_injector=injector, sanitize=True, sanitize_timeout=TIMEOUT
        )
        assert attempts == 2
        assert received == 6.0


class TestHelpers:
    def test_describe_payload_signatures(self):
        assert describe_payload(np.zeros((3, 2))) == "ndarray[float64,3x2]"
        assert describe_payload(None) == "none"
        assert describe_payload(7) == "int"
        assert describe_payload([np.zeros(2), 1.5]) == "list[ndarray[float64,2],float]"

    def test_env_enabled(self, monkeypatch):
        for raw, expected in [
            ("", False), ("0", False), ("off", False), ("false", False),
            ("1", True), ("yes", True),
        ]:
            monkeypatch.setenv("REPRO_SANITIZE", raw)
            assert env_enabled() is expected
        monkeypatch.delenv("REPRO_SANITIZE")
        assert env_enabled() is False

    def test_env_opt_in_reaches_spmd_run(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        monkeypatch.setenv("REPRO_SANITIZE_TIMEOUT", str(TIMEOUT))

        def prog(comm):
            if comm.rank == 0:
                return comm.barrier()
            return comm.allreduce(comm.rank)

        with pytest.raises(SanitizerError):
            spmd_run(2, prog)  # sanitize=None -> env
