"""The real-time TDDFT driver: kick, propagate, record the dipole.

Scheme: delta-kick at t = 0 (``psi -> exp(i kappa z) psi``), then
exponential-midpoint propagation with a self-consistent Hamiltonian —
each step propagates with ``H[n(t)]``, optionally followed by one
ETRS-style corrector using the Hamiltonian rebuilt from the predicted
density (``etrs=True``, default).  Observables (dipole, norm, band
energies) are recorded every step for the spectral analysis in
:mod:`repro.rt.spectrum`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dft.density import density_from_orbitals
from repro.dft.groundstate import GroundState
from repro.dft.hamiltonian import KohnShamHamiltonian
from repro.rt.propagator import expm_krylov_block
from repro.utils.serialization import SerializableResult
from repro.utils.validation import check_positive, require


@dataclass
class RTResult(SerializableResult):
    """Time series produced by one RT-TDDFT run."""

    times: np.ndarray  #: (n_steps + 1,) times in a.u.
    dipoles: np.ndarray  #: (n_steps + 1, 3) dipole moment (electrons x Bohr)
    norms: np.ndarray  #: (n_steps + 1,) total squared orbital norm
    kick_strength: float
    kick_direction: np.ndarray

    @property
    def n_steps(self) -> int:
        return self.times.shape[0] - 1

    def dipole_along_kick(self) -> np.ndarray:
        """Projection of the induced dipole on the kick direction."""
        return self.dipoles @ self.kick_direction

    def to_dict(self) -> dict:
        return {
            "times": self.times,
            "dipoles": self.dipoles,
            "norms": self.norms,
            "kick_strength": float(self.kick_strength),
            "kick_direction": np.asarray(self.kick_direction, dtype=float),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RTResult":
        return cls(
            times=np.array(data["times"]),
            dipoles=np.array(data["dipoles"]),
            norms=np.array(data["norms"]),
            kick_strength=float(data["kick_strength"]),
            kick_direction=np.array(data["kick_direction"]),
        )


class RealTimeTDDFT:
    """Real-time propagation of the occupied KS orbitals.

    Parameters
    ----------
    ground_state:
        Converged ground state; its occupied orbitals are propagated.
    self_consistent:
        Update the Hartree+XC potential from the instantaneous density
        (True = real TDDFT; False = independent-particle response, whose
        spectrum peaks at the bare KS transition energies — useful for
        testing).
    """

    def __init__(
        self,
        ground_state: GroundState,
        *,
        self_consistent: bool = True,
    ) -> None:
        self.ground_state = ground_state
        self.basis = ground_state.basis
        self.self_consistent = self_consistent
        n_occ = ground_state.n_occupied
        require(n_occ > 0, "no occupied orbitals to propagate")
        self.occupations = ground_state.occupations[:n_occ].copy()
        self._psi = self.basis.to_recip(
            ground_state.orbitals_real[:n_occ].astype(complex)
        )
        self.ham = KohnShamHamiltonian(self.basis)
        self._centered = self._centered_coordinates()
        self._update_hamiltonian()

    # -- setup helpers ------------------------------------------------------

    def _centered_coordinates(self) -> np.ndarray:
        """Minimum-image coordinates about the cell centre, ``(N_r, 3)``."""
        frac = self.basis.grid.fractional_points
        wrapped = (frac - 0.5) - np.round(frac - 0.5)
        return wrapped @ self.basis.cell.lattice

    def _density(self, psi=None) -> np.ndarray:
        psi_real = self.basis.to_real(self._psi if psi is None else psi)
        return density_from_orbitals(psi_real, self.occupations)

    def _update_hamiltonian(self, psi=None) -> None:
        self.ham.update_density(self._density(psi))

    # -- dynamics -----------------------------------------------------------

    def kick(self, strength: float, direction=(0.0, 0.0, 1.0)) -> None:
        """Apply the delta-kick ``psi -> exp(i kappa (r . e)) psi``.

        The phase pattern is applied in real space and projected back onto
        the cutoff sphere (exact for small kappa; the projection loss is
        part of every plane-wave RT implementation).
        """
        check_positive(abs(strength), "strength")
        direction = np.asarray(direction, dtype=float)
        direction = direction / np.linalg.norm(direction)
        phase = np.exp(1j * strength * (self._centered @ direction))
        psi_real = self.basis.to_real(self._psi)
        self._psi = self.basis.to_recip(psi_real * phase)
        self._kick_strength = strength
        self._kick_direction = direction
        if self.self_consistent:
            self._update_hamiltonian()

    def dipole(self) -> np.ndarray:
        """Electronic dipole ``sum_i f_i <psi_i| r_c |psi_i>`` (3-vector)."""
        psi_real = self.basis.to_real(self._psi)
        weights = np.einsum(
            "b,br->r", self.occupations, np.abs(psi_real) ** 2
        )
        return (weights @ self._centered) * self.basis.grid.dv

    def total_norm(self) -> float:
        return float(np.sum(np.abs(self._psi) ** 2))

    def propagate(
        self,
        dt: float,
        n_steps: int,
        *,
        krylov_dim: int = 10,
        etrs: bool = True,
        record_every: int = 1,
        checkpoint=None,
    ) -> RTResult:
        """Run ``n_steps`` of exponential-midpoint propagation.

        Parameters
        ----------
        dt:
            Time step in atomic units (0.05 - 0.2 is typical at these
            cutoffs).
        etrs:
            One corrector pass per step: re-propagate with the average of
            H[n(t)] and H[n(t+dt)_predicted] (enforced-time-reversal
            flavour).  Costs ~2x, buys much better energy conservation.
        checkpoint:
            Optional :class:`~repro.resilience.checkpoint.LoopCheckpointer`;
            snapshots the full propagation state (orbitals + recorded
            observables) each interval, so a restarted run continues the
            time series bit-identically.
        """
        check_positive(dt, "dt")
        check_positive(n_steps, "n_steps")
        times = [0.0]
        dipoles = [self.dipole()]
        norms = [self.total_norm()]
        start_step = 0

        resumed = checkpoint.resume() if checkpoint is not None else None
        if resumed is not None:
            start_step, state = resumed
            self._psi = np.array(state["psi"])
            times = [float(v) for v in state["times"]]
            dipoles = [np.array(v) for v in state["dipoles"]]
            norms = [float(v) for v in state["norms"]]
            self._kick_strength = float(state["kick_strength"])
            self._kick_direction = np.array(state["kick_direction"])

        for step in range(start_step + 1, n_steps + 1):
            if self.self_consistent:
                self._update_hamiltonian()
            psi_pred = expm_krylov_block(
                self.ham.apply, self._psi, dt, krylov_dim=krylov_dim
            )
            if etrs and self.self_consistent:
                # Average-Hamiltonian corrector: V_eff from the midpoint of
                # the current and predicted densities.
                n_mid = 0.5 * (self._density() + self._density(psi_pred))
                self.ham.update_density(n_mid)
                psi_pred = expm_krylov_block(
                    self.ham.apply, self._psi, dt, krylov_dim=krylov_dim
                )
            self._psi = psi_pred
            if step % record_every == 0:
                times.append(step * dt)
                dipoles.append(self.dipole())
                norms.append(self.total_norm())
            if checkpoint is not None:
                checkpoint.save(
                    step,
                    {
                        "psi": self._psi,
                        "times": np.asarray(times),
                        "dipoles": np.asarray(dipoles),
                        "norms": np.asarray(norms),
                        "kick_strength": np.float64(
                            getattr(self, "_kick_strength", 0.0)
                        ),
                        "kick_direction": np.asarray(
                            getattr(
                                self, "_kick_direction", np.array([0.0, 0.0, 1.0])
                            )
                        ),
                    },
                )

        return RTResult(
            times=np.asarray(times),
            dipoles=np.asarray(dipoles),
            norms=np.asarray(norms),
            kick_strength=getattr(self, "_kick_strength", 0.0),
            kick_direction=getattr(
                self, "_kick_direction", np.array([0.0, 0.0, 1.0])
            ),
        )
