"""Property-based tests for the physics substrates."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dft.xc import lda_energy_density, lda_kernel, lda_potential
from repro.pw import PlaneWaveBasis, UnitCell
from repro.utils.rng import default_rng

densities = st.floats(1e-8, 1e3, allow_nan=False, width=64)


@settings(max_examples=100, deadline=None)
@given(st.lists(densities, min_size=1, max_size=20))
def test_xc_derivative_chain(values):
    """eps, v and f are consistent under numerical differentiation for any
    physical density."""
    n = np.asarray(values)
    h = 1e-6 * n
    v_numeric = ((n + h) * lda_energy_density(n + h) - (n - h) * lda_energy_density(n - h)) / (2 * h)
    np.testing.assert_allclose(lda_potential(n), v_numeric, rtol=1e-4)
    f_numeric = (lda_potential(n + h) - lda_potential(n - h)) / (2 * h)
    np.testing.assert_allclose(lda_kernel(n), f_numeric, rtol=1e-3)


@settings(max_examples=100, deadline=None)
@given(st.lists(densities, min_size=2, max_size=20))
def test_xc_potential_monotone(values):
    """v_xc is a monotonically decreasing function of... actually v_xc is
    negative and decreases with density (more binding at higher n)."""
    n = np.sort(np.asarray(values))
    v = lda_potential(n)
    assert (v < 0).all()
    assert (np.diff(v) <= 1e-12).all()


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10**6), st.floats(3.0, 10.0))
def test_basis_roundtrip_any_cutoff(seed, ecut):
    basis = PlaneWaveBasis(UnitCell.cubic(7.0), ecut=ecut)
    rng = default_rng(seed)
    c = basis.random_coefficients(2, rng)
    np.testing.assert_allclose(basis.to_recip(basis.to_real(c)), c, atol=1e-10)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10**6))
def test_hartree_energy_positive_definite(seed):
    """E_H[n] >= 0 for any real density fluctuation (Coulomb is PSD)."""
    from repro.dft import hartree_energy

    basis = PlaneWaveBasis(UnitCell.cubic(6.0), ecut=5.0)
    rng = default_rng(seed)
    n = rng.standard_normal(basis.n_r)  # sign-indefinite test field
    assert hartree_energy(n, basis) >= -1e-10


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6), st.integers(1, 3), st.integers(1, 3))
def test_casida_hamiltonian_symmetric_for_any_orbitals(seed, n_v, n_c):
    """H = D + 2 P^T f_Hxc P is symmetric whatever the (real) inputs."""
    from repro.core import HxcKernel, build_casida_hamiltonian

    basis = PlaneWaveBasis(UnitCell.cubic(6.0), ecut=4.0)
    rng = default_rng(seed)
    psi_v = rng.standard_normal((n_v, basis.n_r))
    psi_c = rng.standard_normal((n_c, basis.n_r))
    density = rng.random(basis.n_r) + 0.05
    kernel = HxcKernel(basis, density)
    h = build_casida_hamiltonian(
        psi_v, np.sort(rng.random(n_v)) - 1.0,
        psi_c, np.sort(rng.random(n_c)) + 1.0, kernel,
    )
    np.testing.assert_allclose(h, h.T, atol=1e-10)
