"""Real-time TDDFT: the other route to excited states (paper Section 1).

The paper contrasts two TDDFT formulations: frequency-domain linear
response (its subject) and real-time propagation (its predecessor on the
same PWDFT stack, Table 1's 2019 row).  This subpackage implements the
real-time route — delta-kick perturbation, Krylov exponential propagation
of the KS orbitals with a self-consistently updated Hamiltonian, and the
dipole-signal Fourier analysis — primarily as an *independent physical
cross-check*: the peaks of the RT absorption spectrum must coincide with
the full-Casida excitation energies computed by :mod:`repro.core`.
"""

from repro.rt.propagator import expm_krylov
from repro.rt.tddft import RTResult, RealTimeTDDFT
from repro.rt.spectrum import dipole_spectrum, find_peaks

__all__ = [
    "expm_krylov",
    "RealTimeTDDFT",
    "RTResult",
    "dipole_spectrum",
    "find_peaks",
]
