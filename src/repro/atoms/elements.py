"""Element data for the species used in the paper (H, C, O, Si).

``valence`` is the number of valence electrons treated explicitly under the
HGH norm-conserving pseudopotentials (core electrons are frozen into the
pseudopotential, exactly as in PWDFT).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Element:
    """Static per-species data."""

    symbol: str
    atomic_number: int
    valence: int
    mass: float  # atomic mass units; informational only (no dynamics here)
    covalent_radius: float  # Bohr; used for initial-density Gaussian widths


_ELEMENTS: dict[str, Element] = {
    "H": Element("H", 1, 1, 1.008, 0.59),
    "C": Element("C", 6, 4, 12.011, 1.44),
    "O": Element("O", 8, 6, 15.999, 1.25),
    "Si": Element("Si", 14, 4, 28.085, 2.10),
}


def get_element(symbol: str) -> Element:
    """Look up an element by symbol; raises ``KeyError`` with guidance."""
    try:
        return _ELEMENTS[symbol]
    except KeyError:
        known = ", ".join(sorted(_ELEMENTS))
        raise KeyError(
            f"element {symbol!r} is not in the pseudopotential table "
            f"(available: {known})"
        ) from None


def valence_electron_count(species: tuple[str, ...]) -> int:
    """Total valence electrons for a species tuple."""
    return sum(get_element(s).valence for s in species)
