"""Tests for the implicit (matrix-free) Casida operator (Section 4.3)."""

import numpy as np
import pytest

from repro.core import (
    HxcKernel,
    ImplicitCasidaOperator,
    build_isdf_hamiltonian,
    isdf_decompose,
)
from repro.utils.rng import default_rng


@pytest.fixture(scope="module")
def operator(si8_synthetic):
    gs = si8_synthetic
    psi_v, eps_v, psi_c, eps_c = gs.select_transition_space()
    kernel = HxcKernel(gs.basis, gs.density)
    isdf = isdf_decompose(
        psi_v, psi_c, 64, method="kmeans",
        grid_points=gs.basis.grid.cartesian_points, rng=default_rng(0),
    )
    op = ImplicitCasidaOperator(isdf, eps_v, eps_c, kernel)
    explicit = build_isdf_hamiltonian(isdf, eps_v, eps_c, kernel)
    return op, explicit


def test_apply_matches_explicit_hamiltonian(operator, rng):
    op, explicit = operator
    x = rng.standard_normal((op.n_pairs, 7))
    np.testing.assert_allclose(op.apply(x), explicit @ x, atol=1e-10)


def test_materialize_matches_explicit(operator):
    op, explicit = operator
    np.testing.assert_allclose(op.materialize(), explicit, atol=1e-10)


def test_one_dimensional_input(operator, rng):
    op, explicit = operator
    x = rng.standard_normal(op.n_pairs)
    out = op.apply(x)
    assert out.shape == (op.n_pairs,)
    np.testing.assert_allclose(out, explicit @ x, atol=1e-10)


def test_operator_is_symmetric(operator, rng):
    op, _ = operator
    a = rng.standard_normal(op.n_pairs)
    b = rng.standard_normal(op.n_pairs)
    assert a @ op.apply(b) == pytest.approx(b @ op.apply(a))


def test_diagonal_matches_materialized(operator):
    op, explicit = operator
    np.testing.assert_allclose(op.diagonal(), np.diag(explicit), atol=1e-10)


def test_apply_counter_increments(operator, rng):
    op, _ = operator
    before = op.n_apply
    op.apply(rng.standard_normal((op.n_pairs, 2)))
    assert op.n_apply == before + 1


def test_preconditioner_positive_scaling(operator, rng):
    """The safe |D - theta| preconditioner never flips residual signs."""
    op, _ = operator
    r = rng.standard_normal((op.n_pairs, 3))
    w = op.preconditioner(r, np.array([0.1, 0.2, 0.3]))
    assert (np.sign(w) == np.sign(r)).all()


def test_shape_mismatch_rejected(operator, rng):
    op, _ = operator
    with pytest.raises(ValueError):
        op.apply(rng.standard_normal((op.n_pairs + 1, 2)))


def test_memory_footprint_is_nmu_squared(operator):
    """The implicit operator stores Vtilde (N_mu^2), never N_cv^2."""
    op, _ = operator
    assert op.vtilde.shape == (op.isdf.n_mu, op.isdf.n_mu)
    assert not hasattr(op, "hamiltonian")


def test_lobpcg_on_operator_matches_dense(operator):
    from repro.eigen import lobpcg

    op, explicit = operator
    ref = np.linalg.eigvalsh(explicit)[:4]
    rng = default_rng(5)
    res = lobpcg(
        op.apply, rng.standard_normal((op.n_pairs, 4)),
        preconditioner=op.preconditioner, tol=1e-10, max_iter=300,
    )
    assert res.converged
    np.testing.assert_allclose(res.eigenvalues, ref, atol=1e-8)
