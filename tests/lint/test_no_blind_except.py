"""The blanket-except pass guarding the typed-fault contract."""

from repro.lint import lint_source

import pytest

pytestmark = pytest.mark.lint

RULE = ["no-blind-except"]


def findings_in(src: str):
    return lint_source(src, rules=RULE)


class TestPositive:
    def test_bare_except(self):
        src = "try:\n    work()\nexcept:\n    pass\n"
        (finding,) = findings_in(src)
        assert "everything" in finding.message

    def test_except_exception(self):
        src = "try:\n    work()\nexcept Exception:\n    log()\n"
        assert len(findings_in(src)) == 1

    def test_except_baseexception_in_tuple(self):
        src = "try:\n    work()\nexcept (ValueError, BaseException):\n    log()\n"
        assert len(findings_in(src)) == 1

    def test_conditional_reraise_still_flagged(self):
        # The two handlers this PR fixed had exactly this shape: a raise
        # buried in an `if` swallows every other path.
        src = (
            "try:\n"
            "    work()\n"
            "except Exception:\n"
            "    if fallback is None:\n"
            "        raise\n"
            "    recover()\n"
        )
        assert len(findings_in(src)) == 1


class TestNegative:
    def test_named_types_are_clean(self):
        src = "try:\n    work()\nexcept (RuntimeError, ValueError):\n    recover()\n"
        assert findings_in(src) == []

    def test_unconditional_reraise_is_clean(self):
        src = (
            "try:\n"
            "    work()\n"
            "except Exception as exc:\n"
            "    log(exc)\n"
            "    raise\n"
        )
        assert findings_in(src) == []

    def test_raise_from_is_clean(self):
        src = (
            "try:\n"
            "    work()\n"
            "except Exception as exc:\n"
            "    raise RuntimeError('wrapped') from exc\n"
        )
        assert findings_in(src) == []


class TestFixedHandlersStayFixed:
    """The two call sites named in the issue must remain clean."""

    def test_policies_and_isdf_have_no_blind_except(self):
        import repro.core.isdf as isdf
        import repro.resilience.policies as policies

        for mod in (isdf, policies):
            source = open(mod.__file__).read()
            assert lint_source(source, path=mod.__file__, rules=RULE) == []

    def test_narrowed_handlers_catch_what_tests_inject(self):
        # The fallback paths are driven by RuntimeError in the resilience
        # suite; the narrowed tuples must still cover it.
        from repro.core.isdf import _SELECTION_FAILURES
        from repro.resilience.policies import _TRANSFORM_FAILURES

        assert RuntimeError in _TRANSFORM_FAILURES
        assert RuntimeError in _SELECTION_FAILURES
        for tup in (_TRANSFORM_FAILURES, _SELECTION_FAILURES):
            assert Exception not in tup and BaseException not in tup
