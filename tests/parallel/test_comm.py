"""Tests for the SPMD communicator and executor."""

import numpy as np
import pytest

from repro.parallel import SpmdAbort, spmd_run


class TestExecutor:
    def test_results_in_rank_order(self):
        results = spmd_run(4, lambda comm: comm.rank * 10)
        assert results == [0, 10, 20, 30]

    def test_single_rank(self):
        assert spmd_run(1, lambda comm: comm.size) == [1]

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            spmd_run(0, lambda comm: None)

    def test_exception_propagates_without_deadlock(self):
        def prog(comm):
            if comm.rank == 1:
                raise RuntimeError("rank 1 exploded")
            comm.barrier()

        with pytest.raises(RuntimeError, match="rank 1 exploded"):
            spmd_run(3, prog)

    def test_extra_args_forwarded(self):
        results = spmd_run(2, lambda comm, x, y: x + y + comm.rank, 5, 10)
        assert results == [15, 16]

    def test_traffic_returned(self):
        def prog(comm):
            comm.allreduce(np.ones(100))

        _, traffic = spmd_run(3, prog, return_traffic=True)
        assert traffic.bytes_by_op["allreduce"] > 0
        # Volume-bearing collectives are recorded once per invocation.
        assert traffic.calls_by_op["allreduce"] == 1


class TestCollectives:
    def test_bcast(self):
        def prog(comm):
            value = np.arange(5) if comm.rank == 0 else None
            return comm.bcast(value)

        results = spmd_run(3, prog)
        for r in results:
            np.testing.assert_array_equal(r, np.arange(5))

    def test_bcast_nonzero_root(self):
        def prog(comm):
            return comm.bcast("payload" if comm.rank == 2 else None, root=2)

        assert spmd_run(4, prog) == ["payload"] * 4

    def test_gather(self):
        def prog(comm):
            return comm.gather(comm.rank**2)

        results = spmd_run(4, prog)
        assert results[0] == [0, 1, 4, 9]
        assert results[1] is None

    def test_allgather(self):
        results = spmd_run(3, lambda comm: comm.allgather(comm.rank + 1))
        assert results == [[1, 2, 3]] * 3

    def test_scatter(self):
        def prog(comm):
            values = [f"chunk{i}" for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(values)

        assert spmd_run(3, prog) == ["chunk0", "chunk1", "chunk2"]

    def test_scatter_wrong_length_rejected(self):
        def prog(comm):
            return comm.scatter([1] if comm.rank == 0 else None)

        with pytest.raises(ValueError, match="scatter"):
            spmd_run(2, prog)

    def test_reduce_sum(self):
        def prog(comm):
            return comm.reduce(np.full(3, float(comm.rank + 1)))

        results = spmd_run(3, prog)
        np.testing.assert_array_equal(results[0], np.full(3, 6.0))
        assert results[1] is None

    def test_allreduce_sum_identical_on_all_ranks(self):
        def prog(comm):
            return comm.allreduce(np.array([comm.rank + 1.0]))

        results = spmd_run(4, prog)
        for r in results:
            np.testing.assert_array_equal(r, [10.0])

    @pytest.mark.parametrize("op,expected", [("max", 3.0), ("min", 1.0)])
    def test_allreduce_minmax(self, op, expected):
        def prog(comm):
            return comm.allreduce(np.array([comm.rank + 1.0]), op=op)

        results = spmd_run(3, prog)
        assert all(r[0] == expected for r in results)

    def test_allreduce_unknown_op(self):
        def prog(comm):
            return comm.allreduce(np.ones(1), op="prod")

        with pytest.raises(ValueError, match="unknown reduction"):
            spmd_run(2, prog)

    def test_allreduce_determinism(self):
        """Same inputs => bitwise-identical result on every rank, each run."""

        def prog(comm):
            rng = np.random.default_rng(comm.rank)
            return comm.allreduce(rng.standard_normal(50))

        a = spmd_run(4, prog)
        b = spmd_run(4, prog)
        for r in a[1:]:
            np.testing.assert_array_equal(r, a[0])
        np.testing.assert_array_equal(a[0], b[0])

    def test_alltoall(self):
        def prog(comm):
            chunks = [f"{comm.rank}->{d}" for d in range(comm.size)]
            return comm.alltoall(chunks)

        results = spmd_run(3, prog)
        assert results[1] == ["0->1", "1->1", "2->1"]

    def test_alltoall_wrong_chunk_count(self):
        def prog(comm):
            return comm.alltoall([1, 2])

        with pytest.raises(ValueError, match="alltoall"):
            spmd_run(3, prog)

    def test_barrier_order_independence(self):
        """Ranks arriving at different times still synchronize."""
        import time

        def prog(comm):
            time.sleep(0.002 * comm.rank)
            comm.barrier()
            return True

        assert spmd_run(4, prog) == [True] * 4


class TestPointToPoint:
    def test_send_recv(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(4), dest=1)
                return None
            return comm.recv(source=0)

        results = spmd_run(2, prog)
        np.testing.assert_array_equal(results[1], np.arange(4))

    def test_ring_exchange(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(comm.rank, dest=right)
            return comm.recv(source=left)

        assert spmd_run(4, prog) == [3, 0, 1, 2]

    def test_tag_mismatch_detected(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("x", dest=1, tag=7)
            else:
                comm.recv(source=0, tag=8)

        with pytest.raises(ValueError, match="tag mismatch"):
            spmd_run(2, prog)


class TestTraffic:
    def test_alltoall_volume_excludes_self(self):
        def prog(comm):
            chunks = [np.ones(10) for _ in range(comm.size)]
            comm.alltoall(chunks)

        _, traffic = spmd_run(4, prog, return_traffic=True)
        # Each rank ships 3 chunks of 80 bytes.
        assert traffic.bytes_by_op["alltoall"] == 4 * 3 * 80

    def test_summary_mentions_ops(self):
        def prog(comm):
            comm.allreduce(np.ones(4))

        _, traffic = spmd_run(2, prog, return_traffic=True)
        assert "allreduce" in traffic.summary()
