"""npz+json payload serialization — the substrate results and checkpoints share.

A *payload* is a nested dict whose leaves are numpy arrays, scalars,
strings, booleans, ``None``, or (possibly nested) lists of those.  It is
written as a single ``.npz`` file: every array leaf becomes a named npz
member and the remaining structure is stored as one JSON document under
the reserved ``__meta__`` key, with ``{"__array__": <member>}``
placeholders marking where arrays plug back in.  No pickling is ever used
(``allow_pickle=False`` on load), so files are portable and safe to read.

Writes are atomic: the file is staged under a unique temporary name in the
target directory and moved into place with ``os.replace``, so readers (and
restarts after a mid-write crash) only ever observe complete snapshots.

:class:`SerializableResult` is the common base for the user-facing result
objects (``GroundState``/``SCFResult``, ``LRTDDFTResult``, ``RTResult``):
subclasses implement ``to_dict``/``from_dict`` and inherit ``save``/``load``
with format-version and class tagging.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any

import numpy as np

__all__ = [
    "PAYLOAD_FORMAT_VERSION",
    "SerializableResult",
    "SerializationError",
    "load_payload",
    "save_payload",
]

#: On-disk format version; bumped on incompatible layout changes.
PAYLOAD_FORMAT_VERSION = 1

_META_KEY = "__meta__"
_ARRAY_TAG = "__array__"
_LIST_TAG = "__list__"


class SerializationError(ValueError):
    """A payload could not be packed, or a file failed validation."""


def _pack(node: Any, arrays: dict[str, np.ndarray]) -> Any:
    """Convert ``node`` to a JSON-able tree, extracting arrays by reference."""
    if isinstance(node, np.ndarray):
        key = f"a{len(arrays)}"
        arrays[key] = node
        return {_ARRAY_TAG: key}
    if isinstance(node, np.generic):  # numpy scalar -> python scalar
        return _pack(node.item(), arrays)
    if isinstance(node, dict):
        out = {}
        for k, v in node.items():
            if not isinstance(k, str):
                raise SerializationError(f"payload keys must be str, got {k!r}")
            if k.startswith("__") and k.endswith("__"):
                raise SerializationError(f"reserved payload key {k!r}")
            out[k] = _pack(v, arrays)
        return out
    if isinstance(node, (list, tuple)):
        return {_LIST_TAG: [_pack(v, arrays) for v in node]}
    if node is None or isinstance(node, (bool, int, float, str)):
        return node
    raise SerializationError(
        f"unserializable payload leaf of type {type(node).__name__}"
    )


def _unpack(node: Any, arrays: dict[str, np.ndarray]) -> Any:
    if isinstance(node, dict):
        if _ARRAY_TAG in node:
            return arrays[node[_ARRAY_TAG]]
        if _LIST_TAG in node:
            return [_unpack(v, arrays) for v in node[_LIST_TAG]]
        return {k: _unpack(v, arrays) for k, v in node.items()}
    return node


def save_payload(path: str | os.PathLike, payload: dict) -> str:
    """Atomically write ``payload`` as a single npz+json file.

    Returns the final path.  The temporary staging name embeds pid and
    thread id, so concurrent writers (e.g. SPMD rank threads snapshotting
    a replicated state) never collide; the last ``os.replace`` wins.
    """
    path = os.fspath(path)
    arrays: dict[str, np.ndarray] = {}
    meta = _pack(payload, arrays)
    doc = json.dumps({"format": PAYLOAD_FORMAT_VERSION, "tree": meta})
    tmp = f"{path}.{os.getpid()}.{threading.get_ident()}.tmp"
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **{_META_KEY: np.array(doc)}, **arrays)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - only on failure paths
            os.unlink(tmp)
    return path


def load_payload(path: str | os.PathLike) -> dict:
    """Read a payload written by :func:`save_payload` (never unpickles)."""
    try:
        handle = np.load(os.fspath(path), allow_pickle=False)
    except SerializationError:
        raise
    except Exception as exc:  # truncated zip, pickled data, bad magic, ...
        raise SerializationError(f"{path}: unreadable payload ({exc})") from exc
    with handle as data:
        if _META_KEY not in data.files:
            raise SerializationError(f"{path}: not a repro payload file")
        doc = json.loads(str(data[_META_KEY][()]))
        if doc.get("format") != PAYLOAD_FORMAT_VERSION:
            raise SerializationError(
                f"{path}: payload format {doc.get('format')!r} is not "
                f"supported (expected {PAYLOAD_FORMAT_VERSION})"
            )
        arrays = {k: data[k] for k in data.files if k != _META_KEY}
    tree = _unpack(doc["tree"], arrays)
    if not isinstance(tree, dict):
        raise SerializationError(f"{path}: payload root must be a dict")
    return tree


class SerializableResult:
    """Common serializable base for the user-facing result objects.

    Subclasses implement :meth:`to_dict` / :meth:`from_dict`; ``save`` and
    ``load`` wrap them with class tagging so a file saved by one result
    type cannot be silently loaded as another.
    """

    def to_dict(self) -> dict:
        raise NotImplementedError

    @classmethod
    def from_dict(cls, data: dict) -> "SerializableResult":
        raise NotImplementedError

    def save(self, path: str | os.PathLike) -> str:
        """Write this result to ``path`` (single npz+json file)."""
        return save_payload(
            path, {"class": type(self).__name__, "data": self.to_dict()}
        )

    @classmethod
    def load(cls, path: str | os.PathLike) -> "SerializableResult":
        """Read a result saved by :meth:`save`, validating the class tag."""
        payload = load_payload(path)
        saved = payload.get("class")
        if saved != cls.__name__:
            raise SerializationError(
                f"{path}: contains a {saved!r}, not a {cls.__name__}"
            )
        return cls.from_dict(payload["data"])
