"""Tests for XYZ structure I/O."""

import numpy as np
import pytest

from repro.atoms import silicon_primitive_cell, water_molecule
from repro.atoms.xyz import read_xyz, write_xyz
from repro.constants import ANGSTROM_TO_BOHR


class TestRoundtrip:
    def test_periodic_roundtrip(self, tmp_path):
        cell = silicon_primitive_cell()
        path = write_xyz(cell, tmp_path / "si.xyz")
        loaded = read_xyz(path)
        np.testing.assert_allclose(loaded.lattice, cell.lattice, atol=1e-8)
        assert loaded.species == cell.species
        np.testing.assert_allclose(
            loaded.cartesian_positions, cell.cartesian_positions, atol=1e-8
        )

    def test_molecule_roundtrip(self, tmp_path):
        cell = water_molecule()
        loaded = read_xyz(write_xyz(cell, tmp_path / "h2o.xyz"))
        assert loaded.species == ("O", "H", "H")
        d_orig = np.linalg.norm(
            cell.cartesian_positions[1] - cell.cartesian_positions[0]
        )
        d_load = np.linalg.norm(
            loaded.cartesian_positions[1] - loaded.cartesian_positions[0]
        )
        assert d_load == pytest.approx(d_orig, abs=1e-8)

    def test_comment_written(self, tmp_path):
        path = write_xyz(water_molecule(), tmp_path / "c.xyz", comment="test run")
        assert "test run" in path.read_text()

    def test_multiline_comment_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_xyz(water_molecule(), tmp_path / "c.xyz", comment="a\nb")


class TestPlainXYZ:
    def test_plain_file_needs_box(self, tmp_path):
        path = tmp_path / "plain.xyz"
        path.write_text("1\nwater-ish\nO 0.0 0.0 0.0\n")
        with pytest.raises(ValueError, match="box"):
            read_xyz(path)
        cell = read_xyz(path, box=10.0)
        assert cell.volume == pytest.approx(1000.0)
        assert cell.species == ("O",)

    def test_atom_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.xyz"
        path.write_text("3\ncomment\nO 0 0 0\n")
        with pytest.raises(ValueError, match="atom lines"):
            read_xyz(path, box=10.0)

    def test_malformed_atom_line(self, tmp_path):
        path = tmp_path / "bad.xyz"
        path.write_text("1\ncomment\nO 0 0\n")
        with pytest.raises(ValueError, match="malformed"):
            read_xyz(path, box=10.0)

    def test_angstrom_units(self, tmp_path):
        """A 1 Angstrom coordinate must land at 1.889... Bohr."""
        path = tmp_path / "u.xyz"
        path.write_text("1\ncomment\nH 1.0 0.0 0.0\n")
        cell = read_xyz(path, box=20.0)
        assert cell.cartesian_positions[0][0] == pytest.approx(
            1.0 * ANGSTROM_TO_BOHR
        )

    def test_loaded_cell_drives_scf(self, tmp_path):
        """End-to-end: write, read, run SCF on the loaded structure."""
        from repro.dft import run_scf

        path = write_xyz(silicon_primitive_cell(), tmp_path / "si.xyz")
        cell = read_xyz(path)
        gs = run_scf(cell, ecut=6.0, n_bands=6, tol=1e-5, seed=0)
        assert gs.converged
