"""The matrix-free Kohn-Sham Hamiltonian in the plane-wave basis.

``H = -1/2 nabla^2 + V_loc + V_H[n] + V_xc[n] + V_nl`` applied to blocks of
sphere coefficients:

* kinetic term — diagonal ``|G|^2/2`` in reciprocal space,
* local effective potential — FFT to the grid, multiply, FFT back
  (the classic dual-space split the paper's Algorithm 1 also exploits),
* non-local term — two skinny GEMMs against the KB projectors.
"""

from __future__ import annotations

import numpy as np

from repro.dft.hartree import hartree_potential
from repro.dft.xc import lda_potential
from repro.pseudo.hgh import get_pseudopotential, local_potential_recip
from repro.pseudo.kb import NonlocalProjectors, build_projectors
from repro.pw.basis import PlaneWaveBasis
from repro.utils.validation import require


def local_pseudopotential_real(basis: PlaneWaveBasis) -> np.ndarray:
    """Total local pseudopotential of all atoms on the real-space grid.

    Assembled in G-space per species (one radial form x structure factors),
    then one inverse FFT.
    """
    cell = basis.cell
    g2 = basis.gvectors.g2
    v_g = np.zeros(basis.n_r, dtype=complex)
    by_species: dict[str, list[int]] = {}
    for index, symbol in enumerate(cell.species):
        by_species.setdefault(symbol, []).append(index)
    for symbol, indices in by_species.items():
        params = get_pseudopotential(symbol)
        radial = local_potential_recip(params, g2, cell.volume)
        phases = np.zeros(basis.n_r, dtype=complex)
        for index in indices:
            phases += basis.gvectors.structure_factor(cell.fractional_positions[index])
        v_g += radial * phases
    return basis.fft.backward_real(v_g)


class KohnShamHamiltonian:
    """KS Hamiltonian bound to a basis; refresh with :meth:`update_density`.

    ``precision`` (a mode string or :class:`repro.precision.PrecisionConfig`)
    is forwarded to the Hartree solve; only the ``fast32`` tier actually
    changes it (fp32 FFT scratch with verified fallback — see
    :func:`repro.dft.hartree.hartree_potential`).
    """

    def __init__(self, basis: PlaneWaveBasis, *, precision=None) -> None:
        from repro.precision import resolve_precision

        self.basis = basis
        self.precision = resolve_precision(precision)
        self.v_local = local_pseudopotential_real(basis)
        self.projectors: NonlocalProjectors = build_projectors(basis)
        self.v_hartree = np.zeros(basis.n_r)
        self.v_xc = np.zeros(basis.n_r)
        self._v_eff = self.v_local.copy()

    # -- potential management ----------------------------------------------

    def update_density(self, density: np.ndarray) -> None:
        """Rebuild V_H and V_xc from a new density."""
        require(
            density.shape == (self.basis.n_r,),
            f"density must have shape ({self.basis.n_r},), got {density.shape}",
        )
        self.v_hartree = hartree_potential(
            density, self.basis, precision=self.precision
        )
        self.v_xc = lda_potential(density)
        self._v_eff = self.v_local + self.v_hartree + self.v_xc

    @property
    def v_effective(self) -> np.ndarray:
        """Current total local effective potential on the grid."""
        return self._v_eff

    # -- operator application ------------------------------------------------

    def apply(self, coeffs: np.ndarray) -> np.ndarray:
        """``H @ psi`` for coefficient blocks of shape ``(..., N_pw)``.

        The dual-space split rides the pluggable FFT engine through
        ``basis.to_real`` / ``to_recip``; the potential multiply is done
        in place on the freshly transformed block to avoid a second
        ``(..., N_r)`` temporary per application.
        """
        basis = self.basis
        out = coeffs * basis.kinetic_diagonal
        psi_real = basis.to_real(coeffs)
        psi_real *= self._v_eff
        out += basis.to_recip(psi_real)
        out += self.projectors.apply(coeffs)
        return out

    def apply_columns(self, x: np.ndarray) -> np.ndarray:
        """Adapter for the eigensolvers: ``(N_pw, k)`` column blocks."""
        return self.apply(x.T).T

    # -- preconditioning ------------------------------------------------------

    def preconditioner(self, residual: np.ndarray, theta: np.ndarray) -> np.ndarray:
        """Teter-Payne-Allan preconditioner on ``(N_pw, k)`` residual columns.

        Smooths the high-|G| components that dominate the residual early in
        the SCF; the polynomial form keeps it bounded for small kinetic
        energies (unlike a bare ``1/(G^2/2)``).
        """
        kinetic = self.basis.kinetic_diagonal[:, None]
        # Per-column kinetic scale from the residual itself; robust floor.
        scale = np.maximum(
            np.einsum("gk,g,gk->k", residual.conj(), self.basis.kinetic_diagonal, residual).real
            / np.maximum(np.einsum("gk,gk->k", residual.conj(), residual).real, 1e-30),
            1e-3,
        )
        x = kinetic / scale[None, :]
        poly = 27.0 + 18.0 * x + 12.0 * x**2 + 8.0 * x**3
        return residual * (poly / (poly + 16.0 * x**4))

    def diagonal(self) -> np.ndarray:
        """Approximate operator diagonal (for Davidson): kinetic + mean V."""
        v_mean = float(self._v_eff.mean())
        return self.basis.kinetic_diagonal + v_mean
