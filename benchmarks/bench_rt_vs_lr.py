"""Cross-validation: RT-TDDFT spectrum peaks vs LR-TDDFT (full Casida).

Not a paper table, but its strongest available correctness check: the two
TDDFT formulations the paper's introduction contrasts must agree on where
the excitations are.  Also quantifies the cost asymmetry that motivates
the paper's LR focus (one implicit eigensolve vs thousands of
propagation steps).
"""

import time

import numpy as np
import pytest

from repro.constants import HARTREE_TO_EV
from repro.core import LRTDDFTSolver, oscillator_strengths, transition_dipoles
from repro.dft import run_scf
from repro.pw import UnitCell
from repro.rt import RealTimeTDDFT, dipole_spectrum, find_peaks


@pytest.fixture(scope="module")
def h2_state():
    box, bond = 12.0, 1.4
    cell = UnitCell(
        box * np.eye(3), ("H", "H"),
        np.array(
            [[0.5, 0.5, 0.5 - bond / 2 / box], [0.5, 0.5, 0.5 + bond / 2 / box]]
        ),
    )
    # Generous conduction space: the RT response implicitly sums over all
    # virtuals, so the Casida space must be near-converged to compare.
    return run_scf(cell, ecut=10.0, n_bands=24, tol=1e-8, seed=0)


def test_rt_peak_matches_full_casida(benchmark, h2_state, save_table):
    solver = LRTDDFTSolver(h2_state, seed=0)

    t0 = time.perf_counter()
    lr = solver.solve("naive", tda=False)
    t_lr = time.perf_counter() - t0
    dip = transition_dipoles(solver.psi_v, solver.psi_c, solver.basis)
    strengths = oscillator_strengths(lr.energies, lr.wavefunctions, dip)
    bright = float(lr.energies[np.argmax(strengths)])

    def rt_run():
        rt = RealTimeTDDFT(h2_state, self_consistent=True)
        rt.kick(1e-3, direction=(0, 0, 1))
        return rt.propagate(dt=0.1, n_steps=1500, krylov_dim=8, etrs=True)

    t0 = time.perf_counter()
    res = benchmark.pedantic(rt_run, rounds=1, iterations=1)
    t_rt = time.perf_counter() - t0

    omega, spectrum = dipole_spectrum(
        res.times, res.dipole_along_kick(), res.kick_strength,
        omega_max=1.0, damping=0.012,
    )
    peaks = find_peaks(omega, spectrum, threshold=0.25)
    assert len(peaks) >= 1
    nearest = float(peaks[np.argmin(np.abs(peaks - bright))])

    lines = [
        "RT-TDDFT vs LR-TDDFT cross-validation (H2)",
        "",
        f"brightest full-Casida excitation: {bright * HARTREE_TO_EV:7.3f} eV "
        f"(LR solve {t_lr:.2f} s)",
        f"nearest RT spectrum peak:         {nearest * HARTREE_TO_EV:7.3f} eV "
        f"(RT run {t_rt:.1f} s, 1500 steps)",
        f"difference:                       "
        f"{(nearest - bright) * HARTREE_TO_EV:+7.3f} eV",
        f"norm drift over the propagation:  "
        f"{abs(res.norms[-1] - res.norms[0]):.2e}",
    ]
    save_table("rt_vs_lr", "\n".join(lines))

    # The two formulations agree within the spectral resolution
    # (finite trace + remaining conduction-space truncation).
    assert abs(nearest - bright) * HARTREE_TO_EV < 0.35
    # Unitarity of the Krylov propagation.
    assert abs(res.norms[-1] - res.norms[0]) < 1e-8
