"""The fully distributed optimized pipeline must be rank-count invariant
and consistent with the serial optimized solver."""

import numpy as np
import pytest

from repro.core import HxcKernel, LRTDDFTSolver
from repro.parallel import BlockDistribution1D, spmd_run
from repro.parallel.parallel_isdf import (
    distributed_fit_theta,
    distributed_optimized_lrtddft,
    distributed_select_points_kmeans,
)
from repro.synthetic import synthetic_ground_state
from repro.atoms import bulk_silicon


@pytest.fixture(scope="module")
def problem():
    gs = synthetic_ground_state(
        bulk_silicon(8), ecut=5.0, n_valence=8, n_conduction=6, seed=11
    )
    psi_v, eps_v, psi_c, eps_c = gs.select_transition_space()
    kernel = HxcKernel(gs.basis, gs.density)
    return gs, psi_v, eps_v, psi_c, eps_c, kernel


def _grid_slabs(gs, comm, grid_dist):
    sl = grid_dist.local_slice(comm.rank)
    return sl, gs.basis.grid.cartesian_points[sl]


class TestDistributedSelection:
    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 4])
    def test_indices_rank_invariant(self, problem, n_ranks):
        gs, psi_v, _, psi_c, _, _ = problem
        grid_dist_ref = BlockDistribution1D(gs.basis.n_r, 1)

        def prog_for(P):
            grid_dist = BlockDistribution1D(gs.basis.n_r, P)

            def prog(comm):
                sl, pts = _grid_slabs(gs, comm, grid_dist)
                return distributed_select_points_kmeans(
                    comm, psi_v[:, sl], psi_c[:, sl], 20, pts, grid_dist
                )

            return prog

        reference = spmd_run(1, prog_for(1))[0]
        results = spmd_run(n_ranks, prog_for(n_ranks))
        for indices in results:
            np.testing.assert_array_equal(indices, reference)

    def test_indices_replicated(self, problem):
        gs, psi_v, _, psi_c, _, _ = problem
        grid_dist = BlockDistribution1D(gs.basis.n_r, 3)

        def prog(comm):
            sl, pts = _grid_slabs(gs, comm, grid_dist)
            return distributed_select_points_kmeans(
                comm, psi_v[:, sl], psi_c[:, sl], 12, pts, grid_dist
            )

        results = spmd_run(3, prog)
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[0], results[2])


class TestDistributedFit:
    @pytest.mark.parametrize("n_ranks", [1, 2, 4])
    def test_theta_matches_serial_fit(self, problem, n_ranks):
        from repro.core import fit_interpolation_vectors
        from repro.utils.rng import default_rng

        gs, psi_v, _, psi_c, _, _ = problem
        indices = np.sort(
            default_rng(0).choice(gs.basis.n_r, size=24, replace=False)
        )
        serial = fit_interpolation_vectors(psi_v, psi_c, indices)
        grid_dist = BlockDistribution1D(gs.basis.n_r, n_ranks)

        def prog(comm):
            sl = grid_dist.local_slice(comm.rank)
            return distributed_fit_theta(
                comm, psi_v[:, sl], psi_c[:, sl], indices, grid_dist
            )

        results = spmd_run(n_ranks, prog)
        assembled = np.concatenate(results, axis=0)
        np.testing.assert_allclose(assembled, serial, atol=1e-10)


class TestEndToEnd:
    @pytest.mark.parametrize("n_ranks", [1, 2, 4])
    def test_rank_count_invariant(self, problem, n_ranks):
        gs, psi_v, eps_v, psi_c, eps_c, kernel = problem

        def prog_for(P):
            grid_dist = BlockDistribution1D(gs.basis.n_r, P)

            def prog(comm):
                sl, pts = _grid_slabs(gs, comm, grid_dist)
                energies, _ = distributed_optimized_lrtddft(
                    comm, psi_v[:, sl], psi_c[:, sl], eps_v, eps_c, kernel,
                    grid_dist, 30, 4, grid_points_local=pts, tol=1e-10,
                )
                return energies

            return prog

        reference = spmd_run(1, prog_for(1))[0]
        for energies in spmd_run(n_ranks, prog_for(n_ranks)):
            np.testing.assert_allclose(energies, reference, atol=1e-10)

    def test_close_to_serial_solver_same_rank(self, problem):
        """The distributed pipeline is an independent implementation of
        version (5); with the same rank it must land in the same accuracy
        band as the serial solver (point selection differs in detail)."""
        gs, psi_v, eps_v, psi_c, eps_c, kernel = problem
        solver = LRTDDFTSolver(gs, seed=11)
        serial = solver.solve("naive", n_excitations=4)
        grid_dist = BlockDistribution1D(gs.basis.n_r, 2)

        def prog(comm):
            sl, pts = _grid_slabs(gs, comm, grid_dist)
            energies, _ = distributed_optimized_lrtddft(
                comm, psi_v[:, sl], psi_c[:, sl], eps_v, eps_c, kernel,
                grid_dist, 40, 4, grid_points_local=pts, tol=1e-10,
            )
            return energies

        energies = spmd_run(2, prog)[0]
        rel = np.abs((energies - serial.energies[:4]) / serial.energies[:4])
        assert rel.max() < 0.05

    def test_eigenvectors_are_pair_distributed(self, problem):
        gs, psi_v, eps_v, psi_c, eps_c, kernel = problem
        n_pairs = psi_v.shape[0] * psi_c.shape[0]
        grid_dist = BlockDistribution1D(gs.basis.n_r, 3)
        pair_dist = BlockDistribution1D(n_pairs, 3)

        def prog(comm):
            sl, pts = _grid_slabs(gs, comm, grid_dist)
            _, x_local = distributed_optimized_lrtddft(
                comm, psi_v[:, sl], psi_c[:, sl], eps_v, eps_c, kernel,
                grid_dist, 20, 3, grid_points_local=pts, tol=1e-8,
            )
            return x_local.shape

        shapes = spmd_run(3, prog)
        for rank, shape in enumerate(shapes):
            assert shape == (pair_dist.count(rank), 3)
