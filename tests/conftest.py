"""Shared fixtures: converged ground states are expensive, so they are
computed once per session and reused by the DFT, core and parallel tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.atoms import bulk_silicon, silicon_primitive_cell, water_molecule
from repro.constants import ANGSTROM_TO_BOHR
from repro.dft import run_scf
from repro.synthetic import synthetic_ground_state


@pytest.fixture(scope="session")
def si2_ground_state():
    """Si_2 primitive cell, Ecut = 10 Ha: the workhorse real ground state."""
    cell = silicon_primitive_cell()
    return run_scf(cell, ecut=10.0, n_bands=10, tol=1e-8, seed=1)


@pytest.fixture(scope="session")
def water_ground_state():
    """H2O in an 8 Angstrom box at Ecut = 10 Ha (kept small for speed)."""
    cell = water_molecule(box=8.0 * ANGSTROM_TO_BOHR)
    return run_scf(cell, ecut=10.0, n_bands=8, tol=1e-7, seed=2)


@pytest.fixture(scope="session")
def si8_synthetic():
    """Synthetic Si_8-like ground state: 16 valence + 8 conduction bands."""
    return synthetic_ground_state(
        bulk_silicon(8), ecut=5.0, n_valence=16, n_conduction=8, seed=11
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
