"""JobQueue: tenant fairness, priority ordering, admission control."""

import pytest

from repro.serve import AdmissionError, JobQueue


class TestPriority:
    def test_lower_priority_value_pops_first(self):
        q = JobQueue()
        q.push("low", tenant="a", priority=10)
        q.push("high", tenant="a", priority=0)
        q.push("mid", tenant="a", priority=5)
        assert [q.pop() for _ in range(3)] == ["high", "mid", "low"]

    def test_fifo_within_equal_priority(self):
        q = JobQueue()
        for i in range(4):
            q.push(i, tenant="a", priority=1)
        assert [q.pop() for _ in range(4)] == [0, 1, 2, 3]


class TestFairness:
    def test_round_robin_across_tenants(self):
        q = JobQueue()
        # Tenant "a" floods the queue before "b" submits anything.
        for i in range(3):
            q.push(("a", i), tenant="a")
        for i in range(2):
            q.push(("b", i), tenant="b")
        order = [q.pop() for _ in range(5)]
        # Service must alternate, not drain "a" first.
        assert order == [("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2)]

    def test_new_tenant_is_not_starved(self):
        q = JobQueue()
        for i in range(10):
            q.push(("a", i), tenant="a")
        q.push(("late", 0), tenant="late")
        first_two = [q.pop(), q.pop()]
        assert ("late", 0) in first_two


class TestAdmission:
    def test_queue_full(self):
        q = JobQueue(max_depth=2)
        q.push(1, tenant="a")
        q.push(2, tenant="b")
        with pytest.raises(AdmissionError) as exc:
            q.push(3, tenant="c")
        assert exc.value.reason == "queue_full"

    def test_tenant_quota(self):
        q = JobQueue(max_depth=10, max_per_tenant=1)
        q.push(1, tenant="a")
        with pytest.raises(AdmissionError) as exc:
            q.push(2, tenant="a")
        assert exc.value.reason == "tenant_quota"
        # A different tenant is unaffected by "a"'s quota.
        q.push(3, tenant="b")

    def test_quota_frees_up_after_pop(self):
        q = JobQueue(max_per_tenant=1)
        q.push(1, tenant="a")
        q.pop()
        q.push(2, tenant="a")
        assert q.depth_of("a") == 1

    def test_closed(self):
        q = JobQueue()
        q.close()
        with pytest.raises(AdmissionError) as exc:
            q.push(1, tenant="a")
        assert exc.value.reason == "closed"


class TestRemove:
    def test_remove_matching_item(self):
        q = JobQueue()
        q.push("keep", tenant="a")
        q.push("drop", tenant="a")
        assert q.remove(lambda item: item == "drop")
        assert not q.remove(lambda item: item == "drop")
        assert q.pop() == "keep"
        assert len(q) == 0

    def test_pop_timeout_returns_none(self):
        q = JobQueue()
        assert q.pop(timeout=0.01) is None
