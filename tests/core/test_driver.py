"""Tests for the LRTDDFTSolver driver — the paper's Table 4 version matrix.

The central reproduction invariant lives here: all five versions agree on
the lowest excitation energies (Table 5's "negligible error" claim).
"""

import numpy as np
import pytest

from repro.core import METHODS, LRTDDFTSolver


@pytest.fixture(scope="module")
def solver(si2_ground_state):
    return LRTDDFTSolver(si2_ground_state, seed=7)


@pytest.fixture(scope="module")
def naive_result(solver):
    return solver.solve("naive", n_excitations=6)


class TestNaive:
    def test_energies_positive_ascending(self, naive_result):
        assert (naive_result.energies > 0).all()
        assert (np.diff(naive_result.energies) >= -1e-12).all()

    def test_full_spectrum_when_unspecified(self, solver):
        res = solver.solve("naive")
        assert res.n_excitations == solver.n_pairs

    def test_first_excitation_below_ks_gap_plus_coupling(
        self, solver, naive_result, si2_ground_state
    ):
        """TDA excitations stay within a physical window of the KS gap."""
        gap = si2_ground_state.homo_lumo_gap()
        assert 0.5 * gap < naive_result.energies[0] < 2.0 * gap


class TestCrossVersionAgreement:
    """The reproduction of Table 5: ISDF versions track the naive result."""

    def test_qrcp_isdf_exact_at_full_rank(self, solver, naive_result):
        res = solver.solve("qrcp-isdf", n_excitations=6)
        np.testing.assert_allclose(res.energies, naive_result.energies[:6], atol=1e-9)

    def test_kmeans_isdf_within_paper_error_band(self, solver, naive_result):
        """Paper Table 5 reports ~0.1-1% relative error for ISDF-LOBPCG."""
        res = solver.solve("kmeans-isdf", n_excitations=6)
        rel = np.abs(res.energies - naive_result.energies[:6]) / naive_result.energies[:6]
        assert rel.max() < 0.03

    @pytest.mark.parametrize(
        "method", ["kmeans-isdf-lobpcg", "implicit-kmeans-isdf-lobpcg"]
    )
    def test_lobpcg_versions_match_dense_same_isdf(self, solver, method):
        """With identical ISDF points, iterative and dense agree to solver
        tolerance — the eigensolver introduces no extra physics error."""
        dense = solver.solve("kmeans-isdf", n_excitations=6)
        iterative = solver.solve(method, n_excitations=6, tol=1e-10)
        np.testing.assert_allclose(
            iterative.energies, dense.energies[:6], atol=1e-7
        )

    def test_implicit_qrcp_matches_explicit_qrcp(self, solver):
        dense = solver.solve("qrcp-isdf", n_excitations=6)
        implicit = solver.solve("implicit-qrcp-isdf-lobpcg", n_excitations=6, tol=1e-10)
        np.testing.assert_allclose(implicit.energies, dense.energies[:6], atol=1e-7)

    def test_all_methods_run(self, solver):
        for method in METHODS:
            res = solver.solve(method, n_excitations=3)
            assert res.n_excitations == 3
            assert res.method == method


class TestDavidsonVariants:
    def test_davidson_matches_lobpcg(self, solver):
        lob = solver.solve("kmeans-isdf-lobpcg", n_excitations=4, tol=1e-10)
        dav = solver.solve("kmeans-isdf-davidson", n_excitations=4, tol=1e-10)
        np.testing.assert_allclose(dav.energies, lob.energies, atol=1e-8)

    def test_implicit_davidson_matches_dense(self, solver):
        dense = solver.solve("kmeans-isdf", n_excitations=4)
        dav = solver.solve(
            "implicit-kmeans-isdf-davidson", n_excitations=4, tol=1e-10
        )
        np.testing.assert_allclose(dav.energies, dense.energies[:4], atol=1e-7)

    def test_davidson_reports_iterations(self, solver):
        dav = solver.solve("implicit-kmeans-isdf-davidson", n_excitations=3)
        assert dav.eigensolver_iterations > 0


class TestSolverOptions:
    def test_unknown_method_rejected(self, solver):
        with pytest.raises(ValueError, match="unknown method"):
            solver.solve("magic")

    def test_n_mu_override(self, solver):
        res = solver.solve("kmeans-isdf", n_mu=12, n_excitations=3)
        assert res.n_mu == 12

    def test_naive_has_no_rank(self, naive_result):
        assert naive_result.n_mu is None

    def test_timings_recorded(self, solver):
        res = solver.solve("implicit-kmeans-isdf-lobpcg", n_excitations=3)
        assert any("diagonalize" in key for key in res.timings)
        assert any("select_kmeans" in key for key in res.timings)

    def test_reproducible_across_calls(self, solver):
        a = solver.solve("implicit-kmeans-isdf-lobpcg", n_excitations=4)
        b = solver.solve("implicit-kmeans-isdf-lobpcg", n_excitations=4)
        np.testing.assert_allclose(a.energies, b.energies, atol=1e-12)

    def test_invalid_excitation_count(self, solver):
        with pytest.raises(ValueError):
            solver.solve("naive", n_excitations=solver.n_pairs + 1)

    def test_transition_space_truncation(self, si2_ground_state):
        small = LRTDDFTSolver(si2_ground_state, n_valence=2, n_conduction=3, seed=1)
        assert small.n_pairs == 6
        res = small.solve("naive")
        assert res.n_excitations == 6

    def test_isdf_kwargs_forwarded(self, solver):
        res = solver.solve(
            "kmeans-isdf", n_excitations=3,
            isdf_kwargs={"prune_threshold": 1e-3},
        )
        assert res.isdf is not None

    def test_rank_factor_changes_default_rank(self, si8_synthetic):
        solver = LRTDDFTSolver(si8_synthetic, seed=2)
        lo = solver.solve("kmeans-isdf", rank_factor=3.0, n_excitations=3)
        hi = solver.solve("kmeans-isdf", rank_factor=6.0, n_excitations=3)
        assert hi.n_mu == 2 * lo.n_mu


class TestPhysicalBehaviour:
    def test_rpa_vs_alda(self, si2_ground_state):
        alda = LRTDDFTSolver(si2_ground_state, seed=1).solve("naive", n_excitations=1)
        rpa = LRTDDFTSolver(
            si2_ground_state, include_xc=False, seed=1
        ).solve("naive", n_excitations=1)
        assert rpa.energies[0] > alda.energies[0]

    def test_wavefunctions_normalized(self, naive_result):
        norms = np.linalg.norm(naive_result.wavefunctions, axis=0)
        np.testing.assert_allclose(norms, 1.0, atol=1e-10)


class TestPrecisionTiers:
    """The solver threads the TDDFTConfig precision tier down to K-Means,
    the ISDF fit and the Hxc convolution plans (see repro.precision)."""

    @pytest.fixture(scope="class")
    def fresh_solver(self, si2_ground_state):
        # Class-local instance: these tests mutate the solver's precision
        # state, so the module-scope solver stays untouched.
        return LRTDDFTSolver(si2_ground_state, seed=7)

    def _config(self, precision):
        from repro import api

        return api.TDDFTConfig(
            method="kmeans-isdf", n_excitations=4, seed=7, precision=precision
        )

    def test_strict64_default_is_bit_identical_to_explicit(self, fresh_solver):
        implicit = fresh_solver.solve(self._config("strict64"))
        rebuilt = LRTDDFTSolver(fresh_solver.ground_state, seed=7)
        default = rebuilt.solve(
            self._config("strict64").replace(precision="strict64")
        )
        np.testing.assert_array_equal(default.energies, implicit.energies)

    def test_mixed_tier_stays_close_and_never_degrades(self, fresh_solver):
        from repro.resilience import resilience_log

        log = resilience_log()
        before = len(log)
        strict = fresh_solver.solve(self._config("strict64"))
        mixed = fresh_solver.solve(self._config("mixed"))
        # fp32 K-Means may legally converge along a different iteration
        # trajectory, selecting slightly different interpolation points —
        # both clusterings sit inside the paper's ~0.1-1% ISDF error band,
        # so the tiers agree to well within that band (not to fp32 eps).
        rel = np.abs(mixed.energies - strict.energies) / np.abs(strict.energies)
        assert rel.max() <= 2e-3
        assert len(log) == before

    def test_precision_change_rebuilds_the_kernel_once(self, fresh_solver):
        fresh_solver.solve(self._config("strict64"))
        kernel64 = fresh_solver.kernel
        fresh_solver.solve(self._config("mixed"))
        kernel32 = fresh_solver.kernel
        assert kernel32 is not kernel64
        # Same tier again: no rebuild.
        fresh_solver.solve(self._config("mixed"))
        assert fresh_solver.kernel is kernel32
