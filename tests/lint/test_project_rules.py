"""The three interprocedural rule families, on synthetic projects.

``transitive-collective-in-branch`` must see through call chains the
per-file rule cannot; ``impure-cache-key`` must flag an injected
``time.time()`` in a synthetic serialization closure while the *real*
``CalculationRequest`` graph in ``src/`` stays clean; the lock rules must
find order cycles, self-deadlocks and blocking-under-lock — and honour the
two deliberate exemptions (condition-wait, literal-zero timeout).
"""

import ast

import pytest

from repro.lint import lint_paths, lint_source
from repro.lint.callgraph import build_project
from repro.lint.engine import SourceModule, all_project_rules

pytestmark = pytest.mark.lint


def project_findings(files, rule_name):
    modules = [
        SourceModule(path=path, text=text, tree=ast.parse(text))
        for path, text in files.items()
    ]
    graph = build_project(modules)
    rule = next(r for r in all_project_rules() if r.name == rule_name)
    return list(rule.check(graph, modules))


def one_module(text, rule_name):
    return project_findings({"src/app/mod.py": text}, rule_name)


class TestTransitiveCollectiveInBranch:
    def test_collective_one_call_deep_in_rank_branch(self):
        findings = one_module(
            "def finalize(comm):\n"
            "    comm.barrier()\n"
            "def step(comm, rank):\n"
            "    if rank == 0:\n"
            "        finalize(comm)\n",
            "transitive-collective-in-branch",
        )
        assert len(findings) == 1
        assert "barrier" in findings[0].message
        assert "finalize" in findings[0].message  # the witness chain

    def test_collective_two_calls_deep(self):
        findings = one_module(
            "def inner(comm):\n"
            "    comm.allreduce(0)\n"
            "def outer(comm):\n"
            "    inner(comm)\n"
            "def step(comm, rank):\n"
            "    if rank == 0:\n"
            "        outer(comm)\n",
            "transitive-collective-in-branch",
        )
        assert len(findings) == 1
        assert "outer -> inner" in findings[0].message

    def test_symmetric_arms_are_clean(self):
        findings = one_module(
            "def finalize(comm):\n"
            "    comm.barrier()\n"
            "def also_finalize(comm):\n"
            "    comm.barrier()\n"
            "def step(comm, rank):\n"
            "    if rank == 0:\n"
            "        finalize(comm)\n"
            "    else:\n"
            "        also_finalize(comm)\n",
            "transitive-collective-in-branch",
        )
        assert findings == []

    def test_direct_collective_is_left_to_the_per_file_rule(self):
        src = (
            "def step(comm, rank):\n"
            "    if rank == 0:\n"
            "        comm.barrier()\n"
        )
        assert one_module(src, "transitive-collective-in-branch") == []
        # ... but the per-file rule still owns it:
        rules = [f.rule for f in lint_source(src, project=True)]
        assert rules == ["collective-in-branch"]

    def test_rank_taint_flows_through_local_assignment(self):
        findings = one_module(
            "def finalize(comm):\n"
            "    comm.barrier()\n"
            "def step(comm, rank):\n"
            "    color = rank % 2\n"
            "    if color:\n"
            "        finalize(comm)\n",
            "transitive-collective-in-branch",
        )
        assert len(findings) == 1

    def test_rank_dependent_while_loop_calling_helper(self):
        findings = one_module(
            "def sync(comm):\n"
            "    comm.allreduce(1)\n"
            "def drain(comm, rank):\n"
            "    while rank > 0:\n"
            "        sync(comm)\n"
            "        rank -= 1\n",
            "transitive-collective-in-branch",
        )
        assert len(findings) == 1
        assert "while loop" in findings[0].message

    def test_rank_independent_branch_is_clean(self):
        findings = one_module(
            "def finalize(comm):\n"
            "    comm.barrier()\n"
            "def step(comm, verbose):\n"
            "    if verbose:\n"
            "        finalize(comm)\n",
            "transitive-collective-in-branch",
        )
        assert findings == []


SYNTH_IMPURE = (
    "import time\n"
    "import hashlib, json\n"
    "def stamp():\n"
    "    return time.time()\n"
    "class CalculationRequest:\n"
    "    def to_dict(self):\n"
    "        return {'stamp': stamp()}\n"
    "    def canonical_json(self):\n"
    "        return json.dumps(self.to_dict(), sort_keys=True)\n"
    "    def cache_key(self):\n"
    "        return hashlib.sha256(self.canonical_json().encode()).hexdigest()\n"
)


class TestImpureCacheKey:
    def test_injected_wallclock_read_is_flagged_through_the_chain(self):
        findings = one_module(SYNTH_IMPURE, "impure-cache-key")
        assert len(findings) == 1
        f = findings[0]
        assert "wall-clock read time.time()" in f.message
        assert "reachable from the cache key" in f.message
        assert "stamp" in f.message
        assert f.line == 4  # the time.time() call itself, not the root

    def test_pure_serialization_graph_is_clean(self):
        pure = SYNTH_IMPURE.replace("import time\n", "").replace(
            "    return time.time()\n", "    return 0.0\n"
        )
        assert one_module(pure, "impure-cache-key") == []

    def test_set_iteration_in_closure_is_flagged(self):
        findings = one_module(
            "class CalculationRequest:\n"
            "    def to_dict(self):\n"
            "        return {'species': list_species(self)}\n"
            "def list_species(req):\n"
            "    return [s for s in set(req.species)]\n",
            "impure-cache-key",
        )
        assert len(findings) == 1
        assert "hash order" in findings[0].message

    def test_impurity_outside_the_closure_is_not_flagged(self):
        findings = one_module(
            "import time\n"
            "class CalculationRequest:\n"
            "    def to_dict(self):\n"
            "        return {}\n"
            "def unrelated():\n"
            "    return time.time()\n",
            "impure-cache-key",
        )
        assert findings == []

    def test_real_request_serialization_graph_is_clean(self):
        # The acceptance bar for the rule: the actual canonical_json /
        # cache_key closure in src/ must pass with zero findings.
        assert lint_paths(["src"], rules=["impure-cache-key"]) == []


LOCK_PREFIX = (
    "import threading\n"
    "class Store:\n"
    "    def __init__(self):\n"
    "        self._a = threading.Lock()\n"
    "        self._b = threading.Lock()\n"
)


class TestLockOrderCycle:
    def test_conflicting_orders_in_one_class(self):
        findings = one_module(
            LOCK_PREFIX
            + "    def one(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n"
            "    def two(self):\n"
            "        with self._b:\n"
            "            with self._a:\n"
            "                pass\n",
            "lock-order-cycle",
        )
        assert len(findings) == 1
        assert "cyclic order" in findings[0].message
        assert "Store._a" in findings[0].message
        assert "Store._b" in findings[0].message

    def test_consistent_order_is_clean(self):
        findings = one_module(
            LOCK_PREFIX
            + "    def one(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n"
            "    def two(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n",
            "lock-order-cycle",
        )
        assert findings == []

    def test_transitive_cycle_through_a_call(self):
        findings = one_module(
            LOCK_PREFIX
            + "    def one(self):\n"
            "        with self._a:\n"
            "            self.grab_b()\n"
            "    def grab_b(self):\n"
            "        with self._b:\n"
            "            pass\n"
            "    def two(self):\n"
            "        with self._b:\n"
            "            with self._a:\n"
            "                pass\n",
            "lock-order-cycle",
        )
        assert len(findings) == 1
        assert "cyclic order" in findings[0].message

    def test_nonreentrant_reacquire_self_deadlocks(self):
        findings = one_module(
            LOCK_PREFIX
            + "    def one(self):\n"
            "        with self._a:\n"
            "            with self._a:\n"
            "                pass\n",
            "lock-order-cycle",
        )
        assert len(findings) == 1
        assert "self-deadlocks" in findings[0].message

    def test_rlock_reacquire_is_fine(self):
        findings = one_module(
            "import threading\n"
            "class Store:\n"
            "    def __init__(self):\n"
            "        self._a = threading.RLock()\n"
            "    def one(self):\n"
            "        with self._a:\n"
            "            with self._a:\n"
            "                pass\n",
            "lock-order-cycle",
        )
        assert findings == []

    def test_transitive_reacquire_through_a_call(self):
        findings = one_module(
            LOCK_PREFIX
            + "    def one(self):\n"
            "        with self._a:\n"
            "            self.helper()\n"
            "    def helper(self):\n"
            "        with self._a:\n"
            "            pass\n",
            "lock-order-cycle",
        )
        assert len(findings) == 1
        assert "self-deadlocks" in findings[0].message


class TestBlockingUnderLock:
    def test_sleep_under_lock(self):
        findings = one_module(
            "import threading, time\n"
            "class Store:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def slow(self):\n"
            "        with self._lock:\n"
            "            time.sleep(0.1)\n",
            "blocking-under-lock",
        )
        assert len(findings) == 1
        assert "time.sleep()" in findings[0].message
        assert "Store._lock" in findings[0].message

    def test_disk_io_reached_through_a_call(self):
        findings = one_module(
            "import threading\n"
            "class Store:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def put(self):\n"
            "        with self._lock:\n"
            "            self._flush()\n"
            "    def _flush(self):\n"
            "        with open('x', 'w') as fh:\n"
            "            fh.write('1')\n",
            "blocking-under-lock",
        )
        assert len(findings) == 1
        assert "disk I/O" in findings[0].message
        assert "via Store.put -> Store._flush" in findings[0].message

    def test_collective_under_lock(self):
        findings = one_module(
            "import threading\n"
            "_lock = threading.Lock()\n"
            "def exchange(comm):\n"
            "    with _lock:\n"
            "        comm.allreduce(1)\n",
            "blocking-under-lock",
        )
        assert len(findings) == 1
        assert "collective allreduce()" in findings[0].message

    def test_condition_wait_on_its_own_lock_is_exempt(self):
        findings = one_module(
            "import threading\n"
            "class Q:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._cond = threading.Condition(self._lock)\n"
            "    def pop(self):\n"
            "        with self._lock:\n"
            "            self._cond.wait()\n",
            "blocking-under-lock",
        )
        assert findings == []

    def test_condition_wait_under_an_unrelated_lock_is_flagged(self):
        findings = one_module(
            "import threading\n"
            "class Q:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._other = threading.Lock()\n"
            "        self._cond = threading.Condition(self._lock)\n"
            "    def pop(self):\n"
            "        with self._other:\n"
            "            with self._lock:\n"
            "                self._cond.wait()\n",
            "blocking-under-lock",
        )
        assert len(findings) == 1
        assert "Q._other" in findings[0].message

    def test_literal_zero_timeout_drain_is_exempt(self):
        findings = one_module(
            "import threading\n"
            "class Q:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.queue = None\n"
            "    def pop(self, timeout):\n"
            "        return self.queue.get(timeout=timeout)\n"
            "    def drain(self):\n"
            "        with self._lock:\n"
            "            return self.pop(timeout=0)\n",
            "blocking-under-lock",
        )
        assert findings == []

    def test_caller_supplied_timeout_is_not_exempt(self):
        findings = one_module(
            "import threading\n"
            "class Q:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.queue = None\n"
            "    def pop(self, timeout):\n"
            "        return self.queue.get(timeout=timeout)\n"
            "    def drain(self, timeout):\n"
            "        with self._lock:\n"
            "            return self.pop(timeout=timeout)\n",
            "blocking-under-lock",
        )
        assert len(findings) == 1
        assert "timeout" in findings[0].message


class TestRealTreeStaysClean:
    def test_all_project_rules_clean_on_src(self):
        names = [r.name for r in all_project_rules()]
        assert sorted(names) == [
            "blocking-under-lock",
            "collective-buffer-contract",
            "hidden-copy-into-kernel",
            "impure-cache-key",
            "lock-order-cycle",
            "shape-mismatch",
            "silent-upcast-in-hot",
            "transitive-collective-in-branch",
            "undeclared-downcast-in-hot",
        ]
        assert lint_paths(["src"], rules=names) == []
