"""Per-job event channels: ordered history plus live subscriptions.

Every job owns one channel.  The server publishes lifecycle events
(``queued``, ``running``, ``done``, ...) and per-iteration progress events
(SCF residuals, partial LOBPCG spectra) into it; clients either read the
accumulated :meth:`EventChannel.history` after the fact or
:meth:`EventChannel.subscribe` while the job runs.

Subscriptions replay the existing history first, then stream live events,
so a late subscriber sees exactly the same ordered sequence as an early
one.  A channel *finishes* when a terminal event (``done`` / ``failed`` /
``cancelled``) is published; iteration over a subscription ends there.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field

__all__ = ["EventChannel", "JobEvent", "Subscription", "TERMINAL_EVENTS"]

#: Event types that end a job's stream.
TERMINAL_EVENTS = frozenset({"done", "failed", "cancelled"})


@dataclass(frozen=True)
class JobEvent:
    """One immutable event in a job's ordered stream.

    Attributes
    ----------
    seq:
        Position in the job's stream (0-based, dense).
    job_id:
        Owning job.
    type:
        ``"queued"`` / ``"running"`` / ``"progress"`` / ``"cache_hit"`` /
        ``"warm_start"`` / ``"done"`` / ``"failed"`` / ``"cancelled"``.
    payload:
        Event-specific primitives (e.g. an SCF iteration's residual, or
        the current partial spectrum from the eigensolver).
    """

    seq: int
    job_id: str
    type: str
    payload: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "job_id": self.job_id,
            "type": self.type,
            "payload": dict(self.payload),
        }


class Subscription:
    """A live, iterable view of one job's event stream.

    Iterating yields :class:`JobEvent` in order and stops after a terminal
    event (or after :meth:`close`).  :meth:`get` offers non-blocking /
    timed access for pollers.
    """

    _CLOSED = object()

    def __init__(self) -> None:
        self._queue: queue.Queue = queue.Queue()
        self._finished = False

    def _push(self, event: JobEvent) -> None:
        self._queue.put(event)

    def get(self, timeout: float | None = None) -> JobEvent | None:
        """Next event, or ``None`` if the stream ended / timed out."""
        if self._finished:
            return None
        try:
            item = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        if item is self._CLOSED:
            self._finished = True
            return None
        if item.type in TERMINAL_EVENTS:
            self._finished = True
        return item

    def close(self) -> None:
        """End iteration for any consumer blocked on this subscription."""
        self._queue.put(self._CLOSED)

    def __iter__(self):
        while True:
            event = self.get()
            if event is None:
                return
            yield event
            if event.type in TERMINAL_EVENTS:
                return


class EventChannel:
    """Ordered event log for one job, with replaying subscriptions."""

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        self._lock = threading.Lock()
        self._events: list[JobEvent] = []
        self._subscribers: list[Subscription] = []
        self._finished = False

    @property
    def finished(self) -> bool:
        """Whether a terminal event has been published."""
        return self._finished

    def publish(self, type: str, payload: dict | None = None) -> JobEvent:
        """Append one event and fan it out to live subscribers.

        Publishing after a terminal event is a programming error and
        raises — a finished job must stay finished.
        """
        with self._lock:
            if self._finished:
                raise RuntimeError(
                    f"job {self.job_id}: channel already finished, "
                    f"cannot publish {type!r}"
                )
            event = JobEvent(
                seq=len(self._events),
                job_id=self.job_id,
                type=type,
                payload=dict(payload or {}),
            )
            self._events.append(event)
            if type in TERMINAL_EVENTS:
                self._finished = True
            subscribers = list(self._subscribers)
        for sub in subscribers:
            sub._push(event)
        return event

    def history(self) -> tuple[JobEvent, ...]:
        """All events published so far, in order."""
        with self._lock:
            return tuple(self._events)

    def subscribe(self) -> Subscription:
        """New subscription; replays history, then streams live events."""
        sub = Subscription()
        with self._lock:
            for event in self._events:
                sub._push(event)
            if not self._finished:
                self._subscribers.append(sub)
        return sub
