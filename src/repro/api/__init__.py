"""``repro.api`` — the stable, typed facade over the calculation pipeline.

Everything a downstream user needs lives here:

* **the unified request**: :class:`CalculationRequest` — one frozen,
  content-hashable object (kind + structure + configs + resilience) with
  synchronous :meth:`~CalculationRequest.compute` and asynchronous
  :meth:`~CalculationRequest.submit` (job server with content-addressed
  result cache and warm starts, see :mod:`repro.serve`);
* config objects: :class:`SCFConfig`, :class:`TDDFTConfig`,
  :class:`RTConfig`, :class:`BatchConfig`, :class:`ResilienceConfig`
  (frozen dataclasses with exact dict round-trip);
* legacy entry points: :func:`run_scf`, :func:`solve_tddft`,
  :func:`run_batch`, :func:`run_rt` — deprecation shims that build a
  request and execute it through the same path;
* result types: :class:`SCFResult` (= :class:`~repro.dft.GroundState`),
  :class:`LRTDDFTResult`, :class:`RTResult` — all with ``save``/``load`` —
  and the batch containers :class:`BatchResult` / :class:`FrameRecord`;
* :func:`load_result` — load any saved result by its embedded class tag;
* :func:`execute_request` — the shared execution path (power users /
  the job server).

The exported surface is snapshot-tested against
``tools/public_api_manifest.json`` (see ``tools/check_public_api.py``), so
accidental breaking changes fail CI instead of downstream users.
"""

from repro.api.config import (
    BatchConfig,
    ResilienceConfig,
    RTConfig,
    SCFConfig,
    TDDFTConfig,
)
from repro.api.facade import (
    SCFResult,
    install_fft_fallback,
    load_result,
    reset_deprecation_warnings,
    run_batch,
    run_rt,
    run_scf,
    solve_tddft,
)
from repro.api.request import (
    REQUEST_KINDS,
    CalculationRequest,
    ExecutionOutcome,
    execute_request,
    structure_from_dict,
    structure_to_dict,
)
from repro.batch.results import BatchResult, FrameRecord
from repro.core.driver import LRTDDFTResult
from repro.rt.tddft import RTResult

__all__ = [
    "BatchConfig",
    "BatchResult",
    "CalculationRequest",
    "ExecutionOutcome",
    "FrameRecord",
    "LRTDDFTResult",
    "REQUEST_KINDS",
    "RTConfig",
    "RTResult",
    "ResilienceConfig",
    "SCFConfig",
    "SCFResult",
    "TDDFTConfig",
    "execute_request",
    "install_fft_fallback",
    "load_result",
    "reset_deprecation_warnings",
    "run_batch",
    "run_rt",
    "run_scf",
    "solve_tddft",
    "structure_from_dict",
    "structure_to_dict",
]
