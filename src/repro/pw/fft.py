"""FFT transforms with Fourier-series normalization.

Conventions (the only place they are defined):

* ``forward(f_r) -> f_G`` returns Fourier-series coefficients
  ``f_G = (1/N_r) sum_r f(r) exp(-i G . r)`` so that
  ``f(r) = sum_G f_G exp(i G . r)`` exactly on the grid.
* ``backward`` is the exact inverse.

With these conventions the Poisson solve is simply
``V_H(G) = 4 pi / |G|^2 * n(G)`` and the convolution theorem holds without
stray volume factors.  Batched transforms operate on the *leading* axes so a
block of orbitals ``(n_bands, n1, n2, n3)`` is transformed in one call —
this is the numpy analogue of the batched FFTW plans used by PWDFT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pw.grid import RealSpaceGrid

_AXES = (-3, -2, -1)


@dataclass(frozen=True)
class FourierGrid:
    """Forward/backward FFTs bound to one :class:`RealSpaceGrid`."""

    grid: RealSpaceGrid

    def forward(self, f_real: np.ndarray) -> np.ndarray:
        """Real space -> Fourier-series coefficients on the full grid."""
        f = self.grid.reshape_to_grid(np.asarray(f_real))
        out = np.fft.fftn(f, axes=_AXES) / self.grid.n_points
        return self.grid.flatten_from_grid(out)

    def backward(self, f_recip: np.ndarray) -> np.ndarray:
        """Fourier-series coefficients -> real space on the full grid."""
        f = self.grid.reshape_to_grid(np.asarray(f_recip))
        out = np.fft.ifftn(f, axes=_AXES) * self.grid.n_points
        return self.grid.flatten_from_grid(out)

    def backward_real(self, f_recip: np.ndarray) -> np.ndarray:
        """:meth:`backward` for coefficients with Hermitian symmetry.

        Returns the real part; use when the result is known to be a real
        field (densities, potentials) to halve downstream memory traffic.
        """
        return self.backward(f_recip).real
