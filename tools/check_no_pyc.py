#!/usr/bin/env python
"""Guard: fail if any bytecode artifacts are tracked by git.

Compiled ``*.pyc`` files and ``__pycache__`` directories are
interpreter-version-specific build products; committing them bloats diffs
and silently shadows source changes for anyone on a matching interpreter.
Run from anywhere inside the repo; exits non-zero listing offenders.
Invoked by the test suite (``tests/test_bench_smoke.py``) so a stray
``git add -A`` can't reintroduce them.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys


def tracked_bytecode(repo_root: pathlib.Path) -> list[str]:
    out = subprocess.run(
        ["git", "ls-files", "--", "*.pyc", "*__pycache__*"],
        cwd=repo_root, capture_output=True, text=True, check=True,
    ).stdout
    return [line for line in out.splitlines() if line]


def main() -> int:
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    offenders = tracked_bytecode(repo_root)
    if offenders:
        print("ERROR: bytecode artifacts are tracked by git:", file=sys.stderr)
        for path in offenders:
            print(f"  {path}", file=sys.stderr)
        print("fix: git rm --cached <files>  (.gitignore already covers them)",
              file=sys.stderr)
        return 1
    print("ok: no tracked bytecode artifacts")
    return 0


if __name__ == "__main__":
    sys.exit(main())
