"""Smoke coverage for the measured backend benchmark and repo hygiene.

Runs ``benchmarks/bench_backend.py --smoke`` end-to-end (subprocess, like a
user would) and checks the emitted JSON: structure, and — more importantly —
the embedded equivalence flags, which turn the bench into a cross-backend
numerics test.  Also invokes the ``tools/check_no_pyc.py`` guard so tracked
bytecode can't creep back in.
"""

import json
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _run(cmd, **kwargs):
    env = dict(kwargs.pop("env", {}) or {})
    return subprocess.run(
        cmd, cwd=REPO_ROOT, capture_output=True, text=True,
        env={**__import__("os").environ, "PYTHONPATH": str(REPO_ROOT / "src"), **env},
        **kwargs,
    )


@pytest.fixture(scope="module")
def smoke_report(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_backend.json"
    proc = _run([sys.executable, "benchmarks/bench_backend.py", "--smoke",
                 "--out", str(out)])
    assert proc.returncode == 0, proc.stderr
    assert "backend bench (smoke mode)" in proc.stdout
    return json.loads(out.read_text())


class TestBenchSmoke:
    def test_report_structure(self, smoke_report):
        assert smoke_report["meta"]["mode"] == "smoke"
        assert "numpy" in smoke_report["meta"]["fft_backends"]
        fft = smoke_report["fft_coulomb_apply"]
        for name in smoke_report["meta"]["fft_backends"]:
            assert fft["backends"][name]["seconds_per_apply"] > 0
        km = smoke_report["kmeans_selection"]
        assert set(km["algorithms"]) == {"lloyd", "hamerly"}
        assert smoke_report["phase_metrics"]  # counters were recorded

    def test_backends_numerically_equivalent(self, smoke_report):
        fft = smoke_report["fft_coulomb_apply"]
        if "scipy" in fft["backends"]:
            assert fft["within_1e-10"], fft["max_rel_diff"]

    def test_kmeans_bit_identical(self, smoke_report):
        km = smoke_report["kmeans_selection"]
        assert km["labels_identical"]
        assert km["inertia_identical"]
        assert km["centroids_identical"]

    def test_cli_subcommand(self, tmp_path):
        out = tmp_path / "report.json"
        proc = _run([sys.executable, "-m", "repro", "bench-backend",
                     "--smoke", "--out", str(out)])
        assert proc.returncode == 0, proc.stderr
        assert json.loads(out.read_text())["meta"]["mode"] == "smoke"


@pytest.fixture(scope="module")
def batch_smoke_report(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_batch.json"
    proc = _run([sys.executable, "benchmarks/bench_batch.py", "--smoke",
                 "--out", str(out)])
    assert proc.returncode == 0, proc.stderr
    assert "batch bench (smoke mode" in proc.stdout
    return json.loads(out.read_text())


@pytest.mark.batch
class TestBatchBenchSmoke:
    def test_report_structure(self, batch_smoke_report):
        report = batch_smoke_report
        assert report["meta"]["mode"] == "smoke"
        n = report["meta"]["n_frames"]
        assert len(report["cold"]["frames"]) == n
        assert len(report["warm"]["frames"]) == n
        for frame in report["cold"]["frames"] + report["warm"]["frames"]:
            assert frame["scf_converged"] and frame["tddft_converged"]
        assert report["speedup_end_to_end"] > 0
        assert isinstance(report["isdf_reselection_frames"], list)

    def test_equivalence_flags(self, batch_smoke_report):
        eq = batch_smoke_report["equivalence"]
        assert eq["within_tolerance"], eq
        assert eq["frame0_bit_identical"], eq
        assert eq["max_total_energy_delta_ha"] <= eq["tolerance_bound_ha"]

    def test_warm_mechanism_visible(self, batch_smoke_report):
        cold = batch_smoke_report["cold"]["frames"]
        warm = batch_smoke_report["warm"]["frames"]
        assert sum(f["scf_iterations"] for f in warm[1:]) < sum(
            f["scf_iterations"] for f in cold[1:]
        )
        assert any(not f["isdf_reselected"] for f in warm)

    def test_cli_subcommand(self, tmp_path):
        out = tmp_path / "report.json"
        proc = _run([sys.executable, "-m", "repro", "bench-batch",
                     "--smoke", "--out", str(out)])
        assert proc.returncode == 0, proc.stderr
        assert json.loads(out.read_text())["meta"]["mode"] == "smoke"


def test_no_tracked_bytecode():
    proc = _run([sys.executable, "tools/check_no_pyc.py"])
    assert proc.returncode == 0, proc.stderr
