"""Bit-identity of the bound-pruned (Hamerly) weighted K-Means.

The pruned loop exists purely for speed: ``algorithm="hamerly"`` must
produce *bit-for-bit* the same labels, centroids and inertia as the naive
``algorithm="lloyd"`` classification at every tested workload — including
the real-orbital pair weights the paper's Eq. 14 selection runs on — or
interpolation-point selection would silently depend on the algorithm flag.
"""

import numpy as np
import pytest

from repro.core import pair_weights, select_points_kmeans
from repro.core.kmeans import DEFAULT_TILE_BYTES, weighted_kmeans
from repro.utils.rng import default_rng


def _run_both(points, weights, k, *, seed=None, **kwargs):
    out = {}
    for algorithm in ("lloyd", "hamerly"):
        # Fresh rng per run: stochastic inits must start identically.
        rng = default_rng(seed) if seed is not None else None
        out[algorithm] = weighted_kmeans(
            points, weights, k, algorithm=algorithm, rng=rng, **kwargs
        )
    return out["lloyd"], out["hamerly"]


def _assert_bit_identical(lloyd, hamerly):
    c_l, labels_l, inertia_l, n_iter_l, conv_l = lloyd
    c_h, labels_h, inertia_h, n_iter_h, conv_h = hamerly
    np.testing.assert_array_equal(labels_h, labels_l)
    np.testing.assert_array_equal(c_h, c_l)
    assert inertia_h == inertia_l  # bitwise, not approx
    assert (n_iter_h, conv_h) == (n_iter_l, conv_l)


class TestBitIdentity:
    @pytest.mark.parametrize("k", [3, 17, 64])
    def test_seeded_random_points(self, k):
        rng = default_rng(42)
        points = rng.standard_normal((600, 3))
        weights = rng.random(600) + 1e-3
        _assert_bit_identical(
            *_run_both(points, weights, k, seed=7, init="plusplus")
        )

    def test_greedy_weight_init(self):
        rng = default_rng(5)
        points = rng.standard_normal((400, 3)) * 3.0
        weights = rng.random(400) ** 4  # strongly non-uniform, like Eq. 14
        _assert_bit_identical(
            *_run_both(points, weights, 24, init="greedy-weight")
        )

    def test_clustered_data_with_empty_cluster_reseeds(self):
        # Far more centroids than natural clusters forces the empty-cluster
        # reseed path, which must also stay in lockstep.
        rng = default_rng(3)
        centres = np.array([[0.0, 0, 0], [20.0, 0, 0]])
        points = np.vstack(
            [c + 0.1 * rng.standard_normal((50, 3)) for c in centres]
        )
        weights = np.ones(100)
        _assert_bit_identical(
            *_run_both(points, weights, 40, seed=9, init="plusplus")
        )

    def test_real_orbital_weights(self, si8_synthetic):
        gs = si8_synthetic
        psi_v, _, psi_c, _ = gs.select_transition_space()
        w_full = pair_weights(psi_v, psi_c)
        keep = np.flatnonzero(w_full >= 1e-6 * w_full.max())
        points = gs.basis.grid.cartesian_points[keep]
        _assert_bit_identical(
            *_run_both(points, w_full[keep], 32, init="greedy-weight")
        )

    def test_selection_indices_algorithm_invariant(self, si8_synthetic):
        gs = si8_synthetic
        psi_v, _, psi_c, _ = gs.select_transition_space()
        res = {
            alg: select_points_kmeans(
                psi_v, psi_c, 16,
                grid_points=gs.basis.grid.cartesian_points, algorithm=alg,
            )
            for alg in ("lloyd", "hamerly")
        }
        np.testing.assert_array_equal(
            res["hamerly"].indices, res["lloyd"].indices
        )


class TestTiling:
    def test_tiny_tiles_change_nothing(self):
        rng = default_rng(21)
        points = rng.standard_normal((300, 3))
        weights = rng.random(300) + 0.1
        reference = weighted_kmeans(
            points, weights, 12, init="greedy-weight",
            tile_bytes=DEFAULT_TILE_BYTES,
        )
        for algorithm in ("lloyd", "hamerly"):
            # 1 KiB tiles: a handful of rows per classification pass.
            tiled = weighted_kmeans(
                points, weights, 12, init="greedy-weight",
                algorithm=algorithm, tile_bytes=1024,
            )
            _assert_bit_identical(reference, tiled)

    def test_tile_floor_of_one_row(self):
        rng = default_rng(22)
        points = rng.standard_normal((50, 3))
        weights = np.ones(50)
        # Smaller than one row's worth of distances: must clamp, not crash.
        _assert_bit_identical(
            weighted_kmeans(points, weights, 5, init="greedy-weight"),
            weighted_kmeans(points, weights, 5, init="greedy-weight",
                            algorithm="hamerly", tile_bytes=1),
        )
