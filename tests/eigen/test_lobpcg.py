"""Tests for the LOBPCG implementation (paper Algorithm 2)."""

import numpy as np
import pytest

from repro.eigen import dense_lowest, lobpcg
from repro.utils.rng import default_rng


def _random_symmetric(n, rng, spread=1.0):
    a = rng.standard_normal((n, n))
    return (a + a.T) / 2 + np.diag(spread * np.arange(n, dtype=float))


class TestConvergence:
    def test_matches_dense_reference(self, rng):
        a = _random_symmetric(200, rng)
        ref, _ = dense_lowest(a, 5)
        res = lobpcg(lambda x: a @ x, rng.standard_normal((200, 5)), tol=1e-9)
        assert res.converged
        np.testing.assert_allclose(res.eigenvalues, ref, atol=1e-8)

    def test_eigenvectors_are_accurate(self, rng):
        a = _random_symmetric(100, rng)
        res = lobpcg(lambda x: a @ x, rng.standard_normal((100, 4)), tol=1e-10)
        for j in range(4):
            v = res.eigenvectors[:, j]
            np.testing.assert_allclose(
                a @ v, res.eigenvalues[j] * v, atol=1e-8
            )

    def test_eigenvectors_orthonormal(self, rng):
        a = _random_symmetric(80, rng)
        res = lobpcg(lambda x: a @ x, rng.standard_normal((80, 6)), tol=1e-9)
        gram = res.eigenvectors.T @ res.eigenvectors
        np.testing.assert_allclose(gram, np.eye(6), atol=1e-8)

    def test_complex_hermitian(self, rng):
        n = 120
        a = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        a = (a + a.conj().T) / 2 + np.diag(np.arange(n, dtype=float))
        ref = np.linalg.eigvalsh(a)[:4]
        x0 = rng.standard_normal((n, 4)) + 1j * rng.standard_normal((n, 4))
        res = lobpcg(lambda x: a @ x, x0, tol=1e-9, max_iter=400)
        assert res.converged
        np.testing.assert_allclose(res.eigenvalues, ref, atol=1e-8)

    def test_diagonal_matrix_converges_fast(self, rng):
        d = np.arange(1.0, 51.0)
        res = lobpcg(lambda x: d[:, None] * x, rng.standard_normal((50, 3)), tol=1e-10)
        assert res.converged
        np.testing.assert_allclose(res.eigenvalues, [1.0, 2.0, 3.0], atol=1e-9)

    def test_preconditioner_accelerates_ill_conditioned(self, rng):
        """Diagonally dominant matrix with huge spread: the Jacobi-style
        preconditioner must reduce iteration count substantially."""
        n = 300
        d = np.logspace(0, 5, n)
        off = rng.standard_normal((n, n))
        a = np.diag(d) + 0.1 * (off + off.T)
        x0 = rng.standard_normal((n, 4))

        def precond(r, theta):
            denom = np.maximum(np.abs(d[:, None] - theta[None, :]), 1e-1)
            return r / denom

        plain = lobpcg(lambda x: a @ x, x0, tol=1e-8, max_iter=500)
        prec = lobpcg(lambda x: a @ x, x0, preconditioner=precond, tol=1e-8, max_iter=500)
        assert prec.converged
        assert prec.iterations < plain.iterations


class TestRobustness:
    def test_degenerate_eigenvalues(self, rng):
        evals = np.array([1.0, 1.0, 1.0, 2.0, 3.0] + list(range(4, 50)))
        q, _ = np.linalg.qr(rng.standard_normal((len(evals), len(evals))))
        a = q @ np.diag(evals) @ q.T
        res = lobpcg(lambda x: a @ x, rng.standard_normal((len(evals), 4)), tol=1e-9)
        assert res.converged
        np.testing.assert_allclose(res.eigenvalues, [1, 1, 1, 2], atol=1e-8)

    def test_k_equals_n(self, rng):
        a = _random_symmetric(8, rng)
        res = lobpcg(lambda x: a @ x, rng.standard_normal((8, 8)), tol=1e-9)
        np.testing.assert_allclose(
            np.sort(res.eigenvalues), np.linalg.eigvalsh(a), atol=1e-7
        )

    def test_k_larger_than_n_rejected(self, rng):
        with pytest.raises(ValueError):
            lobpcg(lambda x: x, rng.standard_normal((3, 5)))

    def test_empty_block_rejected(self):
        with pytest.raises(ValueError):
            lobpcg(lambda x: x, np.zeros((5, 0)))

    def test_history_is_recorded(self, rng):
        a = _random_symmetric(60, rng)
        res = lobpcg(lambda x: a @ x, rng.standard_normal((60, 3)), tol=1e-9)
        assert len(res.history) == res.iterations
        assert res.history[-1] <= res.history[0]

    def test_max_iter_returns_unconverged(self, rng):
        a = _random_symmetric(200, rng, spread=0.01)
        res = lobpcg(lambda x: a @ x, rng.standard_normal((200, 3)), tol=1e-14, max_iter=3)
        assert not res.converged
        assert res.iterations == 3

    def test_near_convergence_stability(self, rng):
        """Running far past convergence must not corrupt the results
        (regression: the P-recurrence once amplified rounding noise and
        produced eigenvalues below the true spectrum)."""
        a = _random_symmetric(150, rng)
        ref = np.linalg.eigvalsh(a)[:4]
        res = lobpcg(
            lambda x: a @ x, rng.standard_normal((150, 4)),
            tol=1e-15, max_iter=300,
        )
        # May or may not flag converged at this tol; values must stay sane.
        np.testing.assert_allclose(res.eigenvalues, ref, atol=1e-6)
        assert res.eigenvalues.min() >= ref[0] - 1e-6

    def test_warm_start_beats_cold_start(self, rng):
        """Convergence rate is CG-like (gap-limited), but a warm start must
        still save iterations over a random start."""
        a = _random_symmetric(100, rng)
        _, vecs = np.linalg.eigh(a)
        warm0 = vecs[:, :4] + 1e-6 * rng.standard_normal((100, 4))
        cold0 = rng.standard_normal((100, 4))
        warm = lobpcg(lambda x: a @ x, warm0, tol=1e-8, max_iter=500)
        cold = lobpcg(lambda x: a @ x, cold0, tol=1e-8, max_iter=500)
        assert warm.converged
        assert warm.iterations < cold.iterations

    def test_exact_eigenvector_start_converges_immediately(self, rng):
        a = _random_symmetric(100, rng)
        _, vecs = np.linalg.eigh(a)
        res = lobpcg(lambda x: a @ x, vecs[:, :4], tol=1e-8)
        assert res.iterations == 1
