"""The ``repro lint`` subcommand."""

import json

from repro.cli import main

import pytest

pytestmark = pytest.mark.lint

BAD = (
    "from repro.utils import hot_kernel\n"
    "import numpy as np\n"
    "@hot_kernel\n"
    "def kernel(x):\n"
    "    return np.zeros(3) + x\n"
)



def test_clean_path_exits_zero(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n")
    assert main(["lint", str(target)]) == 0
    assert "no findings" in capsys.readouterr().out


def test_findings_exit_nonzero_with_rule_and_line(tmp_path, capsys):
    target = tmp_path / "bad.py"
    target.write_text(BAD)
    assert main(["lint", str(target)]) == 1
    out = capsys.readouterr().out
    assert "no-alloc-in-hot" in out
    assert f"{target}:5:" in out


def test_json_format_matches_engine_payload(tmp_path, capsys):
    target = tmp_path / "bad.py"
    target.write_text(BAD)
    assert main(["lint", str(target), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["total"] == len(payload["findings"]) >= 1
    assert payload["counts_by_rule"]["no-alloc-in-hot"] >= 1


def test_select_restricts_rules(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(BAD)
    assert main(["lint", str(target), "--select", "no-blind-except"]) == 0
    assert main(["lint", str(target), "--select", "no-alloc-in-hot"]) == 1


def test_deleting_a_copy_exits_nonzero_with_rule_and_line(tmp_path, capsys):
    # The ISSUE acceptance scenario end-to-end: a program that is clean
    # because of a defensive .copy() regresses the moment it's deleted,
    # and `repro lint` reports the exact rule and line.
    with_copy = (
        "def prog(comm):\n"
        "    buf = comm.recv(0, tag=1)\n"
        "    buf = buf.copy()\n"
        "    buf[0] = 99.0\n"
        "    return buf\n"
    )
    target = tmp_path / "prog.py"
    target.write_text(with_copy)
    assert main(["lint", str(target)]) == 0
    capsys.readouterr()
    target.write_text(with_copy.replace("    buf = buf.copy()\n", ""))
    assert main(["lint", str(target)]) == 1
    out = capsys.readouterr().out
    assert "mutated-recv-buffer" in out
    assert f"{target}:3:" in out  # the mutation line after the deletion


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in ("no-alloc-in-hot", "collective-in-branch", "no-blind-except",
                 "mutated-recv-buffer", "nondeterminism-in-replay"):
        assert name in out
    # The array-contract rules register as project rules.
    for name in ("silent-upcast-in-hot", "hidden-copy-into-kernel",
                 "shape-mismatch", "collective-buffer-contract"):
        assert f"{name} [project]:" in out


ARRAY_BAD = (
    "import numpy as np\n"
    "from repro.utils.hot import array_contract\n"
    "@array_contract(dtypes={'x': 'float64'})\n"
    "def apply(x):\n"
    "    return x.astype(np.complex128)\n"
)


def test_array_rules_run_by_default(tmp_path, capsys):
    target = tmp_path / "kern.py"
    target.write_text(ARRAY_BAD)
    assert main(["lint", str(target)]) == 1
    out = capsys.readouterr().out
    assert "silent-upcast-in-hot" in out
    assert f"{target}:5:" in out


def test_no_arrays_skips_only_the_array_rules(tmp_path, capsys):
    target = tmp_path / "kern.py"
    target.write_text(ARRAY_BAD)
    assert main(["lint", str(target), "--no-arrays"]) == 0
    capsys.readouterr()
    # Non-array findings still fire under --no-arrays.
    target.write_text(BAD)
    assert main(["lint", str(target), "--no-arrays"]) == 1
    assert "no-alloc-in-hot" in capsys.readouterr().out


def test_json_inventory_includes_array_rules(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n")
    assert main(["lint", str(target), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    for name in ("silent-upcast-in-hot", "hidden-copy-into-kernel",
                 "shape-mismatch", "collective-buffer-contract"):
        assert name in payload["rules_enabled"]


def test_json_witness_chain_for_array_finding(tmp_path, capsys):
    target = tmp_path / "kern.py"
    target.write_text(
        "import numpy as np\n"
        "from repro.utils.hot import array_contract\n"
        "@array_contract(shapes={'z': 'any'}, contiguous=('z',))\n"
        "def kern(z):\n"
        "    return z\n"
        "def caller():\n"
        "    a = np.zeros((8, 8))\n"
        "    return kern(a[:, ::2])\n"
    )
    assert main(["lint", str(target), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    finding = next(
        f for f in payload["findings"]
        if f["rule"] == "hidden-copy-into-kernel"
    )
    assert "caller -> kern" in finding["message"]  # the witness chain


def test_no_arrays_omits_inventory_from_json(tmp_path, capsys):
    # A partial run is not a faithful inventory statement; baseline
    # tooling must never consume it.
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n")
    assert main(["lint", str(target), "--format", "json", "--no-arrays"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload.get("rules_enabled") is None
