"""Tests for the machine model."""

import pytest

from repro.perf import CORI_HASWELL, MachineSpec


def test_cori_parameters_match_paper():
    """Section 6.1: 2.3 GHz 16-core x 2 sockets, 36.8 Gflops/core."""
    assert CORI_HASWELL.cores_per_node == 32
    assert CORI_HASWELL.flops_per_core == pytest.approx(36.8e9)


def test_nodes_rounds_up():
    assert CORI_HASWELL.nodes(1) == 1
    assert CORI_HASWELL.nodes(32) == 1
    assert CORI_HASWELL.nodes(33) == 2
    assert CORI_HASWELL.nodes(12288) == 384


def test_peak_flops():
    assert CORI_HASWELL.peak_flops(128) == pytest.approx(128 * 36.8e9)


def test_invalid_efficiency_rejected():
    with pytest.raises(ValueError, match="gemm_efficiency"):
        MachineSpec(
            name="x", cores_per_node=1, flops_per_core=1.0,
            mem_bw_per_node=1.0, net_latency=1.0, net_bw_per_node=1.0,
            gemm_efficiency=1.5, fft_efficiency=0.1,
            kmeans_efficiency=0.1, eig_efficiency=0.1,
        )


def test_with_overrides_returns_modified_copy():
    spec = CORI_HASWELL.with_overrides(net_latency=5e-6)
    assert spec.net_latency == 5e-6
    assert CORI_HASWELL.net_latency != 5e-6
    assert spec.name == CORI_HASWELL.name


def test_nodes_requires_positive_cores():
    with pytest.raises(ValueError):
        CORI_HASWELL.nodes(0)
