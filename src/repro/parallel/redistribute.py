"""Layout changes: the MPI_Alltoall transposes of Algorithm 1 and the
``pdgemr2d`` stand-in for the block-cyclic diagonalization layout.

The central move (paper Fig 3a <-> 3b) converts between

* row-block:    each rank holds ``(my_rows, n_cols)`` — all columns of a
  contiguous slab of grid rows, and
* column-block: each rank holds ``(n_rows, my_cols)`` — all grid rows of a
  contiguous set of columns (pairs),

by cutting the local slab into per-destination tiles and exchanging them
with one ``alltoall`` — exactly the communication pattern (and volume) of
the production code.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.comm import Communicator
from repro.parallel.distributions import BlockCyclic2D, BlockDistribution1D
from repro.utils.validation import require


def _check_chunk(
    rank: int, src: int, chunk, expected_shape: tuple[int, int]
) -> None:
    """Validate one alltoall-received tile before it is stitched in.

    A dropped or corrupted exchange surfaces here as a typed error naming
    the offending peer instead of as a shape error deep inside
    ``np.concatenate`` (or worse, silently wrong physics).
    """
    require(
        isinstance(chunk, np.ndarray) and chunk.shape == expected_shape,
        f"rank {rank}: transpose received a corrupt tile from rank {src}: "
        f"expected shape {expected_shape}, got "
        f"{chunk.shape if isinstance(chunk, np.ndarray) else type(chunk).__name__}",
    )


def transpose_to_column_block(
    comm: Communicator,
    local_rows: np.ndarray,
    row_dist: BlockDistribution1D,
    col_dist: BlockDistribution1D,
) -> np.ndarray:
    """Row-block ``(my_rows, n_cols)`` -> column-block ``(n_rows, my_cols)``.

    Parameters
    ----------
    local_rows:
        This rank's slab: shape ``(row_dist.count(rank), col_dist.n_global)``.
    """
    require(
        local_rows.shape == (row_dist.count(comm.rank), col_dist.n_global),
        f"rank {comm.rank}: slab shape {local_rows.shape} does not match "
        f"({row_dist.count(comm.rank)}, {col_dist.n_global})",
    )
    # Cut my rows into the column ranges each destination owns.
    chunks = [
        np.ascontiguousarray(local_rows[:, col_dist.local_slice(dest)])
        for dest in range(comm.size)
    ]
    received = comm.alltoall(chunks)
    # received[src] has shape (row_dist.count(src), my_cols): stack by rows.
    my_cols = col_dist.count(comm.rank)
    for src, chunk in enumerate(received):
        _check_chunk(comm.rank, src, chunk, (row_dist.count(src), my_cols))
    return np.concatenate(received, axis=0)


def transpose_to_row_block(
    comm: Communicator,
    local_cols: np.ndarray,
    row_dist: BlockDistribution1D,
    col_dist: BlockDistribution1D,
) -> np.ndarray:
    """Column-block ``(n_rows, my_cols)`` -> row-block ``(my_rows, n_cols)``."""
    require(
        local_cols.shape == (row_dist.n_global, col_dist.count(comm.rank)),
        f"rank {comm.rank}: block shape {local_cols.shape} does not match "
        f"({row_dist.n_global}, {col_dist.count(comm.rank)})",
    )
    chunks = [
        np.ascontiguousarray(local_cols[row_dist.local_slice(dest), :])
        for dest in range(comm.size)
    ]
    received = comm.alltoall(chunks)
    my_rows = row_dist.count(comm.rank)
    for src, chunk in enumerate(received):
        _check_chunk(comm.rank, src, chunk, (my_rows, col_dist.count(src)))
    return np.concatenate(received, axis=1)


def allgather_rows(
    comm: Communicator, local_rows: np.ndarray, row_dist: BlockDistribution1D
) -> np.ndarray:
    """Row-block -> fully replicated matrix (Allgather)."""
    pieces = comm.allgather(local_rows)
    require(len(pieces) == row_dist.n_ranks, "distribution/communicator mismatch")
    return np.concatenate(pieces, axis=0)


def gather_matrix(
    comm: Communicator,
    local_rows: np.ndarray,
    row_dist: BlockDistribution1D,
    root: int = 0,
) -> np.ndarray | None:
    """Row-block -> full matrix at ``root`` only (Gather)."""
    pieces = comm.gather(local_rows, root=root)
    if comm.rank != root:
        return None
    return np.concatenate(pieces, axis=0)


def row_block_to_block_cyclic(
    comm: Communicator,
    local_rows: np.ndarray,
    row_dist: BlockDistribution1D,
    desc: BlockCyclic2D,
) -> np.ndarray:
    """The ``pdgemr2d`` analogue: row-block -> 2-D block-cyclic tiles.

    Each source rank cuts its slab by destination ownership and ships the
    pieces with one alltoall; destinations scatter the arriving rows into
    their local tile.  Row indices travel with the data (small integer
    arrays), mirroring the index exchange pdgemr2d performs internally.
    """
    my_global_rows = row_dist.global_indices(comm.rank)
    require(
        local_rows.shape == (my_global_rows.size, desc.n),
        f"rank {comm.rank}: slab shape mismatch",
    )

    chunks = []
    for dest in range(comm.size):
        dest_rows_mask = np.isin(my_global_rows, desc.local_rows(dest))
        dest_cols = desc.local_cols(dest)
        payload = np.ascontiguousarray(local_rows[np.ix_(dest_rows_mask, np.arange(desc.n))][:, dest_cols])
        chunks.append((my_global_rows[dest_rows_mask], payload))
    received = comm.alltoall(chunks)

    tile_rows = desc.local_rows(comm.rank)
    tile_cols = desc.local_cols(comm.rank)
    tile = np.zeros((tile_rows.size, tile_cols.size), dtype=local_rows.dtype)
    row_position = {int(g): i for i, g in enumerate(tile_rows)}
    for global_rows, payload in received:
        for k, g in enumerate(global_rows):
            tile[row_position[int(g)], :] = payload[k]
    return tile
