"""Cross-process SPMD sanitizer: the thread sanitizer's guarantees under
``backend="process"``.

Mirrors ``test_sanitizer.py`` scenario by scenario: mismatched collectives
quote every rank's signature and call site, a rank skipping a collective is
diagnosed from the shared board instead of hanging, writes through shared
slab views are caught, and clean programs return bit-identical results with
the sanitizer on or off.  Runs real forked processes, hence the
``process_backend`` marker.
"""

import numpy as np
import pytest

from repro.parallel import SanitizerError, spmd_run
from repro.parallel.process_sanitizer import sanitizer_board_size

pytestmark = pytest.mark.process_backend

TIMEOUT = 2.0  # deadlock scenarios must diagnose well inside the suite budget


def run(n_ranks, prog, **kwargs):
    kwargs.setdefault("sanitize", True)
    kwargs.setdefault("sanitize_timeout", TIMEOUT)
    return spmd_run(n_ranks, prog, backend="process", **kwargs)


class TestCleanPrograms:
    def test_results_bit_identical_with_and_without_sanitizer(self, rng):
        payload = rng.standard_normal((3, 5, 4))

        def prog(comm):
            mine = payload[comm.rank]
            total = comm.allreduce(mine)
            rows = comm.allgather(np.full(comm.rank + 1, float(comm.rank)))
            root_view = comm.bcast(
                np.arange(3.0) if comm.rank == 0 else None, root=0
            )
            handle = comm.ireduce(mine, root=0)
            comm.barrier()
            ired = handle.wait()
            return (
                np.array(total),
                [np.array(r) for r in rows],
                np.array(root_view),
                None if ired is None else np.array(ired),
            )

        plain = run(3, prog, sanitize=False)
        sanitized = run(3, prog)
        for p_rank, s_rank in zip(plain, sanitized):
            np.testing.assert_array_equal(p_rank[0], s_rank[0])
            for a, b in zip(p_rank[1], s_rank[1]):
                np.testing.assert_array_equal(a, b)
            np.testing.assert_array_equal(p_rank[2], s_rank[2])
            if p_rank[3] is None:
                assert s_rank[3] is None
            else:
                np.testing.assert_array_equal(p_rank[3], s_rank[3])

    def test_per_rank_payload_shapes_are_not_a_mismatch(self):
        def prog(comm):
            blocks = comm.allgather(np.zeros((comm.rank + 1, 2)))
            return sum(b.shape[0] for b in blocks)

        assert run(3, prog) == [6, 6, 6]

    def test_single_rank_run_is_trivially_clean(self):
        assert run(1, lambda comm: comm.allreduce(1.0)) == [1.0]

    def test_no_shm_residue_after_sanitized_run(self):
        import os

        run(2, lambda comm: comm.allreduce(comm.rank))
        assert [
            f for f in os.listdir("/dev/shm") if f.startswith("reprospmd")
        ] == []

    def test_board_size_covers_slots_and_verdict(self):
        assert sanitizer_board_size(4) > 4 * 8192


class TestMismatchedCollectives:
    def test_divergent_ops_report_both_ranks_call_sites(self):
        def prog(comm):
            if comm.rank == 1:
                return comm.gather(comm.rank, root=0)
            return comm.allreduce(comm.rank)

        with pytest.raises(SanitizerError) as err:
            run(2, prog)
        text = str(err.value)
        assert "mismatched collectives" in text
        assert "allreduce" in text and "gather" in text
        assert "rank 0" in text and "rank 1" in text
        # both call sites, resolved to user code across the fork
        assert text.count("test_process_sanitizer.py") >= 2

    def test_divergent_roots_are_a_mismatch(self):
        def prog(comm):
            root = 1 if comm.rank == 1 else 0
            return comm.bcast(comm.rank if comm.rank == root else None, root=root)

        with pytest.raises(SanitizerError, match="root="):
            run(3, prog)

    def test_divergent_allreduce_shapes_are_a_mismatch(self):
        def prog(comm):
            width = 3 if comm.rank == 0 else 2
            return comm.allreduce(np.ones(width))

        with pytest.raises(SanitizerError, match="ndarray"):
            run(2, prog)


class TestDeadlockDiagnosis:
    def test_rank_skipping_a_collective_is_diagnosed(self):
        def prog(comm):
            if comm.rank == 1:
                return None  # returns without the collective
            return comm.allreduce(comm.rank)

        with pytest.raises(SanitizerError) as err:
            run(3, prog)
        text = str(err.value)
        assert "finished" in text
        assert "rank 1" in text

    def test_stalled_rank_times_out_with_state_table(self):
        import time

        def prog(comm):
            if comm.rank == 1:
                time.sleep(1.5)  # never reaches the collective in time
                return None
            return comm.allreduce(comm.rank)

        with pytest.raises(SanitizerError) as err:
            run(2, prog, sanitize_timeout=0.3)
        text = str(err.value)
        assert "did not complete within" in text
        assert "per-rank state" in text
        assert "no collective entered yet" in text  # rank 1's row


class TestSharedSlabWriteDetection:
    def test_write_through_shared_view_is_flagged(self):
        # The outbox slab is the shared surface of this backend: peers
        # combine reductions from zero-copy views into it.  A write
        # through any mapping of that region inside the exchange window
        # is exactly the torn-buffer race the thread sanitizer catches
        # for by-reference arrays.
        def prog(comm):
            comm.allreduce(np.arange(4.0))
            if comm.rank == 0:
                view = comm._outbox.view((4,), "<f8", 0)
                view[0] = 99.0  # unsynchronized write into the shared slab
            comm.barrier()
            return None

        with pytest.raises(SanitizerError, match="unsynchronized shared-slab write"):
            run(2, prog)

    def test_republishing_is_not_a_false_positive(self):
        # Each collective overwrites the outbox legitimately; the check
        # runs before the next publish, so back-to-back collectives with
        # different payloads must pass.
        def prog(comm):
            a = comm.allreduce(np.full(4, float(comm.rank)))
            b = comm.allreduce(np.full(8, float(comm.rank + 1)))
            comm.barrier()
            return float(a.sum() + b.sum())

        assert run(2, prog) == [28.0, 28.0]

    def test_mutating_own_input_buffer_is_legal_here(self):
        # Unlike the thread backend, payload bytes are *copied* into the
        # slab at publish time — mutating the caller's own array afterward
        # races with nobody and must not be flagged.
        def prog(comm):
            buf = np.arange(4.0)
            total = comm.allreduce(buf)
            buf[0] = 99.0
            comm.barrier()
            return float(np.asarray(total).sum())

        assert run(2, prog) == [12.0, 12.0]


class TestFailurePropagation:
    def test_rank_exception_propagates_not_misdiagnosed(self):
        def prog(comm):
            if comm.rank == 1:
                raise KeyError("lost key on rank 1")
            return comm.allreduce(comm.rank)

        with pytest.raises(KeyError, match="lost key on rank 1"):
            run(3, prog)

    def test_env_opt_in_reaches_process_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        monkeypatch.setenv("REPRO_SANITIZE_TIMEOUT", str(TIMEOUT))

        def prog(comm):
            if comm.rank == 0:
                return comm.barrier()
            return comm.allreduce(comm.rank)

        with pytest.raises(SanitizerError):
            spmd_run(2, prog, backend="process")  # sanitize=None -> env
