"""Result store: compatibility rules, nearest lookup, persistence."""

import numpy as np
import pytest

from repro.api import CalculationRequest, SCFConfig, structure_to_dict
from repro.pw.cell import UnitCell
from repro.serve import ResultStore
from repro.serve.store import (
    nearest_key,
    resolved_n_bands,
    rms_displacement,
    warm_compatible,
)


def _h2(z_offset=0.0):
    return UnitCell(
        10.0 * np.eye(3),
        ("H", "H"),
        np.array([[0.5, 0.5, 0.43 + z_offset], [0.5, 0.5, 0.57 + z_offset]]),
    )


@pytest.fixture()
def structure():
    return structure_to_dict(_h2())


def _meta(structure, ecut=4.0, n_bands=5):
    return {"structure": structure, "ecut": ecut, "n_bands": n_bands}


class TestResolvedNBands:
    def test_explicit_wins(self):
        assert resolved_n_bands(SCFConfig(n_bands=7), ("H", "H")) == 7

    def test_default_matches_scf_rule(self):
        # H2: 2 valence electrons -> n_occ=1 -> 1 + max(4, 0) = 5.
        assert resolved_n_bands(SCFConfig(), ("H", "H")) == 5

    def test_none_and_explicit_default_resolve_identically(self):
        species = ("Si", "Si")
        implicit = resolved_n_bands(SCFConfig(), species)
        assert resolved_n_bands(SCFConfig(n_bands=implicit), species) == implicit


class TestRmsDisplacement:
    def test_zero_for_identical(self, structure):
        assert rms_displacement(structure, structure) == 0.0

    def test_cartesian_scale(self, structure):
        moved = structure_to_dict(_h2(z_offset=0.01))
        # Both atoms moved 0.01 fractional along z of a 10-bohr box.
        assert rms_displacement(structure, moved) == pytest.approx(0.1, rel=1e-9)

    def test_minimum_image_wrap(self):
        a = structure_to_dict(
            UnitCell(10.0 * np.eye(3), ("H",), np.array([[0.0, 0.5, 0.99]]))
        )
        b = structure_to_dict(
            UnitCell(10.0 * np.eye(3), ("H",), np.array([[0.0, 0.5, 0.01]]))
        )
        # Across the periodic boundary the move is 0.02 frac = 0.2 bohr,
        # not 0.98 frac.
        assert rms_displacement(a, b) == pytest.approx(0.2, rel=1e-9)

    def test_atom_count_mismatch_raises(self, structure):
        other = structure_to_dict(
            UnitCell(10.0 * np.eye(3), ("H",), np.array([[0.5, 0.5, 0.5]]))
        )
        with pytest.raises(ValueError, match="atom counts"):
            rms_displacement(structure, other)


class TestWarmCompatible:
    def test_same_everything_compatible(self, structure):
        assert warm_compatible(_meta(structure), structure, 4.0, 5)

    def test_positions_may_differ(self, structure):
        moved = structure_to_dict(_h2(z_offset=0.05))
        assert warm_compatible(_meta(structure), moved, 4.0, 5)

    def test_ecut_must_match(self, structure):
        assert not warm_compatible(_meta(structure), structure, 6.0, 5)

    def test_n_bands_must_match(self, structure):
        assert not warm_compatible(_meta(structure), structure, 4.0, 6)

    def test_lattice_must_match(self, structure):
        bigger = structure_to_dict(
            UnitCell(
                11.0 * np.eye(3),
                ("H", "H"),
                np.array([[0.5, 0.5, 0.43], [0.5, 0.5, 0.57]]),
            )
        )
        assert not warm_compatible(_meta(structure), bigger, 4.0, 5)

    def test_species_order_matters(self, structure):
        swapped = dict(structure)
        swapped["species"] = list(reversed(structure["species"]))
        swapped["species"][0] = "He"  # make the orders actually differ
        assert not warm_compatible(_meta(structure), swapped, 4.0, 5)

    def test_meta_without_structure_incompatible(self, structure):
        assert not warm_compatible({}, structure, 4.0, 5)


class TestNearestKey:
    def test_ranks_by_displacement(self, structure):
        near = structure_to_dict(_h2(z_offset=0.01))
        far = structure_to_dict(_h2(z_offset=0.2))
        entries = {"far": _meta(far), "near": _meta(near)}
        key, rms = nearest_key(entries, structure, 4.0, 5)
        assert key == "near"
        assert rms == pytest.approx(0.1, rel=1e-9)

    def test_skips_incompatible(self, structure):
        entries = {"wrong-ecut": _meta(structure, ecut=8.0)}
        assert nearest_key(entries, structure, 4.0, 5) is None

    def test_deterministic_tie_break(self, structure):
        entries = {"b": _meta(structure), "a": _meta(structure)}
        key, _ = nearest_key(entries, structure, 4.0, 5)
        assert key == "a"


class TestStoreMemory:
    def test_put_get_round_trip(self):
        store = ResultStore()
        store.put("k1", "payload", meta={"kind": "scf"})
        entry = store.get("k1")
        assert entry.result == "payload"
        assert entry.meta["kind"] == "scf"
        assert "k1" in store
        assert len(store) == 1
        assert store.get("missing") is None

    def test_non_serializable_results_stay_memory_only(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", object())  # no to_dict -> must not try to persist
        assert store.get("k1") is not None
        fresh = ResultStore(tmp_path)
        assert fresh.get("k1") is None


class _ArrayResult:
    """Minimal serializable result for exercising persistence plumbing."""

    def __init__(self, n):
        self.arr = np.arange(float(n))

    def to_dict(self):
        return {"arr": self.arr}


class TestStoreEviction:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_entries"):
            ResultStore(max_entries=0)
        with pytest.raises(ValueError, match="max_bytes"):
            ResultStore(max_bytes=0)

    def test_max_entries_evicts_least_recently_used(self):
        store = ResultStore(max_entries=2)
        store.put("a", "ra")
        store.put("b", "rb")
        store.put("c", "rc")
        assert store.keys() == ("b", "c")
        assert store.evictions == 1
        assert store.get("a") is None

    def test_get_refreshes_recency(self):
        store = ResultStore(max_entries=2)
        store.put("a", "ra")
        store.put("b", "rb")
        store.get("a")  # "b" is now the least recently used
        store.put("c", "rc")
        assert store.keys() == ("a", "c")

    def test_put_refreshes_recency(self):
        store = ResultStore(max_entries=2)
        store.put("a", "ra")
        store.put("b", "rb")
        store.put("a", "ra2")  # refresh, not insert: no eviction
        assert store.keys() == ("a", "b")
        store.put("c", "rc")
        assert store.keys() == ("a", "c")

    def test_max_bytes_counts_array_buffers(self):
        # Each result holds an 80-byte float64 buffer.
        store = ResultStore(max_bytes=200)
        store.put("a", _ArrayResult(10))
        store.put("b", _ArrayResult(10))
        assert store.stats()["bytes"] == 160
        store.put("c", _ArrayResult(10))
        assert store.keys() == ("b", "c")

    def test_most_recent_entry_survives_even_oversized(self):
        store = ResultStore(max_bytes=8)
        store.put("big", _ArrayResult(100))
        assert store.keys() == ("big",)
        store.put("big2", _ArrayResult(100))
        assert store.keys() == ("big2",)

    def test_unbounded_store_never_evicts(self):
        store = ResultStore()
        for k in range(50):
            store.put(f"k{k}", object())
        assert len(store) == 50
        assert store.evictions == 0

    def test_eviction_removes_payload_and_index_entry(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=2)
        for key in ("a", "b", "c"):
            store.put(key, _ArrayResult(4))
        assert store.keys() == ("b", "c")
        assert not (tmp_path / "a.npz").exists()
        assert (tmp_path / "b.npz").exists()
        fresh = ResultStore(tmp_path)
        assert fresh.keys() == ("b", "c")

    def test_reopened_store_applies_bounds_in_sorted_order(self, tmp_path):
        store = ResultStore(tmp_path)
        for key in ("c", "a", "b"):
            store.put(key, _ArrayResult(4))
        fresh = ResultStore(tmp_path, max_entries=2)
        # Inherited entries rank by sorted key: "a" is evicted first.
        assert fresh.keys() == ("b", "c")
        assert not (tmp_path / "a.npz").exists()


@pytest.mark.serve
class TestStorePersistence:
    @pytest.fixture(scope="class")
    def scf(self):
        request = CalculationRequest(
            kind="scf",
            structure=_h2(),
            scf=SCFConfig(ecut=4.0, n_bands=4, tol=1e-6, seed=0),
        )
        return request, request.compute()

    def test_ground_state_survives_reload(self, tmp_path, scf):
        request, gs = scf
        structure = structure_to_dict(request.structure)
        store = ResultStore(tmp_path)
        store.put(
            request.cache_key(),
            gs,
            ground_state=gs,
            meta={"structure": structure, "ecut": 4.0, "n_bands": 4},
        )
        fresh = ResultStore(tmp_path)
        entry = fresh.get(request.cache_key())
        assert entry is not None
        assert entry.result.total_energy == gs.total_energy
        np.testing.assert_array_equal(entry.result.density, gs.density)
        # SCF entries reunify result and ground state on load.
        assert entry.ground_state is entry.result

    def test_nearest_ground_state_from_disk(self, tmp_path, scf):
        request, gs = scf
        store = ResultStore(tmp_path)
        store.put(
            request.cache_key(),
            gs,
            ground_state=gs,
            meta={
                "structure": structure_to_dict(request.structure),
                "ecut": 4.0,
                "n_bands": 4,
            },
        )
        fresh = ResultStore(tmp_path)
        moved = structure_to_dict(_h2(z_offset=0.002))
        found = fresh.nearest_ground_state(
            moved, SCFConfig(ecut=4.0, n_bands=4, tol=1e-6, seed=0)
        )
        assert found is not None
        nearest, rms = found
        assert rms == pytest.approx(0.02, rel=1e-9)
        assert nearest.total_energy == gs.total_energy
        # Incompatible config finds nothing.
        assert (
            fresh.nearest_ground_state(moved, SCFConfig(ecut=8.0, n_bands=4))
            is None
        )
