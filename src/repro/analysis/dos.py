"""Densities of states with Gaussian broadening (Figure 9 machinery).

The MATBG application plots (a) the ground-state DOS at two interlayer
distances and (b) the DOS of excitation energies; both reduce to the same
broadened histogram.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive, require


def density_of_states(
    energies: np.ndarray,
    grid: np.ndarray,
    *,
    broadening: float = 0.01,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Broadened DOS ``g(E) = sum_i w_i N(E - e_i; sigma)`` on ``grid``.

    Parameters
    ----------
    energies:
        ``(n,)`` level energies (Hartree).
    grid:
        ``(m,)`` energies at which to evaluate the DOS.
    broadening:
        Gaussian sigma (Hartree).
    weights:
        Optional per-level weights (default 1; use occupations or
        oscillator strengths for weighted spectra).

    Returns
    -------
    ``(m,)`` DOS values normalized so ``integral g dE = sum(weights)``.
    """
    check_positive(broadening, "broadening")
    energies = np.asarray(energies, dtype=float)
    grid = np.asarray(grid, dtype=float)
    if weights is None:
        weights = np.ones_like(energies)
    else:
        weights = np.asarray(weights, dtype=float)
        require(weights.shape == energies.shape, "weights/energies mismatch")
    delta = grid[:, None] - energies[None, :]
    gauss = np.exp(-0.5 * (delta / broadening) ** 2) / (
        broadening * np.sqrt(2.0 * np.pi)
    )
    return gauss @ weights


def excitation_dos(
    excitation_energies: np.ndarray,
    grid: np.ndarray,
    *,
    broadening: float = 0.01,
    strengths: np.ndarray | None = None,
) -> np.ndarray:
    """DOS of excitation energies (Figure 9b), optionally weighted by
    oscillator strengths."""
    return density_of_states(
        excitation_energies, grid, broadening=broadening, weights=strengths
    )


def fermi_level_estimate(energies: np.ndarray, occupations: np.ndarray) -> float:
    """Midpoint between the highest (partially) occupied and lowest empty
    level — adequate for plotting the Fermi line in DOS figures."""
    energies = np.asarray(energies, dtype=float)
    occupations = np.asarray(occupations, dtype=float)
    require(energies.shape == occupations.shape, "shape mismatch")
    occupied = energies[occupations > 1e-3]
    empty = energies[occupations <= 1e-3]
    require(occupied.size > 0, "no occupied levels")
    if empty.size == 0:
        return float(occupied.max())
    return 0.5 * float(occupied.max() + empty.min())
