"""Distributed Algorithm 1 and the ISDF pipeline must reproduce serial."""

import numpy as np
import pytest

from repro.core import (
    HxcKernel,
    LRTDDFTSolver,
    build_vhxc,
    isdf_decompose,
    project_kernel,
)
from repro.parallel import (
    BlockDistribution1D,
    distributed_build_vhxc,
    distributed_implicit_solve,
    distributed_isdf_vtilde,
    distributed_lrtddft_solve,
    pipelined_vhxc_full,
    pipelined_vhxc_rows,
    spmd_run,
)
from repro.utils.rng import default_rng


@pytest.fixture(scope="module")
def problem(si8_synthetic):
    gs = si8_synthetic
    psi_v, eps_v, psi_c, eps_c = gs.select_transition_space(8, 6)
    kernel = HxcKernel(gs.basis, gs.density)
    return gs, psi_v, eps_v, psi_c, eps_c, kernel


@pytest.fixture(scope="module")
def serial_vhxc(problem):
    _, psi_v, _, psi_c, _, kernel = problem
    return build_vhxc(psi_v, psi_c, kernel)


class TestDistributedVhxc:
    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 4])
    def test_matches_serial(self, problem, serial_vhxc, n_ranks):
        gs, psi_v, _, psi_c, _, kernel = problem
        dist = BlockDistribution1D(gs.basis.n_r, n_ranks)

        def prog(comm):
            sl = dist.local_slice(comm.rank)
            return distributed_build_vhxc(
                comm, psi_v[:, sl], psi_c[:, sl], kernel, dist
            )

        for vhxc in spmd_run(n_ranks, prog):
            np.testing.assert_allclose(vhxc, serial_vhxc, atol=1e-12)

    def test_uses_two_alltoalls(self, problem):
        gs, psi_v, _, psi_c, _, kernel = problem
        dist = BlockDistribution1D(gs.basis.n_r, 2)

        def prog(comm):
            sl = dist.local_slice(comm.rank)
            distributed_build_vhxc(comm, psi_v[:, sl], psi_c[:, sl], kernel, dist)

        _, traffic = spmd_run(2, prog, return_traffic=True)
        assert traffic.calls_by_op["alltoall"] == 2 * 2  # 2 transposes x 2 ranks
        assert traffic.calls_by_op["allreduce"] == 1  # one collective (line 8)


class TestDistributedSolve:
    def test_matches_serial_excitations(self, problem):
        gs, psi_v, eps_v, psi_c, eps_c, kernel = problem
        solver = LRTDDFTSolver(gs, n_valence=8, n_conduction=6, seed=1)
        serial = solver.solve("naive", n_excitations=5)
        dist = BlockDistribution1D(gs.basis.n_r, 3)

        def prog(comm):
            sl = dist.local_slice(comm.rank)
            evals, _ = distributed_lrtddft_solve(
                comm, psi_v[:, sl], psi_c[:, sl], eps_v, eps_c, kernel, dist, 5
            )
            return evals

        for evals in spmd_run(3, prog):
            np.testing.assert_allclose(evals, serial.energies, atol=1e-9)


class TestDistributedISDF:
    @pytest.fixture(scope="class")
    def isdf(self, problem):
        gs, psi_v, _, psi_c, _, _ = problem
        return isdf_decompose(
            psi_v, psi_c, 40, method="kmeans",
            grid_points=gs.basis.grid.cartesian_points, rng=default_rng(5),
        )

    @pytest.mark.parametrize("n_ranks", [1, 2, 4])
    def test_vtilde_matches_serial(self, problem, isdf, n_ranks):
        gs, *_ , kernel = problem
        serial = project_kernel(isdf, kernel)
        dist = BlockDistribution1D(gs.basis.n_r, n_ranks)

        def prog(comm):
            theta_local = isdf.theta[dist.local_slice(comm.rank)]
            return distributed_isdf_vtilde(comm, theta_local, kernel, dist)

        for vtilde in spmd_run(n_ranks, prog):
            np.testing.assert_allclose(vtilde, serial, atol=1e-12)

    def test_implicit_solve_matches_serial(self, problem, isdf):
        gs, psi_v, eps_v, psi_c, eps_c, kernel = problem
        from repro.core import ImplicitCasidaOperator
        from repro.eigen import dense_lowest

        serial_op = ImplicitCasidaOperator(isdf, eps_v, eps_c, kernel)
        ref, _ = dense_lowest(serial_op.materialize(), 4)
        dist = BlockDistribution1D(gs.basis.n_r, 2)

        def prog(comm):
            evals, _ = distributed_implicit_solve(
                comm, isdf, eps_v, eps_c, kernel, dist, 4, tol=1e-10
            )
            return evals

        for evals in spmd_run(2, prog):
            np.testing.assert_allclose(evals, ref, atol=1e-7)

    def test_isdf_moves_less_data_than_naive(self, problem, isdf):
        """The headline claim: the optimized pipeline's alltoall volume is
        N_mu / N_cv of the naive one."""
        gs, psi_v, _, psi_c, _, kernel = problem
        dist = BlockDistribution1D(gs.basis.n_r, 2)

        def naive_prog(comm):
            sl = dist.local_slice(comm.rank)
            distributed_build_vhxc(comm, psi_v[:, sl], psi_c[:, sl], kernel, dist)

        def isdf_prog(comm):
            theta_local = isdf.theta[dist.local_slice(comm.rank)]
            distributed_isdf_vtilde(comm, theta_local, kernel, dist)

        _, naive_traffic = spmd_run(2, naive_prog, return_traffic=True)
        _, isdf_traffic = spmd_run(2, isdf_prog, return_traffic=True)
        ratio = (
            isdf_traffic.bytes_by_op["alltoall"]
            / naive_traffic.bytes_by_op["alltoall"]
        )
        n_pairs = psi_v.shape[0] * psi_c.shape[0]
        assert ratio == pytest.approx(isdf.n_mu / n_pairs, rel=1e-6)


class TestPipelinedReduce:
    @pytest.mark.parametrize("n_ranks", [1, 2, 4])
    def test_matches_monolithic_vhxc(self, problem, serial_vhxc, n_ranks):
        gs, psi_v, _, psi_c, _, kernel = problem
        dist = BlockDistribution1D(gs.basis.n_r, n_ranks)
        # Z and K slabs come from the serial full matrices so the pipelined
        # GEMM+Reduce is isolated from the kernel application.
        from repro.core import pair_products

        z = pair_products(psi_v, psi_c)
        # Stage the transposed kernel product contiguously: the pipeline's
        # array contract requires C-contiguous float64 slabs.
        k = np.ascontiguousarray(kernel.apply(z.T).T)

        def prog(comm):
            sl = dist.local_slice(comm.rank)
            return pipelined_vhxc_full(
                comm, z[sl], k[sl], kernel.basis.grid.dv
            )

        for vhxc in spmd_run(n_ranks, prog):
            np.testing.assert_allclose(vhxc, serial_vhxc, atol=1e-12)

    def test_rows_are_owned_disjointly(self, problem):
        gs, psi_v, _, psi_c, _, kernel = problem
        from repro.core import pair_products

        z = pair_products(psi_v, psi_c)
        # Stage the transposed kernel product contiguously: the pipeline's
        # array contract requires C-contiguous float64 slabs.
        k = np.ascontiguousarray(kernel.apply(z.T).T)
        dist = BlockDistribution1D(gs.basis.n_r, 3)

        def prog(comm):
            sl = dist.local_slice(comm.rank)
            rows, out_dist = pipelined_vhxc_rows(
                comm, z[sl], k[sl], kernel.basis.grid.dv
            )
            return rows.shape[0], out_dist.count(comm.rank)

        results = spmd_run(3, prog)
        n_pairs = psi_v.shape[0] * psi_c.shape[0]
        assert sum(r[0] for r in results) == n_pairs
        for got, expect in results:
            assert got == expect

    def test_gemm_operands_are_contiguous_float64(self, problem, monkeypatch):
        """Regression: the per-block GEMM must consume C-contiguous float64
        operands (the staged transpose), never an lda-strided column view."""
        gs, psi_v, _, psi_c, _, kernel = problem
        from repro.core import pair_products

        z = pair_products(psi_v, psi_c)
        k = np.ascontiguousarray(kernel.apply(z.T).T)
        dist = BlockDistribution1D(gs.basis.n_r, 2)

        seen = []
        real_matmul = np.matmul

        def spying_matmul(a, b, *args, **kwargs):
            seen.append(
                (
                    a.flags["C_CONTIGUOUS"],
                    b.flags["C_CONTIGUOUS"],
                    a.dtype,
                    b.dtype,
                )
            )
            return real_matmul(a, b, *args, **kwargs)

        import repro.parallel.pipeline as pipeline_mod

        monkeypatch.setattr(pipeline_mod.np, "matmul", spying_matmul)

        def prog(comm):
            sl = dist.local_slice(comm.rank)
            pipelined_vhxc_rows(comm, z[sl], k[sl], kernel.basis.grid.dv)

        spmd_run(2, prog)
        assert seen, "the pipeline GEMM never ran"
        for a_contig, b_contig, a_dtype, b_dtype in seen:
            assert a_contig and b_contig
            assert a_dtype == np.float64 and b_dtype == np.float64

    def test_uses_reduce_not_allreduce(self, problem):
        gs, psi_v, _, psi_c, _, kernel = problem
        from repro.core import pair_products

        z = pair_products(psi_v, psi_c)
        # Stage the transposed kernel product contiguously: the pipeline's
        # array contract requires C-contiguous float64 slabs.
        k = np.ascontiguousarray(kernel.apply(z.T).T)
        dist = BlockDistribution1D(gs.basis.n_r, 2)

        def prog(comm):
            sl = dist.local_slice(comm.rank)
            pipelined_vhxc_rows(comm, z[sl], k[sl], kernel.basis.grid.dv)

        _, traffic = spmd_run(2, prog, return_traffic=True)
        assert traffic.calls_by_op.get("reduce", 0) > 0
        assert "allreduce" not in traffic.bytes_by_op
