"""Distributed weighted K-Means (Section 4.2's parallel formulation).

The paper: *"the classification step ... can be locally computed for each
group of grid points. After this step, the weighted sum and total weight of
all clusters can be reduced ... and broadcasted to all processors for the
next iteration."*

Implementation: candidate grid points are row-block partitioned; each
iteration performs a local assignment (a GEMM), local per-cluster weighted
accumulations, and one Allreduce of the ``(n_clusters, 4)`` statistics
(three coordinate sums + weight).  The result is *bit-identical* to
:func:`repro.core.kmeans.weighted_kmeans` run serially with the same
initialization — the reseeding of empty clusters resolves global argmax
candidates identically (descending penalty, stable index tie-break).
"""

from __future__ import annotations

import numpy as np

from repro.core.kmeans import _init_greedy_weight, _pairwise_sq_dists
from repro.parallel.comm import Communicator
from repro.parallel.distributions import BlockDistribution1D
from repro.utils.validation import require


def distributed_kmeans(
    comm: Communicator,
    local_points: np.ndarray,
    local_weights: np.ndarray,
    n_clusters: int,
    dist: BlockDistribution1D,
    *,
    max_iter: int = 100,
    initial_centroids: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, float, int, bool]:
    """Weighted Lloyd iterations over row-distributed candidate points.

    Parameters
    ----------
    local_points / local_weights:
        This rank's slab of the candidate set (``dist`` describes the split).
    n_clusters:
        Number of clusters N_mu.
    initial_centroids:
        ``(n_clusters, d)`` warm-start centroids, replicated on every rank
        (e.g. the converged centroids of the previous trajectory frame).
        Skips the gather + greedy seeding entirely; the Lloyd loop is
        otherwise unchanged, so the result stays bit-identical to the
        serial :func:`~repro.core.kmeans.weighted_kmeans` warm start and
        across SPMD backends.

    Returns
    -------
    ``(centroids, local_labels, inertia, n_iter, converged)`` — centroids
    and inertia are replicated; labels cover the local slab only.
    """
    require(
        local_points.shape[0] == dist.count(comm.rank),
        f"rank {comm.rank}: point count does not match distribution",
    )
    require(local_weights.shape == (local_points.shape[0],), "weights mismatch")

    n_total = dist.n_global
    require(0 < n_clusters <= n_total, f"n_clusters must be in [1, {n_total}]")
    my_offset = dist.displacement(comm.rank)

    if initial_centroids is not None:
        require(
            initial_centroids.shape == (n_clusters, local_points.shape[1]),
            f"initial_centroids must be ({n_clusters}, "
            f"{local_points.shape[1]}), got {initial_centroids.shape}",
        )
        centroids = np.array(initial_centroids, dtype=float, copy=True)
    else:
        # --- initialization: greedy weight seeding on the gathered candidate
        # set.  The candidate set is already pruned (N_r' << N_r), so
        # gathering it for seeding is cheap; the Lloyd loop below never
        # gathers points again.
        all_points = np.concatenate(comm.allgather(local_points), axis=0)
        all_weights = np.concatenate(comm.allgather(local_weights))
        seed_idx = _init_greedy_weight(all_points, all_weights, n_clusters)
        centroids = all_points[seed_idx].copy()

    labels = np.full(local_points.shape[0], -1, dtype=np.int64)
    inertia = np.inf
    converged = False
    iteration = 0
    dim = local_points.shape[1]

    for iteration in range(1, max_iter + 1):
        # Local classification (the dominant step, embarrassingly parallel).
        d2 = _pairwise_sq_dists(local_points, centroids)
        new_labels = (
            np.argmin(d2, axis=1)
            if local_points.shape[0]
            else np.empty(0, dtype=np.int64)
        )
        min_d2 = (
            d2[np.arange(local_points.shape[0]), new_labels]
            if local_points.shape[0]
            else np.empty(0)
        )

        # Local accumulation, then one Allreduce of (sum_wx | sum_w | inertia).
        stats = np.zeros((n_clusters, dim + 2))
        if local_points.shape[0]:
            for d in range(dim):
                stats[:, d] = np.bincount(
                    new_labels,
                    weights=local_weights * local_points[:, d],
                    minlength=n_clusters,
                )
            stats[:, dim] = np.bincount(
                new_labels, weights=local_weights, minlength=n_clusters
            )
        stats[0, dim + 1] = float((local_weights * min_d2).sum())
        stats = comm.allreduce(stats)
        new_inertia = float(stats[0, dim + 1])

        w_sum = stats[:, dim]
        nonzero = w_sum > 0
        centroids[nonzero] = stats[nonzero, :dim] / w_sum[nonzero, None]

        # Reseed empty clusters at the globally worst-served heavy points,
        # matching the serial policy exactly (descending penalty, stable
        # global-index tie-break).
        empty = np.flatnonzero(w_sum == 0)
        if empty.size:
            penalty = local_weights * min_d2
            n_need = int(empty.size)
            top_local = np.argsort(penalty)[::-1][:n_need]
            cand = [
                (float(penalty[i]), int(my_offset + i), local_points[i])
                for i in top_local
            ]
            all_cand = [c for rank_c in comm.allgather(cand) for c in rank_c]
            all_cand.sort(key=lambda t: (-t[0], t[1]))
            for slot, (_, _, point) in zip(empty, all_cand[:n_need]):
                centroids[slot] = point

        changed = int(not np.array_equal(new_labels, labels))
        total_changed = comm.allreduce(np.array([changed]))[0]
        if total_changed == 0:
            labels = new_labels
            inertia = new_inertia
            converged = True
            break
        labels = new_labels
        inertia = new_inertia

    return centroids, labels, inertia, iteration, converged
