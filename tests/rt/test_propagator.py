"""Tests for the Krylov exponential propagator."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.rt import expm_krylov
from repro.rt.propagator import expm_krylov_block
from repro.utils.rng import default_rng


@pytest.fixture()
def hermitian():
    rng = default_rng(0)
    n = 60
    h = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    h = 0.5 * (h + h.conj().T)
    return h


def test_matches_dense_expm(hermitian):
    rng = default_rng(1)
    psi = rng.standard_normal(60) + 1j * rng.standard_normal(60)
    dt = 0.05
    exact = sla.expm(-1j * dt * hermitian) @ psi
    approx = expm_krylov(lambda v: hermitian @ v, psi, dt, krylov_dim=25)
    np.testing.assert_allclose(approx, exact, atol=1e-9)


def test_norm_conservation(hermitian):
    rng = default_rng(2)
    psi = rng.standard_normal(60) + 1j * rng.standard_normal(60)
    out = expm_krylov(lambda v: hermitian @ v, psi, 0.1, krylov_dim=15)
    assert np.linalg.norm(out) == pytest.approx(np.linalg.norm(psi), rel=1e-8)


def test_small_dt_accuracy_with_small_krylov(hermitian):
    """dt ~ 0.01 needs only a handful of Krylov vectors."""
    rng = default_rng(3)
    psi = rng.standard_normal(60) + 1j * rng.standard_normal(60)
    dt = 0.01
    exact = sla.expm(-1j * dt * hermitian) @ psi
    approx = expm_krylov(lambda v: hermitian @ v, psi, dt, krylov_dim=8)
    np.testing.assert_allclose(approx, exact, atol=1e-8)


def test_eigenvector_gets_pure_phase(hermitian):
    evals, evecs = np.linalg.eigh(hermitian)
    psi = evecs[:, 3].astype(complex)
    dt = 0.3
    out = expm_krylov(lambda v: hermitian @ v, psi, dt, krylov_dim=5)
    np.testing.assert_allclose(out, np.exp(-1j * dt * evals[3]) * psi, atol=1e-10)


def test_zero_state_passthrough(hermitian):
    psi = np.zeros(60, dtype=complex)
    out = expm_krylov(lambda v: hermitian @ v, psi, 0.1)
    np.testing.assert_array_equal(out, psi)


def test_krylov_breakdown_is_exact():
    """If the state lives in a tiny invariant subspace, Lanczos terminates
    early and the result is exact."""
    h = np.diag(np.array([1.0, 2.0, 3.0, 4.0]))
    psi = np.array([1.0, 0, 0, 0], dtype=complex)
    out = expm_krylov(lambda v: h @ v, psi, 0.7, krylov_dim=10)
    np.testing.assert_allclose(out[0], np.exp(-1j * 0.7 * 1.0), atol=1e-12)
    np.testing.assert_allclose(out[1:], 0.0, atol=1e-12)


def test_composition_property(hermitian):
    """Two half steps equal one full step (exact propagator is a group)."""
    rng = default_rng(4)
    psi = rng.standard_normal(60) + 1j * rng.standard_normal(60)
    apply_h = lambda v: hermitian @ v  # noqa: E731
    full = expm_krylov(apply_h, psi, 0.08, krylov_dim=20)
    half = expm_krylov(apply_h, psi, 0.04, krylov_dim=20)
    half2 = expm_krylov(apply_h, half, 0.04, krylov_dim=20)
    np.testing.assert_allclose(half2, full, atol=1e-9)


def test_block_propagation_matches_loop(hermitian):
    rng = default_rng(5)
    block = rng.standard_normal((3, 60)) + 1j * rng.standard_normal((3, 60))
    out = expm_krylov_block(lambda b: b @ hermitian.T, block, 0.05, krylov_dim=15)
    for i in range(3):
        single = expm_krylov(lambda v: hermitian @ v, block[i], 0.05, krylov_dim=15)
        np.testing.assert_allclose(out[i], single, atol=1e-10)


def test_invalid_krylov_dim(hermitian):
    with pytest.raises(ValueError):
        expm_krylov(lambda v: hermitian @ v, np.ones(60, dtype=complex), 0.1, krylov_dim=0)
