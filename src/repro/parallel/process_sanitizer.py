"""Cross-process SPMD sanitizer: the thread sanitizer's guarantees for
``backend="process"``.

The thread-backend :class:`~repro.parallel.sanitizer.SpmdSanitizer` keeps
its per-rank op records in ordinary Python lists — impossible across
process boundaries.  This port moves that state onto a dedicated
shared-memory *sanitizer board* (one fixed slot per rank plus a shared
verdict region) and synchronizes epochs with a ``multiprocessing.Barrier``,
preserving the same three guarantees:

* **Matched collectives** — every rank pickles its
  :class:`~repro.parallel.sanitizer.OpRecord` (seq, op, detail, payload
  signature, call site) into its board slot before the epoch barrier; the
  rank that drains the barrier first re-reads all slots, validates them
  with the thread sanitizer's rules, and publishes a verdict every rank
  reads after a second barrier.  A mismatch raises
  :class:`~repro.parallel.sanitizer.SanitizerError` on every rank, quoting
  all ranks' signatures and call sites.
* **Shared-slab write detection** — the process backend hands reducing
  collectives zero-copy views into the publisher's outbox slab.  The
  sanitizer fingerprints the outbox's array region at publish time and
  re-checks it at the publisher's next collective entry: a changed
  fingerprint means some rank wrote through a shared view inside the
  exchange window (e.g. re-enabled ``writeable`` on a received view) and
  peers observed a torn buffer.
* **Deadlock diagnosis** — the sanitizer barrier carries its own short
  timeout, and a returning rank marks a ``done`` flag in its slot header.
  A collective that can never complete is diagnosed from the board (per
  rank: finished / entered / last completed), instead of hanging until the
  run timeout.

Board layout (all offsets relative to the slab start)::

    slot r at r*8192:   <QQII>  seq, flags (bit0 = done), cur_len, last_len
                        +64     pickled current OpRecord (cur_len bytes)
                        +4096   pickled last-completed OpRecord (last_len)
    verdict at n*8192:  <QI>    epoch counter, verdict length
                        +16     utf-8 verdict text (empty = epoch passed)

Each rank writes only its own slot; the verdict region is written only by
the epoch leader between the two barriers, which order it against every
reader — no locking needed.  The board is created by the parent before
forking and reaped with the run's other segments.
"""

from __future__ import annotations

import pickle
import struct
import threading

from repro.parallel.sanitizer import (
    OpRecord,
    SanitizerError,
    _MAX_TRACKED_BYTES,
    _SYMMETRIC_PAYLOAD_OPS,
    _call_site,
    _hash_bytes,
    describe_payload,
    env_timeout,
)

__all__ = ["ProcessSpmdSanitizer", "sanitizer_board_size"]

#: Fixed-size per-rank slot; two pickled OpRecords plus header fit easily.
_SLOT = 8192
_RECORD_CAP = 4096 - 64
_HEADER = struct.Struct("<QQII")  # seq, flags, cur_len, last_len
_VERDICT_HEADER = struct.Struct("<QI")  # completed epochs, verdict length
_VERDICT_CAP = 16384 - _VERDICT_HEADER.size
_DONE = 1


def sanitizer_board_size(size: int) -> int:
    """Bytes of shared memory the sanitizer board needs for ``size`` ranks."""
    return size * _SLOT + _VERDICT_HEADER.size + _VERDICT_CAP


def _dump_record(record: OpRecord) -> bytes:
    blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) > _RECORD_CAP:  # pathological payload/site strings: clamp
        record = OpRecord(
            rank=record.rank,
            seq=record.seq,
            op=record.op,
            detail=record.detail[:200],
            payload=record.payload[:200],
            site=record.site[:200],
        )
        blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    return blob


class ProcessSpmdSanitizer:
    """Sanitizer for one process-backend SPMD run.

    Created by the parent before forking (so every worker inherits the
    same board slab and barrier); per-process attributes set after the
    fork (tracked fingerprints, the current record) naturally stay local
    to each rank.  Duck-types the thread sanitizer's communicator-facing
    interface (``on_collective`` / ``rank_done`` / ``abort``) plus the
    process-specific ``on_publish`` hook.
    """

    def __init__(
        self,
        size: int,
        board,
        barrier,
        abort_event,
        *,
        timeout: float | None = None,
    ) -> None:
        self.size = size
        self.timeout = env_timeout() if timeout is None else timeout
        self.track_writes = size > 1
        self._board = board
        self._barrier = barrier
        self._abort_event = abort_event
        #: (slab, nbytes, fingerprint, publishing record) of the last
        #: outbox publish — local to this rank's process.
        self._tracked: tuple | None = None
        self._current_record: OpRecord | None = None

    # -- board access --------------------------------------------------------

    def _write_current(self, rank: int, record: OpRecord) -> None:
        blob = _dump_record(record)
        base = rank * _SLOT
        seq, flags, _, last_len = _HEADER.unpack_from(self._board.buf, base)
        self._board.write(blob, base + 64)
        _HEADER.pack_into(
            self._board.buf, base, record.seq + 1, flags, len(blob), last_len
        )

    def _write_last(self, rank: int, record: OpRecord) -> None:
        blob = _dump_record(record)
        base = rank * _SLOT
        seq, flags, cur_len, _ = _HEADER.unpack_from(self._board.buf, base)
        self._board.write(blob, base + 4096)
        _HEADER.pack_into(
            self._board.buf, base, seq, flags, cur_len, len(blob)
        )

    def _read_slot(self, rank: int):
        """``(done, current, last)`` for ``rank`` — best effort: a slot
        mid-write during diagnosis decodes to whatever is consistent."""
        base = rank * _SLOT
        _, flags, cur_len, last_len = _HEADER.unpack_from(self._board.buf, base)
        current = last = None
        try:
            if cur_len:
                current = pickle.loads(
                    bytes(self._board.buf[base + 64 : base + 64 + cur_len])
                )
            if last_len:
                last = pickle.loads(
                    bytes(self._board.buf[base + 4096 : base + 4096 + last_len])
                )
        except Exception:  # repro-lint: disable=no-blind-except -- diagnosis must survive a torn slot; a half-written record reads as absent
            pass
        return bool(flags & _DONE), current, last

    def _publish_verdict(self, verdict: str | None) -> None:
        base = self.size * _SLOT
        epochs, _ = _VERDICT_HEADER.unpack_from(self._board.buf, base)
        text = (verdict or "").encode("utf-8")[:_VERDICT_CAP]
        if text:
            self._board.write(text, base + _VERDICT_HEADER.size)
        _VERDICT_HEADER.pack_into(self._board.buf, base, epochs + 1, len(text))

    def _read_verdict(self) -> str | None:
        base = self.size * _SLOT
        _, length = _VERDICT_HEADER.unpack_from(self._board.buf, base)
        if not length:
            return None
        start = base + _VERDICT_HEADER.size
        return bytes(self._board.buf[start : start + length]).decode("utf-8")

    @property
    def n_synced(self) -> int:
        """Completed synchronization epochs (readable from any process)."""
        epochs, _ = _VERDICT_HEADER.unpack_from(
            self._board.buf, self.size * _SLOT
        )
        return int(epochs)

    # -- hooks called by the communicator / worker ---------------------------

    def on_collective(
        self, rank: int, op: str, value=None, detail: str = "", track: bool = True
    ) -> None:
        """Validate one collective entry; raises :class:`SanitizerError`."""
        done, prev_current, _ = self._read_slot(rank)
        seq = prev_current.seq + 1 if prev_current is not None else 0
        record = OpRecord(
            rank=rank,
            seq=seq,
            op=op,
            detail=detail,
            payload=describe_payload(value),
            site=_call_site(),
        )
        torn = self._check_tracked_write()
        if torn is not None:
            self._abort_event.set()
            self._barrier.abort()
            raise SanitizerError(torn)
        self._write_current(rank, record)
        finished = [
            r for r in range(self.size) if self._read_slot(r)[0]
        ]
        if finished:
            raise SanitizerError(self._diagnose(record, finished=finished))

        leader = self._wait(record) == 0
        if leader:
            self._publish_verdict(self._validate())
        self._wait(record)

        verdict = self._read_verdict()
        if verdict is not None:
            raise SanitizerError(verdict)
        self._write_last(rank, record)
        self._current_record = record

    def on_publish(self, slab, nbytes: int) -> None:
        """Fingerprint this rank's freshly written outbox array region.

        Called by :meth:`ProcessCommunicator._publish` after the array
        bytes land in the slab; ``nbytes`` is the array region's extent
        (the descriptor after it is written exactly once per epoch and
        never aliased by peers' result views).
        """
        if not self.track_writes or nbytes <= 0 or nbytes > _MAX_TRACKED_BYTES:
            self._tracked = None
            return
        self._tracked = (
            slab,
            nbytes,
            _hash_bytes(slab.buf[:nbytes]),
            self._current_record,
        )

    def _check_tracked_write(self) -> str | None:
        tracked, self._tracked = self._tracked, None
        if tracked is None:
            return None
        slab, nbytes, fingerprint, record = tracked
        if slab.closed:  # outbox grew and was released: nothing to recheck
            return None
        if _hash_bytes(slab.buf[:nbytes]) == fingerprint:
            return None
        published = record.render() if record is not None else "<first publish>"
        return (
            "unsynchronized shared-slab write: the outbox region published "
            f"by {published} was mutated before the next synchronization; "
            "a rank wrote through a zero-copy shared view and peers observed "
            "a torn buffer — mutate a .copy(), never a received view"
        )

    def rank_done(self, rank: int) -> None:
        """Called by the worker when a rank's program returns."""
        base = rank * _SLOT
        seq, flags, cur_len, last_len = _HEADER.unpack_from(self._board.buf, base)
        _HEADER.pack_into(
            self._board.buf, base, seq, flags | _DONE, cur_len, last_len
        )
        if self._barrier.n_waiting > 0:
            # Peers are inside a collective this rank will never join —
            # break the sync so they diagnose instead of timing out.
            self._barrier.abort()

    def abort(self) -> None:
        """Called by the worker when any rank failed: unwind, don't hang."""
        self._abort_event.set()
        self._barrier.abort()

    # -- internals -----------------------------------------------------------

    def _wait(self, record: OpRecord) -> int:
        try:
            return self._barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError:
            if self._abort_event.is_set():
                from repro.parallel.comm import SpmdAbort

                raise SpmdAbort(
                    f"rank {record.rank}: sanitized run aborted by a rank failure"
                ) from None
            raise SanitizerError(self._diagnose(record)) from None

    def _validate(self) -> str | None:
        """Leader check once every rank deposited its record."""
        records = []
        for rank in range(self.size):
            _, current, _ = self._read_slot(rank)
            if current is not None:
                records.append(current)
        if len(records) < self.size:
            return None  # unreachable once the barrier passed; be safe
        reference = records[0]
        mismatch = any(
            r.op != reference.op or r.detail != reference.detail for r in records
        ) or (
            reference.op in _SYMMETRIC_PAYLOAD_OPS
            and any(r.payload != reference.payload for r in records)
        )
        if mismatch:
            lines = "\n  ".join(r.render() for r in records)
            return (
                "mismatched collectives — the ranks of this epoch disagree:\n  "
                f"{lines}"
            )
        return None

    def _diagnose(self, record: OpRecord, finished: list[int] | None = None) -> str:
        lines = []
        any_finished = bool(finished)
        for rank in range(self.size):
            done, current, last = self._read_slot(rank)
            any_finished = any_finished or done
            if done:
                tail = f" (last completed: {last.render()})" if last else ""
                lines.append(f"rank {rank}: program finished{tail}")
            elif current is not None and (
                last is None or current.seq > last.seq
            ):
                lines.append(f"rank {rank}: entered {current.render()}")
            elif last is not None:
                lines.append(f"rank {rank}: last completed {last.render()}")
            else:
                lines.append(f"rank {rank}: no collective entered yet")
        reason = (
            "a peer rank finished its program without this collective"
            if any_finished
            else f"collective sync did not complete within {self.timeout:g}s"
        )
        table = "\n  ".join(lines)
        return (
            f"rank {record.rank} stuck in {record.op} at {record.site}: "
            f"{reason} — per-rank state:\n  {table}"
        )
