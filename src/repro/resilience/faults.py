"""Fault injection for the SPMD runtime and the iterative loops.

A :class:`FaultInjector` holds a list of :class:`FaultSpec` triggers and is
consulted from well-defined hook points:

* ``on_collective(rank, op)`` — entry of every communicator collective;
  a matching ``kill_rank`` spec raises :class:`InjectedRankFailure`, which
  the executor treats exactly like a crashed rank (barrier abort, peers
  unwind with ``SpmdAbort``, the failure reaches the caller).
* ``on_send(src, dest)`` — before a point-to-point send; a matching
  ``drop_message`` spec makes the message vanish, ``delay_message`` holds
  it for ``spec.delay`` seconds.
* ``corrupt_value(rank, op, value)`` — before a rank contributes its
  buffer to ``reduce``/``allreduce``; a matching ``corrupt_reduce`` spec
  poisons the contribution with NaNs (how silent network/memory corruption
  typically surfaces in summed float buffers).
* ``on_loop_step(tag, step)`` — from checkpointing loops (SCF / LOBPCG /
  ISDF / RT); a matching ``kill_loop`` spec raises :class:`InjectedFault`
  *after* the step's snapshot was written, modelling a crash between
  durable states.

Steps are counted per (kind, rank) site, so ``step=3`` means "the fourth
matching event on that rank".  Specs are one-shot by default
(``once=True``): after triggering they deactivate, which is what lets
retry/restart policies demonstrate recovery.  All bookkeeping is
lock-protected — the SPMD executor drives ranks as concurrent threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "InjectedRankFailure",
]

#: Supported fault kinds.
FAULT_KINDS = (
    "kill_rank",
    "drop_message",
    "delay_message",
    "corrupt_reduce",
    "kill_loop",
)


class InjectedFault(RuntimeError):
    """An artificial failure raised by the fault-injection harness."""


class InjectedRankFailure(InjectedFault):
    """A simulated rank death inside an SPMD collective."""

    def __init__(self, rank: int, op: str, step: int) -> None:
        super().__init__(
            f"injected failure of rank {rank} at collective #{step} ({op})"
        )
        self.rank = rank
        self.op = op
        self.step = step

    def __reduce__(self):
        # Default exception pickling replays BaseException.args (the
        # formatted message) against our 3-arg __init__; the process
        # backend ships these across rank boundaries, so rebuild from the
        # real fields instead.
        return (InjectedRankFailure, (self.rank, self.op, self.step))


@dataclass
class FaultSpec:
    """One configured fault.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    step:
        0-based occurrence count at the matching site (per rank): the
        spec fires on the ``step``-th matching event.  For ``kill_loop``
        this is the loop iteration number itself.
    rank:
        Restrict to one rank (``None`` = any rank).
    op:
        Restrict to one collective name (``kill_rank`` / ``corrupt_reduce``).
    tag:
        Loop tag filter for ``kill_loop`` (e.g. ``"lobpcg"``, ``"scf"``).
    delay:
        Seconds to hold a message (``delay_message`` only).
    once:
        Deactivate after the first trigger (default) so a retried run
        succeeds; ``False`` keeps firing on every matching event.
    """

    kind: str
    step: int = 0
    rank: int | None = None
    op: str | None = None
    tag: str | None = None
    delay: float = 0.0
    once: bool = True
    triggered: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.step < 0:
            raise ValueError(f"step must be >= 0, got {self.step}")

    @property
    def active(self) -> bool:
        return not (self.once and self.triggered > 0)


def _poison(value):
    """Return a NaN-poisoned copy of a reduce contribution."""
    if isinstance(value, np.ndarray):
        bad = np.array(value, dtype=float if not np.iscomplexobj(value) else complex)
        bad.reshape(-1)[0] = np.nan
        return bad
    if isinstance(value, (list, tuple)):
        seq = [_poison(v) for v in value]
        return type(value)(seq) if isinstance(value, tuple) else seq
    return float("nan")


class FaultInjector:
    """Thread-safe dispatcher of configured :class:`FaultSpec` triggers."""

    def __init__(self, specs=()) -> None:
        self._specs: list[FaultSpec] = [
            s if isinstance(s, FaultSpec) else FaultSpec(**s) for s in specs
        ]
        self._lock = threading.Lock()
        self._counters: dict[tuple, int] = {}
        #: Human-readable record of every triggered fault (for tests/logs).
        self.events: list[str] = []

    def add(self, spec: FaultSpec) -> "FaultInjector":
        with self._lock:
            self._specs.append(spec)
        return self

    def _next_count(self, site: tuple) -> int:
        count = self._counters.get(site, 0)
        self._counters[site] = count + 1
        return count

    def _fire(
        self, kind: str, count: int, *, rank=None, op=None, tag=None
    ) -> FaultSpec | None:
        """Find, mark and return the first active matching spec (locked)."""
        for spec in self._specs:
            if spec.kind != kind or not spec.active:
                continue
            if spec.rank is not None and spec.rank != rank:
                continue
            if spec.op is not None and spec.op != op:
                continue
            if spec.tag is not None and spec.tag != tag:
                continue
            if spec.once:
                if spec.step != count:  # one-shot: exactly the step-th hit
                    continue
            elif count < spec.step:  # persistent: every hit from step on
                continue
            spec.triggered += 1
            self.events.append(
                f"{kind}@{count}"
                + (f" rank={rank}" if rank is not None else "")
                + (f" op={op}" if op is not None else "")
                + (f" tag={tag}" if tag is not None else "")
            )
            return spec
        return None

    # -- hook points --------------------------------------------------------

    def on_collective(self, rank: int, op: str) -> None:
        """Called at the entry of every collective; may kill this rank."""
        with self._lock:
            count = self._next_count(("kill_rank", rank))
            spec = self._fire("kill_rank", count, rank=rank, op=op)
        if spec is not None:
            raise InjectedRankFailure(rank, op, count)

    def on_send(self, src: int, dest: int, tag: int | None = None) -> FaultSpec | None:
        """Called before a p2p send; returns a drop/delay spec or None."""
        with self._lock:
            count = self._next_count(("p2p", src))
            return self._fire(
                "drop_message", count, rank=src, tag=tag
            ) or self._fire("delay_message", count, rank=src, tag=tag)

    def corrupt_value(self, rank: int, op: str, value):
        """Called before a rank contributes to a reduction."""
        with self._lock:
            count = self._next_count(("corrupt_reduce", rank, op))
            spec = self._fire("corrupt_reduce", count, rank=rank, op=op)
        return _poison(value) if spec is not None else value

    def on_loop_step(self, tag: str, step: int) -> None:
        """Called by checkpointing loops after snapshotting ``step``."""
        with self._lock:
            spec = self._fire("kill_loop", step, tag=tag)
        if spec is not None:
            raise InjectedFault(f"injected crash of loop {tag!r} at step {step}")

    # -- cross-process state (the process SPMD backend forks this object) ----

    def state(self) -> dict:
        """Picklable snapshot of the mutable bookkeeping.

        The process backend forks one copy of this injector into every
        rank; each copy's counters diverge independently.  The parent
        snapshots before the run and merges every child's deltas back
        with :meth:`merge_child_state`, so one-shot specs consumed inside
        a worker stay consumed for the resilient retry.
        """
        with self._lock:
            return {
                "triggered": [spec.triggered for spec in self._specs],
                "counters": dict(self._counters),
                "events": list(self.events),
            }

    def merge_child_state(self, base: dict, child: dict) -> None:
        """Fold one forked child's bookkeeping deltas (vs ``base``) back in."""
        with self._lock:
            for i, spec in enumerate(self._specs):
                if i < len(child["triggered"]):
                    delta = child["triggered"][i] - base["triggered"][i]
                    if delta > 0:
                        spec.triggered += delta
            for site, count in child["counters"].items():
                delta = count - base["counters"].get(site, 0)
                if delta > 0:
                    self._counters[site] = self._counters.get(site, 0) + delta
            self.events.extend(child["events"][len(base["events"]) :])

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
