"""The lint engine: rule registry, suppression comments, output formats.

A rule is a named check over one parsed module; the engine owns everything
rule-agnostic — file discovery, parsing, the suppression protocol, and the
two output formats consumed by humans (``text``) and by tooling (``json``).

Suppression protocol
--------------------
``# repro-lint: disable=rule-a,rule-b -- reason`` as a *trailing* comment
suppresses those rules on that line only; the same comment on a line of its
own suppresses them for the whole file.  ``disable=all`` matches every
rule.  The reason string after ``--`` is mandatory by convention (reviewed
suppressions must say why); the engine records findings suppressed without
one under the pseudo-rule ``suppression-without-reason`` so bare waivers
are themselves lint findings.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import re
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "LintRule",
    "SourceModule",
    "all_rules",
    "format_findings",
    "get_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register_rule",
]


@dataclasses.dataclass(frozen=True)
class Finding:
    """One lint violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_\-, *]+?)\s*(?:--\s*(?P<reason>\S.*))?$"
)


@dataclasses.dataclass
class _Suppressions:
    """Parsed suppression comments of one module."""

    #: rule -> reason (or "") for file-wide waivers.
    file_level: dict[str, str] = dataclasses.field(default_factory=dict)
    #: line -> {rule -> reason} for single-line waivers.
    by_line: dict[int, dict[str, str]] = dataclasses.field(default_factory=dict)
    #: (line, rules) of waivers missing a reason string.
    missing_reason: list[tuple[int, str]] = dataclasses.field(default_factory=list)

    def covers(self, rule: str, line: int) -> bool:
        for table in (self.file_level, self.by_line.get(line, {})):
            if rule in table or "all" in table or "*" in table:
                return True
        return False


def _parse_suppressions(text: str) -> _Suppressions:
    sup = _Suppressions()
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = [r.strip() for r in match.group(1).split(",") if r.strip()]
        reason = match.group("reason") or ""
        if not reason:
            sup.missing_reason.append((lineno, ",".join(rules)))
        own_line = line.strip().startswith("#")
        target = sup.file_level if own_line else sup.by_line.setdefault(lineno, {})
        for rule in rules:
            target[rule] = reason
    return sup


@dataclasses.dataclass
class SourceModule:
    """One parsed python file handed to every rule."""

    path: str
    text: str
    tree: ast.Module

    @property
    def posix_path(self) -> str:
        return Path(self.path).as_posix()


class LintRule:
    """Base class for a lint pass.

    Subclasses set :attr:`name` / :attr:`description` and implement
    :meth:`check`, yielding :class:`Finding` objects (the engine applies
    suppressions afterwards, rules never need to).
    """

    name: str = "abstract"
    description: str = ""

    def check(self, module: SourceModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: SourceModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_REGISTRY: dict[str, LintRule] = {}


def register_rule(rule_cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding one instance of the rule to the registry."""
    rule = rule_cls()
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate lint rule name {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return rule_cls


def all_rules() -> tuple[LintRule, ...]:
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def get_rules(names: Sequence[str] | None = None) -> tuple[LintRule, ...]:
    """Resolve rule names to instances (``None`` = every registered rule)."""
    if names is None:
        return all_rules()
    unknown = sorted(set(names) - set(_REGISTRY))
    if unknown:
        raise ValueError(
            f"unknown lint rule(s) {unknown}; available: {sorted(_REGISTRY)}"
        )
    return tuple(_REGISTRY[name] for name in names)


def lint_source(
    text: str,
    path: str = "<string>",
    rules: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint one source string; returns unsuppressed findings sorted by line."""
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="syntax-error",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    module = SourceModule(path=path, text=text, tree=tree)
    suppressions = _parse_suppressions(text)
    findings = [
        f
        for rule in get_rules(rules)
        for f in rule.check(module)
        if not suppressions.covers(f.rule, f.line)
    ]
    for lineno, rule_list in suppressions.missing_reason:
        findings.append(
            Finding(
                rule="suppression-without-reason",
                path=path,
                line=lineno,
                col=1,
                message=(
                    f"suppression of {rule_list!r} has no reason string; "
                    "append ' -- <why this is safe>'"
                ),
            )
        )
    return sorted(findings, key=lambda f: (f.line, f.col, f.rule))


def lint_file(path: str | Path, rules: Sequence[str] | None = None) -> list[Finding]:
    path = Path(path)
    return lint_source(path.read_text(), str(path), rules)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into sorted ``.py`` files (skips caches)."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            yield from sorted(
                p for p in entry.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            yield entry


def lint_paths(
    paths: Iterable[str | Path], rules: Sequence[str] | None = None
) -> list[Finding]:
    """Lint every python file under ``paths`` (files or directories)."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules))
    return findings


def format_findings(findings: Sequence[Finding], fmt: str = "text") -> str:
    """Render findings as ``text`` (one line each) or machine ``json``."""
    if fmt == "json":
        counts: dict[str, int] = {}
        for f in findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        payload = {
            "findings": [f.as_dict() for f in findings],
            "counts_by_rule": dict(sorted(counts.items())),
            "total": len(findings),
        }
        return json.dumps(payload, indent=2, sort_keys=True)
    if fmt == "text":
        if not findings:
            return "repro-lint: no findings"
        lines = [f.render() for f in findings]
        lines.append(f"repro-lint: {len(findings)} finding(s)")
        return "\n".join(lines)
    raise ValueError(f"unknown format {fmt!r}; choose 'text' or 'json'")


# Typing helper for rule helpers that walk with a predicate.
NodePredicate = Callable[[ast.AST], bool]
