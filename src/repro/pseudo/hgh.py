"""Hartwigsen-Goedecker-Hutter (HGH) norm-conserving pseudopotentials.

The paper applies HGH pseudopotentials in all tests (Section 6.1).  We carry
the standard LDA-parametrized table for the four species the paper's systems
need (H, C, O, Si) and the analytic reciprocal-space forms of the local part
and the separable non-local projectors.

Conventions
-----------
Reciprocal quantities follow the library-wide Fourier-series convention
(:mod:`repro.pw.fft`): the local potential coefficient carries ``1/Omega``,
and projector matrix elements are taken against normalized plane waves
``Omega^{-1/2} exp(i G . r)``.

The divergent ``-4 pi Z / G^2`` Coulomb tail at ``G = 0`` is dropped, which
is the usual compensating-background convention (it cancels exactly against
the dropped ``G = 0`` Hartree term and the Ewald background); the smooth
``2 pi Z r_loc^2`` correction from expanding the Gaussian screening is kept
so the ``G -> 0`` limit stays continuous.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.special import erf, spherical_jn

from repro.utils.validation import require

#: Factorial-free Gamma values used by the projector normalizations.
_SQRT_PI = np.sqrt(np.pi)


@dataclass(frozen=True)
class HGHParameters:
    """Parameters of one HGH pseudopotential.

    Attributes
    ----------
    symbol:
        Chemical symbol.
    zion:
        Ionic (valence) charge.
    rloc:
        Local-part Gaussian screening radius (Bohr).
    cloc:
        Up to four polynomial coefficients ``C_1 ... C_4`` of the local part.
    projectors:
        Mapping ``l -> (r_l, (h_1, h_2, ...))`` of non-local channels; only
        the diagonal ``h_ii`` coefficients of the GTH table are carried.
    """

    symbol: str
    zion: int
    rloc: float
    cloc: tuple[float, ...]
    projectors: dict[int, tuple[float, tuple[float, ...]]] = field(
        default_factory=dict
    )

    @property
    def n_projector_channels(self) -> int:
        """Total number of (l, i) radial channels."""
        return sum(len(h) for _, h in self.projectors.values())


#: LDA-parametrized GTH/HGH table (Goedecker, Teter & Hutter 1996;
#: Hartwigsen, Goedecker & Hutter 1998).
_TABLE: dict[str, HGHParameters] = {
    "H": HGHParameters("H", 1, 0.2, (-4.180237, 0.725075)),
    "C": HGHParameters(
        "C",
        4,
        0.348830,
        (-8.513771, 1.228432),
        {0: (0.304553, (9.522842,)), 1: (0.232677, (0.004104,))},
    ),
    "O": HGHParameters(
        "O",
        6,
        0.247621,
        (-16.580318, 2.395701),
        {0: (0.221786, (18.266917,)), 1: (0.256829, (0.004476,))},
    ),
    "Si": HGHParameters(
        "Si",
        4,
        0.44,
        (-7.336103,),
        {0: (0.422738, (5.906928, 3.258196)), 1: (0.484278, (2.727013,))},
    ),
}


def get_pseudopotential(symbol: str) -> HGHParameters:
    """Look up the HGH parameters of a species."""
    try:
        return _TABLE[symbol]
    except KeyError:
        known = ", ".join(sorted(_TABLE))
        raise KeyError(
            f"no HGH pseudopotential for {symbol!r} (available: {known})"
        ) from None


# ---------------------------------------------------------------------------
# Local part
# ---------------------------------------------------------------------------

def local_potential_real(params: HGHParameters, r: np.ndarray) -> np.ndarray:
    """Local pseudopotential in real space (for validation / plotting).

    ``V(r) = -Z/r erf(r / (sqrt(2) r_loc))
             + exp(-(r/r_loc)^2 / 2) * sum_k C_k (r/r_loc)^(2k-2)``.
    """
    r = np.asarray(r, dtype=float)
    x = r / params.rloc
    with np.errstate(divide="ignore", invalid="ignore"):
        coulomb = np.where(
            r > 1e-12,
            -params.zion / np.maximum(r, 1e-300) * erf(x / np.sqrt(2.0)),
            -params.zion * np.sqrt(2.0 / np.pi) / params.rloc,
        )
    poly = np.zeros_like(r)
    for k, c in enumerate(params.cloc):
        poly += c * x ** (2 * k)
    return coulomb + np.exp(-0.5 * x * x) * poly


def local_potential_recip(
    params: HGHParameters, g2: np.ndarray, volume: float
) -> np.ndarray:
    """Fourier-series coefficients of the local part over a G-grid.

    Parameters
    ----------
    g2:
        ``|G|^2`` values (the entry ``g2 == 0`` receives the regularized
        constant described in the module docstring).
    volume:
        Cell volume Omega; the coefficients carry ``1/Omega``.
    """
    g2 = np.asarray(g2, dtype=float)
    rl = params.rloc
    x2 = g2 * rl * rl  # (g * rloc)^2
    gauss = np.exp(-0.5 * x2)

    # Polynomial part: (2 pi)^{3/2} rloc^3 * gauss * P(x2).
    c = params.cloc + (0.0,) * (4 - len(params.cloc))
    poly = (
        c[0]
        + c[1] * (3.0 - x2)
        + c[2] * (15.0 - 10.0 * x2 + x2 * x2)
        + c[3] * (105.0 - 105.0 * x2 + 21.0 * x2 * x2 - x2**3)
    )
    out = (2.0 * np.pi) ** 1.5 * rl**3 * gauss * poly

    # Screened Coulomb part: -4 pi Z / g^2 * gauss, regularized at G = 0.
    nonzero = g2 > 1e-12
    coulomb = np.zeros_like(g2)
    coulomb[nonzero] = -4.0 * np.pi * params.zion / g2[nonzero] * gauss[nonzero]
    coulomb[~nonzero] = 2.0 * np.pi * params.zion * rl * rl
    return (out + coulomb) / volume


# ---------------------------------------------------------------------------
# Non-local projectors
# ---------------------------------------------------------------------------

def projector_real(
    params: HGHParameters, l: int, i: int, r: np.ndarray
) -> np.ndarray:
    """Radial projector ``p_i^l(r)`` in real space (HGH Eq. 3).

    ``i`` is 1-based as in the HGH paper.
    """
    require(l in params.projectors, f"{params.symbol} has no l={l} channel")
    rl, h = params.projectors[l]
    require(1 <= i <= len(h), f"{params.symbol} l={l} has no projector i={i}")
    from scipy.special import gamma

    power = l + 2 * (i - 1)
    norm = np.sqrt(2.0) / (
        rl ** (l + (4 * i - 1) / 2.0) * np.sqrt(gamma(l + (4 * i - 1) / 2.0))
    )
    r = np.asarray(r, dtype=float)
    return norm * r**power * np.exp(-0.5 * (r / rl) ** 2)


def projector_radial_recip(
    params: HGHParameters, l: int, i: int, g: np.ndarray
) -> np.ndarray:
    """Analytic radial Fourier transform ``4 pi int r^2 p(r) j_l(gr) dr``.

    Closed forms for the channels present in the H/C/O/Si table:
    ``(l, i) in {(0,1), (0,2), (1,1)}``.  Validated against
    :func:`projector_radial_numeric` in the test-suite.
    """
    rl, _ = params.projectors[l]
    g = np.asarray(g, dtype=float)
    x = g * rl
    gauss = np.exp(-0.5 * x * x)
    if l == 0 and i == 1:
        return 4.0 * np.sqrt(2.0) * np.pi**1.25 * rl**1.5 * gauss
    if l == 0 and i == 2:
        return (
            8.0 * np.sqrt(2.0 / 15.0) * np.pi**1.25 * rl**1.5 * (3.0 - x * x) * gauss
        )
    if l == 1 and i == 1:
        return (8.0 / np.sqrt(3.0)) * np.pi**1.25 * rl**2.5 * g * gauss
    raise NotImplementedError(f"no closed form for (l={l}, i={i})")


def projector_radial_numeric(
    params: HGHParameters,
    l: int,
    i: int,
    g: np.ndarray,
    *,
    r_max: float = 20.0,
    n_quad: int = 4000,
) -> np.ndarray:
    """Numerical radial transform used to validate the closed forms."""
    r = np.linspace(0.0, r_max, n_quad)
    p = projector_real(params, l, i, r)
    g = np.atleast_1d(np.asarray(g, dtype=float))
    out = np.empty_like(g)
    for idx, gv in enumerate(g):
        jl = spherical_jn(l, gv * r)
        out[idx] = 4.0 * np.pi * np.trapezoid(r * r * p * jl, r)
    return out
