#!/usr/bin/env python
"""Silicon band structure along L - Gamma - X (substrate validation).

One Gamma-point SCF fixes the density; Bloch Hamiltonians H(k) then give
the bands anywhere in the zone.  Silicon's signature physics must appear:
an *indirect* gap (conduction minimum along Gamma-X), the triply
degenerate Gamma_25' valence top, and the ~12 eV valence bandwidth.

    python examples/silicon_bands.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import run_scf, silicon_primitive_cell
from repro.constants import HARTREE_TO_EV
from repro.dft.bands import band_structure


def ascii_bands(bs, n_occ, height=24):
    e = bs.energies * HARTREE_TO_EV
    e_min, e_max = e.min() - 0.5, e[:, : n_occ + 3].max() + 0.5
    rows = []
    for level in range(height, -1, -1):
        energy = e_min + (e_max - e_min) * level / height
        row = []
        for ik in range(bs.n_k):
            close = np.abs(e[ik] - energy) < (e_max - e_min) / (2 * height)
            row.append("o" if close.any() else " ")
        label = f"{energy:6.1f} |"
        rows.append(label + "".join(c * 3 for c in row))
    marker_row = [" "] * (3 * bs.n_k + 8)
    for idx, name in bs.labels:
        pos = 8 + 3 * idx
        for j, ch in enumerate(name[:3]):
            if pos + j < len(marker_row):
                marker_row[pos + j] = ch
    rows.append("".join(marker_row))
    return "\n".join(rows)


def main() -> None:
    print("=== SCF (Gamma point) ===")
    t0 = time.perf_counter()
    gs = run_scf(silicon_primitive_cell(), ecut=12.0, n_bands=10, tol=1e-8, seed=1)
    print(f"done in {time.perf_counter() - t0:.1f} s; "
          f"direct Gamma gap {gs.homo_lumo_gap() * HARTREE_TO_EV:.2f} eV")

    print("\n=== Bands along L - Gamma - X ===")
    t0 = time.perf_counter()
    bs = band_structure(
        gs,
        [
            ("L", np.array([0.5, 0.5, 0.5])),
            ("G", np.array([0.0, 0.0, 0.0])),
            ("X", np.array([0.5, 0.0, 0.5])),
        ],
        n_bands=8,
        n_interpolate=8,
    )
    print(f"{bs.n_k} k-points in {time.perf_counter() - t0:.1f} s\n")
    print(ascii_bands(bs, n_occ=4))

    n_occ = 4
    vbm = bs.valence_maximum(n_occ) * HARTREE_TO_EV
    cbm = bs.conduction_minimum(n_occ) * HARTREE_TO_EV
    print(f"\nVBM {vbm:.2f} eV (at Gamma), CBM {cbm:.2f} eV (along Gamma-X)")
    print(f"indirect gap {cbm - vbm:.2f} eV vs direct Gamma gap "
          f"{gs.homo_lumo_gap() * HARTREE_TO_EV:.2f} eV")
    print("-> silicon is an indirect semiconductor, as it must be.")
    print("(LDA at this cutoff underestimates the experimental 1.17 eV —")
    print(" the famous LDA gap problem plus basis-set effects.)")


if __name__ == "__main__":
    main()
