"""Shared fixtures and reporting helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper; alongside the
pytest-benchmark timing statistics, each writes its paper-style comparison
table to ``benchmarks/results/<name>.txt`` and echoes it to stdout (visible
with ``pytest benchmarks/ --benchmark-only -s``).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.atoms import bulk_silicon
from repro.dft import run_scf
from repro.synthetic import synthetic_ground_state

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_table():
    """Write a rendered table to benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{'=' * 72}\n{text}\n[saved to {path}]")

    return _save


@pytest.fixture(scope="session")
def si64_like_state():
    """Synthetic Si_64-scale orbitals for the Table 3 point-selection bench.

    Sizes are scaled from the paper's Si_64 at Ecut = 20 Ha (N_r = 74,088)
    by the documented factor in EXPERIMENTS.md; the selection algorithms
    see the same weight structure (localized bonds on a diamond lattice).
    """
    return synthetic_ground_state(
        bulk_silicon(64), ecut=6.0, n_valence=48, n_conduction=24, seed=64
    )


@pytest.fixture(scope="session")
def si8_state():
    """Mid-size synthetic state shared by several benches."""
    return synthetic_ground_state(
        bulk_silicon(8), ecut=6.0, n_valence=16, n_conduction=10, seed=8
    )


@pytest.fixture(scope="session")
def si2_real_state():
    """Real converged Si_2 ground state (for accuracy benches)."""
    from repro.atoms import silicon_primitive_cell

    return run_scf(silicon_primitive_cell(), ecut=10.0, n_bands=10, tol=1e-8, seed=1)


@pytest.fixture(scope="session")
def water_real_state():
    """Real converged H2O ground state (Table 5's molecular system)."""
    from repro.atoms import water_molecule
    from repro.constants import ANGSTROM_TO_BOHR

    return run_scf(
        water_molecule(box=8.0 * ANGSTROM_TO_BOHR),
        ecut=12.0, n_bands=10, tol=1e-7, seed=2,
    )
