"""Calibrated settings tying the cost model to the paper's evaluation runs.

The paper's reported timings (Tables 3/6, weak scaling, Si_4096 strong
scaling) are not mutually consistent under any single problem
parametrization — different experiments plainly used different settings,
only some of which are stated.  The calibration below adopts the one
parametrization the paper *does* document (Table 5's silicon transition
space: ``N_v = 128, N_c = 50`` fixed while the grid grows with system
size) and fits the remaining free constants (ISDF rank, pruning survival,
iteration counts, FFT and K-Means sustained efficiencies, the Table 6 core
count) by least squares on the log-times of all anchors.

What the reproduction then asserts is the paper's *shapes*:

* Table 6 speedups fall with system size (naive is SYEVD-dominated at
  small N, both versions become grid-dominated at large N),
* weak scaling is ~linear in atom count for the optimized version,
* the naive code keeps >= 50% parallel efficiency at 2,048 cores,
* Si_4096 retains ~87% efficiency from 8,192 to 12,288 cores,

with absolute times within a small factor of the paper's (recorded in
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import replace

from repro.perf.machine import CORI_HASWELL, MachineSpec
from repro.perf.workloads import LRTDDFTWorkload, silicon_workload

#: Machine spec with the fitted sustained-efficiency factors.
CALIBRATED_SPEC: MachineSpec = CORI_HASWELL.with_overrides(
    kmeans_efficiency=0.022,
    fft_efficiency=0.02,
)

#: Transition space of the paper's silicon evaluation runs (Table 5).
EVAL_N_V: int = 128
EVAL_N_C: int = 50

#: Fitted ISDF rank, pruning survival and iteration counts.
EVAL_N_MU: int = 768
EVAL_PRUNE_FRACTION: float = 0.70
EVAL_KMEANS_ITERS: int = 100
EVAL_LOBPCG_ITERS: int = 30

#: Core count reproducing Table 6's (unstated) resource level.
TABLE6_CORES: int = 256

#: Core sweep of Figure 7 / 8.
STRONG_SCALING_CORES: tuple[int, ...] = (128, 256, 512, 1024, 2048)

#: Weak-scaling core count (Section 6.4: 1,024 cores, 1 core per process).
WEAK_SCALING_CORES: int = 1024


def paper_workload(n_atoms: int) -> LRTDDFTWorkload:
    """The calibrated Si_N workload used by every scaling bench."""
    base = silicon_workload(n_atoms)
    return replace(
        base,
        n_v=EVAL_N_V,
        n_c=EVAL_N_C,
        n_mu=EVAL_N_MU,
        prune_fraction=EVAL_PRUNE_FRACTION,
        kmeans_iters=EVAL_KMEANS_ITERS,
        lobpcg_iters=EVAL_LOBPCG_ITERS,
    )
