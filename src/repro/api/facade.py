"""Legacy entry points: ``run_scf`` / ``solve_tddft`` / ``run_rt`` / ``run_batch``.

These four functions predate the unified request API.  Each is now a thin
shim that builds a :class:`~repro.api.request.CalculationRequest` and
executes it through the one shared path (:func:`~repro.api.request.
execute_request`) — the same path the job server (:mod:`repro.serve`) runs,
so legacy callers and served requests are bit-identical.  Every shim warns
exactly once per process via the existing deprecation machinery; new code
should build a request::

    from repro import api

    request = api.CalculationRequest(
        kind="scf", structure=cell, scf=api.SCFConfig(ecut=10.0)
    )
    gs = request.compute()                 # synchronous, in-process
    handle = request.submit()              # async, cached, warm-started

:func:`load_result` and :func:`install_fft_fallback` are not deprecated —
they have no request equivalent.
"""

from __future__ import annotations

import os

from repro.api.config import BatchConfig, ResilienceConfig, RTConfig, SCFConfig, TDDFTConfig
from repro.api.request import (
    CalculationRequest,
    execute_request,
    install_fft_fallback,
)
from repro.batch.results import BatchResult
from repro.core.driver import LRTDDFTResult
from repro.dft.groundstate import GroundState
from repro.rt.tddft import RTResult
from repro.utils.deprecation import reset_deprecation_warnings, warn_once
from repro.utils.serialization import SerializationError, load_payload
from repro.utils.timers import TimerRegistry
from repro.utils.validation import require

__all__ = [
    "SCFResult",
    "install_fft_fallback",
    "load_result",
    "reset_deprecation_warnings",
    "run_batch",
    "run_rt",
    "run_scf",
    "solve_tddft",
]

#: The facade's name for the ground-state result object.
SCFResult = GroundState


def run_scf(
    cell,
    config: SCFConfig | None = None,
    *,
    resilience: ResilienceConfig | None = None,
    timers: TimerRegistry | None = None,
    **legacy,
) -> GroundState:
    """Ground-state SCF (deprecated shim over :class:`CalculationRequest`).

    Equivalent to ``CalculationRequest(kind="scf", structure=cell,
    scf=config, resilience=resilience).compute()``.  Bare option keywords
    (``run_scf(cell, ecut=8.0)``) are the oldest signature and are folded
    into the config.  Warns once per process.
    """
    warn_once(
        "api.run_scf",
        "repro.api.run_scf() is deprecated; build a repro.api."
        "CalculationRequest(kind='scf', structure=cell, scf=SCFConfig(...)) "
        "and call .compute() (or .submit() for the cached job server)",
    )
    if legacy:
        require(
            config is None,
            "run_scf(cell, config) does not accept additional option "
            f"keywords (got {sorted(legacy)}); use config.replace(...)",
        )
        config = SCFConfig.from_dict(legacy)
    request = CalculationRequest(
        kind="scf", structure=cell, scf=config, resilience=resilience
    )
    return execute_request(request, timers=timers).result


def solve_tddft(
    ground_state: GroundState,
    config: TDDFTConfig | None = None,
    *,
    resilience: ResilienceConfig | None = None,
    **legacy,
) -> LRTDDFTResult:
    """LR-TDDFT excitations (deprecated shim over :class:`CalculationRequest`).

    Builds a ``kind="tddft"`` request on the ground state's cell and
    executes it with the supplied ``ground_state`` (the SCF stage is
    skipped, exactly as before).  The request path carries the same
    dense-eigensolver degradation policy.  Warns once per process —
    build a ``CalculationRequest`` with a ``TDDFTConfig`` instead.
    """
    warn_once(
        "api.solve_tddft",
        "repro.api.solve_tddft() is deprecated; build a repro.api."
        "CalculationRequest(kind='tddft', structure=cell, "
        "tddft=TDDFTConfig(...)) and call .compute() (or .submit())",
    )
    if legacy:
        require(
            config is None,
            "solve_tddft(gs, config) does not accept additional option "
            f"keywords (got {sorted(legacy)}); use config.replace(...)",
        )
        config = TDDFTConfig.from_dict(legacy)
    request = CalculationRequest(
        kind="tddft",
        structure=ground_state.basis.cell,
        tddft=config,
        resilience=resilience,
    )
    return execute_request(request, ground_state=ground_state).result


def run_rt(
    ground_state: GroundState,
    *,
    dt: float = 0.2,
    n_steps: int = 600,
    kick_strength: float = 1e-3,
    kick_direction=(0.0, 0.0, 1.0),
    krylov_dim: int = 10,
    etrs: bool = True,
    record_every: int = 1,
    self_consistent: bool = True,
    resilience: ResilienceConfig | None = None,
) -> RTResult:
    """Real-time TDDFT (deprecated shim over :class:`CalculationRequest`).

    The bare keywords become an :class:`~repro.api.config.RTConfig` on a
    ``kind="rt"`` request executed with the supplied ground state.  Warns
    once per process.
    """
    warn_once(
        "api.run_rt",
        "repro.api.run_rt() is deprecated; build a repro.api."
        "CalculationRequest(kind='rt', structure=cell, rt=RTConfig(...)) "
        "and call .compute() (or .submit())",
    )
    request = CalculationRequest(
        kind="rt",
        structure=ground_state.basis.cell,
        rt=RTConfig(
            dt=dt,
            n_steps=n_steps,
            kick_strength=kick_strength,
            kick_direction=tuple(kick_direction),
            krylov_dim=krylov_dim,
            etrs=etrs,
            record_every=record_every,
            self_consistent=self_consistent,
        ),
        resilience=resilience,
    )
    return execute_request(request, ground_state=ground_state).result


def run_batch(
    cells,
    config: BatchConfig | None = None,
    *,
    resilience: ResilienceConfig | None = None,
    on_result=None,
) -> BatchResult:
    """Warm-started batch pipeline (deprecated shim over :class:`CalculationRequest`).

    Equivalent to ``CalculationRequest(kind="batch", structure=tuple(cells),
    batch=config, resilience=resilience).compute()`` plus the streaming
    ``on_result`` callback.  Warns once per process.
    """
    warn_once(
        "api.run_batch",
        "repro.api.run_batch() is deprecated; build a repro.api."
        "CalculationRequest(kind='batch', structure=cells, "
        "batch=BatchConfig(...)) and call .compute() (or .submit())",
    )
    request = CalculationRequest(
        kind="batch", structure=tuple(cells), batch=config, resilience=resilience
    )
    return execute_request(request, on_result=on_result).result


#: Result classes :func:`load_result` can dispatch to, by class tag.
_RESULT_CLASSES = {
    "GroundState": GroundState,
    "LRTDDFTResult": LRTDDFTResult,
    "RTResult": RTResult,
}


def load_result(path: str | os.PathLike):
    """Load any saved result file, dispatching on its embedded class tag."""
    payload = load_payload(path)
    tag = payload.get("class")
    cls = _RESULT_CLASSES.get(tag)
    if cls is None:
        raise SerializationError(
            f"{path}: unknown result class {tag!r}; "
            f"expected one of {sorted(_RESULT_CLASSES)}"
        )
    return cls.from_dict(payload["data"])
