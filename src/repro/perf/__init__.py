"""Performance model: Cori-calibrated cost predictions for the paper's
scaling figures.

The distributed algorithms in :mod:`repro.parallel` prove correctness at
small rank counts; this subpackage predicts wall-clock at the paper's scale
(128 - 12,288 cores, Si_512 - Si_4096) from an alpha-beta machine model of
the Cori Haswell partition and per-kernel cost functions, calibrated
against the anchor timings the paper reports (weak scaling Section 6.4,
Si_4096 strong scaling Section 6.3, Table 6).

* :mod:`repro.perf.machine` — MachineSpec + the Cori Haswell instance,
* :mod:`repro.perf.costmodel` — GEMM / FFT / collective / K-Means kernels,
* :mod:`repro.perf.workloads` — problem dimensions of the Si_N series,
* :mod:`repro.perf.scaling` — per-version time predictions and the
  strong/weak scaling series (Figures 7-8, Section 6.4, Table 6),
* :mod:`repro.perf.complexity` — the symbolic complexity tables (2 and 4).
"""

from repro.perf.machine import CORI_HASWELL, MachineSpec
from repro.perf.workloads import LRTDDFTWorkload, silicon_workload
from repro.perf.costmodel import (
    time_allreduce,
    time_alltoall,
    time_dense_eig,
    time_fft_batch,
    time_gemm,
    time_kmeans,
    time_pair_product,
)
from repro.perf.scaling import (
    PhaseTimes,
    parallel_efficiency,
    predict_construction_breakdown,
    predict_version_time,
    strong_scaling_series,
    weak_scaling_series,
)
from repro.perf.complexity import (
    complexity_table_2,
    complexity_table_4,
    evaluate_complexity,
)

__all__ = [
    "MachineSpec",
    "CORI_HASWELL",
    "LRTDDFTWorkload",
    "silicon_workload",
    "time_gemm",
    "time_fft_batch",
    "time_alltoall",
    "time_allreduce",
    "time_kmeans",
    "time_dense_eig",
    "time_pair_product",
    "PhaseTimes",
    "predict_version_time",
    "predict_construction_breakdown",
    "strong_scaling_series",
    "weak_scaling_series",
    "parallel_efficiency",
    "complexity_table_2",
    "complexity_table_4",
    "evaluate_complexity",
]
