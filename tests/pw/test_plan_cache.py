"""Convolution plan construction and the process-wide plan cache."""

import numpy as np
import pytest

from repro.pw import FourierGrid, GVectors, RealSpaceGrid, UnitCell
from repro.pw.fft import ConvolutionPlan, PlanCache, default_plan_cache


@pytest.fixture()
def fourier():
    grid = RealSpaceGrid(UnitCell.cubic(5.0), (8, 8, 8))
    return FourierGrid(grid)


def _kernel(fourier, scale=1.0):
    # A function of |G|^2 is inversion symmetric, which convolve_real's
    # half-spectrum path requires.
    g2 = GVectors(fourier.grid, ecut=1.0).g2
    return scale / (1.0 + g2)


class TestConvolutionPlan:
    def test_apply_matches_direct_convolution(self, fourier, rng):
        kernel = _kernel(fourier)
        plan = ConvolutionPlan(fourier, kernel)
        fields = rng.standard_normal((3, fourier.grid.n_points))
        np.testing.assert_array_equal(
            plan.apply(fields), fourier.convolve_real(fields, kernel)
        )


class TestPlanCache:
    def test_builds_once_then_hits(self, fourier):
        cache = PlanCache()
        builds = []

        def build():
            builds.append(1)
            return _kernel(fourier)

        first = cache.get("k", fourier, build)
        second = cache.get("k", fourier, build)
        assert first is second
        assert len(builds) == 1
        assert cache.stats() == {"plans": 1, "hits": 1, "misses": 1}

    def test_key_includes_tag_grid_and_lattice(self, fourier):
        cache = PlanCache()
        a = cache.get("a", fourier, lambda: _kernel(fourier))
        b = cache.get("b", fourier, lambda: _kernel(fourier, scale=2.0))
        assert a is not b

        other = FourierGrid(RealSpaceGrid(UnitCell.cubic(6.0), (8, 8, 8)))
        c = cache.get("a", other, lambda: _kernel(other))
        assert c is not a
        assert cache.stats()["plans"] == 3

    def test_lru_eviction(self, fourier):
        cache = PlanCache(max_plans=2)
        cache.get("a", fourier, lambda: _kernel(fourier))
        cache.get("b", fourier, lambda: _kernel(fourier))
        cache.get("a", fourier, lambda: _kernel(fourier))  # refresh a
        cache.get("c", fourier, lambda: _kernel(fourier))  # evicts b
        builds = []
        cache.get("a", fourier, lambda: builds.append(1) or _kernel(fourier))
        cache.get("b", fourier, lambda: builds.append(2) or _kernel(fourier))
        assert builds == [2]  # a survived, b was rebuilt

    def test_clear_resets(self, fourier):
        cache = PlanCache()
        cache.get("a", fourier, lambda: _kernel(fourier))
        cache.clear()
        assert cache.stats() == {"plans": 0, "hits": 0, "misses": 0}

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(max_plans=0)

    def test_default_cache_is_a_singleton(self):
        assert default_plan_cache() is default_plan_cache()
        assert isinstance(default_plan_cache(), PlanCache)

    def test_dtype_is_part_of_the_key(self, fourier):
        # Regression: a mixed-precision fp32 plan and the strict64 fp64
        # plan for the same (tag, grid) must never collide — a collision
        # would hand a strict64 caller fp32 FFT scratch silently.
        cache = PlanCache()
        builds = []

        def build():
            builds.append(1)
            return _kernel(fourier)

        p64 = cache.get("k", fourier, build)
        p32 = cache.get("k", fourier, build, dtype=np.float32)
        assert p64 is not p32
        assert p64.dtype == np.dtype(np.float64)
        assert p32.dtype == np.dtype(np.float32)
        assert len(builds) == 2
        assert cache.get("k", fourier, build) is p64
        assert cache.get("k", fourier, build, dtype=np.float32) is p32
        assert cache.stats() == {"plans": 2, "hits": 2, "misses": 2}


class TestFp32Plans:
    def test_fp32_apply_within_tolerance(self, fourier, rng):
        kernel = _kernel(fourier)
        fields = rng.standard_normal((2, fourier.grid.n_points))
        exact = ConvolutionPlan(fourier, kernel).apply(fields)
        plan = ConvolutionPlan(fourier, kernel, dtype=np.float32)
        approx = plan.apply(fields)
        assert approx.dtype == np.float64  # fp32 is scratch, not output
        scale = np.abs(exact).max()
        assert np.abs(approx - exact).max() / scale <= plan.tol
        assert not plan.degraded

    def test_zero_tolerance_degrades_to_fp64_bit_identical(self, fourier, rng):
        from repro.resilience import resilience_log

        log = resilience_log()
        before = len(log)
        kernel = _kernel(fourier)
        fields = rng.standard_normal((2, fourier.grid.n_points))
        exact = ConvolutionPlan(fourier, kernel).apply(fields)
        plan = ConvolutionPlan(
            fourier, kernel, dtype=np.float32, tol=0.0, stage="test-fft"
        )
        first = plan.apply(fields)
        np.testing.assert_array_equal(first, exact)
        assert plan.degraded
        events = log.events()[before:]
        assert [(e.stage, e.action) for e in events] == [
            ("test-fft", "fallback-fp64")
        ]
        # Degradation is permanent: later applies go straight to fp64.
        np.testing.assert_array_equal(plan.apply(fields), exact)
        assert len(log) == before + 1

    def test_rejects_non_float_dtype(self, fourier):
        with pytest.raises(ValueError, match="dtype"):
            ConvolutionPlan(fourier, _kernel(fourier), dtype=np.complex64)


def test_hartree_potential_uses_the_default_cache(si2_ground_state):
    """The SCF Hartree solve must route through the plan cache (the batch
    engine's cross-frame FFT-plan reuse depends on it)."""
    from repro.dft.hartree import hartree_potential

    basis = si2_ground_state.basis
    before = default_plan_cache().stats()
    v1 = hartree_potential(si2_ground_state.density, basis)
    v2 = hartree_potential(si2_ground_state.density, basis)
    after = default_plan_cache().stats()
    np.testing.assert_array_equal(v1, v2)
    assert after["hits"] >= before["hits"] + 1
