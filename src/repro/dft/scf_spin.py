"""Collinear spin-polarized SCF (unrestricted LSDA).

Extension beyond the (spin-restricted) paper: two spin channels sharing
the Hartree potential of the total density but each seeing its own
``v_xc^sigma`` from :func:`repro.dft.xc_spin.lsda_potentials`.  Enables
open-shell references (H atom, radicals) and genuine spin physics (the
majority channel binds deeper).

Occupations fill both channels from a common Fermi level (1 electron per
spin-orbital); an initial magnetization bias breaks the up/down symmetry
so magnetic solutions can be found.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.atoms.elements import valence_electron_count
from repro.dft.density import atomic_guess_density
from repro.dft.ewald import ewald_energy
from repro.dft.groundstate import realify_orbitals
from repro.dft.hamiltonian import KohnShamHamiltonian
from repro.dft.hartree import hartree_potential
from repro.dft.mixing import AndersonMixer
from repro.dft.xc_spin import lsda_potentials
from repro.eigen.lobpcg import lobpcg
from repro.pw.basis import PlaneWaveBasis
from repro.pw.cell import UnitCell
from repro.utils.rng import default_rng
from repro.utils.validation import check_positive, require


@dataclass
class SpinGroundState:
    """Converged unrestricted ground state (channels: 0 = up, 1 = down)."""

    basis: PlaneWaveBasis
    energies: np.ndarray  #: (2, n_bands)
    orbitals_real: np.ndarray  #: (2, n_bands, N_r)
    occupations: np.ndarray  #: (2, n_bands), each in [0, 1]
    densities: np.ndarray  #: (2, N_r)
    converged: bool = True
    history: list[dict] = field(default_factory=list)

    @property
    def n_bands(self) -> int:
        return self.energies.shape[1]

    @property
    def total_density(self) -> np.ndarray:
        return self.densities.sum(axis=0)

    @property
    def magnetization_density(self) -> np.ndarray:
        return self.densities[0] - self.densities[1]

    @property
    def total_magnetization(self) -> float:
        """Integrated spin moment in units of mu_B (electrons up - down)."""
        return float(self.magnetization_density.sum() * self.basis.grid.dv)

    @property
    def n_electrons(self) -> float:
        return float(self.occupations.sum())


def _common_fermi_occupations(
    energies_up: np.ndarray,
    energies_down: np.ndarray,
    n_electrons: float,
    width: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Fill both channels (1 e per spin-orbital) from one Fermi level."""
    merged = np.concatenate([energies_up, energies_down])
    if width <= 0.0:
        order = np.argsort(merged, kind="stable")
        n_fill = int(round(n_electrons))
        require(
            abs(n_electrons - n_fill) < 1e-9,
            "fractional electron count needs smearing_width > 0",
        )
        require(n_fill <= merged.size, "not enough spin-orbitals")
        occ = np.zeros(merged.size)
        occ[order[:n_fill]] = 1.0
    else:
        lo = merged.min() - 10 * width - 1.0
        hi = merged.max() + 10 * width + 1.0
        for _ in range(200):
            mu = 0.5 * (lo + hi)
            x = np.clip((merged - mu) / width, -200, 200)
            total = float((1.0 / (1.0 + np.exp(x))).sum())
            if total < n_electrons:
                lo = mu
            else:
                hi = mu
        mu = 0.5 * (lo + hi)
        x = np.clip((merged - mu) / width, -200, 200)
        occ = 1.0 / (1.0 + np.exp(x))
        occ *= n_electrons / occ.sum()
    n_up = energies_up.shape[0]
    return occ[:n_up], occ[n_up:]


def run_scf_spin(
    cell: UnitCell,
    *,
    ecut: float = 10.0,
    n_bands: int | None = None,
    initial_magnetization: float = 1.0,
    tol: float = 1e-6,
    max_iter: int = 80,
    mixing_beta: float = 0.4,
    smearing_width: float = 0.0,
    eig_tol_final: float = 1e-8,
    seed: int | None = None,
    verbose: bool = False,
) -> SpinGroundState:
    """Unrestricted LSDA SCF.

    Parameters
    ----------
    initial_magnetization:
        Electrons moved from the down to the up channel in the starting
        density (breaks symmetry; 0.0 converges to the restricted
        solution for closed-shell systems).
    """
    check_positive(ecut, "ecut")
    n_electrons = valence_electron_count(cell.species)
    if n_bands is None:
        n_bands = max(int(np.ceil(n_electrons / 2.0)) + 4, 4)

    basis = PlaneWaveBasis(cell, ecut)
    require(n_bands <= basis.n_pw, "n_bands exceeds basis size; raise ecut")
    hams = [KohnShamHamiltonian(basis), KohnShamHamiltonian(basis)]
    rng = default_rng(seed)
    coeffs = [basis.random_coefficients(n_bands, rng) for _ in range(2)]

    guess = atomic_guess_density(basis)
    m0 = min(abs(initial_magnetization), n_electrons) * np.sign(
        initial_magnetization or 1.0
    )
    densities = np.stack(
        [
            guess * (0.5 + 0.5 * m0 / max(n_electrons, 1e-30)),
            guess * (0.5 - 0.5 * m0 / max(n_electrons, 1e-30)),
        ]
    )

    mixers = [AndersonMixer(mixing_beta), AndersonMixer(mixing_beta)]
    energies = np.zeros((2, n_bands))
    occupations = np.zeros((2, n_bands))
    history: list[dict] = []
    converged = False
    residual = np.inf

    def update_potentials(dens: np.ndarray) -> None:
        v_h = hartree_potential(dens.sum(axis=0), basis)
        v_up, v_down = lsda_potentials(dens[0], dens[1])
        for sigma, v_xc in enumerate((v_up, v_down)):
            ham = hams[sigma]
            ham.v_hartree = v_h
            ham.v_xc = v_xc
            ham._v_eff = ham.v_local + v_h + v_xc

    for iteration in range(1, max_iter + 1):
        update_potentials(densities)
        eig_tol = float(np.clip(0.03 * residual, eig_tol_final, 1e-3))
        new_densities = np.empty_like(densities)
        psi_real = [None, None]
        for sigma in range(2):
            result = lobpcg(
                hams[sigma].apply_columns,
                coeffs[sigma].T,
                preconditioner=hams[sigma].preconditioner,
                tol=eig_tol,
                max_iter=100,
            )
            coeffs[sigma] = result.eigenvectors.T
            energies[sigma] = result.eigenvalues
            psi_real[sigma] = basis.to_real(coeffs[sigma])

        occupations[0], occupations[1] = _common_fermi_occupations(
            energies[0], energies[1], n_electrons, smearing_width
        )
        for sigma in range(2):
            new_densities[sigma] = np.einsum(
                "b,br->r", occupations[sigma], np.abs(psi_real[sigma]) ** 2
            )

        delta = new_densities - densities
        residual = float(
            np.sqrt((delta * delta).sum() * basis.grid.dv) / max(n_electrons, 1.0)
        )
        mag = float(
            (new_densities[0] - new_densities[1]).sum() * basis.grid.dv
        )
        history.append(
            {"iteration": iteration, "residual": residual, "magnetization": mag}
        )
        if verbose:  # pragma: no cover
            print(f"spin-SCF {iteration:3d}: residual={residual:.3e}, m={mag:+.4f}")
        if residual < tol:
            converged = True
            densities = new_densities
            break
        for sigma in range(2):
            densities[sigma] = mixers[sigma].mix(
                densities[sigma], new_densities[sigma]
            )

    # Final polish + real gauge per channel.
    update_potentials(densities)
    orbitals = np.empty((2, n_bands, basis.n_r))
    for sigma in range(2):
        result = lobpcg(
            hams[sigma].apply_columns,
            coeffs[sigma].T,
            preconditioner=hams[sigma].preconditioner,
            tol=eig_tol_final,
            max_iter=200,
        )
        coeffs[sigma] = result.eigenvectors.T
        energies[sigma] = result.eigenvalues
        orbitals[sigma], energies[sigma] = realify_orbitals(
            coeffs[sigma], energies[sigma], basis, hams[sigma].apply
        )
    occupations[0], occupations[1] = _common_fermi_occupations(
        energies[0], energies[1], n_electrons, smearing_width
    )
    for sigma in range(2):
        densities[sigma] = np.einsum(
            "b,br->r", occupations[sigma], orbitals[sigma] ** 2
        )

    return SpinGroundState(
        basis=basis,
        energies=energies.copy(),
        orbitals_real=orbitals,
        occupations=occupations.copy(),
        densities=densities,
        converged=converged,
        history=history,
    )
