"""Common result container for the iterative eigensolvers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class EigenResult:
    """Outcome of an iterative eigensolve.

    Attributes
    ----------
    eigenvalues:
        ``(k,)`` ascending Ritz values.
    eigenvectors:
        ``(n, k)`` Ritz vectors (columns), orthonormal.
    iterations:
        Number of outer iterations performed.
    residual_norms:
        Final ``||H x - theta x||`` per pair.
    converged:
        Whether every requested pair met the tolerance.
    history:
        Max residual norm per iteration (for convergence plots/tests).
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    iterations: int
    residual_norms: np.ndarray
    converged: bool
    history: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.eigenvalues.shape[0] != self.eigenvectors.shape[1]:
            raise ValueError(
                f"{self.eigenvalues.shape[0]} eigenvalues but "
                f"{self.eigenvectors.shape[1]} eigenvectors"
            )
