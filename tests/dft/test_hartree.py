"""Tests for the G-space Poisson solver."""

import numpy as np
import pytest

from repro.dft import hartree_energy, hartree_potential
from repro.dft.hartree import coulomb_kernel
from repro.pw import PlaneWaveBasis, UnitCell


@pytest.fixture(scope="module")
def basis():
    return PlaneWaveBasis(UnitCell.cubic(10.0), ecut=8.0)


def test_kernel_g0_zeroed(basis):
    kernel = coulomb_kernel(basis)
    assert kernel[0] == 0.0
    assert (kernel[1:] > 0).all()


def test_kernel_values(basis):
    kernel = coulomb_kernel(basis)
    g2 = basis.gvectors.g2
    idx = 5
    assert kernel[idx] == pytest.approx(4 * np.pi / g2[idx])


def test_potential_of_neutral_field_has_zero_mean(basis, rng):
    n = rng.random(basis.n_r)
    v = hartree_potential(n, basis)
    assert abs(v.mean()) < 1e-10


def test_poisson_equation_satisfied(basis, rng):
    """-nabla^2 V_H = 4 pi (n - n_bar) on the grid (checked in G space)."""
    n = rng.random(basis.n_r)
    v = hartree_potential(n, basis)
    v_g = basis.fft.forward(v.astype(complex))
    n_g = basis.fft.forward(n.astype(complex))
    g2 = basis.gvectors.g2
    nonzero = g2 > 1e-12
    np.testing.assert_allclose(
        g2[nonzero] * v_g[nonzero], 4 * np.pi * n_g[nonzero], atol=1e-10
    )


def test_gaussian_charge_potential_matches_analytic(basis):
    """V of a periodic Gaussian matches erf(r/..)/r near the charge where
    image contributions are negligible in a large box."""
    from scipy.special import erf

    sigma = 0.8
    grid = basis.grid
    centre = np.array([5.0, 5.0, 5.0])
    delta = grid.cartesian_points - centre
    r2 = np.einsum("ij,ij->i", delta, delta)
    n = np.exp(-r2 / (2 * sigma**2)) / (2 * np.pi * sigma**2) ** 1.5
    v = hartree_potential(n, basis)
    # Compare at moderate r: both tails (alias images, erf saturation) small.
    probe = np.flatnonzero((r2 > 1.0) & (r2 < 4.0))
    r = np.sqrt(r2[probe])
    analytic = erf(r / (np.sqrt(2) * sigma)) / r
    # Periodic zero-mean convention: compare up to a constant offset.
    shift = (v[probe] - analytic).mean()
    np.testing.assert_allclose(v[probe] - shift, analytic, atol=0.02)


def test_energy_positive_for_nonuniform(basis, rng):
    n = rng.random(basis.n_r)
    assert hartree_energy(n, basis) > 0.0


def test_energy_zero_for_uniform(basis):
    n = np.full(basis.n_r, 0.3)
    assert hartree_energy(n, basis) == pytest.approx(0.0, abs=1e-12)


def test_energy_quadratic_scaling(basis, rng):
    n = rng.random(basis.n_r)
    e1 = hartree_energy(n, basis)
    e2 = hartree_energy(2 * n, basis)
    assert e2 == pytest.approx(4 * e1)


def test_batched_potential(basis, rng):
    fields = rng.random((3, basis.n_r))
    batched = hartree_potential(fields, basis)
    for i in range(3):
        np.testing.assert_allclose(batched[i], hartree_potential(fields[i], basis))
