"""Unit tests for the shared-memory slab layer behind the process backend."""

import os

import numpy as np
import pytest

from repro.parallel.shm import (
    SharedSlab,
    SlabArena,
    SlabRegistry,
    align,
    list_run_segments,
    reap_run_segments,
    run_prefix,
    segment_name,
)


@pytest.fixture()
def run_id():
    rid = f"test{os.getpid()}"
    yield rid
    reap_run_segments(rid)


class TestSharedSlab:
    def test_create_view_roundtrip(self, run_id):
        with SharedSlab.create(segment_name(run_id, 0, "t"), 4096) as slab:
            data = np.arange(12, dtype=np.float64).reshape(3, 4)
            slab.write(data, 64)
            view = slab.view((3, 4), np.float64, 64)
            np.testing.assert_array_equal(view, data)

    def test_attach_sees_owner_writes_zero_copy(self, run_id):
        name = segment_name(run_id, 0, "t")
        with SharedSlab.create(name, 1024) as owner:
            peer = SharedSlab.attach(name)
            owner.write(np.full(8, 7.0), 0)
            view = peer.view((8,), np.float64)
            np.testing.assert_array_equal(view, np.full(8, 7.0))
            # zero-copy: a later owner write is visible through the view
            owner.write(np.full(8, 9.0), 0)
            assert view[0] == 9.0
            peer.close()

    def test_view_bounds_checked(self, run_id):
        with SharedSlab.create(segment_name(run_id, 0, "t"), 128) as slab:
            with pytest.raises(ValueError):
                slab.view((100,), np.float64, 0)

    def test_unlink_idempotent_and_reaper_tolerant(self, run_id):
        slab = SharedSlab.create(segment_name(run_id, 0, "t"), 64)
        slab.close()
        slab.unlink()
        slab.unlink()  # second call is a no-op, not an error

    def test_align(self):
        assert align(0) == 0
        assert align(1) == 64
        assert align(64) == 64
        assert align(65) == 128


class TestSlabRegistry:
    def test_cleanup_unlinks_owned(self, run_id):
        reg = SlabRegistry()
        reg.create(segment_name(run_id, 0, "a"), 256)
        reg.create(segment_name(run_id, 0, "b"), 256)
        assert len(list_run_segments(run_id)) == 2
        reg.cleanup()
        assert list_run_segments(run_id) == []

    def test_attach_is_cached(self, run_id):
        reg = SlabRegistry()
        name = segment_name(run_id, 1, "a")
        owner = SlabRegistry()
        owner.create(name, 256)
        first = reg.attach(name)
        assert reg.attach(name) is first
        reg.cleanup()
        owner.cleanup()


class TestSlabArena:
    def test_regions_never_overwritten(self, run_id):
        reg = SlabRegistry()
        arena = SlabArena(reg, run_id, 0, "ird", min_bytes=256)
        a = np.arange(4, dtype=np.float64)
        refs = [arena.write_array(a + i) for i in range(64)]
        # Growth happened (several generations), yet every region still
        # reads back its original payload.
        assert len({seg for seg, _ in refs}) > 1
        for i, (seg, off) in enumerate(refs):
            view = reg.attach(seg).view((4,), np.float64, off)
            np.testing.assert_array_equal(view, a + i)
        reg.cleanup()
        assert list_run_segments(run_id) == []


class TestReaper:
    def test_reap_removes_only_this_run(self, run_id):
        other = f"{run_id}other"
        a = SharedSlab.create(segment_name(run_id, 0, "x"), 64)
        b = SharedSlab.create(segment_name(other, 0, "x"), 64)
        try:
            reaped = reap_run_segments(run_id)
            assert reaped == [segment_name(run_id, 0, "x")]
            assert list_run_segments(other) == [segment_name(other, 0, "x")]
        finally:
            a.close()
            b.close()
            b.unlink()
            reap_run_segments(other)

    def test_prefix_is_namespaced(self):
        assert run_prefix("abc").startswith("reprospmd_")
