"""Full (non-TDA) Casida equation — the paper's Eq. 1 with the B block.

The paper's Hamiltonian before the Tamm-Dancoff approximation is

    H = [[ D + 2 V_Hxc,   2 W_Hxc ],
         [-2 W_Hxc,      -D - 2 V_Hxc]]

For real orbitals and an adiabatic kernel the coupling blocks coincide:
``A = D + 2 K`` and ``B = 2 K`` with ``K = P^T f_Hxc P``, so the
non-Hermitian 2N_cv x 2N_cv problem collapses to Casida's Hermitian form

    Omega^2 F = D^{1/2} (D + 4 K) D^{1/2} F,

an ``N_cv x N_cv`` eigenproblem whose eigenvalues are the *squared*
excitation energies.  Crucially, the operator keeps the ISDF-factored
structure: ``M X = D^2 X + 4 D^{1/2} C^T (Vtilde (C (D^{1/2} X)))`` — so
the implicit machinery of Section 4.3 applies verbatim to the full
response problem, not just to the TDA.
"""

from __future__ import annotations

import numpy as np

from repro.core.casida import build_vhxc
from repro.core.isdf import ISDFDecomposition
from repro.core.isdf_hamiltonian import project_kernel
from repro.core.kernel import HxcKernel
from repro.core.pair_products import pair_energies
from repro.eigen.dense import dense_eigh
from repro.utils.linalg import symmetrize
from repro.utils.timers import TimerRegistry
from repro.utils.validation import require


def build_full_casida_matrix(
    psi_v: np.ndarray,
    eps_v: np.ndarray,
    psi_c: np.ndarray,
    eps_c: np.ndarray,
    kernel: HxcKernel,
    *,
    timers: TimerRegistry | None = None,
) -> np.ndarray:
    """Explicit Hermitian Casida matrix ``M = D^{1/2}(D + 4K)D^{1/2}``."""
    d = pair_energies(np.asarray(eps_v, float), np.asarray(eps_c, float))
    require((d > 0).all(), "full Casida needs positive transition energies")
    k = build_vhxc(psi_v, psi_c, kernel, timers=timers)
    sqrt_d = np.sqrt(d)
    m = 4.0 * (sqrt_d[:, None] * k * sqrt_d[None, :])
    m[np.diag_indices_from(m)] += d * d
    return symmetrize(m)


def solve_full_casida_dense(
    matrix: np.ndarray, n_excitations: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Diagonalize the Hermitian Casida matrix; returns ``(omega, F)``.

    ``omega = sqrt(eigenvalues)``; negative round-off eigenvalues are an
    instability signal and raised as an error (a ground state unstable
    against the excitation — possible with approximate kernels).
    """
    evals, evecs = dense_eigh(matrix)
    if evals[0] < -1e-10:
        raise ValueError(
            f"Casida instability: Omega^2 = {evals[0]:.3e} < 0 "
            "(triplet/singlet instability of the reference state)"
        )
    omega = np.sqrt(np.maximum(evals, 0.0))
    if n_excitations is not None:
        require(0 < n_excitations <= omega.shape[0], "bad n_excitations")
        return omega[:n_excitations], evecs[:, :n_excitations]
    return omega, evecs


class ImplicitFullCasidaOperator:
    """Matrix-free ``M = D^2 + 4 D^{1/2} C^T Vtilde C D^{1/2}``.

    Same O(N_mu^2) state as the TDA implicit operator — this extends the
    paper's Section 4.3 beyond the Tamm-Dancoff approximation.
    """

    def __init__(
        self,
        isdf: ISDFDecomposition,
        eps_v: np.ndarray,
        eps_c: np.ndarray,
        kernel: HxcKernel | None = None,
        *,
        vtilde: np.ndarray | None = None,
        timers: TimerRegistry | None = None,
    ) -> None:
        require(
            (kernel is None) != (vtilde is None),
            "pass exactly one of kernel or vtilde",
        )
        self.isdf = isdf
        d = pair_energies(np.asarray(eps_v, float), np.asarray(eps_c, float))
        require((d > 0).all(), "full Casida needs positive transition energies")
        self.diagonal_d = d
        self._sqrt_d = np.sqrt(d)
        if vtilde is None:
            vtilde = project_kernel(isdf, kernel, timers=timers)
        self.vtilde = vtilde
        self.n_apply = 0

    @property
    def n_pairs(self) -> int:
        return self.diagonal_d.shape[0]

    def apply(self, x: np.ndarray) -> np.ndarray:
        """``M @ X`` for blocks ``(N_cv, k)`` (1-D accepted)."""
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        require(x.shape[0] == self.n_pairs, "block/pair dimension mismatch")
        scaled = self._sqrt_d[:, None] * x
        coupled = self.isdf.apply_ct(self.vtilde @ self.isdf.apply_c(scaled))
        out = (self.diagonal_d**2)[:, None] * x + 4.0 * (
            self._sqrt_d[:, None] * coupled
        )
        self.n_apply += 1
        return out[:, 0] if squeeze else out

    __call__ = apply

    def preconditioner(self, residual: np.ndarray, theta: np.ndarray) -> np.ndarray:
        """Positive diagonal preconditioner ``|D^2 - theta|`` (Eq. 17 analogue
        for the squared-frequency operator)."""
        denom = np.maximum(
            np.abs((self.diagonal_d**2)[:, None] - theta[None, :]), 1e-4
        )
        return residual / denom

    def diagonal(self) -> np.ndarray:
        """Exact operator diagonal (for Davidson), cheap in factored form."""
        c = self.isdf.coefficients()
        corr = np.einsum("mi,mn,ni->i", c, self.vtilde, c, optimize=True)
        return self.diagonal_d**2 + 4.0 * self.diagonal_d * corr

    def materialize(self) -> np.ndarray:
        """Dense ``M`` for testing (O(N_cv^2) memory)."""
        c = self.isdf.coefficients()
        k = c.T @ (self.vtilde @ c)
        m = 4.0 * (self._sqrt_d[:, None] * k * self._sqrt_d[None, :])
        m = symmetrize(m)
        m[np.diag_indices_from(m)] += self.diagonal_d**2
        return m


def solve_full_casida_direct(
    psi_v: np.ndarray,
    eps_v: np.ndarray,
    psi_c: np.ndarray,
    eps_c: np.ndarray,
    kernel: HxcKernel,
) -> np.ndarray:
    """Reference solve of the *unreduced* 2N_cv x 2N_cv problem (Eq. 1).

    Diagonalizes the non-Hermitian block matrix directly and returns the
    positive excitation energies, ascending — used by the tests to verify
    the Hermitian reduction.
    """
    d = pair_energies(np.asarray(eps_v, float), np.asarray(eps_c, float))
    k = build_vhxc(psi_v, psi_c, kernel)
    a = 2.0 * k
    a[np.diag_indices_from(a)] += d
    b = 2.0 * k
    n = d.shape[0]
    big = np.block([[a, b], [-b, -a]])
    evals = np.linalg.eigvals(big)
    require(
        np.abs(evals.imag).max() < 1e-8,
        "complex Casida eigenvalues: reference state unstable",
    )
    positive = np.sort(evals.real[evals.real > 0])
    require(positive.size == n, "expected N_cv positive eigenvalues")
    return positive
