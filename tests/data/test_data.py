"""Tests for the static data tables."""

import pytest

from repro.data import (
    PAPER_SI4096_STRONG,
    PAPER_SPEEDUP_TABLE6,
    PAPER_TABLE3,
    PAPER_WEAK_SCALING,
    SOFTWARE_SURVEY,
)
from repro.data.calibration import paper_workload
from repro.data.software_survey import format_survey_table


class TestSurvey:
    def test_five_rows(self):
        assert len(SOFTWARE_SURVEY) == 5

    def test_this_work_row(self):
        row = SOFTWARE_SURVEY[-1]
        assert row.reference == "This work"
        assert row.n_atoms == 4096
        assert row.theory == "LR-TDDFT"
        assert row.basis_set == "PW"

    def test_this_work_has_largest_lrtddft_system(self):
        lrtddft = [r for r in SOFTWARE_SURVEY if r.theory == "LR-TDDFT"]
        assert max(r.n_atoms for r in lrtddft) == 4096

    def test_format_renders_all_rows(self):
        text = format_survey_table()
        for row in SOFTWARE_SURVEY:
            assert row.software in text


class TestPaperNumbers:
    def test_table3_speedups_motivate_kmeans(self):
        """QRCP/K-Means ratio grows with N_mu (6.3x -> 26.4x)."""
        ratios = [q / k for q, k in PAPER_TABLE3.values()]
        assert ratios == sorted(ratios)
        assert ratios[0] > 5

    def test_table6_average_speedup(self):
        """Section 6.5 quotes an average of 9.254x over Table 6."""
        speedups = [s for _, _, s in PAPER_SPEEDUP_TABLE6.values()]
        assert sum(speedups) / len(speedups) == pytest.approx(9.25, abs=0.01)

    def test_weak_scaling_monotone(self):
        times = list(PAPER_WEAK_SCALING.values())
        assert times == sorted(times)

    def test_si4096_efficiency_quote(self):
        """14.02 s at 8,192 -> 10.70 s at 12,288 cores = 87.34% efficiency."""
        eff = (PAPER_SI4096_STRONG[8192] / PAPER_SI4096_STRONG[12288]) / (
            12288 / 8192
        )
        assert eff == pytest.approx(0.8734, abs=1e-3)


class TestCalibration:
    def test_paper_workload_uses_table5_transition_space(self):
        w = paper_workload(512)
        assert w.n_v == 128
        assert w.n_c == 50

    def test_grid_grows_with_system(self):
        assert paper_workload(4096).n_r > paper_workload(512).n_r
