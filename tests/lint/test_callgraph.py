"""Call-graph construction: the resolution cases the project rules rely on.

Each test builds a tiny synthetic project (dict of path -> source) and
asserts on the edges :func:`repro.lint.callgraph.build_project` extracts.
The final class pins the *documented* limits: dynamic dispatch the graph
cannot see must land in ``Project.unresolved`` — silently dropping a call
is how an interprocedural rule develops false negatives nobody notices.
"""

import ast

import pytest

from repro.lint.callgraph import build_project, module_name_for_path
from repro.lint.engine import SourceModule

pytestmark = pytest.mark.lint


def project_from(files):
    modules = [
        SourceModule(path=path, text=text, tree=ast.parse(text))
        for path, text in files.items()
    ]
    return build_project(modules)


def callees(project, uid, kinds=("call",)):
    return {edge.callee for edge in project.edges(uid, kinds=kinds)}


class TestModuleNaming:
    def test_src_anchor_is_stripped(self):
        assert module_name_for_path("src/repro/lint/engine.py") == "repro.lint.engine"

    def test_init_maps_to_package(self):
        assert module_name_for_path("src/repro/lint/__init__.py") == "repro.lint"

    def test_paths_without_anchor_use_identifier_tail(self):
        # tmp-dir fixtures: the longest identifier-only tail becomes the
        # dotted name ("pytest-of-x" has a dash, so the tail starts after it).
        assert module_name_for_path("/tmp/pytest-of-x/pkg/mod.py") == "pkg.mod"


class TestIntraModuleResolution:
    def test_module_function_call(self):
        project = project_from({
            "src/app/a.py": "def helper():\n    pass\n\ndef run():\n    helper()\n",
        })
        assert "app.a:helper" in callees(project, "app.a:run")

    def test_bound_method_via_self(self):
        project = project_from({
            "src/app/a.py": (
                "class C:\n"
                "    def helper(self):\n"
                "        pass\n"
                "    def run(self):\n"
                "        self.helper()\n"
            ),
        })
        assert "app.a:C.helper" in callees(project, "app.a:C.run")

    def test_inherited_method_resolves_through_base(self):
        project = project_from({
            "src/app/a.py": (
                "class Base:\n"
                "    def helper(self):\n"
                "        pass\n"
                "class C(Base):\n"
                "    def run(self):\n"
                "        self.helper()\n"
            ),
        })
        assert "app.a:Base.helper" in callees(project, "app.a:C.run")

    def test_unbound_method_through_class_name(self):
        project = project_from({
            "src/app/a.py": (
                "class C:\n"
                "    def helper(self):\n"
                "        pass\n"
                "def run(obj):\n"
                "    C.helper(obj)\n"
            ),
        })
        assert "app.a:C.helper" in callees(project, "app.a:run")

    def test_annotated_attribute_type_resolves_method(self):
        project = project_from({
            "src/app/a.py": (
                "class Store:\n"
                "    def put(self):\n"
                "        pass\n"
                "class Server:\n"
                "    def __init__(self):\n"
                "        self.store = Store()\n"
                "    def handle(self):\n"
                "        self.store.put()\n"
            ),
        })
        assert "app.a:Store.put" in callees(project, "app.a:Server.handle")

    def test_decorated_callee_still_resolves(self):
        project = project_from({
            "src/app/a.py": (
                "import functools\n"
                "@functools.lru_cache(maxsize=None)\n"
                "def helper():\n"
                "    pass\n"
                "def run():\n"
                "    helper()\n"
            ),
        })
        assert "app.a:helper" in callees(project, "app.a:run")

    def test_nested_def_and_lambda_get_scoped_uids(self):
        project = project_from({
            "src/app/a.py": (
                "def outer():\n"
                "    def inner():\n"
                "        pass\n"
                "    f = lambda: None\n"
                "    return inner, f\n"
            ),
        })
        assert "app.a:outer.inner" in project.functions
        assert "app.a:outer.<lambda:4>" in project.functions

    def test_nested_def_reference_is_a_ref_edge(self):
        project = project_from({
            "src/app/a.py": (
                "def outer():\n"
                "    def inner():\n"
                "        pass\n"
                "    return inner\n"
            ),
        })
        assert "app.a:outer.inner" in callees(project, "app.a:outer", kinds=("ref",))


class TestCrossModuleResolution:
    def test_from_import_with_alias(self):
        project = project_from({
            "src/app/a.py": "def helper():\n    pass\n",
            "src/app/b.py": (
                "from app.a import helper as h\n"
                "def run():\n"
                "    h()\n"
            ),
        })
        assert "app.a:helper" in callees(project, "app.b:run")

    def test_module_import_with_alias(self):
        project = project_from({
            "src/app/a.py": "def helper():\n    pass\n",
            "src/app/b.py": (
                "import app.a as aa\n"
                "def run():\n"
                "    aa.helper()\n"
            ),
        })
        assert "app.a:helper" in callees(project, "app.b:run")

    def test_reexport_is_chased_to_the_definition(self):
        project = project_from({
            "src/app/impl.py": "def helper():\n    pass\n",
            "src/app/__init__.py": "from app.impl import helper\n",
            "src/other/b.py": (
                "from app import helper\n"
                "def run():\n"
                "    helper()\n"
            ),
        })
        assert "app.impl:helper" in callees(project, "other.b:run")


class TestIndirection:
    def test_functools_partial_records_a_ref_edge(self):
        project = project_from({
            "src/app/a.py": (
                "import functools\n"
                "def helper(x):\n"
                "    pass\n"
                "def run():\n"
                "    return functools.partial(helper, 1)\n"
            ),
        })
        assert "app.a:helper" in callees(project, "app.a:run", kinds=("ref",))

    def test_dict_dispatch_table_yields_call_edges(self):
        project = project_from({
            "src/app/a.py": (
                "def north():\n"
                "    pass\n"
                "def south():\n"
                "    pass\n"
                "TABLE = {'n': north, 's': south}\n"
                "def run(key):\n"
                "    TABLE[key]()\n"
            ),
        })
        got = callees(project, "app.a:run")
        assert {"app.a:north", "app.a:south"} <= got

    def test_find_functions_matches_qualname_suffix(self):
        project = project_from({
            "src/app/a.py": (
                "class CalculationRequest:\n"
                "    def to_dict(self):\n"
                "        pass\n"
            ),
        })
        found = project.find_functions("CalculationRequest.to_dict")
        assert [fn.uid for fn in found] == ["app.a:CalculationRequest.to_dict"]


class TestDocumentedLimits:
    """Dynamic dispatch the graph cannot resolve must be *recorded*, not
    silently dropped — ``Project.unresolved`` is the honesty ledger the
    docs point at."""

    def test_duck_typed_parameter_is_unresolved(self):
        project = project_from({
            "src/app/a.py": "def run(comm):\n    comm.allreduce(1)\n",
        })
        leaves = {leaf for leaf, _ in project.unresolved.get("app.a:run", [])}
        assert "allreduce" in leaves
        assert callees(project, "app.a:run") == set()

    def test_getattr_dispatch_is_unresolved(self):
        project = project_from({
            "src/app/a.py": (
                "def helper():\n"
                "    pass\n"
                "def run(name):\n"
                "    getattr(__import__('app.a'), name)()\n"
            ),
        })
        assert "app.a:helper" not in callees(project, "app.a:run")

    def test_monkey_patched_call_does_not_invent_an_edge(self):
        project = project_from({
            "src/app/a.py": (
                "class C:\n"
                "    def helper(self):\n"
                "        pass\n"
                "def run(c):\n"
                "    c.helper = lambda: None\n"
                "    c.helper()\n"
            ),
        })
        # ``c`` is untyped: the call lands in unresolved, never on C.helper.
        assert "app.a:C.helper" not in callees(project, "app.a:run")
        leaves = {leaf for leaf, _ in project.unresolved.get("app.a:run", [])}
        assert "helper" in leaves
