"""Suppression hygiene: the ``--check-suppressions`` staleness audit.

A waiver that outlives its bug is worse than no waiver — it hides the
*next* finding on that line too.  ``check_suppressions`` runs every rule
with suppressions recorded but not applied and reports entries that no
longer match a live finding as ``stale-suppression`` findings; these tests
pin the live/stale boundary, the file-level and ``all`` scopes, and the
tokenizer detail that comment syntax inside a string is not a suppression.
"""

import pytest

from repro.lint import check_suppressions, lint_source

pytestmark = pytest.mark.lint

HOT_ALLOC_LINE = "    a = np.zeros(3)"
HOT_PREFIX = (
    "from repro.utils import hot_kernel\n"
    "import numpy as np\n"
    "@hot_kernel\n"
    "def kernel(x):\n"
)


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestStaleDetection:
    def test_live_suppression_is_not_reported(self, tmp_path):
        path = write(
            tmp_path,
            "live.py",
            HOT_PREFIX
            + HOT_ALLOC_LINE
            + "  # repro-lint: disable=no-alloc-in-hot -- fixture\n"
            "    return a + x\n",
        )
        assert check_suppressions([path]) == []

    def test_stale_line_suppression_is_reported(self, tmp_path):
        path = write(
            tmp_path,
            "stale.py",
            HOT_PREFIX
            + "    return x  # repro-lint: disable=no-alloc-in-hot -- fixed long ago\n",
        )
        findings = check_suppressions([path])
        assert [f.rule for f in findings] == ["stale-suppression"]
        assert "no longer matches" in findings[0].message
        assert "'no-alloc-in-hot'" in findings[0].message

    def test_suppression_of_a_different_rule_is_stale(self, tmp_path):
        # The line has a live finding, but for another rule: still stale.
        path = write(
            tmp_path,
            "wrong_rule.py",
            HOT_PREFIX
            + HOT_ALLOC_LINE
            + "  # repro-lint: disable=no-blind-except -- wrong waiver\n"
            "    return a + x\n",
        )
        findings = check_suppressions([path])
        assert [f.rule for f in findings] == ["stale-suppression"]

    def test_file_level_suppression_live_then_stale(self, tmp_path):
        waiver = "# repro-lint: disable=no-alloc-in-hot -- file-wide fixture\n"
        live = write(
            tmp_path, "live.py",
            waiver + HOT_PREFIX + HOT_ALLOC_LINE + "\n    return a + x\n",
        )
        assert check_suppressions([live]) == []
        stale = write(tmp_path, "stale.py", waiver + HOT_PREFIX + "    return x\n")
        findings = check_suppressions([stale])
        assert [f.rule for f in findings] == ["stale-suppression"]
        assert "file-level" in findings[0].message

    def test_all_waiver_is_live_against_any_finding(self, tmp_path):
        path = write(
            tmp_path,
            "blanket.py",
            HOT_PREFIX
            + HOT_ALLOC_LINE
            + "  # repro-lint: disable=all -- kitchen-sink fixture\n"
            "    return a + x\n",
        )
        assert check_suppressions([path]) == []

    def test_all_waiver_with_no_findings_is_stale(self, tmp_path):
        path = write(
            tmp_path,
            "blanket.py",
            "x = 1  # repro-lint: disable=all -- nothing here\n",
        )
        findings = check_suppressions([path])
        assert [f.rule for f in findings] == ["stale-suppression"]

    def test_project_rule_finding_keeps_a_suppression_live(self, tmp_path):
        path = write(
            tmp_path,
            "proj.py",
            "def finalize(comm):\n"
            "    comm.barrier()\n"
            "def step(comm, rank):\n"
            "    if rank == 0:\n"
            "        finalize(comm)"
            "  # repro-lint: disable=transitive-collective-in-branch -- demo\n",
        )
        assert check_suppressions([path]) == []


class TestSuppressionParsing:
    def test_comment_syntax_inside_a_string_is_not_a_suppression(self):
        src = (
            HOT_PREFIX
            + '    doc = "# repro-lint: disable=no-alloc-in-hot -- not a comment"\n'
            + HOT_ALLOC_LINE + "\n"
            "    return a + x + len(doc)\n"
        )
        findings = lint_source(src)
        assert [f.rule for f in findings] == ["no-alloc-in-hot"]

    def test_comment_syntax_inside_a_docstring_is_not_a_suppression(self):
        src = (
            HOT_PREFIX
            + '    """# repro-lint: disable=no-alloc-in-hot -- docstring"""\n'
            + HOT_ALLOC_LINE + "\n"
            "    return a + x\n"
        )
        findings = lint_source(src)
        assert [f.rule for f in findings] == ["no-alloc-in-hot"]

    def test_missing_reason_is_its_own_finding(self):
        src = (
            HOT_PREFIX
            + HOT_ALLOC_LINE + "  # repro-lint: disable=no-alloc-in-hot\n"
            "    return a + x\n"
        )
        rules = [f.rule for f in lint_source(src)]
        assert "suppression-without-reason" in rules

    def test_stale_audit_still_reports_parse_errors(self, tmp_path):
        path = write(tmp_path, "broken.py", "def broken(:\n")
        findings = check_suppressions([path])
        assert [f.rule for f in findings] == ["syntax-error"]
