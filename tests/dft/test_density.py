"""Tests for density construction and the atomic guess."""

import numpy as np
import pytest

from repro.atoms import silicon_primitive_cell, water_molecule
from repro.constants import ANGSTROM_TO_BOHR
from repro.dft import atomic_guess_density, density_from_orbitals
from repro.pw import PlaneWaveBasis
from repro.utils.rng import default_rng


class TestDensityFromOrbitals:
    def test_integrates_to_electron_count(self):
        basis = PlaneWaveBasis(silicon_primitive_cell(), ecut=6.0)
        rng = default_rng(0)
        coeffs = basis.random_coefficients(3, rng)
        psi = basis.to_real(coeffs)
        occ = np.array([2.0, 2.0, 1.0])
        n = density_from_orbitals(psi, occ, basis.grid.dv)
        assert n.sum() * basis.grid.dv == pytest.approx(5.0)

    def test_nonnegative(self):
        basis = PlaneWaveBasis(silicon_primitive_cell(), ecut=6.0)
        psi = basis.to_real(basis.random_coefficients(2, default_rng(1)))
        n = density_from_orbitals(psi, np.array([2.0, 2.0]))
        assert (n >= 0).all()

    def test_mismatched_occupations_raise(self):
        with pytest.raises(ValueError, match="occupations"):
            density_from_orbitals(np.ones((2, 10)), np.array([2.0]))

    def test_normalization_check_fires(self):
        """Denormalized orbitals + dv validation must raise."""
        basis = PlaneWaveBasis(silicon_primitive_cell(), ecut=6.0)
        psi = basis.to_real(basis.random_coefficients(1, default_rng(2))) * 2.0
        with pytest.raises(ValueError, match="integrates"):
            density_from_orbitals(psi, np.array([2.0]), basis.grid.dv)


class TestAtomicGuess:
    def test_integrates_to_valence_count_silicon(self):
        basis = PlaneWaveBasis(silicon_primitive_cell(), ecut=8.0)
        n = atomic_guess_density(basis)
        assert n.sum() * basis.grid.dv == pytest.approx(8.0)

    def test_integrates_to_valence_count_water(self):
        basis = PlaneWaveBasis(water_molecule(box=7 * ANGSTROM_TO_BOHR), ecut=8.0)
        n = atomic_guess_density(basis)
        assert n.sum() * basis.grid.dv == pytest.approx(8.0)

    def test_nonnegative(self):
        basis = PlaneWaveBasis(silicon_primitive_cell(), ecut=8.0)
        assert (atomic_guess_density(basis) >= 0).all()

    def test_peaks_near_atoms(self):
        cell = water_molecule(box=8 * ANGSTROM_TO_BOHR)
        basis = PlaneWaveBasis(cell, ecut=8.0)
        n = atomic_guess_density(basis)
        peak = basis.grid.cartesian_points[np.argmax(n)]
        oxygen = cell.cartesian_positions[0]
        assert np.linalg.norm(peak - oxygen) < 1.0

    def test_empty_cell_rejected(self):
        from repro.pw import UnitCell

        basis = PlaneWaveBasis(UnitCell.cubic(8.0), ecut=6.0)
        with pytest.raises(ValueError, match="empty cell"):
            atomic_guess_density(basis)
