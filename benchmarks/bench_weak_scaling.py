"""Paper Section 6.4: weak scaling of the optimized code at 1,024 cores.

The paper reports 3.58 / 10.23 / 26.95 / 35.58 / 41.89 seconds for Si_512
through Si_4096 and notes "this result suits our computational complexity
well".  The bench regenerates the series with the calibrated model and
asserts the shape: monotone growth, roughly linear in atom count (the
grid-dominated regime), with the size ratios within 2x of the paper's.
"""

import numpy as np
import pytest

from repro.data.calibration import (
    CALIBRATED_SPEC,
    WEAK_SCALING_CORES,
    paper_workload,
)
from repro.data.paper_reference import PAPER_WEAK_SCALING
from repro.perf import weak_scaling_series

SYSTEMS = (512, 1000, 1728, 2744, 4096)


def test_weak_scaling(benchmark, save_table):
    workloads = [paper_workload(n) for n in SYSTEMS]

    def run():
        return weak_scaling_series(
            workloads, WEAK_SCALING_CORES, CALIBRATED_SPEC
        )

    series = benchmark(run)
    totals = [t.total for t in series]

    lines = [
        f"Section 6.4 — weak scaling at {WEAK_SCALING_CORES} cores "
        "(optimized version)",
        "",
        f"{'system':<8s} {'model (s)':>10s} {'paper (s)':>10s} "
        f"{'model ratio':>12s} {'paper ratio':>12s}",
    ]
    base_paper = PAPER_WEAK_SCALING["Si512"]
    for n, t in zip(SYSTEMS, totals):
        label = f"Si{n}"
        t_ref = PAPER_WEAK_SCALING[label]
        lines.append(
            f"{label:<8s} {t:10.2f} {t_ref:10.2f} "
            f"{t / totals[0]:12.2f} {t_ref / base_paper:12.2f}"
        )
    exponent = np.polyfit(np.log(SYSTEMS), np.log(totals), 1)[0]
    paper_exp = np.polyfit(
        np.log(SYSTEMS), np.log([PAPER_WEAK_SCALING[f"Si{n}"] for n in SYSTEMS]), 1
    )[0]
    lines += [
        "",
        f"growth exponent t ~ N^x: model x = {exponent:.2f}, "
        f"paper x = {paper_exp:.2f}",
        "(absolute model times sit below the paper's by a near-constant",
        " factor — per-process overheads of the 1-core-per-rank runs that",
        " the node-granularity alpha-beta model does not carry; see",
        " EXPERIMENTS.md)",
    ]
    save_table("weak_scaling", "\n".join(lines))

    assert all(a < b for a, b in zip(totals, totals[1:]))
    # Same growth regime as the paper (t ~ N^1.0-1.3).
    assert abs(exponent - paper_exp) < 0.5
    # Size ratios within ~2x of the paper's (the paper's own series is
    # noisy: its local growth exponent swings between 0.6 and 1.8).
    for n, t in zip(SYSTEMS, totals):
        model_ratio = t / totals[0]
        paper_ratio = PAPER_WEAK_SCALING[f"Si{n}"] / base_paper
        assert 0.4 < model_ratio / paper_ratio < 2.5
