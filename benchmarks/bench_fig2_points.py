"""Paper Figure 2: K-Means interpolation points track the wavefunctions.

Figure 2 overlays 15 K-Means-chosen interpolation points on a projected
excitation wavefunction: the points land where the orbital-pair weight
lives.  The bench reproduces that on the real H2O ground state and asserts
it quantitatively: the average weight at the chosen points is far above the
grid average, and the points cluster around the molecule.
"""

import numpy as np
import pytest

from repro.core import pair_weights, select_points_kmeans
from repro.utils.rng import default_rng


def test_fig2_points_follow_weight(benchmark, water_real_state, save_table):
    gs = water_real_state
    psi_v, _, psi_c, _ = gs.select_transition_space()
    grid_points = gs.basis.grid.cartesian_points
    n_mu = 15  # the paper's Figure 2 point count

    result = benchmark(
        lambda: select_points_kmeans(
            psi_v, psi_c, n_mu, grid_points=grid_points, rng=default_rng(0)
        )
    )
    weights = pair_weights(psi_v, psi_c)
    chosen = grid_points[result.indices]
    oxygen = gs.basis.cell.cartesian_positions[0]
    distances = np.linalg.norm(chosen - oxygen, axis=1)
    box = gs.basis.cell.lengths[0]

    mean_chosen = weights[result.indices].mean()
    mean_grid = weights.mean()

    lines = [
        "Figure 2 — 15 K-Means interpolation points on H2O",
        "",
        f"mean pair weight at chosen points: {mean_chosen:.3e}",
        f"mean pair weight over the grid:    {mean_grid:.3e}",
        f"enrichment factor:                 {mean_chosen / mean_grid:.1f}x",
        f"max point distance from O:         {distances.max():.2f} Bohr "
        f"(box edge {box:.1f} Bohr)",
        f"candidate points after pruning:    {result.candidate_indices.size} "
        f"of {gs.basis.n_r}",
    ]
    save_table("fig2_points", "\n".join(lines))

    # Points sit in high-weight territory...
    assert mean_chosen > 10.0 * mean_grid
    # ...and cluster around the molecule, not the empty box.
    assert distances.max() < 0.45 * box
    assert len(np.unique(result.indices)) == n_mu
