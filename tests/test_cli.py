"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_tddft_defaults(self):
        args = build_parser().parse_args(["tddft"])
        assert args.system == "si2"
        assert args.method == "implicit-kmeans-isdf-lobpcg"
        assert not args.full_casida

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scf", "--system", "uranium"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "implicit-kmeans-isdf-lobpcg" in out
        assert "si2" in out

    def test_scf_si2(self, capsys):
        assert main(["scf", "--system", "si2", "--ecut", "8", "--bands", "6"]) == 0
        out = capsys.readouterr().out
        assert "converged: True" in out
        assert "gap:" in out

    def test_tddft_si2(self, capsys):
        assert main([
            "tddft", "--system", "si2", "--ecut", "8", "--bands", "8",
            "-k", "2", "--method", "naive",
        ]) == 0
        out = capsys.readouterr().out
        assert "singlet excitations (TDA" in out

    def test_tddft_triplet_full(self, capsys):
        assert main([
            "tddft", "--system", "si2", "--ecut", "8", "--bands", "8",
            "-k", "2", "--triplet", "--full-casida", "--method", "naive",
        ]) == 0
        out = capsys.readouterr().out
        assert "triplet excitations (full Casida" in out

    @pytest.mark.parametrize("figure", ["fig7", "fig8", "weak", "table6"])
    def test_scaling_tables(self, capsys, figure):
        assert main(["scaling", "--figure", figure]) == 0
        assert capsys.readouterr().out.strip()

    def test_rt_short_run(self, capsys):
        assert main([
            "rt", "--system", "h2", "--ecut", "6", "--bands", "3",
            "--steps", "30", "--dt", "0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "norm drift" in out


class TestResilienceFlags:
    @pytest.mark.parametrize("command", ["scf", "tddft", "rt"])
    def test_flags_parse(self, command):
        args = build_parser().parse_args([
            command, "--checkpoint-dir", "/tmp/ck",
            "--checkpoint-every", "3", "--restart",
        ])
        assert args.checkpoint_dir == "/tmp/ck"
        assert args.checkpoint_every == 3
        assert args.restart

    def test_restart_requires_checkpoint_dir(self):
        with pytest.raises(SystemExit):
            main(["scf", "--system", "si2", "--restart"])

    def test_scf_writes_snapshots(self, capsys, tmp_path):
        assert main([
            "scf", "--system", "si2", "--ecut", "8", "--bands", "6",
            "--checkpoint-dir", str(tmp_path),
        ]) == 0
        assert "converged: True" in capsys.readouterr().out
        assert list(tmp_path.glob("scf-*.npz"))

    def test_scf_restart_from_snapshots(self, capsys, tmp_path):
        base = [
            "scf", "--system", "si2", "--ecut", "8", "--bands", "6",
            "--checkpoint-dir", str(tmp_path),
        ]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert main(base + ["--restart"]) == 0
        second = capsys.readouterr().out
        assert first.splitlines()[-1] == second.splitlines()[-1]

    def test_rt_writes_snapshots(self, capsys, tmp_path):
        assert main([
            "rt", "--system", "h2", "--ecut", "6", "--bands", "3",
            "--steps", "10", "--dt", "0.2",
            "--checkpoint-dir", str(tmp_path),
        ]) == 0
        assert "norm drift" in capsys.readouterr().out
        assert list(tmp_path.glob("rt-*.npz"))


class TestXYZInput:
    def test_scf_from_xyz_file(self, capsys, tmp_path):
        from repro.atoms import silicon_primitive_cell, write_xyz

        path = write_xyz(silicon_primitive_cell(), tmp_path / "si.xyz")
        assert main([
            "scf", "--xyz", str(path), "--ecut", "6", "--bands", "6",
        ]) == 0
        assert "converged: True" in capsys.readouterr().out
