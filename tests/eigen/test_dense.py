"""Tests for the dense SYEVD stand-in."""

import numpy as np
import pytest

from repro.eigen import dense_eigh, dense_lowest


def test_matches_numpy(rng):
    a = rng.standard_normal((30, 30))
    a = a + a.T
    evals, evecs = dense_eigh(a)
    np.testing.assert_allclose(evals, np.linalg.eigvalsh(a), atol=1e-12)
    np.testing.assert_allclose(evecs.T @ evecs, np.eye(30), atol=1e-12)


def test_symmetrizes_slightly_asymmetric_input(rng):
    a = rng.standard_normal((10, 10))
    a = a + a.T + 1e-13 * rng.standard_normal((10, 10))
    evals, _ = dense_eigh(a)
    assert np.isrealobj(evals)


def test_non_square_rejected():
    with pytest.raises(ValueError):
        dense_eigh(np.zeros((3, 4)))


def test_lowest_truncates(rng):
    a = rng.standard_normal((20, 20))
    a = a + a.T
    evals, evecs = dense_lowest(a, 5)
    assert evals.shape == (5,)
    assert evecs.shape == (20, 5)
    np.testing.assert_allclose(evals, np.linalg.eigvalsh(a)[:5], atol=1e-12)


@pytest.mark.parametrize("nev", [0, 21])
def test_lowest_bad_nev(rng, nev):
    a = np.eye(20)
    with pytest.raises(ValueError):
        dense_lowest(a, nev)


def test_eigenresult_validation():
    from repro.eigen import EigenResult

    with pytest.raises(ValueError):
        EigenResult(
            eigenvalues=np.zeros(3),
            eigenvectors=np.zeros((5, 2)),
            iterations=1,
            residual_norms=np.zeros(3),
            converged=True,
        )
