#!/usr/bin/env python
"""Twisted-bilayer-graphene ground/excited-state DOS (paper Figure 9).

The paper studies 1,180-atom magic-angle twisted bilayer graphene (MATBG):
ground-state DOS at interlayer distances D = 2.6 and 4.0 Angstrom (strongly
coupled layers trap localized states at the Fermi level; decoupled layers
do not) and the DOS of the low-lying excitation energies.

That system needs 12,288 Cori cores; this example runs the identical code
path on the smallest commensurate twisted bilayer (28 atoms at 21.8
degrees) — or, with --bilayer, on the 4-atom AB bilayer for a ~1 minute
run.  The physics probed is the same: interlayer-distance dependence of the
DOS near the Fermi level, and the excitation DOS from LR-TDDFT.

    python examples/matbg_dos.py --bilayer      # fast (4 atoms)
    python examples/matbg_dos.py                # 28-atom twisted cell
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import LRTDDFTSolver, graphene_bilayer, run_scf, twisted_bilayer_graphene
from repro.analysis import density_of_states, excitation_dos
from repro.analysis.dos import fermi_level_estimate
from repro.constants import ANGSTROM_TO_BOHR, HARTREE_TO_EV


def ascii_rows(grid_ev, dos, width=56):
    scale = max(dos.max(), 1e-300)
    cols = np.linspace(0, len(grid_ev) - 1, width).astype(int)
    bar = "".join(
        " .:-=+*#@"[min(8, int(8 * dos[c] / scale))] for c in cols
    )
    return bar


def run_system(cell, label, ecut, n_extra_bands, smearing):
    print(f"\n--- {label}: {cell.n_atoms} C atoms ---")
    t0 = time.perf_counter()
    n_occ = sum(2 for _ in cell.species)  # 4 valence e / C, 2 e per band
    gs = run_scf(
        cell,
        ecut=ecut,
        n_bands=n_occ + n_extra_bands,
        tol=1e-6,
        smearing_width=smearing,
        max_iter=80,
        seed=0,
    )
    print(f"SCF {'converged' if gs.converged else 'NOT converged'} "
          f"in {time.perf_counter() - t0:.1f} s")
    return gs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bilayer", action="store_true",
                        help="use the 4-atom AB bilayer (fast)")
    parser.add_argument("--folded", action="store_true",
                        help="3x3 bilayer supercell (36 atoms): folds the "
                             "Dirac point K onto Gamma so metallic states "
                             "appear at E_F, like the paper's Figure 9a")
    parser.add_argument("--ecut", type=float, default=None)
    args = parser.parse_args()

    if args.bilayer:
        builder = lambda d: graphene_bilayer(interlayer_distance=d)  # noqa: E731
        ecut = args.ecut or 12.0
        n_extra = 6
    elif args.folded:
        builder = lambda d: graphene_bilayer(  # noqa: E731
            interlayer_distance=d
        ).supercell((3, 3, 1))
        ecut = args.ecut or 8.0
        n_extra = 16
    else:
        builder = lambda d: twisted_bilayer_graphene(1, 2, interlayer_distance=d)  # noqa: E731
        ecut = args.ecut or 8.0
        n_extra = 14

    distances = {
        "D = 2.6 A (coupled)": 2.6 * ANGSTROM_TO_BOHR,
        "D = 4.0 A (decoupled)": 4.0 * ANGSTROM_TO_BOHR,
    }

    states = {}
    for label, d in distances.items():
        cell = builder(d)
        states[label] = run_system(cell, label, ecut, n_extra, smearing=0.01)

    print("\n=== Ground-state DOS near the Fermi level (Figure 9a analogue) ===")
    for label, gs in states.items():
        e_f = fermi_level_estimate(gs.energies, gs.occupations)
        grid = np.linspace(e_f - 0.3, e_f + 0.3, 400)
        dos = density_of_states(gs.energies, grid, broadening=0.015)
        grid_ev = (grid - e_f) * HARTREE_TO_EV
        print(f"{label:<24s} |{ascii_rows(grid_ev, dos)}|")
        window = np.abs(grid - e_f) < 0.05
        weight = np.trapezoid(dos[window], grid[window])
        print(f"{'':<24s}  DOS weight within 1.4 eV of E_F: {weight:.2f} "
              f"states; Gamma gap {gs.homo_lumo_gap() * HARTREE_TO_EV:.2f} eV")
    print(f"{'':<24s}  {-0.3 * HARTREE_TO_EV:+.1f} eV{' ' * 40}"
          f"{0.3 * HARTREE_TO_EV:+.1f} eV (relative to E_F)")

    print("\n=== Excitation DOS (Figure 9b analogue), coupled system ===")
    gs = states["D = 2.6 A (coupled)"]
    solver = LRTDDFTSolver(gs, seed=0)
    n_exc = min(24, solver.n_pairs)
    res = solver.solve("implicit-kmeans-isdf-lobpcg", n_excitations=n_exc, tol=1e-7)
    grid = np.linspace(0.0, max(res.energies.max() * 1.2, 0.02), 300)
    xdos = excitation_dos(res.energies, grid, broadening=0.01)
    print(f"lowest excitation: {res.energies[0] * HARTREE_TO_EV:.3f} eV; "
          f"{(res.energies < 0.5 / HARTREE_TO_EV).sum()} excitations below 0.5 eV")
    print(f"excitation DOS     |{ascii_rows(grid * HARTREE_TO_EV, xdos)}|")
    print(f"                    0 eV{' ' * 44}"
          f"{grid[-1] * HARTREE_TO_EV:.1f} eV")


if __name__ == "__main__":
    main()
