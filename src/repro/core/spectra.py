"""Excited-state observables: transition dipoles and oscillator strengths.

Used by the MATBG application (Figure 9b's excitation DOS) and by the
examples to turn Casida eigenpairs into an absorption spectrum.

Dipoles use the position operator relative to the cell centre with
minimum-image wrapping — adequate for molecules in boxes and for the
qualitative periodic spectra the paper reports (a full periodic treatment
would use the velocity gauge).
"""

from __future__ import annotations

import numpy as np

from repro.pw.basis import PlaneWaveBasis
from repro.utils.validation import require


def transition_dipoles(
    psi_v: np.ndarray, psi_c: np.ndarray, basis: PlaneWaveBasis
) -> np.ndarray:
    """``d[(v c), alpha] = int psi_v(r) r_alpha psi_c(r) dr``.

    Returns ``(N_cv, 3)`` in the library's pair ordering.
    """
    grid = basis.grid
    centre = 0.5 * np.ones(3) @ basis.cell.lattice
    frac = grid.fractional_points
    # Minimum-image displacement from the cell centre.
    wrapped = (frac - 0.5) - np.round(frac - 0.5)
    coords = wrapped @ basis.cell.lattice + centre - centre  # (N_r, 3), centred
    n_v, n_c = psi_v.shape[0], psi_c.shape[0]
    dip = np.einsum("vr,ra,cr->vca", psi_v, coords, psi_c, optimize=True) * grid.dv
    return dip.reshape(n_v * n_c, 3)


def oscillator_strengths(
    energies: np.ndarray,
    wavefunctions: np.ndarray,
    dipoles: np.ndarray,
) -> np.ndarray:
    """Singlet TDA oscillator strengths ``f_n = (4/3) w_n |sum_vc X_vc d_vc|^2``.

    Parameters
    ----------
    energies:
        ``(k,)`` excitation energies.
    wavefunctions:
        ``(N_cv, k)`` Casida eigenvectors (columns normalized).
    dipoles:
        ``(N_cv, 3)`` transition dipoles from :func:`transition_dipoles`.
    """
    require(
        wavefunctions.shape[0] == dipoles.shape[0],
        "wavefunction/dipole pair-space mismatch",
    )
    amplitude = wavefunctions.T @ dipoles  # (k, 3)
    return (4.0 / 3.0) * np.asarray(energies) * np.einsum(
        "ka,ka->k", amplitude, amplitude
    )


def lorentzian_spectrum(
    energies: np.ndarray,
    strengths: np.ndarray,
    omega: np.ndarray,
    broadening: float = 0.005,
) -> np.ndarray:
    """Broadened absorption spectrum ``S(w)`` on the frequency grid."""
    require(broadening > 0.0, "broadening must be positive")
    delta = omega[:, None] - np.asarray(energies)[None, :]
    lorentz = (broadening / np.pi) / (delta * delta + broadening * broadening)
    return lorentz @ np.asarray(strengths)
