"""Structure sequences for cross-calculation batching.

A *batch* is an ordered sequence of related unit cells — consecutive MD
snapshots, phonon displacements, a screening set — run through the full
SCF -> K-Means/ISDF -> LR-TDDFT pipeline with warm starts carried from
frame to frame (:mod:`repro.batch.engine`).

:func:`perturbed_trajectory` generates the phonon-like synthetic
trajectories used by the tests and benchmarks: every atom oscillates
around its reference position with a fixed per-atom random amplitude and
phase, so consecutive frames are smoothly related (the regime where
warm-starting pays) while the whole sequence explores a genuine range of
geometries.  The lattice is common to all frames, which keeps the
plane-wave basis and FFT grid — and therefore every cached FFT plan —
shared across the batch.

:func:`frame_fingerprint` hashes the full physical and numerical identity
of one frame; the batch engine uses it to detect *identical* repeated
structures and replay their results bit-identically instead of recomputing.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.pw.cell import UnitCell
from repro.utils.validation import require

__all__ = ["frame_fingerprint", "perturbed_trajectory"]


def perturbed_trajectory(
    cell: UnitCell,
    n_frames: int,
    *,
    amplitude: float = 0.02,
    period: float = 16.0,
    seed: int = 0,
) -> list[UnitCell]:
    """Phonon-like synthetic trajectory around a reference cell.

    Atom ``a`` moves as ``r_a(t) = r_a + A_a sin(2 pi t / period + phi_a)``
    with ``A_a ~ amplitude * N(0, 1)`` per Cartesian direction and a random
    phase, for ``t = 0 .. n_frames - 1``.  Frame 0 is *not* the reference
    cell (the sine starts at the random phase), so no frame is privileged.

    Parameters
    ----------
    amplitude:
        Displacement scale in Bohr.  The default 0.02 gives consecutive-
        frame displacements typical of few-femtosecond MD sampling.
    period:
        Oscillation period in frames; larger = smoother trajectory.
    seed:
        Seeds the per-atom amplitudes and phases (the trajectory is a
        deterministic function of ``(cell, n_frames, amplitude, period,
        seed)``).
    """
    require(n_frames >= 1, f"n_frames must be >= 1, got {n_frames}")
    require(amplitude >= 0, f"amplitude must be >= 0, got {amplitude}")
    require(period > 0, f"period must be positive, got {period}")
    n_atoms = len(cell.species)
    require(n_atoms > 0, "cell must contain at least one atom")

    rng = np.random.default_rng(seed)
    amp = amplitude * rng.standard_normal((n_atoms, 3))
    phase = 2.0 * np.pi * rng.random((n_atoms, 3))
    inv_lattice = np.linalg.inv(cell.lattice)

    frames = []
    for t in range(n_frames):
        disp = amp * np.sin(2.0 * np.pi * t / period + phase)
        fractional = (cell.fractional_positions + disp @ inv_lattice) % 1.0
        frames.append(UnitCell(cell.lattice, cell.species, fractional))
    return frames


def frame_fingerprint(cell: UnitCell, *payloads) -> str:
    """Hex digest identifying one frame's full calculation input.

    Hashes the exact float bytes of the lattice and positions, the species
    tuple, and any extra JSON-serializable payloads (config dicts).  Two
    frames with equal fingerprints produce bit-identical results, which is
    what licenses the batch engine's identical-frame replay.
    """
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(cell.lattice, dtype=float).tobytes())
    h.update("|".join(cell.species).encode())
    h.update(np.ascontiguousarray(cell.fractional_positions, dtype=float).tobytes())
    for payload in payloads:
        h.update(json.dumps(payload, sort_keys=True, default=repr).encode())
    return h.hexdigest()
