"""The unified calculation request: one typed object for every entry point.

A :class:`CalculationRequest` describes a complete calculation — *what* to
compute (``kind``), *on which* structure(s), and *how* (the nested frozen
config objects plus an optional :class:`~repro.api.config.ResilienceConfig`).
It replaces the four parallel facade entry points (``run_scf`` /
``solve_tddft`` / ``run_rt`` / ``run_batch``), which survive as thin
deprecation shims that build a request and execute it.

The request's **canonical serialization is its identity**: ``to_dict()``
produces a nested tree of primitives (configs via their exact dict
round-trip, structures as lattice/species/position lists), and
:meth:`CalculationRequest.cache_key` hashes the sorted-key JSON encoding of
that tree.  Python's JSON float encoding uses ``repr`` (shortest
round-trip), so the key is invariant under serialize/deserialize cycles and
under dict-key ordering, and two requests that would produce bit-identical
results hash equal while any physical or numerical difference — a perturbed
atom, a changed tolerance — changes the key.  The facade, the job server
(:mod:`repro.serve`) and the result store all use this one hash path.

Execution:

* :meth:`CalculationRequest.compute` — synchronous, in-process, no cache:
  exactly what the legacy entry points did.
* :meth:`CalculationRequest.submit` — hand the request to a
  :class:`repro.serve.CalculationServer` (the process-default one when none
  is given) and get a :class:`repro.serve.JobHandle` back; repeat requests
  are served from the content-addressed result store and near-duplicates
  warm-start from the nearest cached ground state.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

from repro.api.config import (
    BatchConfig,
    ResilienceConfig,
    RTConfig,
    SCFConfig,
    TDDFTConfig,
)
from repro.utils.validation import require

__all__ = [
    "CalculationRequest",
    "ExecutionOutcome",
    "REQUEST_KINDS",
    "structure_from_dict",
    "structure_to_dict",
]

#: The calculation kinds a request can describe.
REQUEST_KINDS = ("scf", "tddft", "rt", "batch")


def structure_to_dict(cell) -> dict:
    """Exact, JSON-able description of a :class:`~repro.pw.UnitCell`.

    Floats pass through as native Python floats; JSON encodes them with
    ``repr`` (shortest round-trip), so serializing and re-parsing this dict
    reconstructs bit-identical coordinates.
    """
    return {
        "lattice": np.asarray(cell.lattice, dtype=float).tolist(),
        "species": list(cell.species),
        "fractional_positions": np.asarray(
            cell.fractional_positions, dtype=float
        ).tolist(),
    }


def structure_from_dict(data: dict):
    """Rebuild a :class:`~repro.pw.UnitCell` from :func:`structure_to_dict`."""
    from repro.pw.cell import UnitCell

    return UnitCell(
        np.asarray(data["lattice"], dtype=float),
        tuple(data["species"]),
        np.asarray(data["fractional_positions"], dtype=float).reshape(-1, 3),
    )


def _is_cell(obj) -> bool:
    from repro.pw.cell import UnitCell

    return isinstance(obj, UnitCell)


@dataclass(frozen=True, eq=False)
class CalculationRequest:
    """One complete, hashable calculation description.

    Parameters
    ----------
    kind:
        ``"scf"``, ``"tddft"``, ``"rt"`` or ``"batch"``.
    structure:
        A :class:`~repro.pw.UnitCell` — or, for ``kind="batch"``, an
        ordered sequence of them (stored as a tuple).
    scf / tddft / rt / batch:
        The nested config objects the kind consumes.  Construction
        normalizes them: configs the kind needs default to their
        default-constructed instance (so a request built with explicit
        defaults hashes identically to one built with ``None``), and
        configs the kind does *not* consume must be ``None`` (so an
        irrelevant knob can never perturb the cache key).  ``kind="batch"``
        carries everything in ``batch`` (which nests its own SCF/TDDFT
        configs).
    resilience:
        Optional :class:`~repro.api.config.ResilienceConfig`.  Part of the
        cache key: degradation policies (``selection_fallback``,
        ``dense_fallback_max_pairs``) can change the numerical result, so
        two requests differing in resilience are conservatively treated as
        different calculations.

    Notes
    -----
    Instances are frozen; equality is identity (structures hold numpy
    arrays) — compare :meth:`cache_key` to test whether two requests
    describe the same calculation.
    """

    kind: str
    structure: object
    scf: SCFConfig | None = None
    tddft: TDDFTConfig | None = None
    rt: RTConfig | None = None
    batch: BatchConfig | None = None
    resilience: ResilienceConfig | None = None

    def __post_init__(self) -> None:
        require(
            self.kind in REQUEST_KINDS,
            f"kind must be one of {REQUEST_KINDS}, got {self.kind!r}",
        )
        forbidden = {
            "scf": ("tddft", "rt", "batch"),
            "tddft": ("rt", "batch"),
            "rt": ("tddft", "batch"),
            "batch": ("scf", "tddft", "rt"),
        }[self.kind]
        for name in forbidden:
            require(
                getattr(self, name) is None,
                f"a {self.kind!r} request does not consume the {name!r} "
                f"config; leave it None",
            )
        # Normalize: fill the configs this kind consumes with defaults so
        # default-vs-explicit construction is canonical (same cache key).
        if self.kind == "batch":
            cells = self.structure
            require(
                isinstance(cells, (list, tuple))
                and len(cells) > 0
                and all(_is_cell(c) for c in cells),
                "a 'batch' request needs a non-empty sequence of UnitCells",
            )
            object.__setattr__(self, "structure", tuple(cells))
            if self.batch is None:
                object.__setattr__(self, "batch", BatchConfig())
        else:
            require(
                _is_cell(self.structure),
                f"a {self.kind!r} request needs a single UnitCell structure, "
                f"got {type(self.structure).__name__}",
            )
            if self.scf is None:
                object.__setattr__(self, "scf", SCFConfig())
            if self.kind == "tddft" and self.tddft is None:
                object.__setattr__(self, "tddft", TDDFTConfig())
            if self.kind == "rt" and self.rt is None:
                object.__setattr__(self, "rt", RTConfig())

    # -- canonical serialization / identity --------------------------------

    def to_dict(self) -> dict:
        """Exact round-trip payload (primitives only; JSON-serializable)."""
        if self.kind == "batch":
            structure = [structure_to_dict(c) for c in self.structure]
        else:
            structure = structure_to_dict(self.structure)
        return {
            "kind": self.kind,
            "structure": structure,
            "scf": self.scf.to_dict() if self.scf is not None else None,
            "tddft": self.tddft.to_dict() if self.tddft is not None else None,
            "rt": self.rt.to_dict() if self.rt is not None else None,
            "batch": self.batch.to_dict() if self.batch is not None else None,
            "resilience": (
                self.resilience.to_dict() if self.resilience is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CalculationRequest":
        """Rebuild a request from :meth:`to_dict` (wire/JSON payloads)."""
        known = {"kind", "structure", "scf", "tddft", "rt", "batch", "resilience"}
        unknown = sorted(set(data) - known)
        require(
            not unknown,
            f"unknown CalculationRequest keys {unknown}; valid: {sorted(known)}",
        )
        kind = data.get("kind")
        raw = data.get("structure")
        if kind == "batch":
            require(
                isinstance(raw, (list, tuple)),
                "a 'batch' request payload needs a list of structures",
            )
            structure = tuple(structure_from_dict(s) for s in raw)
        else:
            structure = structure_from_dict(raw)

        def cfg(key, config_cls):
            value = data.get(key)
            if value is None or not isinstance(value, dict):
                return value
            return config_cls.from_dict(value)

        return cls(
            kind=kind,
            structure=structure,
            scf=cfg("scf", SCFConfig),
            tddft=cfg("tddft", TDDFTConfig),
            rt=cfg("rt", RTConfig),
            batch=cfg("batch", BatchConfig),
            resilience=cfg("resilience", ResilienceConfig),
        )

    def canonical_json(self) -> str:
        """Sorted-key JSON of :meth:`to_dict` — the hashed byte stream.

        ``sort_keys=True`` makes the encoding invariant under dict ordering
        and the default float encoding (``repr``) is the shortest exact
        round-trip, so ``from_dict(json.loads(...))`` reproduces the same
        canonical text.
        """
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def cache_key(self) -> str:
        """Content hash (sha256 hex) of the canonical serialization.

        This is *the* dedup/cache identity used by the facade shims, the
        job server and the result store: equal keys license serving a
        stored result bit-identically.
        """
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    def scf_subrequest(self) -> "CalculationRequest":
        """The ground-state request nested inside a tddft/rt request.

        The server stores ground states under this key, so an LR-TDDFT
        request, an RT request and a plain SCF request on the same
        structure+config share one cached ground state.
        """
        require(
            self.kind in ("tddft", "rt"),
            f"only tddft/rt requests nest an SCF stage, not {self.kind!r}",
        )
        return CalculationRequest(
            kind="scf",
            structure=self.structure,
            scf=self.scf,
            resilience=self.resilience,
        )

    # -- execution ----------------------------------------------------------

    def compute(self):
        """Run this request synchronously in the current process.

        No queue, no cache — the direct equivalent of the legacy entry
        points.  Returns the kind's result object (:class:`~repro.dft.
        GroundState`, :class:`~repro.core.driver.LRTDDFTResult`,
        :class:`~repro.rt.tddft.RTResult` or
        :class:`~repro.batch.results.BatchResult`).
        """
        return execute_request(self).result

    def submit(self, server=None, *, tenant: str = "default", priority: int = 0):
        """Submit to a job server; returns a :class:`repro.serve.JobHandle`.

        ``server=None`` uses the process-default in-memory server
        (:func:`repro.serve.default_server`).  ``tenant`` and ``priority``
        are scheduling metadata, not calculation inputs — they never enter
        the cache key.
        """
        if server is None:
            from repro.serve import default_server

            server = default_server()
        return server.submit(self, tenant=tenant, priority=priority)


@dataclass
class ExecutionOutcome:
    """What executing one request produced (result + reusable artifacts).

    Attributes
    ----------
    result:
        The kind's primary result object.
    ground_state:
        The converged :class:`~repro.dft.GroundState` for scf/tddft/rt
        kinds (the server stores it for cache hits and warm starts);
        ``None`` for batch requests.
    scf_iterations:
        SCF iterations actually executed (0 when a precomputed ground
        state was supplied) — the honest "work done" metric the cache and
        warm-start benchmarks gate on.
    eigensolver_iterations:
        Casida eigensolver iterations executed (tddft kind only).
    warm:
        Whether a cross-calculation warm start reached the SCF loop.
    """

    result: object
    ground_state: object | None = None
    scf_iterations: int = 0
    eigensolver_iterations: int = 0
    warm: bool = False


def install_fft_fallback():
    """Wrap the process-wide FFT engine in the scipy -> numpy fallback.

    Idempotent: an already-resilient default is returned unchanged.
    """
    from repro.backend.fft_engine import default_fft_engine, set_default_fft_engine
    from repro.resilience.policies import ResilientFFTEngine

    engine = default_fft_engine()
    if isinstance(engine, ResilientFFTEngine):
        return engine
    return set_default_fft_engine(ResilientFFTEngine(engine))


def _apply_resilience_process_policies(resilience) -> None:
    if resilience is not None and resilience.fft_fallback:
        install_fft_fallback()


def _dense_equivalent(method: str) -> str:
    """The dense-diagonalization twin of an iterative method string."""
    m = method
    if m.startswith("implicit-"):
        m = m[len("implicit-"):]
    for suffix in ("-lobpcg", "-davidson"):
        if m.endswith(suffix):
            m = m[: -len(suffix)]
    return m


def _run_scf_stage(request, *, warm=None, progress=None, timers=None):
    """The ground-state stage shared by scf/tddft/rt kinds."""
    from repro.dft.scf import SCFOptions
    from repro.dft.scf import run_scf as _run_scf_core

    resilience = request.resilience
    checkpoint = (
        resilience.checkpointer("scf") if resilience is not None else None
    )
    return _run_scf_core(
        request.structure,
        SCFOptions(**request.scf.to_dict()),
        timers=timers,
        checkpoint=checkpoint,
        warm_start=warm,
        progress=progress,
    )


def _solve_tddft_stage(request, ground_state, *, progress=None):
    """The LR-TDDFT stage, including the dense-degradation policy."""
    from repro.core.driver import LRTDDFTSolver

    config = request.tddft
    resilience = request.resilience
    solver = LRTDDFTSolver(
        ground_state,
        n_valence=config.n_valence,
        n_conduction=config.n_conduction,
        include_xc=config.include_xc,
        spin=config.spin,
        seed=config.seed,
    )
    result = solver.solve(config, resilience=resilience, progress=progress)

    if (
        resilience is not None
        and not result.converged
        and 0 < solver.n_pairs <= resilience.dense_fallback_max_pairs
    ):
        dense_method = _dense_equivalent(config.method)
        if dense_method != config.method:
            # Fresh (non-restart) solve: the dense path must not consume the
            # iterative run's checkpoints.
            dense_resilience = resilience.replace(checkpoint_dir=None)
            result = solver.solve(
                config.replace(method=dense_method),
                resilience=dense_resilience,
                progress=progress,
            )
    return result


def execute_request(
    request: CalculationRequest,
    *,
    ground_state=None,
    scf_warm=None,
    seed_ground_state=None,
    progress=None,
    timers=None,
    on_result=None,
) -> ExecutionOutcome:
    """Execute a request in-process and return result + reusable artifacts.

    This is the single execution path behind :meth:`CalculationRequest.
    compute`, the legacy facade shims, and the job-server workers.

    Parameters
    ----------
    ground_state:
        Precomputed ground state for tddft/rt kinds: the SCF stage is
        skipped entirely (``scf_iterations=0``).  Used by the legacy
        ``solve_tddft(gs, ...)`` / ``run_rt(gs, ...)`` shims and by the
        server on an SCF-subrequest cache hit.
    scf_warm:
        Optional :class:`~repro.dft.scf.SCFWarmStart` seeding the SCF
        stage (the server's nearest-cached-ground-state warm start).
    seed_ground_state:
        Batch kind only: a cached nearby ground state seeding frame 0 of
        the warm chain (see :func:`repro.batch.run_batch`).
    progress:
        Optional callback receiving per-iteration event dicts (SCF
        iterations, eigensolver iterations, RT steps have no hook yet).
    on_result:
        Batch kind only: streaming per-frame callback.
    """
    _apply_resilience_process_policies(request.resilience)

    if request.kind == "batch":
        from repro.batch.engine import run_batch as _run_batch_core

        result = _run_batch_core(
            request.structure,
            request.batch,
            resilience=request.resilience,
            on_result=on_result,
            seed_ground_state=seed_ground_state,
        )
        return ExecutionOutcome(
            result=result,
            scf_iterations=sum(r.scf_iterations for r in result.records),
            eigensolver_iterations=sum(
                r.eigensolver_iterations for r in result.records
            ),
            warm=any(r.warm for r in result.records),
        )

    def scf_progress(info: dict) -> None:
        if progress is not None:
            progress({"stage": "scf", **info})

    scf_iterations = 0
    if ground_state is None:
        ground_state = _run_scf_stage(
            request,
            warm=scf_warm,
            progress=scf_progress if progress is not None else None,
            timers=timers,
        )
        scf_iterations = len(ground_state.history)

    if request.kind == "scf":
        return ExecutionOutcome(
            result=ground_state,
            ground_state=ground_state,
            scf_iterations=scf_iterations,
            warm=scf_warm is not None,
        )

    if request.kind == "tddft":
        def eig_progress(info: dict) -> None:
            if progress is not None:
                progress({"stage": "eigensolver", **info})

        result = _solve_tddft_stage(
            request,
            ground_state,
            progress=eig_progress if progress is not None else None,
        )
        return ExecutionOutcome(
            result=result,
            ground_state=ground_state,
            scf_iterations=scf_iterations,
            eigensolver_iterations=result.eigensolver_iterations,
            warm=scf_warm is not None,
        )

    # kind == "rt"
    from repro.rt.tddft import RealTimeTDDFT

    rt = request.rt
    resilience = request.resilience
    checkpoint = resilience.checkpointer("rt") if resilience is not None else None
    propagator = RealTimeTDDFT(ground_state, self_consistent=rt.self_consistent)
    if rt.kick_strength:
        propagator.kick(rt.kick_strength, rt.kick_direction)
    result = propagator.propagate(
        rt.dt,
        rt.n_steps,
        krylov_dim=rt.krylov_dim,
        etrs=rt.etrs,
        record_every=rt.record_every,
        checkpoint=checkpoint,
    )
    return ExecutionOutcome(
        result=result,
        ground_state=ground_state,
        scf_iterations=scf_iterations,
        warm=scf_warm is not None,
    )
