"""Tests for the spherically truncated Coulomb kernel."""

import numpy as np
import pytest

from repro.core import HxcKernel
from repro.dft.hartree import coulomb_kernel, truncated_coulomb_kernel
from repro.pw import PlaneWaveBasis, UnitCell
from repro.utils.rng import default_rng


@pytest.fixture(scope="module")
def basis():
    return PlaneWaveBasis(UnitCell.cubic(12.0), ecut=8.0)


class TestKernelValues:
    def test_g0_finite(self, basis):
        kernel = truncated_coulomb_kernel(basis, radius=5.0)
        assert kernel[0] == pytest.approx(2 * np.pi * 25.0)

    def test_matches_formula(self, basis):
        rc = 4.0
        kernel = truncated_coulomb_kernel(basis, rc)
        g2 = basis.gvectors.g2
        idx = 10
        g = np.sqrt(g2[idx])
        assert kernel[idx] == pytest.approx(
            4 * np.pi / g2[idx] * (1 - np.cos(g * rc))
        )

    def test_default_radius_is_half_box(self, basis):
        auto = truncated_coulomb_kernel(basis)
        explicit = truncated_coulomb_kernel(basis, radius=6.0)
        np.testing.assert_allclose(auto, explicit)

    def test_bounded_by_twice_periodic(self, basis):
        """1 - cos in [0, 2]: the truncated kernel never exceeds 2x 4pi/G^2."""
        trunc = truncated_coulomb_kernel(basis, radius=5.0)
        periodic = coulomb_kernel(basis)
        assert (trunc[1:] <= 2 * periodic[1:] + 1e-12).all()

    def test_invalid_radius(self, basis):
        with pytest.raises(ValueError):
            truncated_coulomb_kernel(basis, radius=0.0)

    def test_real_space_truncation(self, basis):
        """The real-space interaction of two separated Gaussian charges
        vanishes once they sit farther apart than R_c."""
        from repro.pw import RealSpaceGrid

        grid = basis.grid
        sigma = 0.5

        def gaussian_at(centre):
            delta = grid.cartesian_points - np.asarray(centre)
            r2 = np.einsum("ij,ij->i", delta, delta)
            return np.exp(-r2 / (2 * sigma**2)) / (2 * np.pi * sigma**2) ** 1.5

        n1 = gaussian_at([3.0, 6.0, 6.0])
        n2 = gaussian_at([9.0, 6.0, 6.0])  # 6 Bohr apart
        kernel_small = truncated_coulomb_kernel(basis, radius=2.0)
        f1 = basis.fft.forward(n1.astype(complex))
        v1 = basis.fft.backward_real(f1 * kernel_small)
        interaction = (v1 * n2).sum() * grid.dv
        assert abs(interaction) < 1e-3  # beyond R_c: (almost) no coupling

        kernel_large = truncated_coulomb_kernel(basis, radius=11.0)
        v1_large = basis.fft.backward_real(f1 * kernel_large)
        interaction_large = (v1_large * n2).sum() * grid.dv
        assert interaction_large > 0.1  # within R_c: real Coulomb coupling


class TestKernelInHxc:
    def test_truncation_changes_molecular_excitations(self, water_ground_state):
        from repro.core import LRTDDFTSolver, build_casida_hamiltonian, solve_casida_dense

        gs = water_ground_state
        psi_v, eps_v, psi_c, eps_c = gs.select_transition_space()
        periodic = HxcKernel(gs.basis, gs.density)
        truncated = HxcKernel(gs.basis, gs.density, coulomb_truncation="auto")
        h_p = build_casida_hamiltonian(psi_v, eps_v, psi_c, eps_c, periodic)
        h_t = build_casida_hamiltonian(psi_v, eps_v, psi_c, eps_c, truncated)
        e_p, _ = solve_casida_dense(h_p, 3)
        e_t, _ = solve_casida_dense(h_t, 3)
        # Both physical, differing by the image-interaction correction.
        assert (e_t > 0).all()
        rel = np.abs((e_t - e_p) / e_p)
        assert 1e-6 < rel.max() < 0.1

    def test_auto_string_accepted(self, water_ground_state):
        kernel = HxcKernel(
            water_ground_state.basis, water_ground_state.density,
            coulomb_truncation="auto",
        )
        rng = default_rng(0)
        field = rng.standard_normal(water_ground_state.basis.n_r)
        assert np.all(np.isfinite(kernel.apply(field)))
