"""``repro.serve`` — the async calculation service.

One :class:`CalculationServer` turns the unified request API into a job
service: submissions dedupe by content hash, repeat requests are served
bit-identically from the :class:`ResultStore`, near-duplicates warm-start
from the nearest cached ground state, and progress streams per iteration
through subscribable :class:`~repro.serve.events.EventChannel`\\ s.

Quick start::

    from repro.api import CalculationRequest, SCFConfig
    from repro.serve import CalculationServer, ServeClient

    with CalculationServer(n_workers=2) as server:
        handle = CalculationRequest(
            kind="scf", structure=cell, scf=SCFConfig(ecut=8.0)
        ).submit(server)
        gs = handle.result()

:func:`default_server` holds the process-wide server that
:meth:`CalculationRequest.submit() <repro.api.CalculationRequest.submit>`
uses when no server is given.

See ``docs/serving.md`` for queue semantics, the cache / warm-start
contract, fairness, and failure modes.
"""

from __future__ import annotations

import atexit
import threading

from repro.serve.client import ServeClient
from repro.serve.events import EventChannel, JobEvent, Subscription
from repro.serve.queue import AdmissionError, JobQueue
from repro.serve.server import (
    CalculationServer,
    JobCancelled,
    JobFailed,
    JobHandle,
)
from repro.serve.store import ResultStore, StoreEntry

__all__ = [
    "AdmissionError",
    "CalculationServer",
    "EventChannel",
    "JobCancelled",
    "JobEvent",
    "JobFailed",
    "JobHandle",
    "JobQueue",
    "ResultStore",
    "ServeClient",
    "StoreEntry",
    "Subscription",
    "default_server",
    "shutdown_default_server",
]

_default_lock = threading.Lock()
_default: CalculationServer | None = None


def default_server() -> CalculationServer:
    """The process-wide server (created on first use, one worker).

    Backs :meth:`CalculationRequest.submit() <repro.api.
    CalculationRequest.submit>` when no server is passed; shut down
    automatically at interpreter exit (or explicitly via
    :func:`shutdown_default_server`).
    """
    global _default
    with _default_lock:
        if _default is None:
            _default = CalculationServer()  # repro-lint: disable=blocking-under-lock -- one-shot startup path: the default ResultStore has no directory, so no disk I/O actually runs, and creation must be single-shot under the lock
            atexit.register(shutdown_default_server)
        return _default


def shutdown_default_server() -> None:
    """Tear down the process-default server (idempotent)."""
    global _default
    with _default_lock:
        server, _default = _default, None
    if server is not None:
        server.shutdown()
