"""Measured phase profile of the naive construction vs Table 2's ordering.

Table 2 says the naive Hamiltonian construction is dominated by the
``O(N_v^2 N_c^2 N_r)`` FFT and GEMM phases, with the face-splitting product
and kernel at ``O(N_v N_c N_r)``.  The driver's built-in timers let us
check the *measured* ordering on a real workload — the kind of
profile-before-optimizing discipline the implementation notes call for.
"""

import pytest

from repro.core import LRTDDFTSolver


def test_naive_phase_ordering(benchmark, si64_like_state, save_table):
    solver = LRTDDFTSolver(si64_like_state, n_valence=32, n_conduction=16, seed=0)

    result = benchmark.pedantic(
        lambda: solver.solve("naive", n_excitations=4), rounds=1, iterations=1
    )
    timings = result.timings

    gemm = timings.get("hamiltonian/gemm", 0.0)
    fft = timings.get("hamiltonian/kernel_fft", 0.0)
    pair = timings.get("hamiltonian/pair_products", 0.0)
    diag = timings.get("diagonalize", 0.0)
    total = timings.get("hamiltonian", 0.0) + diag

    lines = [
        "Measured naive-phase profile (synthetic Si_64 workload)",
        "",
        f"N_cv = {solver.n_pairs}, N_r = {solver.basis.n_r}",
        "",
        f"{'phase':<22s} {'seconds':>9s} {'share':>7s}",
    ]
    for name, t in (
        ("pair products", pair),
        ("kernel FFTs", fft),
        ("GEMM", gemm),
        ("dense diagonalize", diag),
    ):
        lines.append(f"{name:<22s} {t:9.3f} {t / max(total, 1e-12):6.1%}")
    lines += [
        "",
        "Table 2 ordering check: the O(N_cv^2 N_r)-class phases (FFT, GEMM)",
        "dominate the O(N_cv N_r) face-splitting product.",
    ]
    save_table("phase_profile", "\n".join(lines))

    # The Table 2 dominance claim, measured.
    assert fft + gemm > pair
    # Every recorded phase is a real cost.
    assert min(fft, gemm, pair, diag) >= 0.0
    assert total > 0.0
