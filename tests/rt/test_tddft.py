"""Tests for the real-time TDDFT driver."""

import numpy as np
import pytest

from repro.constants import HARTREE_TO_EV
from repro.pw import UnitCell
from repro.dft import run_scf
from repro.rt import RealTimeTDDFT, dipole_spectrum, find_peaks


@pytest.fixture(scope="module")
def h2_ground_state():
    box = 10.0
    bond = 1.4
    cell = UnitCell(
        box * np.eye(3),
        ("H", "H"),
        np.array(
            [[0.5, 0.5, 0.5 - bond / 2 / box], [0.5, 0.5, 0.5 + bond / 2 / box]]
        ),
    )
    return run_scf(cell, ecut=8.0, n_bands=5, tol=1e-8, seed=0)


class TestSetup:
    def test_unkicked_state_is_stationary(self, h2_ground_state):
        """Without a kick, the dipole must stay constant under propagation
        (the ground state is an eigenstate)."""
        rt = RealTimeTDDFT(h2_ground_state, self_consistent=False)
        d0 = rt.dipole()
        res = rt.propagate(dt=0.2, n_steps=10)
        np.testing.assert_allclose(res.dipoles - d0[None, :], 0.0, atol=1e-6)

    def test_kick_preserves_norm(self, h2_ground_state):
        rt = RealTimeTDDFT(h2_ground_state)
        before = rt.total_norm()
        rt.kick(1e-3)
        # The sphere projection loses O(kappa^2) weight at most.
        assert rt.total_norm() == pytest.approx(before, abs=1e-5)

    def test_kick_displaces_dipole_linearly(self, h2_ground_state):
        """Immediately after the kick the dipole is unchanged (position
        operator commutes with the phase), but the current is ~kappa; a tiny
        propagation must displace the dipole proportionally to kappa."""
        shifts = []
        for kappa in (1e-3, 2e-3):
            rt = RealTimeTDDFT(h2_ground_state, self_consistent=False)
            rt.kick(kappa)
            res = rt.propagate(dt=0.1, n_steps=5)
            shifts.append(res.dipole_along_kick()[-1] - res.dipole_along_kick()[0])
        assert shifts[1] == pytest.approx(2.0 * shifts[0], rel=0.05)

    def test_invalid_kick(self, h2_ground_state):
        rt = RealTimeTDDFT(h2_ground_state)
        with pytest.raises(ValueError):
            rt.kick(0.0)


class TestPropagation:
    def test_norm_conserved_self_consistent(self, h2_ground_state):
        rt = RealTimeTDDFT(h2_ground_state)
        rt.kick(1e-3)
        res = rt.propagate(dt=0.2, n_steps=25)
        assert abs(res.norms[-1] - res.norms[0]) < 1e-9

    def test_record_every(self, h2_ground_state):
        rt = RealTimeTDDFT(h2_ground_state, self_consistent=False)
        rt.kick(1e-3)
        res = rt.propagate(dt=0.1, n_steps=20, record_every=5)
        assert res.times.shape == (5,)
        assert res.times[-1] == pytest.approx(2.0)

    def test_independent_particle_peak_at_ks_transition(self, h2_ground_state):
        """Frozen-Hamiltonian response oscillates exactly at the KS
        transition energies — the sharpest available correctness check."""
        gs = h2_ground_state
        rt = RealTimeTDDFT(gs, self_consistent=False)
        rt.kick(1e-3)
        res = rt.propagate(dt=0.2, n_steps=600, krylov_dim=8)
        omega, s = dipole_spectrum(
            res.times, res.dipole_along_kick(), res.kick_strength,
            omega_max=1.0, damping=0.01,
        )
        peaks = find_peaks(omega, s, threshold=0.5)
        assert len(peaks) >= 1
        # The dominant dipole-allowed transition: HOMO -> the z-polarized
        # virtual. Find the KS gap it corresponds to among the low ones.
        gaps = gs.energies[1:] - gs.energies[0]
        closest = gaps[np.argmin(np.abs(gaps - peaks[0]))]
        assert peaks[0] == pytest.approx(closest, abs=0.01)

    def test_etrs_improves_or_matches_norm_drift(self, h2_ground_state):
        rt1 = RealTimeTDDFT(h2_ground_state)
        rt1.kick(2e-3)
        res1 = rt1.propagate(dt=0.25, n_steps=20, etrs=False)
        rt2 = RealTimeTDDFT(h2_ground_state)
        rt2.kick(2e-3)
        res2 = rt2.propagate(dt=0.25, n_steps=20, etrs=True)
        drift1 = abs(res1.norms[-1] - res1.norms[0])
        drift2 = abs(res2.norms[-1] - res2.norms[0])
        assert drift2 < 10 * max(drift1, 1e-14)  # both tiny; ETRS never blows up

    def test_invalid_steps(self, h2_ground_state):
        rt = RealTimeTDDFT(h2_ground_state)
        with pytest.raises(ValueError):
            rt.propagate(dt=0.1, n_steps=0)
