"""Tests for ground-state persistence."""

import numpy as np
import pytest

from repro.dft.io import load_ground_state, save_ground_state


class TestRoundtrip:
    def test_exact_roundtrip(self, si2_ground_state, tmp_path):
        path = save_ground_state(si2_ground_state, tmp_path / "si2")
        loaded = load_ground_state(path)
        np.testing.assert_array_equal(loaded.energies, si2_ground_state.energies)
        np.testing.assert_array_equal(
            loaded.orbitals_real, si2_ground_state.orbitals_real
        )
        np.testing.assert_array_equal(loaded.density, si2_ground_state.density)
        assert loaded.total_energy == si2_ground_state.total_energy
        assert loaded.converged == si2_ground_state.converged

    def test_cell_reconstructed(self, si2_ground_state, tmp_path):
        path = save_ground_state(si2_ground_state, tmp_path / "si2")
        loaded = load_ground_state(path)
        np.testing.assert_allclose(
            loaded.basis.cell.lattice, si2_ground_state.basis.cell.lattice
        )
        assert loaded.basis.cell.species == si2_ground_state.basis.cell.species
        assert loaded.basis.ecut == si2_ground_state.basis.ecut

    def test_npz_suffix_appended(self, si2_ground_state, tmp_path):
        path = save_ground_state(si2_ground_state, tmp_path / "state")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_loaded_state_drives_lrtddft(self, si2_ground_state, tmp_path):
        """The reloaded state must produce identical excitation energies."""
        from repro.core import LRTDDFTSolver

        path = save_ground_state(si2_ground_state, tmp_path / "si2")
        loaded = load_ground_state(path)
        a = LRTDDFTSolver(si2_ground_state, seed=0).solve("naive", n_excitations=3)
        b = LRTDDFTSolver(loaded, seed=0).solve("naive", n_excitations=3)
        np.testing.assert_array_equal(a.energies, b.energies)

    def test_synthetic_state_roundtrip(self, si8_synthetic, tmp_path):
        path = save_ground_state(si8_synthetic, tmp_path / "synth")
        loaded = load_ground_state(path)
        np.testing.assert_array_equal(
            loaded.orbitals_real, si8_synthetic.orbitals_real
        )

    def test_bad_version_rejected(self, si2_ground_state, tmp_path):
        import json

        import numpy as np

        path = save_ground_state(si2_ground_state, tmp_path / "si2")
        with np.load(path) as data:
            contents = dict(data)
        meta = json.loads(bytes(contents["meta"]).decode())
        meta["format_version"] = 999
        contents["meta"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **contents)
        with pytest.raises(ValueError, match="version"):
            load_ground_state(path)
