"""Project-wide symbol table and call graph for interprocedural rules.

The per-file rules in :mod:`repro.lint.rules` see one AST at a time; the
rules in :mod:`repro.lint.project_rules` need to answer questions like
"does anything *reachable* from this branch enter a collective?" or "is
every function reachable from ``CalculationRequest.to_dict`` pure?".
This module builds what they query:

* a **symbol table** per module — imports (with aliases), module-level
  functions, classes with their methods, attribute type hints (dataclass
  annotations and ``self.x = Ctor(...)`` assignments), module-level
  function aliases and dict dispatch tables;
* a :class:`FunctionInfo` for every function-like scope — methods, nested
  defs, lambdas, and one synthetic ``<module>`` scope per file for
  top-level code;
* **call edges** between them, resolved through the table.

Resolution policy (and its intentional dynamic-dispatch limits)
---------------------------------------------------------------
Resolved statically:

* bare names through the lexical scope chain (nested defs -> enclosing
  functions -> module functions/classes -> module aliases -> imports,
  following ``from X import y as z`` and package re-exports);
* ``self.m()`` / ``cls.m()`` through the class and its project-local
  bases (bound methods), and ``ClassName.m(obj)`` (unbound methods);
* ``self.attr.m()`` where ``attr``'s type is known from a dataclass /
  ``AnnAssign`` annotation or a ``self.attr = ClassName(...)`` assignment;
* ``local.m()`` where ``local = ClassName(...)`` earlier in the same
  function;
* ``module_alias.f()`` through the import table;
* ``functools.partial(f, ...)`` — a ``ref`` edge to ``f``;
* calls through module-level dict dispatch tables (``TABLE[key](...)``)
  — one ``call`` edge per table value;
* ``ClassName(...)`` — a ``call`` edge to ``__init__`` when defined.

Out of scope (recorded in :attr:`Project.unresolved` by leaf name, so
rules can still pattern-match on e.g. collective method names):

* attribute calls on objects whose type is not statically known
  (``comm.allreduce(...)`` where ``comm`` is a parameter) — exactly MPI's
  duck-typed communicator, which is why collective detection also matches
  leaf names;
* calls through containers other than module-level dict literals,
  ``getattr``/``setattr`` indirection, monkey-patching, and decorators
  that *replace* rather than wrap (``@decorated`` callees resolve to the
  undecorated def — correct for every decorator in this codebase);
* ``@property`` access (an attribute load, not a call).

Edge kinds: ``"call"`` (the expression invokes the callee) and ``"ref"``
(the callee's object is taken — stored, passed, wrapped in ``partial``,
or defined as a nested def/lambda).  Precision-first rules (collective
consistency) follow only ``call`` edges; soundness-first rules
(cache-key purity) follow both.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import PurePosixPath
from typing import Iterable, Iterator, Sequence

from repro.lint.engine import SourceModule, dotted_name

__all__ = [
    "CallEdge",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "build_project",
    "module_name_for_path",
]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_LOCK_ANCHORS = ("src",)


def module_name_for_path(path: str) -> str:
    """Dotted module name for a file path.

    ``src/repro/serve/store.py`` -> ``repro.serve.store``; without a
    ``src`` anchor, the longest identifier-only tail of the path is used
    (stable for tmp-dir test fixtures), and ``__init__.py`` maps to its
    package.
    """
    parts = list(PurePosixPath(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    for anchor in _LOCK_ANCHORS:
        if anchor in parts:
            parts = parts[parts.index(anchor) + 1 :]
            break
    else:
        tail: list[str] = []
        for part in reversed(parts):
            if part.isidentifier():
                tail.append(part)
            else:
                break
        parts = list(reversed(tail)) or parts[-1:]
    return ".".join(parts) or "<module>"


@dataclasses.dataclass
class FunctionInfo:
    """One function-like scope (def, method, lambda, or module top level)."""

    uid: str  #: globally unique: ``module:qualname``
    module: str
    path: str
    qualname: str
    name: str
    lineno: int
    node: ast.AST
    class_name: str | None = None
    parent_uid: str | None = None
    decorators: tuple[str, ...] = ()
    is_lambda: bool = False
    #: immediate nested defs/lambdas: local name -> uid (lexical scope).
    scope_defs: dict[str, str] = dataclasses.field(default_factory=dict)

    @property
    def is_module_scope(self) -> bool:
        return self.qualname == "<module>"


@dataclasses.dataclass
class ClassInfo:
    """One class: methods, base names, and statically-known attribute types."""

    name: str
    module: str
    node: ast.ClassDef
    bases: tuple[str, ...] = ()
    methods: dict[str, FunctionInfo] = dataclasses.field(default_factory=dict)
    #: attribute -> candidate type names (from annotations / constructors).
    attr_types: dict[str, list[str]] = dataclasses.field(default_factory=dict)
    #: attribute -> the ``self.attr = Ctor(...)`` call node (lock discovery).
    attr_ctors: dict[str, ast.Call] = dataclasses.field(default_factory=dict)

    @property
    def uid(self) -> str:
        return f"{self.module}:{self.name}"


@dataclasses.dataclass
class ModuleInfo:
    """Symbol table of one parsed module."""

    name: str
    source: SourceModule
    imports: dict[str, str] = dataclasses.field(default_factory=dict)
    functions: dict[str, FunctionInfo] = dataclasses.field(default_factory=dict)
    classes: dict[str, ClassInfo] = dataclasses.field(default_factory=dict)
    #: module-level ``alias = existing_function`` assignments.
    aliases: dict[str, str] = dataclasses.field(default_factory=dict)
    #: module-level dict literals (dispatch tables): name -> value exprs.
    tables: dict[str, list[ast.expr]] = dataclasses.field(default_factory=dict)

    @property
    def path(self) -> str:
        return self.source.path


@dataclasses.dataclass
class CallEdge:
    """One resolved edge of the call graph."""

    caller: str
    callee: str
    kind: str  #: ``"call"`` or ``"ref"``
    node: ast.AST  #: the call/reference site (line numbers)
    via: str = ""  #: source-level spelling, for diagnostics


class Project:
    """The whole-program index the interprocedural rules run against."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.modules_by_path: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.edges_from: dict[str, list[CallEdge]] = {}
        self.edges_to: dict[str, list[CallEdge]] = {}
        #: caller uid -> [(leaf name, call node)] for unresolvable calls.
        self.unresolved: dict[str, list[tuple[str, ast.Call]]] = {}
        for source in modules:
            self._index_module(source)
        for info in list(self.functions.values()):
            self._extract_edges(info)

    # -- construction: symbol table ------------------------------------------

    def _index_module(self, source: SourceModule) -> None:
        name = module_name_for_path(source.path)
        mod = ModuleInfo(name=name, source=source)
        # Collisions (same module name from two paths): last writer wins,
        # both remain reachable through modules_by_path.
        self.modules[name] = mod
        self.modules_by_path[source.path] = mod
        self._collect_imports(mod, source.tree)
        module_scope = self._add_function(
            mod, source.tree, qualname="<module>", name="<module>", lineno=1
        )
        for child in source.tree.body:
            self._index_statement(mod, module_scope, child)

    def _collect_imports(self, mod: ModuleInfo, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.partition(".")[0]
                    target = alias.name if alias.asname else alias.name.partition(".")[0]
                    mod.imports[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mod.imports[local] = f"{node.module}.{alias.name}"

    def _add_function(
        self,
        mod: ModuleInfo,
        node: ast.AST,
        *,
        qualname: str,
        name: str,
        lineno: int,
        class_name: str | None = None,
        parent: FunctionInfo | None = None,
        is_lambda: bool = False,
    ) -> FunctionInfo:
        decorators: tuple[str, ...] = ()
        if isinstance(node, _FUNC_NODES):
            names = []
            for dec in node.decorator_list:
                target = dec.func if isinstance(dec, ast.Call) else dec
                text = dotted_name(target)
                if text:
                    names.append(text)
            decorators = tuple(names)
        info = FunctionInfo(
            uid=f"{mod.name}:{qualname}",
            module=mod.name,
            path=mod.source.path,
            qualname=qualname,
            name=name,
            lineno=lineno,
            node=node,
            class_name=class_name,
            parent_uid=parent.uid if parent is not None else None,
            decorators=decorators,
            is_lambda=is_lambda,
        )
        self.functions[info.uid] = info
        if parent is not None and not is_lambda:
            parent.scope_defs[name] = info.uid
        return info

    def _index_statement(
        self, mod: ModuleInfo, scope: FunctionInfo, stmt: ast.stmt
    ) -> None:
        if isinstance(stmt, _FUNC_NODES):
            self._index_def(mod, scope, stmt, class_name=None)
        elif isinstance(stmt, ast.ClassDef):
            self._index_class(mod, scope, stmt)
        elif isinstance(stmt, ast.Assign) and scope.is_module_scope:
            self._index_module_assign(mod, stmt)
            self._recurse_statements(mod, scope, stmt)
        else:
            self._recurse_statements(mod, scope, stmt)

    def _recurse_statements(
        self, mod: ModuleInfo, scope: FunctionInfo, stmt: ast.stmt
    ) -> None:
        """Find defs/classes nested in compound statements (if/try/for/with)."""
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._index_statement(mod, scope, child)

    def _index_def(
        self,
        mod: ModuleInfo,
        scope: FunctionInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
        class_info: ClassInfo | None = None,
    ) -> None:
        if class_name is not None:
            qualname = f"{class_name}.{node.name}"
        elif scope.is_module_scope:
            qualname = node.name
        else:
            qualname = f"{scope.qualname}.{node.name}"
        info = self._add_function(
            mod,
            node,
            qualname=qualname,
            name=node.name,
            lineno=node.lineno,
            class_name=class_name,
            parent=None if scope.is_module_scope and class_name is None else scope,
        )
        if class_name is None and scope.is_module_scope:
            mod.functions[node.name] = info
        if class_info is not None:
            class_info.methods[node.name] = info
        for child in node.body:
            self._index_statement(mod, info, child)

    def _index_class(
        self, mod: ModuleInfo, scope: FunctionInfo, node: ast.ClassDef
    ) -> None:
        info = ClassInfo(
            name=node.name,
            module=mod.name,
            node=node,
            bases=tuple(filter(None, (dotted_name(b) for b in node.bases))),
        )
        mod.classes[node.name] = info
        self.classes[info.uid] = info
        for child in node.body:
            if isinstance(child, _FUNC_NODES):
                self._index_def(
                    mod, scope, child, class_name=node.name, class_info=info
                )
            elif isinstance(child, ast.AnnAssign) and isinstance(
                child.target, ast.Name
            ):
                types = _annotation_type_names(child.annotation)
                if types:
                    info.attr_types.setdefault(child.target.id, []).extend(types)
            elif isinstance(child, ast.ClassDef):
                self._index_class(mod, scope, child)
        self._collect_attr_assignments(info)

    def _collect_attr_assignments(self, info: ClassInfo) -> None:
        """``self.attr = <value>`` inside methods -> attribute types.

        Candidate types come from constructor calls anywhere in the value
        (covers ``x if cond else Ctor()``) and from annotated parameters
        assigned through (``def __init__(self, store: ResultStore | None):
        self.store = store``)."""
        for method in info.methods.values():
            if not isinstance(method.node, _FUNC_NODES):
                continue
            param_types: dict[str, list[str]] = {}
            args = method.node.args
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                if arg.annotation is not None:
                    types = _annotation_type_names(arg.annotation)
                    if types:
                        param_types[arg.arg] = types
            for node in ast.walk(method.node):
                if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                    continue
                target = node.targets[0]
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Call):
                        ctor = dotted_name(sub.func)
                        if ctor:
                            if node.value is sub:
                                info.attr_ctors.setdefault(target.attr, sub)
                            leaf = ctor.rpartition(".")[2]
                            if leaf[:1].isupper():
                                info.attr_types.setdefault(
                                    target.attr, []
                                ).append(ctor)
                    elif isinstance(sub, ast.Name) and sub.id in param_types:
                        info.attr_types.setdefault(target.attr, []).extend(
                            param_types[sub.id]
                        )

    def _index_module_assign(self, mod: ModuleInfo, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            return
        name = stmt.targets[0].id
        if isinstance(stmt.value, ast.Dict):
            mod.tables[name] = [v for v in stmt.value.values if v is not None]
        elif isinstance(stmt.value, (ast.Name, ast.Attribute)):
            text = dotted_name(stmt.value)
            if text:
                mod.aliases[name] = text

    # -- construction: edges -------------------------------------------------

    def _extract_edges(self, info: FunctionInfo) -> None:
        mod = self.modules_by_path.get(info.path) or self.modules[info.module]
        var_types = self._local_var_types(mod, info)
        edges = self.edges_from.setdefault(info.uid, [])
        unresolved = self.unresolved.setdefault(info.uid, [])
        call_funcs: set[int] = set()

        for node in self._scope_walk(info):
            if isinstance(node, ast.Lambda):
                lam = self._add_function(
                    mod,
                    node,
                    qualname=f"{info.qualname}.<lambda:{node.lineno}>",
                    name="<lambda>",
                    lineno=node.lineno,
                    class_name=info.class_name,
                    parent=info,
                    is_lambda=True,
                )
                edges.append(
                    CallEdge(info.uid, lam.uid, "ref", node, via="<lambda>")
                )
                self._extract_edges(lam)
            elif isinstance(node, ast.Call):
                call_funcs.add(id(node.func))
                self._resolve_call(mod, info, node, var_types, edges, unresolved)

        # References: function objects taken without being called.
        for node in self._scope_walk(info):
            if id(node) in call_funcs:
                continue
            if isinstance(node, (ast.Name, ast.Attribute)) and isinstance(
                getattr(node, "ctx", None), ast.Load
            ):
                targets = self._resolve_expr(mod, info, node, var_types)
                for target in targets:
                    edges.append(
                        CallEdge(
                            info.uid, target.uid, "ref", node, via=dotted_name(node)
                        )
                    )

        # Nested defs are reachable from their definer (``ref``): a rule
        # wanting soundness treats "defined inside" as "may run as part of".
        for child_uid in info.scope_defs.values():
            child = self.functions[child_uid]
            edges.append(
                CallEdge(info.uid, child_uid, "ref", child.node, via=child.name)
            )

    def _scope_walk(self, info: FunctionInfo) -> Iterator[ast.AST]:
        """Walk ``info``'s own scope: skip nested def/lambda bodies (they
        are separate :class:`FunctionInfo`), keep comprehension bodies
        (they execute as part of this scope).  The module scope also skips
        class bodies (methods are their own scopes; class-level constants
        rarely call)."""
        root = info.node

        def walk(node: ast.AST) -> Iterator[ast.AST]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (*_FUNC_NODES, ast.Lambda)):
                    yield child  # the def itself (so lambdas are seen once)
                    continue
                if isinstance(child, ast.ClassDef):
                    continue
                yield child
                yield from walk(child)

        if isinstance(root, ast.Lambda):
            yield from ast.walk(root.body)
        else:
            yield from walk(root)

    def _local_var_types(
        self, mod: ModuleInfo, info: FunctionInfo
    ) -> dict[str, ClassInfo]:
        """``x = ClassName(...)`` assignments in this scope -> {x: class}."""
        types: dict[str, ClassInfo] = {}
        for node in self._scope_walk(info):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                continue
            cls = self._resolve_class(mod, dotted_name(node.value.func))
            if cls is not None:
                types[node.targets[0].id] = cls
        return types

    # -- resolution ----------------------------------------------------------

    def _resolve_call(
        self,
        mod: ModuleInfo,
        info: FunctionInfo,
        call: ast.Call,
        var_types: dict[str, ClassInfo],
        edges: list[CallEdge],
        unresolved: list[tuple[str, ast.Call]],
    ) -> None:
        func = call.func
        via = dotted_name(func)

        # functools.partial(f, ...): a reference to f.
        if via.rpartition(".")[2] == "partial" and call.args:
            for target in self._resolve_expr(mod, info, call.args[0], var_types):
                edges.append(CallEdge(info.uid, target.uid, "ref", call, via=via))

        # TABLE[key](...) through a module-level dispatch dict.
        if isinstance(func, ast.Subscript):
            values = self._resolve_table(mod, func.value)
            if values is not None:
                hit = False
                for expr in values:
                    for target in self._resolve_expr(mod, info, expr, var_types):
                        hit = True
                        edges.append(
                            CallEdge(
                                info.uid,
                                target.uid,
                                "call",
                                call,
                                via=f"{dotted_name(func.value)}[...]",
                            )
                        )
                if hit:
                    return
            unresolved.append((via.rpartition(".")[2] or "<subscript>", call))
            return

        targets = self._resolve_expr(mod, info, func, var_types)
        if targets:
            for target in targets:
                edges.append(CallEdge(info.uid, target.uid, "call", call, via=via))
        else:
            unresolved.append((via.rpartition(".")[2], call))

    def _resolve_table(
        self, mod: ModuleInfo, expr: ast.expr
    ) -> list[ast.expr] | None:
        text = dotted_name(expr)
        if not text:
            return None
        if text in mod.tables:
            return mod.tables[text]
        head, _, leaf = text.rpartition(".")
        if head and head in mod.imports:
            target_mod = self.modules.get(mod.imports[head])
            if target_mod is not None and leaf in target_mod.tables:
                return target_mod.tables[leaf]
        return None

    def _resolve_expr(
        self,
        mod: ModuleInfo,
        info: FunctionInfo,
        expr: ast.expr,
        var_types: dict[str, ClassInfo],
    ) -> list[FunctionInfo]:
        """Resolve a name-like expression to project functions (possibly
        several candidates for union-typed attributes); empty = unknown."""
        if isinstance(expr, ast.Name):
            return self._resolve_bare_name(mod, info, expr.id)
        if isinstance(expr, ast.Attribute):
            return self._resolve_attribute(mod, info, expr, var_types)
        return []

    def _resolve_bare_name(
        self, mod: ModuleInfo, info: FunctionInfo, name: str
    ) -> list[FunctionInfo]:
        # Lexical chain: this scope's nested defs, then enclosing scopes'.
        scope: FunctionInfo | None = info
        while scope is not None:
            uid = scope.scope_defs.get(name)
            if uid is not None:
                return [self.functions[uid]]
            scope = (
                self.functions.get(scope.parent_uid)
                if scope.parent_uid is not None
                else None
            )
        if name in mod.functions:
            return [mod.functions[name]]
        if name in mod.classes:
            return self._class_callable(mod.classes[name])
        if name in mod.aliases:
            resolved = self._resolve_bare_name(mod, info, mod.aliases[name])
            if resolved:
                return resolved
            return self._resolve_dotted(mod.aliases[name])
        if name in mod.imports:
            return self._resolve_dotted(mod.imports[name])
        return []

    def _class_callable(self, cls: ClassInfo) -> list[FunctionInfo]:
        """Calling a class invokes ``__init__`` (when the project defines
        one, possibly on a base)."""
        init = self._resolve_method(cls, "__init__")
        return init if init else []

    def _resolve_attribute(
        self,
        mod: ModuleInfo,
        info: FunctionInfo,
        expr: ast.Attribute,
        var_types: dict[str, ClassInfo],
    ) -> list[FunctionInfo]:
        attr = expr.attr
        base = expr.value
        base_text = dotted_name(base)

        # self.m() / cls.m(): the enclosing class's method table (+ bases).
        if base_text in ("self", "cls") and info.class_name is not None:
            cls = mod.classes.get(info.class_name) or self.classes.get(
                f"{info.module}:{info.class_name}"
            )
            if cls is not None:
                return self._resolve_method(cls, attr)
            return []

        # self.attr.m(): annotated / constructor-known attribute types.
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id in ("self", "cls")
            and info.class_name is not None
        ):
            cls = mod.classes.get(info.class_name)
            if cls is not None:
                out: list[FunctionInfo] = []
                for type_name in cls.attr_types.get(base.attr, []):
                    target_cls = self._resolve_class(mod, type_name)
                    if target_cls is not None:
                        out.extend(self._resolve_method(target_cls, attr))
                return out
            return []

        if isinstance(base, ast.Name):
            # local = ClassName(...); local.m()
            if base.id in var_types:
                return self._resolve_method(var_types[base.id], attr)
            # ClassName.m (unbound) in this module or imported.
            cls = self._resolve_class(mod, base.id)
            if cls is not None:
                return self._resolve_method(cls, attr)

        # module_alias.f() / package.sub.f() through the import table.
        if base_text:
            expanded = self._expand_import_prefix(mod, base_text)
            if expanded is not None:
                resolved = self._resolve_dotted(f"{expanded}.{attr}")
                if resolved:
                    return resolved
        return []

    def _expand_import_prefix(self, mod: ModuleInfo, dotted: str) -> str | None:
        head, _, rest = dotted.partition(".")
        if head in mod.imports:
            target = mod.imports[head]
            return f"{target}.{rest}" if rest else target
        if dotted in self.modules:
            return dotted
        return None

    def _resolve_dotted(self, dotted: str, _depth: int = 0) -> list[FunctionInfo]:
        """``pkg.mod.fn`` -> FunctionInfo, chasing package re-exports."""
        if _depth > 6:
            return []
        head, _, leaf = dotted.rpartition(".")
        mod = self.modules.get(head)
        if mod is None:
            return []
        if leaf in mod.functions:
            return [mod.functions[leaf]]
        if leaf in mod.classes:
            return self._class_callable(mod.classes[leaf])
        if leaf in mod.aliases:
            return self._resolve_dotted(f"{head}.{mod.aliases[leaf]}", _depth + 1)
        if leaf in mod.imports:
            return self._resolve_dotted(mod.imports[leaf], _depth + 1)
        return []

    def _resolve_class(self, mod: ModuleInfo, name: str) -> ClassInfo | None:
        """A (possibly dotted / imported / annotated) name -> ClassInfo."""
        if not name:
            return None
        leaf = name.rpartition(".")[2]
        if name in mod.classes:
            return mod.classes[name]
        if leaf in mod.classes and name == leaf:
            return mod.classes[leaf]
        if name in mod.imports:
            dotted = mod.imports[name]
            head, _, cls_name = dotted.rpartition(".")
            target = self.modules.get(head)
            if target is not None and cls_name in target.classes:
                return target.classes[cls_name]
        head, _, cls_name = name.rpartition(".")
        if head:
            expanded = self._expand_import_prefix(mod, head)
            if expanded is not None:
                target = self.modules.get(expanded)
                if target is not None and cls_name in target.classes:
                    return target.classes[cls_name]
        return None

    def _resolve_method(self, cls: ClassInfo, name: str) -> list[FunctionInfo]:
        """Look ``name`` up on ``cls`` and its project-local base chain."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current.uid in seen:
                continue
            seen.add(current.uid)
            if name in current.methods:
                return [current.methods[name]]
            mod = self.modules.get(current.module)
            for base_name in current.bases:
                base = self._resolve_class(mod, base_name) if mod else None
                if base is not None:
                    stack.append(base)
        return []

    # -- query helpers -------------------------------------------------------

    def function(self, uid: str) -> FunctionInfo | None:
        return self.functions.get(uid)

    def scope_nodes(self, info: FunctionInfo) -> Iterator[ast.AST]:
        """Public alias of the scope-local walk (used by the flow layer)."""
        return self._scope_walk(info)

    def edges(self, uid: str, kinds: Iterable[str] = ("call",)) -> list[CallEdge]:
        wanted = set(kinds)
        return [e for e in self.edges_from.get(uid, []) if e.kind in wanted]

    def find_functions(self, qualname_suffix: str) -> list[FunctionInfo]:
        """Functions whose qualified name ends with ``qualname_suffix``
        (e.g. ``"CalculationRequest.to_dict"`` matches in any module)."""
        out = []
        for info in self.functions.values():
            if info.qualname == qualname_suffix or info.qualname.endswith(
                "." + qualname_suffix
            ):
                out.append(info)
        return out


def _annotation_type_names(annotation: ast.expr) -> list[str]:
    """Candidate class names in an annotation (``X | None``, ``Optional[X]``,
    ``list[X]`` ...), skipping typing connectives."""
    skip = {
        "None",
        "Optional",
        "Union",
        "list",
        "List",
        "tuple",
        "Tuple",
        "dict",
        "Dict",
        "Sequence",
        "Iterable",
        "Callable",
        "Any",
        "object",
        "str",
        "int",
        "float",
        "bool",
        "bytes",
    }
    names: list[str] = []
    for node in ast.walk(annotation):
        if isinstance(node, (ast.Name, ast.Attribute)):
            text = dotted_name(node)
            leaf = text.rpartition(".")[2]
            if text and leaf not in skip and leaf[:1].isupper():
                names.append(text)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # String annotation: best-effort single identifier.
            value = node.value.strip()
            if value.isidentifier() and value[:1].isupper():
                names.append(value)
    # Attribute nodes also walk their Name child; dedup preserving order.
    seen: set[str] = set()
    unique = []
    for name in names:
        if name not in seen and not any(
            other != name and other.endswith("." + name) for other in names
        ):
            seen.add(name)
            unique.append(name)
    return unique


def build_project(modules: Sequence[SourceModule]) -> Project:
    """Index ``modules`` into a :class:`Project` (symbol table + edges)."""
    return Project(modules)
