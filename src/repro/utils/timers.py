"""Hierarchical wall-clock timers with byte/FLOP counters.

The paper reports per-phase timings (K-Means / FFT / MPI / GEMM+Allreduce in
Figure 8); :class:`TimerRegistry` collects those phases with nested scopes so
the benchmark harness can print the same breakdown.  On top of wall time,
each timer can accumulate *data-movement* (bytes) and *work* (FLOP)
counters, and a registry created with ``track_allocations=True`` records
per-scope heap allocation (net and peak, via :mod:`tracemalloc`) so the
benchmark harness can prove a kernel stopped allocating per-iteration
temporaries.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


def fft_flops(n: int) -> int:
    """Standard ``5 n log2 n`` FLOP estimate for one length-``n`` FFT."""
    n = max(int(n), 1)
    return int(5 * n * math.log2(n)) if n > 1 else 0


@dataclass
class Timer:
    """Accumulating wall-clock timer for one named phase."""

    name: str
    total: float = 0.0
    count: int = 0
    bytes: int = 0
    flops: int = 0
    alloc_net: int = 0
    alloc_peak: int = 0
    _started: float | None = None

    def start(self) -> None:
        if self._started is not None:
            raise RuntimeError(f"timer {self.name!r} already running")
        self._started = time.perf_counter()

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError(f"timer {self.name!r} not running")
        elapsed = time.perf_counter() - self._started
        self._started = None
        self.total += elapsed
        self.count += 1
        return elapsed

    def add_bytes(self, n: int) -> None:
        """Record ``n`` bytes of data movement attributed to this phase."""
        self.bytes += int(n)

    def add_flops(self, n: int) -> None:
        """Record ``n`` floating-point operations attributed to this phase."""
        self.flops += int(n)

    @property
    def running(self) -> bool:
        return self._started is not None

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def gflops_per_s(self) -> float:
        """Attained compute rate (0 when either counter is empty)."""
        return self.flops / self.total / 1e9 if self.total > 0 and self.flops else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Timer({self.name!r}, total={self.total:.6f}s, count={self.count})"


class TimerRegistry:
    """A registry of named timers with nested-scope support.

    Scope names compose with ``/``:  ``with reg.scope("hamiltonian"):`` then
    ``with reg.scope("fft"):`` accumulates under ``hamiltonian/fft``.

    Parameters
    ----------
    track_allocations:
        When true, every scope also records heap allocation via
        :mod:`tracemalloc` (started lazily): ``alloc_net`` is the surviving
        allocation delta across the scope, ``alloc_peak`` the peak excess
        over the entry footprint.  Nested scopes share one peak watermark,
        so inner peaks are attributed to every enclosing scope — fine for
        the flat phase breakdowns the harness prints.
    """

    def __init__(self, *, track_allocations: bool = False) -> None:
        self._timers: dict[str, Timer] = {}
        self._stack: list[str] = []
        self.track_allocations = bool(track_allocations)
        self._started_tracemalloc = False

    def timer(self, name: str) -> Timer:
        """Return (creating if needed) the timer registered under ``name``."""
        if name not in self._timers:
            self._timers[name] = Timer(name)
        return self._timers[name]

    def current(self) -> Timer | None:
        """The timer of the innermost active scope (None outside scopes)."""
        if not self._stack:
            return None
        return self.timer("/".join(self._stack))

    def add_bytes(self, n: int, name: str | None = None) -> None:
        """Attribute bytes to ``name`` or to the innermost active scope."""
        t = self.timer(name) if name is not None else self.current()
        if t is None:
            raise RuntimeError("add_bytes outside any scope requires a name")
        t.add_bytes(n)

    def add_flops(self, n: int, name: str | None = None) -> None:
        """Attribute FLOPs to ``name`` or to the innermost active scope."""
        t = self.timer(name) if name is not None else self.current()
        if t is None:
            raise RuntimeError("add_flops outside any scope requires a name")
        t.add_flops(n)

    def _alloc_snapshot(self) -> int:
        import tracemalloc

        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        current, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        return current

    @contextmanager
    def scope(self, name: str) -> Iterator[Timer]:
        """Time a nested scope; the full path is joined with ``/``."""
        path = "/".join(self._stack + [name])
        t = self.timer(path)
        self._stack.append(name)
        before = self._alloc_snapshot() if self.track_allocations else 0
        t.start()
        try:
            yield t
        finally:
            t.stop()
            if self.track_allocations:
                import tracemalloc

                current, peak = tracemalloc.get_traced_memory()
                t.alloc_net += current - before
                t.alloc_peak = max(t.alloc_peak, peak - before)
            self._stack.pop()

    def total(self, name: str) -> float:
        """Total accumulated seconds under ``name`` (0.0 if never used)."""
        t = self._timers.get(name)
        return t.total if t is not None else 0.0

    def as_dict(self) -> dict[str, float]:
        """Snapshot of all totals, keyed by scope path."""
        return {name: t.total for name, t in self._timers.items()}

    def metrics(self) -> dict[str, dict[str, float]]:
        """Full per-phase metrics: seconds, counts, bytes, FLOPs, allocs."""
        return {
            name: {
                "seconds": t.total,
                "count": t.count,
                "bytes": t.bytes,
                "flops": t.flops,
                "alloc_net": t.alloc_net,
                "alloc_peak": t.alloc_peak,
            }
            for name, t in self._timers.items()
        }

    def reset(self) -> None:
        self._timers.clear()
        self._stack.clear()

    def report(self, indent: int = 2) -> str:
        """Human-readable multi-line report sorted by scope path."""
        lines = []
        for name in sorted(self._timers):
            t = self._timers[name]
            depth = name.count("/")
            label = name.rsplit("/", 1)[-1]
            line = f"{' ' * (indent * depth)}{label:<30s} {t.total:10.4f} s  (x{t.count})"
            extras = []
            if t.flops:
                extras.append(f"{t.flops / 1e9:.3f} GF @ {t.gflops_per_s:.2f} GF/s")
            if t.bytes:
                extras.append(f"{t.bytes / 1e6:.1f} MB moved")
            if t.alloc_peak:
                extras.append(f"peak alloc {t.alloc_peak / 1e6:.1f} MB")
            if extras:
                line += "  [" + ", ".join(extras) + "]"
            lines.append(line)
        return "\n".join(lines)


@contextmanager
def timed() -> Iterator[Timer]:
    """Time an anonymous block: ``with timed() as t: ...; t.total``."""
    t = Timer("<anonymous>")
    t.start()
    try:
        yield t
    finally:
        if t.running:
            t.stop()
