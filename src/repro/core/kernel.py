"""The Hartree-exchange-correlation operator f_Hxc (Eq. 4 of the paper).

``f_Hxc(r, r') = 1/|r - r'| + f_xc[n](r) delta(r - r')`` applied to fields
over the real-space grid: the Coulomb half is diagonal in reciprocal space
(batch FFT -> multiply 4 pi / G^2 -> batch inverse FFT, exactly lines 4-5 of
the paper's Algorithm 1) and the ALDA half is diagonal in real space.
"""

from __future__ import annotations

import numpy as np

from repro.dft.hartree import coulomb_kernel
from repro.dft.xc import lda_kernel
from repro.pw.basis import PlaneWaveBasis
from repro.utils.timers import TimerRegistry, fft_flops
from repro.utils.validation import require


class HxcKernel:
    """f_Hxc bound to a basis and a ground-state density.

    Parameters
    ----------
    basis:
        Plane-wave basis (provides the FFT grid and 4 pi/G^2).
    density:
        Ground-state density n(r) defining the ALDA kernel f_xc[n].
    include_hartree / include_xc:
        Toggles for ablation studies (RPA-like kernel = Hartree only).
    coulomb_truncation:
        ``None`` (default, periodic 4 pi/G^2) or a truncation radius in
        Bohr (pass ``"auto"`` for half the shortest box edge) — use for
        molecules in boxes so excitations do not couple to periodic
        images.
    precision:
        A precision mode string or :class:`repro.precision.PrecisionConfig`.
        When the resolved policy enables ``fft_fp32``, the Coulomb
        convolution runs through an fp32 :class:`~repro.pw.fft.ConvolutionPlan`
        (fp32 FFT scratch, fp64 result, first-apply fp64 cross-check with
        permanent fallback); otherwise the fp64 plan is used unchanged.
    """

    def __init__(
        self,
        basis: PlaneWaveBasis,
        density: np.ndarray,
        *,
        include_hartree: bool = True,
        include_xc: bool = True,
        spin: str = "singlet",
        coulomb_truncation: float | str | None = None,
        timers: TimerRegistry | None = None,
        precision=None,
    ) -> None:
        from repro.precision import resolve_precision

        precision = resolve_precision(precision)
        self.precision = precision
        require(
            density.shape == (basis.n_r,),
            f"density must have shape ({basis.n_r},), got {density.shape}",
        )
        require(spin in ("singlet", "triplet"), f"spin must be singlet/triplet, got {spin!r}")
        self.basis = basis
        self.spin = spin
        self.timers = timers
        if spin == "triplet":
            # Spin-flip response: the Hartree term cancels between the spin
            # channels; only the spin-stiffness kernel survives.
            include_hartree = False
        self.include_hartree = include_hartree
        self.include_xc = include_xc
        if include_hartree:
            # Kernel + half-spectrum slice come from the process-wide plan
            # cache: repeat kernel constructions (one HxcKernel per
            # trajectory frame) reuse the same arrays.  The truncation
            # radius is resolved *before* keying so "auto" and its explicit
            # value share a plan only when they actually coincide.
            from repro.pw.fft import default_plan_cache

            plan_dtype = np.float32 if precision.fft_fp32 else np.float64
            plan_opts = {
                "dtype": plan_dtype,
                "tol": precision.fft_tol,
                "verify": precision.verify,
            }
            if coulomb_truncation is None:
                plan = default_plan_cache().get(
                    "coulomb",
                    basis.fft,
                    lambda: coulomb_kernel(basis),
                    **plan_opts,
                )
            else:
                from repro.dft.hartree import truncated_coulomb_kernel

                radius = (
                    0.5 * float(basis.cell.lengths.min())
                    if coulomb_truncation == "auto"
                    else float(coulomb_truncation)
                )
                plan = default_plan_cache().get(
                    f"coulomb-truncated:{radius!r}",
                    basis.fft,
                    lambda: truncated_coulomb_kernel(basis, radius),
                    **plan_opts,
                )
            self._coulomb_plan = plan
            self._coulomb_g = plan.kernel
            self._coulomb_half = plan.kernel_half
        else:
            self._coulomb_plan = None
            self._coulomb_g = None
            self._coulomb_half = None
        if include_xc:
            if spin == "triplet":
                from repro.dft.xc_spin import lda_kernel_triplet

                self._fxc_r = lda_kernel_triplet(density)
            else:
                self._fxc_r = lda_kernel(density)
        else:
            self._fxc_r = None

    # -- application -------------------------------------------------------

    def apply(self, fields: np.ndarray) -> np.ndarray:
        """Apply f_Hxc to real fields of shape ``(..., N_r)`` (batched).

        The Coulomb half runs through :meth:`FourierGrid.convolve_real`
        (batch forward FFT, ``4 pi / G^2`` multiply, batch inverse — lines
        4-5 of Algorithm 1), on the engine's real fast path when available.
        """
        fields = np.asarray(fields)
        require(fields.shape[-1] == self.basis.n_r, "field/grid size mismatch")
        n_r = self.basis.n_r
        batch = int(np.prod(fields.shape[:-1], dtype=np.int64)) if fields.ndim > 1 else 1
        if self._coulomb_plan is not None:
            if self.timers is not None:
                with self.timers.scope("fhxc/coulomb_fft") as t:
                    out = self._coulomb_plan.apply(fields)
                t.add_flops(2 * batch * fft_flops(n_r))
                t.add_bytes(2 * fields.nbytes + out.nbytes)
            else:
                out = self._coulomb_plan.apply(fields)
        else:
            out = np.zeros(fields.shape, dtype=float)
        if self._fxc_r is not None:
            if self.timers is not None:
                with self.timers.scope("fhxc/alda") as t:
                    out += fields * self._fxc_r
                t.add_flops(2 * batch * n_r)
            else:
                out += fields * self._fxc_r
        return out

    def matrix_elements(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """``M[i, j] = <left_i | f_Hxc | right_j>`` for rows of fields.

        Both inputs are ``(m, N_r)`` / ``(n, N_r)``; includes the grid
        quadrature weight dV.
        """
        k_right = self.apply(right)
        return (left @ k_right.T) * self.basis.grid.dv

    @property
    def fxc_diagonal(self) -> np.ndarray | None:
        """The real-space ALDA kernel values (None when XC disabled)."""
        return self._fxc_r
