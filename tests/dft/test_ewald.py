"""Tests for the Ewald ion-ion sum."""

import numpy as np
import pytest

from repro.atoms import silicon_conventional_cell, silicon_primitive_cell
from repro.dft import ewald_energy
from repro.pw import UnitCell


def test_empty_cell_zero():
    assert ewald_energy(UnitCell.cubic(10.0)) == 0.0


def test_eta_independence():
    """The split parameter must not change the converged sum."""
    cell = silicon_primitive_cell()
    e1 = ewald_energy(cell, eta=0.25)
    e2 = ewald_energy(cell, eta=0.45)
    e3 = ewald_energy(cell)
    assert e1 == pytest.approx(e2, abs=1e-8)
    assert e1 == pytest.approx(e3, abs=1e-8)


def test_supercell_extensivity():
    cell = silicon_primitive_cell()
    sup = cell.supercell((2, 1, 1))
    assert ewald_energy(sup) == pytest.approx(2 * ewald_energy(cell), abs=1e-7)


def test_primitive_conventional_consistency():
    prim = silicon_primitive_cell()
    conv = silicon_conventional_cell()
    assert ewald_energy(conv) == pytest.approx(4 * ewald_energy(prim), abs=1e-7)


def test_silicon_reference_value():
    """Quantum-Espresso reports 'ewald contribution ~ -16.80 Ry' for the
    2-atom Si cell at a = 10.2625 Bohr, i.e. about -4.20 Ha per atom."""
    cell = silicon_primitive_cell()
    per_atom = ewald_energy(cell) / cell.n_atoms
    assert per_atom == pytest.approx(-4.199, abs=0.005)


def test_scaling_with_lattice_constant():
    """Coulomb energy scales as 1/a for a rigid rescale."""
    a = silicon_primitive_cell(10.0)
    b = silicon_primitive_cell(20.0)
    assert ewald_energy(a) == pytest.approx(2 * ewald_energy(b), abs=1e-7)
