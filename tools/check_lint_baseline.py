#!/usr/bin/env python
"""Committed lint baseline: no new findings, no silently-vanished rules.

Runs the full ``repro.lint`` pass (file + project rules) over ``src`` and
diffs the result against ``tools/lint_baseline.json``:

* a finding not in the baseline **fails** — new lint debt must be fixed or
  suppressed-with-reason, never accumulated,
* a rule present in the baseline's ``rules_enabled`` inventory but missing
  from the live registry **fails** — a rule that stops registering (refactor
  accident, import error swallowed somewhere) would otherwise pass CI
  forever as "zero findings",
* a live rule missing from the baseline inventory **fails** — new rules
  must be blessed explicitly so the baseline stays a reviewed artifact,
* findings present in the baseline but no longer produced are reported as
  shrinkage (informational) — re-bless to keep the file tight.

Usage::

    python tools/check_lint_baseline.py            # verify (exit 1 on drift)
    python tools/check_lint_baseline.py --update   # re-bless the baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(_TOOLS_DIR)
BASELINE_PATH = os.path.join(_TOOLS_DIR, "lint_baseline.json")
_SRC_DIR = os.path.join(REPO_ROOT, "src")

#: Paths the baseline covers (repo-relative).
LINTED_PATHS = ("src",)

#: Rules that must ALWAYS register, baseline or not.  The array-contract
#: pass is the load-bearing verifier of the hot-path kernels; if any of
#: these stops registering the whole static contract story silently dies,
#: so the guard is hard-coded here rather than trusted to the (updatable)
#: baseline inventory.
REQUIRED_RULES = (
    "collective-buffer-contract",
    "hidden-copy-into-kernel",
    "shape-mismatch",
    "silent-upcast-in-hot",
)


def current_state() -> dict:
    """The live lint result in the committed-baseline shape."""
    if _SRC_DIR not in sys.path:
        sys.path.insert(0, _SRC_DIR)
    from repro.lint import lint_paths, rule_inventory

    findings = lint_paths([os.path.join(REPO_ROOT, p) for p in LINTED_PATHS])
    return {
        "paths": list(LINTED_PATHS),
        "rules_enabled": rule_inventory(),
        "findings": sorted(
            f"{os.path.relpath(f.path, REPO_ROOT)}:{f.line}: {f.rule}: {f.message}"
            for f in findings
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="re-bless tools/lint_baseline.json from the live run")
    args = parser.parse_args(argv)

    state = current_state()
    missing_required = sorted(
        set(REQUIRED_RULES) - set(state["rules_enabled"])
    )
    if missing_required:
        for rule in missing_required:
            print(f"lint-baseline: required rule {rule!r} does not register "
                  "— the array-contract pass is broken")
        return 1
    if args.update:
        with open(BASELINE_PATH, "w", encoding="utf-8") as fh:
            json.dump(state, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"lint-baseline: blessed {len(state['findings'])} finding(s), "
              f"{len(state['rules_enabled'])} rule(s)")
        return 0

    if not os.path.exists(BASELINE_PATH):
        print("lint-baseline: tools/lint_baseline.json is missing; "
              "run with --update to create it")
        return 1
    with open(BASELINE_PATH, encoding="utf-8") as fh:
        baseline = json.load(fh)

    problems: list[str] = []
    vanished_rules = sorted(
        set(baseline.get("rules_enabled", [])) - set(state["rules_enabled"])
    )
    for rule in vanished_rules:
        problems.append(
            f"rule {rule!r} is in the baseline but no longer registers — "
            "a lint pass silently vanished"
        )
    unblessed_rules = sorted(
        set(state["rules_enabled"]) - set(baseline.get("rules_enabled", []))
    )
    for rule in unblessed_rules:
        problems.append(
            f"rule {rule!r} registers but is not in the baseline — "
            "bless it with --update"
        )
    new_findings = sorted(
        set(state["findings"]) - set(baseline.get("findings", []))
    )
    for finding in new_findings:
        problems.append(f"new finding: {finding}")

    fixed = sorted(set(baseline.get("findings", [])) - set(state["findings"]))
    if fixed:
        print(f"lint-baseline: {len(fixed)} baseline finding(s) no longer "
              "fire; run --update to shrink the baseline")

    if problems:
        print("lint-baseline: drift against tools/lint_baseline.json:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"lint-baseline: ok ({len(state['rules_enabled'])} rules, "
          f"{len(state['findings'])} blessed finding(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
