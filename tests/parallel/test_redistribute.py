"""Tests for layout redistribution (alltoall transposes, pdgemr2d analogue)."""

import numpy as np
import pytest

from repro.parallel import (
    BlockCyclic2D,
    BlockDistribution1D,
    allgather_rows,
    gather_matrix,
    row_block_to_block_cyclic,
    spmd_run,
    transpose_to_column_block,
    transpose_to_row_block,
)


@pytest.fixture()
def matrix(rng):
    return rng.standard_normal((30, 14))


def _row_slab(matrix, dist, rank):
    return matrix[dist.local_slice(rank)]


class TestTranspose:
    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 4])
    def test_row_to_column_block(self, matrix, n_ranks):
        rows, cols = matrix.shape
        row_dist = BlockDistribution1D(rows, n_ranks)
        col_dist = BlockDistribution1D(cols, n_ranks)

        def prog(comm):
            slab = _row_slab(matrix, row_dist, comm.rank)
            return transpose_to_column_block(comm, slab, row_dist, col_dist)

        results = spmd_run(n_ranks, prog)
        for rank, block in enumerate(results):
            expect = matrix[:, col_dist.local_slice(rank)]
            np.testing.assert_array_equal(block, expect)

    @pytest.mark.parametrize("n_ranks", [1, 2, 4])
    def test_roundtrip(self, matrix, n_ranks):
        rows, cols = matrix.shape
        row_dist = BlockDistribution1D(rows, n_ranks)
        col_dist = BlockDistribution1D(cols, n_ranks)

        def prog(comm):
            slab = _row_slab(matrix, row_dist, comm.rank)
            col_block = transpose_to_column_block(comm, slab, row_dist, col_dist)
            back = transpose_to_row_block(comm, col_block, row_dist, col_dist)
            return np.array_equal(back, slab)

        assert all(spmd_run(n_ranks, prog))

    def test_shape_validation(self, matrix):
        row_dist = BlockDistribution1D(30, 2)
        col_dist = BlockDistribution1D(14, 2)

        def prog(comm):
            bad = np.zeros((5, 14))
            transpose_to_column_block(comm, bad, row_dist, col_dist)

        with pytest.raises(ValueError, match="slab shape"):
            spmd_run(2, prog)

    def test_traffic_volume_matches_off_diagonal_data(self, matrix):
        """Alltoall must move exactly the off-diagonal tiles of the slab."""
        row_dist = BlockDistribution1D(30, 3)
        col_dist = BlockDistribution1D(14, 3)

        def prog(comm):
            slab = _row_slab(matrix, row_dist, comm.rank)
            transpose_to_column_block(comm, slab, row_dist, col_dist)

        _, traffic = spmd_run(3, prog, return_traffic=True)
        expected = sum(
            row_dist.count(src) * col_dist.count(dst) * 8
            for src in range(3)
            for dst in range(3)
            if src != dst
        )
        assert traffic.bytes_by_op["alltoall"] == expected


class TestGathers:
    def test_allgather_rows(self, matrix):
        dist = BlockDistribution1D(30, 4)

        def prog(comm):
            return allgather_rows(comm, _row_slab(matrix, dist, comm.rank), dist)

        for result in spmd_run(4, prog):
            np.testing.assert_array_equal(result, matrix)

    def test_gather_matrix_root_only(self, matrix):
        dist = BlockDistribution1D(30, 3)

        def prog(comm):
            return gather_matrix(comm, _row_slab(matrix, dist, comm.rank), dist)

        results = spmd_run(3, prog)
        np.testing.assert_array_equal(results[0], matrix)
        assert results[1] is None and results[2] is None


class TestBlockCyclicRedistribution:
    @pytest.mark.parametrize("n_ranks,p_rows,p_cols", [(2, 2, 1), (4, 2, 2), (6, 2, 3)])
    def test_matches_direct_extraction(self, rng, n_ranks, p_rows, p_cols):
        matrix = rng.standard_normal((16, 12))
        row_dist = BlockDistribution1D(16, n_ranks)
        desc = BlockCyclic2D(16, 12, mb=3, nb=2, p_rows=p_rows, p_cols=p_cols)

        def prog(comm):
            slab = matrix[row_dist.local_slice(comm.rank)]
            return row_block_to_block_cyclic(comm, slab, row_dist, desc)

        tiles = spmd_run(n_ranks, prog)
        for rank, tile in enumerate(tiles):
            np.testing.assert_array_equal(tile, desc.extract_local(matrix, rank))

    def test_assemble_recovers_global(self, rng):
        matrix = rng.standard_normal((10, 10))
        row_dist = BlockDistribution1D(10, 4)
        desc = BlockCyclic2D(10, 10, mb=2, nb=2, p_rows=2, p_cols=2)

        def prog(comm):
            slab = matrix[row_dist.local_slice(comm.rank)]
            return row_block_to_block_cyclic(comm, slab, row_dist, desc)

        tiles = spmd_run(4, prog)
        np.testing.assert_array_equal(desc.assemble_global(tiles), matrix)
