"""Measured thread vs process SPMD backend benchmark.

Runs the same rank programs under both ``spmd_run`` backends:

* a GIL-bound pure-Python workload (where process-per-rank is the only
  way to real parallelism),
* the pipelined GEMM + nonblocking Reduce of ``pipelined_vhxc_rows``
  (exercising the zero-copy shared-memory transport and compute/comm
  overlap),

and writes a machine-readable report (default ``BENCH_spmd.json`` at the
repo root) with per-rank-count wall times, speedups, the process/thread
ratio, and the transport split: logical bytes vs bytes shared zero-copy
vs bytes pickled.  Interpret wall times against ``meta.cpu_count`` — on a
single-core host all ranks time-slice one CPU and process-per-rank cannot
beat threads; see ``docs/parallelism.md``.

Usage::

    PYTHONPATH=src python benchmarks/bench_spmd.py [--smoke] [--ranks 1,2,4,8] [--out PATH]
"""

from __future__ import annotations

import argparse
import pathlib
import sys


def main(argv=None) -> int:
    from repro.perf.spmd_bench import (
        format_summary,
        run_spmd_bench,
        write_report,
    )

    default_out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_spmd.json"
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI (seconds, not minutes)")
    parser.add_argument("--ranks", default="1,2,4,8",
                        help="comma-separated rank counts to sweep")
    parser.add_argument("--out", default=str(default_out),
                        help=f"JSON report path (default: {default_out})")
    args = parser.parse_args(argv)

    ranks = tuple(int(r) for r in args.ranks.split(","))
    report = run_spmd_bench(smoke=args.smoke, ranks=ranks)
    print(format_summary(report))
    write_report(report, args.out)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
