"""Tests for G-vector generation and the cutoff sphere."""

import numpy as np
import pytest

from repro.pw import GVectors, RealSpaceGrid, UnitCell
from repro.pw.gvectors import fft_integer_frequencies


@pytest.fixture()
def gvec():
    cell = UnitCell.cubic(8.0)
    grid = RealSpaceGrid(cell, (12, 12, 12))
    return GVectors(grid, ecut=4.0)


def test_fft_integer_frequencies_layout():
    np.testing.assert_array_equal(fft_integer_frequencies(4), [0, 1, -2, -1])
    np.testing.assert_array_equal(fft_integer_frequencies(5), [0, 1, 2, -2, -1])


def test_miller_shape(gvec):
    assert gvec.miller.shape == (gvec.grid.n_points, 3)


def test_g_zero_is_first_grid_point(gvec):
    np.testing.assert_array_equal(gvec.miller[0], [0, 0, 0])
    assert gvec.g2[0] == 0.0


def test_sphere_within_cutoff(gvec):
    assert (gvec.g2_sphere <= 2.0 * gvec.ecut + 1e-9).all()


def test_points_outside_sphere_exceed_cutoff(gvec):
    mask = np.ones(gvec.grid.n_points, dtype=bool)
    mask[gvec.sphere] = False
    assert (gvec.g2[mask] > 2.0 * gvec.ecut).all()


def test_sphere_is_inversion_symmetric(gvec):
    """Needed for realifiable Gamma-point orbitals: G in sphere => -G in sphere."""
    miller_set = {tuple(m) for m in gvec.miller[gvec.sphere]}
    for m in miller_set:
        assert (-m[0], -m[1], -m[2]) in miller_set


def test_sphere_sorted_by_magnitude(gvec):
    g2 = gvec.g2_sphere
    assert (np.diff(np.round(g2, 10)) >= 0).all()


def test_pw_count_matches_analytic_estimate():
    """N_pw ~ Omega * (2 Ecut)^(3/2) / (6 pi^2) for large spheres."""
    cell = UnitCell.cubic(12.0)
    grid = RealSpaceGrid.from_cutoff(cell, 10.0)
    gvec = GVectors(grid, 10.0)
    estimate = cell.volume * (2 * 10.0) ** 1.5 / (6 * np.pi**2)
    assert gvec.n_pw == pytest.approx(estimate, rel=0.05)


def test_structure_factor_at_origin_is_one(gvec):
    sf = gvec.structure_factor(np.zeros(3))
    np.testing.assert_allclose(sf, 1.0)


def test_structure_factor_translation_phase(gvec):
    """S(G; tau) for tau = half lattice vector flips sign of odd Miller rows."""
    sf = gvec.structure_factor(np.array([0.5, 0.0, 0.0]))
    odd = gvec.miller[:, 0] % 2 == 1
    np.testing.assert_allclose(sf[odd].real, -1.0, atol=1e-12)
    np.testing.assert_allclose(sf[~odd].real, 1.0, atol=1e-12)


def test_structure_factor_sphere_consistent(gvec):
    tau = np.array([0.3, 0.1, 0.7])
    full = gvec.structure_factor(tau)
    np.testing.assert_allclose(gvec.structure_factor_sphere(tau), full[gvec.sphere])


def test_g_vectors_match_miller_times_reciprocal(gvec):
    recon = gvec.miller @ gvec.cell.reciprocal_lattice
    np.testing.assert_allclose(gvec.g, recon)
