"""Tests for data-distribution descriptors (paper Figure 3)."""

import numpy as np
import pytest

from repro.parallel import BlockCyclic2D, BlockDistribution1D


class TestBlockDistribution1D:
    def test_counts_sum_to_global(self):
        d = BlockDistribution1D(17, 4)
        assert d.counts().sum() == 17

    def test_near_even_split(self):
        d = BlockDistribution1D(10, 3)
        assert d.counts().tolist() == [4, 3, 3]

    def test_displacements_consistent(self):
        d = BlockDistribution1D(13, 4)
        for r in range(1, 4):
            assert d.displacement(r) == d.displacement(r - 1) + d.count(r - 1)

    def test_owner_matches_slices(self):
        d = BlockDistribution1D(23, 5)
        for i in range(23):
            r = d.owner(i)
            s = d.local_slice(r)
            assert s.start <= i < s.stop

    def test_owner_out_of_range(self):
        with pytest.raises(ValueError):
            BlockDistribution1D(5, 2).owner(5)

    def test_more_ranks_than_items(self):
        d = BlockDistribution1D(2, 5)
        assert d.counts().tolist() == [1, 1, 0, 0, 0]

    def test_global_indices(self):
        d = BlockDistribution1D(10, 3)
        np.testing.assert_array_equal(d.global_indices(1), [4, 5, 6])

    def test_empty_distribution(self):
        d = BlockDistribution1D(0, 3)
        assert d.counts().tolist() == [0, 0, 0]


class TestBlockCyclic2D:
    @pytest.fixture()
    def desc(self):
        return BlockCyclic2D(m=10, n=12, mb=2, nb=3, p_rows=2, p_cols=2)

    def test_grid_coords_row_major(self, desc):
        assert desc.grid_coords(0) == (0, 0)
        assert desc.grid_coords(1) == (0, 1)
        assert desc.grid_coords(2) == (1, 0)

    def test_owner_cyclic_pattern(self, desc):
        # Block (0,0) -> rank 0; next row block -> process row 1.
        assert desc.owner(0, 0) == 0
        assert desc.owner(2, 0) == 2
        assert desc.owner(0, 3) == 1
        assert desc.owner(4, 0) == 0  # wraps around

    def test_every_entry_has_exactly_one_owner(self, desc):
        coverage = np.zeros((desc.m, desc.n), dtype=int)
        for rank in range(desc.n_ranks):
            rows = desc.local_rows(rank)
            cols = desc.local_cols(rank)
            coverage[np.ix_(rows, cols)] += 1
        np.testing.assert_array_equal(coverage, 1)

    def test_local_shapes_sum_to_global(self, desc):
        total = sum(
            desc.local_shape(r)[0] * desc.local_shape(r)[1]
            for r in range(desc.n_ranks)
        )
        assert total == desc.m * desc.n

    def test_extract_assemble_roundtrip(self, desc, rng):
        matrix = rng.standard_normal((desc.m, desc.n))
        tiles = [desc.extract_local(matrix, r) for r in range(desc.n_ranks)]
        np.testing.assert_array_equal(desc.assemble_global(tiles), matrix)

    def test_extract_wrong_shape(self, desc):
        with pytest.raises(ValueError):
            desc.extract_local(np.zeros((3, 3)), 0)

    def test_bad_rank(self, desc):
        with pytest.raises(ValueError):
            desc.grid_coords(desc.n_ranks)
