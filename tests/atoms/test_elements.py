"""Tests for element data."""

import pytest

from repro.atoms import get_element
from repro.atoms.elements import valence_electron_count


@pytest.mark.parametrize(
    "symbol,z,valence", [("H", 1, 1), ("C", 6, 4), ("O", 8, 6), ("Si", 14, 4)]
)
def test_table_entries(symbol, z, valence):
    e = get_element(symbol)
    assert e.atomic_number == z
    assert e.valence == valence


def test_unknown_element_lists_available():
    with pytest.raises(KeyError, match="Si"):
        get_element("Xx")


def test_valence_electron_count_water():
    assert valence_electron_count(("O", "H", "H")) == 8


def test_valence_electron_count_silicon():
    assert valence_electron_count(("Si",) * 8) == 32
