"""Plane-wave Kohn-Sham DFT substrate (the paper's PWDFT ground-state step).

LR-TDDFT consumes ground-state orbital energies and real-space orbitals;
this subpackage produces them: LDA exchange-correlation, G-space Poisson
solve, a matrix-free KS Hamiltonian, Anderson-mixed SCF and a
:class:`GroundState` container.
"""

from repro.dft.xc import (
    lda_energy_density,
    lda_kernel,
    lda_potential,
    xc_energy,
)
from repro.dft.hartree import hartree_energy, hartree_potential
from repro.dft.density import atomic_guess_density, density_from_orbitals
from repro.dft.hamiltonian import KohnShamHamiltonian, local_pseudopotential_real
from repro.dft.mixing import AndersonMixer, LinearMixer
from repro.dft.ewald import ewald_energy
from repro.dft.groundstate import GroundState
from repro.dft.io import load_ground_state, save_ground_state
from repro.dft.scf import SCFOptions, SCFResultInfo, SCFWarmStart, run_scf
from repro.dft.scf_spin import SpinGroundState, run_scf_spin
from repro.dft.bands import BandStructure, band_structure, bands_at_k

__all__ = [
    "lda_energy_density",
    "lda_potential",
    "lda_kernel",
    "xc_energy",
    "hartree_potential",
    "hartree_energy",
    "density_from_orbitals",
    "atomic_guess_density",
    "KohnShamHamiltonian",
    "local_pseudopotential_real",
    "LinearMixer",
    "AndersonMixer",
    "ewald_energy",
    "GroundState",
    "save_ground_state",
    "load_ground_state",
    "SCFOptions",
    "SCFResultInfo",
    "SCFWarmStart",
    "run_scf",
    "SpinGroundState",
    "run_scf_spin",
    "BandStructure",
    "band_structure",
    "bands_at_k",
]
