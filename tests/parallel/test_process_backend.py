"""Process-per-rank backend: bit-identity with threads, faults, cleanup.

Every test here runs real forked processes, so the file carries the
``process_backend`` marker (deselect with ``-m "not process_backend"`` on
platforms without fork).
"""

import os
import pickle

import numpy as np
import pytest

from repro.parallel import (
    BlockCyclic2D,
    BlockDistribution1D,
    CommTraffic,
    distributed_kmeans,
    distributed_isdf_vtilde,
    distributed_lrtddft_solve,
    resolve_backend,
    row_block_to_block_cyclic,
    spmd_run,
    spmd_run_resilient,
    transpose_to_column_block,
    transpose_to_row_block,
)
from repro.parallel.parallel_lobpcg import distributed_lobpcg
from repro.parallel.pipeline import pipelined_vhxc_rows
from repro.resilience.faults import FaultInjector, FaultSpec, InjectedRankFailure
from repro.resilience.policies import RetryPolicy

pytestmark = pytest.mark.process_backend


def _shm_residue():
    return [f for f in os.listdir("/dev/shm") if f.startswith("reprospmd")]


def both_backends(n_ranks, prog, **kwargs):
    """Run under both backends; returns (thread_results, process_results)."""
    thread = spmd_run(n_ranks, prog, backend="thread", **kwargs)
    process = spmd_run(n_ranks, prog, backend="process", **kwargs)
    return thread, process


class TestBackendSelection:
    def test_resolve_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPMD_BACKEND", raising=False)
        assert resolve_backend(None) == "thread"
        monkeypatch.setenv("REPRO_SPMD_BACKEND", "process")
        assert resolve_backend(None) == "process"
        assert resolve_backend("thread") == "thread"  # argument wins
        with pytest.raises(ValueError, match="unknown SPMD backend"):
            resolve_backend("mpi")

    def test_env_var_reaches_spmd_run(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPMD_BACKEND", "bogus")
        with pytest.raises(ValueError, match="unknown SPMD backend"):
            spmd_run(2, lambda comm: comm.rank)

    def test_sanitizer_supported_on_process_backend(self):
        # Historically rejected with NotImplementedError; now backed by
        # the shared-memory ProcessSpmdSanitizer (tests in
        # test_process_sanitizer.py).
        assert spmd_run(
            2, lambda comm: comm.allreduce(comm.rank), sanitize=True,
            backend="process",
        ) == [1, 1]


class TestCollectiveBitIdentity:
    @pytest.mark.parametrize("n_ranks", [1, 3])
    def test_all_collectives(self, rng, n_ranks):
        payload = rng.standard_normal((n_ranks, 5, 3))

        def prog(comm):
            mine = payload[comm.rank]
            out = {
                "bcast": comm.bcast(payload[0] if comm.rank == 0 else None),
                "allreduce": comm.allreduce(mine),
                "reduce": comm.reduce(mine, root=n_ranks - 1),
                "allgather": comm.allgather(mine),
                "alltoall": comm.alltoall([mine + d for d in range(comm.size)]),
                "scatter": comm.scatter(
                    list(payload) if comm.rank == 0 else None
                ),
                "ireduce": comm.ireduce(mine, root=0).wait(),
            }
            gathered = comm.gather(mine, root=0)
            out["gather"] = gathered
            return {
                k: (
                    [np.array(x) for x in v]
                    if isinstance(v, list)
                    else (None if v is None else np.array(v))
                )
                for k, v in out.items()
            }

        thread, process = both_backends(n_ranks, prog)
        for t_rank, p_rank in zip(thread, process):
            for key in t_rank:
                t_val, p_val = t_rank[key], p_rank[key]
                if t_val is None:
                    assert p_val is None, key
                elif isinstance(t_val, list):
                    for a, b in zip(t_val, p_val):
                        np.testing.assert_array_equal(a, b, err_msg=key)
                else:
                    np.testing.assert_array_equal(t_val, p_val, err_msg=key)

    def test_p2p_roundtrip(self):
        def prog(comm):
            comm.send(np.full(3, comm.rank + 0.5), (comm.rank + 1) % comm.size)
            return comm.recv((comm.rank - 1) % comm.size)

        thread, process = both_backends(3, prog)
        for a, b in zip(thread, process):
            np.testing.assert_array_equal(a, b)


class TestTrafficMerge:
    def test_traffic_is_picklable_and_mergeable(self):
        t = CommTraffic()
        t.record("bcast", 100)
        t.record_transport("bcast", shm_bytes=80, pickled_bytes=20)
        clone = pickle.loads(pickle.dumps(t))
        clone.record("bcast", 50)
        merged = CommTraffic().merge(t).merge(clone)
        assert merged.bytes_by_op["bcast"] == 250
        assert merged.calls_by_op["bcast"] == 3
        assert merged.zero_copy_bytes == 160
        assert merged.pickled_bytes == 40
        merged.record("reduce", 1)  # re-created lock still works

    @pytest.mark.parametrize("n_ranks", [1, 2, 4])
    def test_logical_traffic_identical_across_backends(self, rng, n_ranks):
        data = rng.standard_normal((8, 6))

        def prog(comm):
            comm.bcast(data if comm.rank == 0 else None)
            comm.allreduce(data[comm.rank])
            comm.alltoall([data[: comm.size]] * comm.size)
            comm.allgather(data[comm.rank])
            comm.ireduce(data[comm.rank], root=0).wait()
            return None

        _, t_traffic = spmd_run(
            n_ranks, prog, backend="thread", return_traffic=True
        )
        _, p_traffic = spmd_run(
            n_ranks, prog, backend="process", return_traffic=True
        )
        assert t_traffic.bytes_by_op == p_traffic.bytes_by_op
        assert t_traffic.calls_by_op == p_traffic.calls_by_op
        if n_ranks > 1:
            assert p_traffic.zero_copy_bytes > 0
        assert t_traffic.zero_copy_bytes == 0  # threads share one heap


class TestRedistributeBitIdentity:
    """The alltoall transposes on deliberately ragged distributions."""

    @pytest.fixture()
    def matrix(self, rng):
        return rng.standard_normal((31, 13))  # indivisible by 3 ranks

    @pytest.mark.parametrize("n_ranks", [2, 3])
    def test_transpose_pair(self, matrix, n_ranks):
        rows, cols = matrix.shape
        row_dist = BlockDistribution1D(rows, n_ranks)
        col_dist = BlockDistribution1D(cols, n_ranks)

        def prog(comm):
            slab = matrix[row_dist.local_slice(comm.rank)]
            col_block = transpose_to_column_block(comm, slab, row_dist, col_dist)
            back = transpose_to_row_block(comm, col_block, row_dist, col_dist)
            return np.array(col_block), np.array(back)

        thread, process = both_backends(n_ranks, prog)
        for (t_col, t_back), (p_col, p_back) in zip(thread, process):
            np.testing.assert_array_equal(t_col, p_col)
            np.testing.assert_array_equal(t_back, p_back)

    def test_block_cyclic(self, rng):
        matrix = rng.standard_normal((11, 9))
        row_dist = BlockDistribution1D(11, 4)
        desc = BlockCyclic2D(11, 9, mb=2, nb=2, p_rows=2, p_cols=2)

        def prog(comm):
            slab = matrix[row_dist.local_slice(comm.rank)]
            return np.array(
                row_block_to_block_cyclic(comm, slab, row_dist, desc)
            )

        thread, process = both_backends(4, prog)
        for t_tile, p_tile in zip(thread, process):
            np.testing.assert_array_equal(t_tile, p_tile)


class TestPipelineBitIdentity:
    @pytest.mark.parametrize("n_ranks", [2, 3])
    def test_ragged_rows(self, rng, n_ranks):
        n_pairs = 23  # indivisible: ragged output ownership
        z = rng.standard_normal((n_pairs, n_pairs))
        k = rng.standard_normal((n_pairs, n_pairs))
        dist = BlockDistribution1D(n_pairs, n_ranks)

        def prog(comm):
            sl = dist.local_slice(comm.rank)
            my_rows, _ = pipelined_vhxc_rows(comm, z[sl], k[sl], 1e-3)
            return np.array(my_rows)

        thread, process = both_backends(n_ranks, prog)
        for t_rows, p_rows in zip(thread, process):
            np.testing.assert_array_equal(t_rows, p_rows)


class TestAlgorithmBitIdentity:
    """The paper's distributed algorithms end to end on both backends."""

    def test_distributed_kmeans(self, si8_synthetic):
        gs = si8_synthetic
        from repro.core import pair_weights

        psi_v, _, psi_c, _ = gs.select_transition_space()
        w = pair_weights(psi_v, psi_c)
        keep = np.flatnonzero(w >= 1e-6 * w.max())
        points, weights = gs.basis.grid.cartesian_points[keep], w[keep]
        dist = BlockDistribution1D(len(points), 3)

        def prog(comm):
            sl = dist.local_slice(comm.rank)
            c, labels, inertia, n_iter, conv = distributed_kmeans(
                comm, points[sl], weights[sl], 12, dist
            )
            return np.array(c), np.array(labels), inertia, n_iter, conv

        thread, process = both_backends(3, prog)
        for t, p in zip(thread, process):
            np.testing.assert_array_equal(t[0], p[0])
            np.testing.assert_array_equal(t[1], p[1])
            assert t[2] == p[2] and t[3] == p[3] and t[4] == p[4]

    def test_isdf_two_stage(self, si8_synthetic):
        gs = si8_synthetic
        from repro.core import HxcKernel, isdf_decompose
        from repro.utils.rng import default_rng

        psi_v, _, psi_c, _ = gs.select_transition_space(8, 6)
        kernel = HxcKernel(gs.basis, gs.density)
        isdf = isdf_decompose(
            psi_v, psi_c, 40, method="kmeans",
            grid_points=gs.basis.grid.cartesian_points, rng=default_rng(5),
        )
        dist = BlockDistribution1D(gs.basis.n_r, 2)

        def prog(comm):
            theta_local = isdf.theta[dist.local_slice(comm.rank)]
            return np.array(
                distributed_isdf_vtilde(comm, theta_local, kernel, dist)
            )

        thread, process = both_backends(2, prog)
        for t_v, p_v in zip(thread, process):
            np.testing.assert_array_equal(t_v, p_v)

    def test_distributed_lobpcg(self):
        from repro.utils.rng import default_rng

        rng = default_rng(0)
        n, k = 60, 3
        a = rng.standard_normal((n, n))
        a = (a + a.T) / 2 + np.diag(np.arange(n, dtype=float))
        x0 = rng.standard_normal((n, k))
        dist = BlockDistribution1D(n, 2)

        def prog(comm):
            rows = dist.local_slice(comm.rank)

            def apply_local(x_local):
                x_full = np.concatenate(comm.allgather(x_local), axis=0)
                return a[rows] @ x_full

            res = distributed_lobpcg(
                comm, apply_local, x0[rows], tol=1e-9, max_iter=200
            )
            return np.array(res.eigenvalues), np.array(res.eigenvectors)

        thread, process = both_backends(2, prog)
        for (t_e, t_x), (p_e, p_x) in zip(thread, process):
            np.testing.assert_array_equal(t_e, p_e)
            np.testing.assert_array_equal(t_x, p_x)

    def test_lrtddft_driver(self, si8_synthetic):
        gs = si8_synthetic
        from repro.core import HxcKernel

        psi_v, eps_v, psi_c, eps_c = gs.select_transition_space(8, 6)
        kernel = HxcKernel(gs.basis, gs.density)
        dist = BlockDistribution1D(gs.basis.n_r, 2)

        def prog(comm):
            sl = dist.local_slice(comm.rank)
            evals, evecs = distributed_lrtddft_solve(
                comm, psi_v[:, sl], psi_c[:, sl], eps_v, eps_c, kernel, dist, 4
            )
            return np.array(evals), np.array(evecs)

        thread, process = both_backends(2, prog)
        for (t_e, t_v), (p_e, p_v) in zip(thread, process):
            np.testing.assert_array_equal(t_e, p_e)
            np.testing.assert_array_equal(t_v, p_v)


class TestFaultsAndCleanup:
    def test_error_propagates_with_type(self):
        def bad(comm):
            if comm.rank == 1:
                raise KeyError("lost key on rank 1")
            comm.barrier()

        with pytest.raises(KeyError, match="lost key on rank 1"):
            spmd_run(3, bad, backend="process")
        assert _shm_residue() == []

    def test_kill_rank_mid_alltoall_leaves_no_shm_residue(self):
        inj = FaultInjector(
            [FaultSpec(kind="kill_rank", rank=1, step=0, op="alltoall")]
        )

        def prog(comm):
            chunks = [np.full((64, 8), float(comm.rank)) for _ in range(comm.size)]
            got = comm.alltoall(chunks)
            return float(sum(g.sum() for g in got))

        with pytest.raises(InjectedRankFailure) as excinfo:
            spmd_run(3, prog, fault_injector=inj, backend="process")
        assert excinfo.value.rank == 1 and excinfo.value.op == "alltoall"
        assert _shm_residue() == []
        # One-shot spec was consumed inside the forked rank and merged
        # back, so the resilient retry completes cleanly.
        results = spmd_run_resilient(
            3, prog, policy=RetryPolicy(max_retries=1, backoff=0.0),
            fault_injector=inj, backend="process",
        )
        ref = spmd_run(3, prog, backend="thread")
        assert results == ref
        assert _shm_residue() == []

    def test_injected_failure_pickles_faithfully(self):
        exc = InjectedRankFailure(2, "allreduce", 5)
        clone = pickle.loads(pickle.dumps(exc))
        assert (clone.rank, clone.op, clone.step) == (2, "allreduce", 5)
        assert str(clone) == str(exc)

    def test_corrupt_reduce_consumed_across_fork(self):
        inj = FaultInjector([FaultSpec(kind="corrupt_reduce", rank=0, op="allreduce")])

        def prog(comm):
            return float(comm.allreduce(np.ones(4)).sum())

        out = spmd_run(2, prog, fault_injector=inj, backend="process")
        assert all(np.isnan(v) for v in out)
        assert inj._specs[0].triggered == 1
        # spec consumed: a second run is clean
        out2 = spmd_run(2, prog, fault_injector=inj, backend="process")
        assert out2 == [8.0, 8.0]
