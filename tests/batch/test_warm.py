"""Unit tests for the cross-frame warm-start state machine.

These run on small synthetic arrays (no SCF); the end-to-end behaviour of
the warm starts inside real pipelines is covered by
``tests/batch/test_engine.py``.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.batch import BatchWarmState, assignment_drift
from repro.core.driver import TDDFTWarmStart
from repro.core.kmeans import classify_points


class TestAssignmentDrift:
    def test_identical_clustering_is_zero(self):
        idx = np.array([0, 2, 5, 7])
        labels = np.array([0, 0, 1, 1])
        assert assignment_drift(idx, labels, idx, labels) == 0.0

    def test_disjoint_candidate_sets_is_one(self):
        assert assignment_drift(
            np.array([0, 1]), np.array([0, 0]),
            np.array([2, 3]), np.array([0, 0]),
        ) == 1.0

    def test_label_changes_count(self):
        idx = np.array([0, 1, 2, 3])
        old = np.array([0, 0, 1, 1])
        new = np.array([0, 1, 1, 1])  # candidate 1 moved clusters
        assert assignment_drift(idx, old, idx, new) == pytest.approx(0.25)

    def test_membership_changes_count(self):
        # Same labels on the common part, but the new set dropped candidate 3
        # and picked up candidate 4: 2 changed members over a union of 5.
        old_idx = np.array([0, 1, 2, 3])
        old = np.array([0, 0, 1, 1])
        new_idx = np.array([0, 1, 2, 4])
        new = np.array([0, 0, 1, 1])
        assert assignment_drift(old_idx, old, new_idx, new) == pytest.approx(0.4)

    def test_empty_union_is_zero(self):
        empty_i = np.array([], dtype=int)
        empty_l = np.array([], dtype=int)
        assert assignment_drift(empty_i, empty_l, empty_i, empty_l) == 0.0


def _fake_gs(density, *, dv=1.0, orbitals="orb"):
    density = np.asarray(density, dtype=float)
    return SimpleNamespace(
        density=density,
        n_electrons=float(density.sum()) * dv,
        basis=SimpleNamespace(grid=SimpleNamespace(dv=dv)),
        orbitals_real=orbitals,
    )


class TestBatchWarmStateSCF:
    def test_no_warm_start_before_first_frame(self):
        state = BatchWarmState()
        assert state.scf_warm_start() is None
        assert state.tddft_warm_start(solver=None) is None

    def test_carry_mode_returns_previous_density(self):
        state = BatchWarmState(density_extrapolation="none")
        rho = np.array([1.0, 2.0, 3.0])
        state.observe(_fake_gs(rho))
        warm = state.scf_warm_start()
        np.testing.assert_array_equal(warm.density, rho)
        assert warm.orbitals_real == "orb"
        assert warm.residual_hint == pytest.approx(state.residual_hint_floor)

    def test_linear_extrapolation(self):
        state = BatchWarmState(density_extrapolation="linear")
        r1 = np.array([1.0, 2.0, 3.0])
        r2 = np.array([1.5, 2.0, 2.5])  # same norm: renormalization is a no-op
        state.observe(_fake_gs(r1))
        state.observe(_fake_gs(r2))
        warm = state.scf_warm_start()
        np.testing.assert_allclose(warm.density, 2.0 * r2 - r1)

    def test_quadratic_extrapolation_needs_three_frames(self):
        state = BatchWarmState(density_extrapolation="quadratic")
        r1 = np.array([1.0, 2.0, 3.0])
        r2 = np.array([1.5, 2.0, 2.5])
        r3 = np.array([2.0, 2.0, 2.0])
        state.observe(_fake_gs(r1))
        state.observe(_fake_gs(r2))
        # Two frames so far: falls back to linear.
        np.testing.assert_allclose(state.scf_warm_start().density, 2.0 * r2 - r1)
        state.observe(_fake_gs(r3))
        np.testing.assert_allclose(
            state.scf_warm_start().density, 3.0 * r3 - 3.0 * r2 + r1
        )

    def test_extrapolation_clips_and_renormalizes(self):
        state = BatchWarmState(density_extrapolation="linear")
        r1 = np.array([4.0, 1.0, 1.0])
        r2 = np.array([1.0, 2.0, 3.0])  # 2*r2 - r1 = [-2, 3, 5] goes negative
        state.observe(_fake_gs(r1))
        gs2 = _fake_gs(r2)
        state.observe(gs2)
        warm = state.scf_warm_start()
        assert np.all(warm.density >= 0.0)
        assert warm.density.sum() == pytest.approx(gs2.n_electrons)

    def test_residual_hint_scales_with_extrapolation_step(self):
        state = BatchWarmState(density_extrapolation="linear")
        state.observe(_fake_gs(np.array([1.0, 2.0, 3.0])))
        state.observe(_fake_gs(np.array([2.0, 2.0, 2.0])))
        warm = state.scf_warm_start()
        assert warm.residual_hint > state.residual_hint_floor

    def test_history_window_is_three(self):
        state = BatchWarmState()
        for k in range(5):
            state.observe(_fake_gs(np.full(3, 1.0 + k)))
        assert len(state._densities) == 3

    def test_float32_density_does_not_poison_extrapolation_dtype(self):
        # A reduced-precision density from a caller must not downcast the
        # warm-start seed: observe() pins the history to float64.
        state = BatchWarmState(density_extrapolation="linear")
        gs32 = _fake_gs(np.array([1.0, 2.0, 3.0]))
        gs32.density = gs32.density.astype(np.float32)
        state.observe(gs32)
        state.observe(_fake_gs(np.array([1.5, 2.0, 2.5])))
        warm = state.scf_warm_start()
        assert warm.density.dtype == np.float64
        assert all(d.dtype == np.float64 for d in state._densities)

    @pytest.mark.parametrize(
        "kwargs",
        [dict(density_extrapolation="cubic"), dict(isdf_drift_threshold=1.5),
         dict(isdf_drift_threshold=-0.1)],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BatchWarmState(**kwargs)


def _fake_solver(psi_v, psi_c, grid_points):
    return SimpleNamespace(
        psi_v=np.asarray(psi_v, dtype=float),
        psi_c=np.asarray(psi_c, dtype=float),
        ground_state=SimpleNamespace(
            basis=SimpleNamespace(
                grid=SimpleNamespace(cartesian_points=np.asarray(grid_points))
            )
        ),
    )


class TestBatchWarmStateTDDFT:
    """Drift-gated interpolation-point reuse, on a hand-built clustering."""

    n_grid = 10

    def _seeded_state(self, threshold=0.1):
        state = BatchWarmState(isdf_drift_threshold=threshold)
        points = self._grid_points()
        centroids = np.array([[2.0, 0.0, 0.0], [7.0, 0.0, 0.0]])
        state._centroids = centroids
        state._candidate_indices = np.arange(self.n_grid)
        state._labels = classify_points(points, centroids)
        state._isdf_indices = np.array([2, 7])
        return state

    def _grid_points(self):
        points = np.zeros((self.n_grid, 3))
        points[:, 0] = np.arange(self.n_grid, dtype=float)
        return points

    def test_reuses_indices_when_drift_below_threshold(self):
        state = self._seeded_state()
        solver = _fake_solver(
            np.ones((2, self.n_grid)), np.ones((2, self.n_grid)),
            self._grid_points(),
        )
        warm = state.tddft_warm_start(solver)
        assert isinstance(warm, TDDFTWarmStart)
        np.testing.assert_array_equal(warm.isdf_indices, [2, 7])
        assert warm.kmeans_centroids is None

    def test_reselects_when_candidate_set_shrinks(self):
        state = self._seeded_state()
        psi = np.ones((2, self.n_grid))
        psi[:, 5:] = 0.0  # half the old candidates fall out of the pruned set
        solver = _fake_solver(psi, psi, self._grid_points())
        warm = state.tddft_warm_start(solver)
        assert warm.isdf_indices is None
        np.testing.assert_array_equal(warm.kmeans_centroids, state._centroids)

    def test_threshold_one_always_reuses(self):
        state = self._seeded_state(threshold=1.0)
        psi = np.ones((2, self.n_grid))
        psi[:, 5:] = 0.0
        solver = _fake_solver(psi, psi, self._grid_points())
        assert state.tddft_warm_start(solver).isdf_indices is not None

    def test_threshold_zero_reuses_only_on_exact_match(self):
        state = self._seeded_state(threshold=0.0)
        solver = _fake_solver(
            np.ones((2, self.n_grid)), np.ones((2, self.n_grid)),
            self._grid_points(),
        )
        assert state.tddft_warm_start(solver).isdf_indices is not None
