"""Machine model of the paper's testbed.

Cori Haswell partition (Section 6.1): dual-socket 16-core Xeon E5-2698 v3
at 2.3 GHz, 36.8 Gflop/s double-precision peak per core, 128 GB DDR4-2133
per node, Cray Aries dragonfly interconnect.  Efficiency factors express
how far real kernels run from peak; they were calibrated once against the
paper's anchor timings (see ``repro/data/calibration.py``) and are unit
tested to keep the scaling *shapes* — speedups, efficiency bands,
crossovers — in the paper's reported ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class MachineSpec:
    """Parameters of one machine for the cost model."""

    name: str
    cores_per_node: int
    flops_per_core: float  #: peak double-precision flop/s per core
    mem_bw_per_node: float  #: bytes/s streaming bandwidth per node
    net_latency: float  #: alpha (s) per message
    net_bw_per_node: float  #: beta^-1 (bytes/s) injection bandwidth per node
    gemm_efficiency: float  #: fraction of peak sustained by large DGEMM
    fft_efficiency: float  #: fraction of peak sustained by batched 3-D FFT
    kmeans_efficiency: float  #: fraction of peak for the K-Means GEMM+argmin
    eig_efficiency: float  #: fraction of peak for ScaLAPACK SYEVD

    def __post_init__(self) -> None:
        check_positive(self.cores_per_node, "cores_per_node")
        check_positive(self.flops_per_core, "flops_per_core")
        for field_name in (
            "gemm_efficiency",
            "fft_efficiency",
            "kmeans_efficiency",
            "eig_efficiency",
        ):
            value = getattr(self, field_name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{field_name} must be in (0, 1], got {value}")

    def nodes(self, cores: int) -> int:
        """Node count hosting ``cores`` (the paper's 8 MPI x 4 OMP layout
        fills whole 32-core nodes)."""
        check_positive(cores, "cores")
        return max(1, -(-cores // self.cores_per_node))

    def peak_flops(self, cores: int) -> float:
        return cores * self.flops_per_core

    def with_overrides(self, **kwargs) -> "MachineSpec":
        """A modified copy — used by ablation benches (e.g. slower network)."""
        return replace(self, **kwargs)


#: The paper's testbed. Peak numbers from Section 6.1; efficiency factors
#: and network parameters calibrated against the paper's reported timings.
CORI_HASWELL = MachineSpec(
    name="Cori Haswell (Cray XC40)",
    cores_per_node=32,
    flops_per_core=36.8e9,
    mem_bw_per_node=120e9,
    net_latency=1.8e-6,
    net_bw_per_node=8.0e9,
    gemm_efficiency=0.80,
    fft_efficiency=0.06,
    kmeans_efficiency=0.20,
    eig_efficiency=0.12,
)
