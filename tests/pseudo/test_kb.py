"""Tests for the Kleinman-Bylander projector assembly and application."""

import numpy as np
import pytest

from repro.atoms import silicon_primitive_cell, water_molecule
from repro.constants import ANGSTROM_TO_BOHR
from repro.pseudo import build_projectors
from repro.pw import PlaneWaveBasis
from repro.utils.rng import default_rng


@pytest.fixture(scope="module")
def si_basis():
    return PlaneWaveBasis(silicon_primitive_cell(), ecut=8.0)


@pytest.fixture(scope="module")
def si_proj(si_basis):
    return build_projectors(si_basis)


def test_silicon_projector_count(si_proj):
    # Per Si atom: s(i=1) + s(i=2) + p(i=1, 3 m-values) = 5; two atoms = 10.
    assert si_proj.n_projectors == 10


def test_labels_match_columns(si_proj):
    assert len(si_proj.labels) == si_proj.n_projectors
    symbols = {lab[1] for lab in si_proj.labels}
    assert symbols == {"Si"}


def test_apply_is_hermitian(si_basis, si_proj):
    """<a|V_nl|b> = conj(<b|V_nl|a>) for random coefficient vectors."""
    rng = default_rng(0)
    a = si_basis.random_coefficients(1, rng)[0]
    b = si_basis.random_coefficients(1, rng)[0]
    lhs = np.vdot(a, si_proj.apply(b))
    rhs = np.vdot(b, si_proj.apply(a)).conjugate()
    assert lhs == pytest.approx(rhs, abs=1e-12)


def test_apply_linear(si_basis, si_proj):
    rng = default_rng(1)
    a = si_basis.random_coefficients(1, rng)[0]
    b = si_basis.random_coefficients(1, rng)[0]
    lhs = si_proj.apply(2.0 * a + 3.0 * b)
    rhs = 2.0 * si_proj.apply(a) + 3.0 * si_proj.apply(b)
    np.testing.assert_allclose(lhs, rhs, atol=1e-12)


def test_apply_batched_matches_loop(si_basis, si_proj):
    rng = default_rng(2)
    block = si_basis.random_coefficients(4, rng)
    batched = si_proj.apply(block)
    for i in range(4):
        np.testing.assert_allclose(batched[i], si_proj.apply(block[i]), atol=1e-14)


def test_energy_weights_real_and_match_expectation(si_basis, si_proj):
    rng = default_rng(3)
    c = si_basis.random_coefficients(2, rng)
    e = si_proj.energy_weights(c)
    for i in range(2):
        expect = np.vdot(c[i], si_proj.apply(c[i])).real
        assert e[i] == pytest.approx(expect, abs=1e-12)


def test_hydrogen_only_cell_has_no_projectors():
    from repro.pw import UnitCell

    cell = UnitCell(8.0 * np.eye(3), ("H", "H"), np.array([[0.4, 0.5, 0.5], [0.6, 0.5, 0.5]]))
    basis = PlaneWaveBasis(cell, ecut=6.0)
    proj = build_projectors(basis)
    assert proj.n_projectors == 0
    c = basis.random_coefficients(1, default_rng(0))
    np.testing.assert_array_equal(proj.apply(c), np.zeros_like(c))


def test_water_projector_count():
    basis = PlaneWaveBasis(water_molecule(box=7.0 * ANGSTROM_TO_BOHR), ecut=6.0)
    proj = build_projectors(basis)
    # O: s + 3p = 4; H atoms contribute none.
    assert proj.n_projectors == 4


def test_translation_invariance_of_energies(si_basis):
    """Rigidly translating the cell must not change V_nl expectation values
    of translated orbitals (checked via the projector overlap spectrum)."""
    from repro.pw import UnitCell

    cell = si_basis.cell
    shifted = UnitCell(
        cell.lattice, cell.species, cell.fractional_positions + 0.18
    )
    proj_a = build_projectors(si_basis)
    proj_b = build_projectors(PlaneWaveBasis(shifted, si_basis.ecut))
    # The Gram matrices of the projector sets are translation invariant.
    gram_a = proj_a.beta.conj().T @ proj_a.beta
    gram_b = proj_b.beta.conj().T @ proj_b.beta
    np.testing.assert_allclose(
        np.linalg.eigvalsh(gram_a), np.linalg.eigvalsh(gram_b), atol=1e-10
    )
