"""Measured job-server cache / warm-start benchmark (repro.serve).

Submits the same SCF request twice (second must be a bit-identical,
zero-iteration cache hit), a near-duplicate perturbed-geometry request
(must warm-start from the nearest cached ground state in measurably fewer
SCF iterations than an isolated cold run), and an LR-TDDFT request on the
cached structure (must skip its ground-state stage entirely), then writes
a machine-readable report (default ``BENCH_serve.json`` at the repo root).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke] [--amplitude A] [--out PATH]
"""

from __future__ import annotations

import argparse
import pathlib
import sys


def main(argv=None) -> int:
    from repro.perf.serve_bench import (
        format_summary,
        run_serve_bench,
        write_report,
    )

    default_out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI (seconds, not minutes)")
    parser.add_argument("--amplitude", type=float, default=0.012,
                        help="perturbation scale in Bohr for the "
                             "near-duplicate request")
    parser.add_argument("--seed", type=int, default=11,
                        help="perturbation seed")
    parser.add_argument("--out", default=str(default_out),
                        help=f"JSON report path (default: {default_out})")
    args = parser.parse_args(argv)

    report = run_serve_bench(
        smoke=args.smoke, amplitude=args.amplitude, seed=args.seed
    )
    print(format_summary(report))
    write_report(report, args.out)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
