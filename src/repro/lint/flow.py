"""Reachability, taint, and lock analyses over the project call graph.

This is the dataflow layer between :mod:`repro.lint.callgraph` (which only
knows who calls whom) and :mod:`repro.lint.project_rules` (which decide
what is a finding).  Three analyses live here:

* **collective reachability** — for every function, which collective ops
  (``allreduce``/``barrier``/...) it can enter, directly or through any
  chain of resolved calls, with one witness chain per op for diagnostics;
* **rank taint** — which local names of a function are derived from the
  rank, so ``if my_part == 0:`` is recognized as rank-dependent after
  ``my_part = rank % 2``;
* **lock analysis** — a static lock graph: which locks exist (including
  ``Condition(self._lock)`` aliasing back to the lock it wraps), which
  acquisition orders occur (directly or through calls), and which blocking
  operations (``join``/``wait``/collectives/disk I/O/timed queue gets)
  run while a lock is held.

All three are conservative in the same direction the call graph is:
unresolvable dynamic dispatch drops edges (documented in
:mod:`repro.lint.callgraph`), so these analyses can miss, never invent,
paths — except for timeouts, where a blocking fact bounded by a caller
``timeout`` parameter is kept unless the call site pins it to a literal
``0`` (the ``queue.pop(timeout=0)`` drain idiom).
"""

from __future__ import annotations

import ast
import dataclasses
from collections import deque
from typing import Iterable, Iterator, Sequence

from repro.lint.callgraph import ClassInfo, FunctionInfo, ModuleInfo, Project
from repro.lint.engine import dotted_name
from repro.lint.rules import _COLLECTIVES, _NUMPY_ALIASES

__all__ = [
    "BlockingFact",
    "HeldBlocking",
    "LockAcquisition",
    "LockAnalysis",
    "LockDecl",
    "collective_reachability",
    "expr_is_rank_dependent",
    "rank_tainted_names",
    "reachable_with_paths",
]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_DEFERRED_NODES = (*_FUNC_NODES, ast.Lambda)


# ---------------------------------------------------------------------------
# reachability
# ---------------------------------------------------------------------------


def reachable_with_paths(
    project: Project,
    roots: Iterable[str],
    kinds: Sequence[str] = ("call",),
) -> dict[str, tuple[str, ...]]:
    """BFS over the chosen edge kinds; ``uid -> (root, ..., uid)`` witness."""
    wanted = set(kinds)
    paths: dict[str, tuple[str, ...]] = {}
    queue: deque[str] = deque()
    for root in roots:
        if root not in paths:
            paths[root] = (root,)
            queue.append(root)
    while queue:
        uid = queue.popleft()
        for edge in project.edges_from.get(uid, []):
            if edge.kind in wanted and edge.callee not in paths:
                paths[edge.callee] = paths[uid] + (edge.callee,)
                queue.append(edge.callee)
    return paths


def direct_collective_ops(
    project: Project, info: FunctionInfo
) -> dict[str, ast.Call]:
    """Collective calls lexically inside ``info``'s own scope."""
    ops: dict[str, ast.Call] = {}
    for node in project.scope_nodes(info):
        if isinstance(node, ast.Call):
            leaf = dotted_name(node.func).rpartition(".")[2]
            if leaf in _COLLECTIVES:
                ops.setdefault(leaf, node)
    return ops


def collective_reachability(
    project: Project,
) -> dict[str, dict[str, tuple[str, ...]]]:
    """``uid -> {op -> witness chain}`` over resolved ``call`` edges.

    The chain starts at ``uid`` and ends at the function making the direct
    collective call.  Lambdas only contribute when actually called (a
    stored lambda is a ``ref`` edge); that keeps branch analysis precise
    at the cost of missing collectives behind first-class function values.
    """
    ops: dict[str, dict[str, tuple[str, ...]]] = {}
    for uid, info in project.functions.items():
        ops[uid] = {op: (uid,) for op in direct_collective_ops(project, info)}
    changed = True
    while changed:
        changed = False
        for uid, edges in project.edges_from.items():
            mine = ops.setdefault(uid, {})
            for edge in edges:
                if edge.kind != "call":
                    continue
                for op, chain in ops.get(edge.callee, {}).items():
                    if op not in mine:
                        mine[op] = (uid,) + chain
                        changed = True
    return ops


# ---------------------------------------------------------------------------
# rank taint
# ---------------------------------------------------------------------------


def expr_is_rank_dependent(
    expr: ast.AST, tainted: frozenset[str] | set[str] = frozenset()
) -> bool:
    """``rank`` / ``.rank`` / ``._rank`` references, or any tainted name."""
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name) and (sub.id == "rank" or sub.id in tainted):
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in ("rank", "_rank"):
            return True
    return False


def rank_tainted_names(project: Project, info: FunctionInfo) -> set[str]:
    """Local names assigned (possibly transitively) from rank expressions."""
    tainted: set[str] = set()
    for _ in range(4):  # chained assignments converge in a few passes
        grew = False
        for node in project.scope_nodes(info):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                continue
            name = node.targets[0].id
            if name not in tainted and expr_is_rank_dependent(node.value, tainted):
                tainted.add(name)
                grew = True
        if not grew:
            break
    return tainted


# ---------------------------------------------------------------------------
# lock analysis
# ---------------------------------------------------------------------------

_LOCK_CTORS = frozenset({"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})
_REENTRANT = frozenset({"RLock"})
_DISK_LEAVES = frozenset(
    {"open", "replace", "fsync", "read_text", "write_text", "read_bytes",
     "write_bytes", "save", "savez", "savez_compressed", "unlink", "rename"}
)


@dataclasses.dataclass(frozen=True)
class LockDecl:
    """One statically-declared lock (class attribute or module global)."""

    lock_id: str  #: ``module:Class.attr`` or ``module:name``
    kind: str  #: ctor leaf: Lock / RLock / Condition / ...
    canonical: str  #: underlying lock id (``Condition(self.x)`` -> x's id)

    @property
    def reentrant(self) -> bool:
        return self.kind in _REENTRANT


@dataclasses.dataclass(frozen=True)
class BlockingFact:
    """One operation that can block, attributed to where it happens."""

    desc: str
    path: str
    line: int
    #: lock id this op releases while blocked (``Condition.wait``), if any.
    releases: str | None
    #: blocking time bounded by a caller-supplied ``timeout`` parameter.
    timeout_param: bool
    #: function uids from the summarized fn down to the fact's own fn.
    chain: tuple[str, ...]

    def rechained(self, caller: str) -> "BlockingFact":
        return dataclasses.replace(self, chain=(caller,) + self.chain)


@dataclasses.dataclass(frozen=True)
class LockAcquisition:
    """Acquiring ``dst`` while already holding ``src``."""

    src: str
    dst: str
    fn_uid: str
    path: str
    line: int
    via: str  #: "" for a direct ``with``; call-chain text when transitive


@dataclasses.dataclass(frozen=True)
class HeldBlocking:
    """A blocking fact occurring while ``held`` locks are owned."""

    held: tuple[str, ...]
    fact: BlockingFact
    fn_uid: str
    path: str
    line: int  #: the line inside ``fn_uid`` (call site for transitive facts)


@dataclasses.dataclass
class _FnLockFacts:
    """Per-function raw events before transitive propagation."""

    acquisitions: list[LockAcquisition] = dataclasses.field(default_factory=list)
    self_deadlocks: list[tuple[str, int]] = dataclasses.field(default_factory=list)
    direct_blocking: list[tuple[tuple[str, ...], BlockingFact]] = dataclasses.field(
        default_factory=list
    )
    #: (held, call node, callee uids, literal-zero-timeout?) per resolved call.
    calls: list[tuple[tuple[str, ...], ast.Call, tuple[str, ...], bool]] = (
        dataclasses.field(default_factory=list)
    )
    #: every lock acquired by a direct ``with`` in this function.
    acquires: set[str] = dataclasses.field(default_factory=set)


class LockAnalysis:
    """Static lock graph + blocking-under-lock facts for a whole project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.locks: dict[str, LockDecl] = {}
        #: per-class/module lookup: (module, class or None, attr) -> decl.
        self._decl_index: dict[tuple[str, str | None, str], LockDecl] = {}
        self.acquisitions: list[LockAcquisition] = []
        self.self_deadlocks: list[tuple[str, str, str, int]] = []
        self.held_blocking: list[HeldBlocking] = []
        #: transitive summaries: uid -> (acquired lock ids, blocking facts).
        self.summaries: dict[str, tuple[set[str], dict[tuple, BlockingFact]]] = {}
        self._discover_locks()
        self._fn_facts = {
            uid: self._scan_function(info)
            for uid, info in list(project.functions.items())
        }
        self._propagate()
        self._contextualize()

    # -- lock discovery ------------------------------------------------------

    def _discover_locks(self) -> None:
        pending_conditions: list[tuple[ClassInfo | None, ModuleInfo, str, ast.Call]] = []
        for mod in self.project.modules.values():
            for stmt in mod.source.tree.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Call)
                ):
                    leaf = dotted_name(stmt.value.func).rpartition(".")[2]
                    if leaf in _LOCK_CTORS:
                        name = stmt.targets[0].id
                        if leaf == "Condition":
                            pending_conditions.append((None, mod, name, stmt.value))
                        else:
                            self._add_decl(mod.name, None, name, leaf, None)
            for cls in mod.classes.values():
                for attr, call in cls.attr_ctors.items():
                    leaf = dotted_name(call.func).rpartition(".")[2]
                    if leaf not in _LOCK_CTORS:
                        continue
                    if leaf == "Condition":
                        pending_conditions.append((cls, mod, attr, call))
                    else:
                        self._add_decl(mod.name, cls.name, attr, leaf, None)
        # Conditions second, so the lock they wrap is already declared.
        for cls, mod, attr, call in pending_conditions:
            canonical = None
            if call.args:
                arg = call.args[0]
                if (
                    cls is not None
                    and isinstance(arg, ast.Attribute)
                    and isinstance(arg.value, ast.Name)
                    and arg.value.id == "self"
                ):
                    wrapped = self._decl_index.get((mod.name, cls.name, arg.attr))
                    canonical = wrapped.canonical if wrapped else None
                elif cls is None and isinstance(arg, ast.Name):
                    wrapped = self._decl_index.get((mod.name, None, arg.id))
                    canonical = wrapped.canonical if wrapped else None
            self._add_decl(
                mod.name, cls.name if cls else None, attr, "Condition", canonical
            )

    def _add_decl(
        self,
        module: str,
        class_name: str | None,
        attr: str,
        kind: str,
        canonical: str | None,
    ) -> None:
        scope = f"{class_name}.{attr}" if class_name else attr
        lock_id = f"{module}:{scope}"
        decl = LockDecl(lock_id=lock_id, kind=kind, canonical=canonical or lock_id)
        self.locks[lock_id] = decl
        self._decl_index[(module, class_name, attr)] = decl

    def _lock_expr_decl(
        self, info: FunctionInfo, expr: ast.expr
    ) -> LockDecl | None:
        """Resolve a ``with``-statement context expression to a lock decl."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id in ("self", "cls")
            and info.class_name is not None
        ):
            return self._decl_index.get((info.module, info.class_name, expr.attr))
        if isinstance(expr, ast.Name):
            return self._decl_index.get((info.module, None, expr.id))
        return None

    # -- per-function scan ---------------------------------------------------

    def _scan_function(self, info: FunctionInfo) -> _FnLockFacts:
        facts = _FnLockFacts()
        calls_by_id: dict[int, list[str]] = {}
        for edge in self.project.edges_from.get(info.uid, []):
            if edge.kind == "call" and isinstance(edge.node, ast.Call):
                calls_by_id.setdefault(id(edge.node), []).append(edge.callee)
        root = info.node
        body: Iterable[ast.AST]
        if isinstance(root, ast.Lambda):
            body = [root.body]
        elif isinstance(root, ast.Module):
            body = [s for s in root.body if not isinstance(s, (*_FUNC_NODES, ast.ClassDef))]
        else:
            body = list(getattr(root, "body", []))
        for node in body:
            self._visit(node, (), info, facts, calls_by_id)
        return facts

    def _visit(
        self,
        node: ast.AST,
        held: tuple[str, ...],
        info: FunctionInfo,
        facts: _FnLockFacts,
        calls_by_id: dict[int, list[str]],
    ) -> None:
        if isinstance(node, _DEFERRED_NODES) or isinstance(node, ast.ClassDef):
            return  # runs later, under whatever locks are held *then*
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: list[str] = []
            for item in node.items:
                decl = self._lock_expr_decl(info, item.context_expr)
                if decl is not None:
                    self._record_acquire(decl, held, info, item.context_expr, facts)
                    acquired.append(decl.canonical)
                else:
                    # e.g. ``with open(...)`` while holding a lock.
                    self._visit(item.context_expr, held, info, facts, calls_by_id)
            inner = held + tuple(a for a in acquired if a not in held)
            for child in node.body:
                self._visit(child, inner, info, facts, calls_by_id)
            return
        if isinstance(node, ast.Call):
            self._examine_call(node, held, info, facts, calls_by_id)
        for child in ast.iter_child_nodes(node):
            self._visit(child, held, info, facts, calls_by_id)

    def _record_acquire(
        self,
        decl: LockDecl,
        held: tuple[str, ...],
        info: FunctionInfo,
        node: ast.AST,
        facts: _FnLockFacts,
    ) -> None:
        target = decl.canonical
        facts.acquires.add(target)
        if target in held:
            if not self._is_reentrant(target):
                facts.self_deadlocks.append(
                    (target, getattr(node, "lineno", info.lineno))
                )
            return
        for src in held:
            if src != target:
                facts.acquisitions.append(
                    LockAcquisition(
                        src=src,
                        dst=target,
                        fn_uid=info.uid,
                        path=info.path,
                        line=getattr(node, "lineno", info.lineno),
                        via="",
                    )
                )

    def _is_reentrant(self, lock_id: str) -> bool:
        decl = self.locks.get(lock_id)
        return decl is not None and decl.reentrant

    def _examine_call(
        self,
        call: ast.Call,
        held: tuple[str, ...],
        info: FunctionInfo,
        facts: _FnLockFacts,
        calls_by_id: dict[int, list[str]],
    ) -> None:
        fact = self._direct_blocking_fact(call, info)
        if fact is not None and held:
            facts.direct_blocking.append((held, fact))
        if fact is not None:
            # Also keep the fact for callers even when no lock is held here.
            facts.direct_blocking.append(((), fact))
        callees = calls_by_id.get(id(call))
        if callees:
            facts.calls.append(
                (held, call, tuple(callees), _has_literal_zero_timeout(call))
            )

    def _direct_blocking_fact(
        self, call: ast.Call, info: FunctionInfo
    ) -> BlockingFact | None:
        name = dotted_name(call.func)
        head, _, leaf = name.rpartition(".")
        line = call.lineno
        timeout_kw = _timeout_keyword(call)
        timeout_param = isinstance(timeout_kw, (ast.Name, ast.Attribute))
        if _is_literal_zero(timeout_kw):
            return None  # non-blocking poll

        if leaf == "wait" and isinstance(call.func, ast.Attribute):
            releases = None
            base_decl = self._lock_expr_decl(info, call.func.value)
            if base_decl is not None and base_decl.kind == "Condition":
                releases = base_decl.canonical
            return BlockingFact(
                desc=f"{name or 'wait'}()",
                path=info.path,
                line=line,
                releases=releases,
                timeout_param=timeout_param,
                chain=(info.uid,),
            )
        if leaf == "join" and isinstance(call.func, ast.Attribute) and not call.args:
            # ``str.join`` always takes the iterable positionally.
            return BlockingFact(
                desc=f"{name}()", path=info.path, line=line,
                releases=None, timeout_param=timeout_param, chain=(info.uid,),
            )
        if leaf in _COLLECTIVES:
            return BlockingFact(
                desc=f"collective {leaf}()", path=info.path, line=line,
                releases=None, timeout_param=False, chain=(info.uid,),
            )
        if name == "time.sleep":
            return BlockingFact(
                desc="time.sleep()", path=info.path, line=line,
                releases=None, timeout_param=False, chain=(info.uid,),
            )
        if leaf == "get" and timeout_kw is not None:
            return BlockingFact(
                desc=f"{name}(timeout=...)", path=info.path, line=line,
                releases=None, timeout_param=timeout_param, chain=(info.uid,),
            )
        if self._is_disk_io(name, head, leaf, call):
            return BlockingFact(
                desc=f"disk I/O via {name or leaf}()", path=info.path, line=line,
                releases=None, timeout_param=False, chain=(info.uid,),
            )
        return None

    @staticmethod
    def _is_disk_io(name: str, head: str, leaf: str, call: ast.Call) -> bool:
        if leaf == "open" and not head:
            return True
        if name in ("os.replace", "os.fsync", "os.remove", "shutil.move"):
            return True
        if name in ("json.dump", "json.load"):
            return True  # the file-handle forms used by the result store
        if head.split(".")[0] in _NUMPY_ALIASES and leaf in (
            "save", "savez", "savez_compressed", "load",
        ):
            return True
        if leaf in ("read_text", "write_text", "read_bytes", "write_bytes"):
            return True
        return False

    # -- transitive propagation ---------------------------------------------

    def _propagate(self) -> None:
        summaries: dict[str, tuple[set[str], dict[tuple, BlockingFact]]] = {}
        for uid, facts in self._fn_facts.items():
            blocking = {
                (f.desc, f.path, f.line): f for _, f in facts.direct_blocking
            }
            summaries[uid] = (set(facts.acquires), blocking)
        changed = True
        while changed:
            changed = False
            for uid, facts in self._fn_facts.items():
                acquires, blocking = summaries[uid]
                for _, _, callees, literal_zero in facts.calls:
                    for callee in callees:
                        sub = summaries.get(callee)
                        if sub is None:
                            continue
                        sub_acquires, sub_blocking = sub
                        if not sub_acquires <= acquires:
                            acquires |= sub_acquires
                            changed = True
                        for key, fact in sub_blocking.items():
                            if literal_zero and fact.timeout_param:
                                continue
                            if key not in blocking:
                                blocking[key] = fact.rechained(uid)
                                changed = True
        self.summaries = summaries

    def _contextualize(self) -> None:
        """Turn per-function facts + summaries into held-context findings."""
        for uid, facts in self._fn_facts.items():
            info = self.project.functions[uid]
            self.acquisitions.extend(facts.acquisitions)
            for lock_id, line in facts.self_deadlocks:
                self.self_deadlocks.append((lock_id, uid, info.path, line))
            for held, fact in facts.direct_blocking:
                if held:
                    self._maybe_blocking(held, fact, uid, info.path, fact.line)
            for held, call, callees, literal_zero in facts.calls:
                if not held:
                    continue
                for callee in callees:
                    sub = self.summaries.get(callee)
                    if sub is None:
                        continue
                    sub_acquires, sub_blocking = sub
                    for target in sub_acquires:
                        if target in held:
                            if not self._is_reentrant(target):
                                self.self_deadlocks.append(
                                    (target, uid, info.path, call.lineno)
                                )
                            continue
                        for src in held:
                            if src != target:
                                self.acquisitions.append(
                                    LockAcquisition(
                                        src=src,
                                        dst=target,
                                        fn_uid=uid,
                                        path=info.path,
                                        line=call.lineno,
                                        via=" -> ".join(
                                            _short_uid(u) for u in (uid, callee)
                                        ),
                                    )
                                )
                    for fact in sub_blocking.values():
                        if literal_zero and fact.timeout_param:
                            continue
                        self._maybe_blocking(
                            held, fact.rechained(uid), uid, info.path, call.lineno
                        )

    def _maybe_blocking(
        self,
        held: tuple[str, ...],
        fact: BlockingFact,
        uid: str,
        path: str,
        line: int,
    ) -> None:
        """A blocking fact under ``held`` locks is fine only in the classic
        condition-wait shape: the *only* held lock is the one the wait
        releases."""
        offending = tuple(h for h in held if h != fact.releases)
        if offending:
            self.held_blocking.append(
                HeldBlocking(
                    held=offending, fact=fact, fn_uid=uid, path=path, line=line
                )
            )

    # -- queries -------------------------------------------------------------

    def order_edges(self) -> dict[str, set[str]]:
        graph: dict[str, set[str]] = {}
        for acq in self.acquisitions:
            graph.setdefault(acq.src, set()).add(acq.dst)
        return graph

    def cycles(self) -> list[tuple[str, ...]]:
        """Elementary cycles of the lock-order graph (canonicalized)."""
        graph = self.order_edges()
        cycles: set[tuple[str, ...]] = set()

        def dfs(start: str, node: str, path: tuple[str, ...]) -> None:
            for nxt in sorted(graph.get(node, ())):
                if nxt == start:
                    cycles.add(_canonical_cycle(path))
                elif nxt not in path and len(path) < 8:
                    dfs(start, nxt, path + (nxt,))

        for start in sorted(graph):
            dfs(start, start, (start,))
        return sorted(cycles)

    def edge_witness(self, src: str, dst: str) -> LockAcquisition | None:
        for acq in self.acquisitions:
            if acq.src == src and acq.dst == dst:
                return acq
        return None


def _canonical_cycle(path: tuple[str, ...]) -> tuple[str, ...]:
    pivot = min(range(len(path)), key=lambda i: path[i])
    return path[pivot:] + path[:pivot]


def _timeout_keyword(call: ast.Call) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == "timeout":
            return kw.value
    return None


def _is_literal_zero(expr: ast.expr | None) -> bool:
    return (
        isinstance(expr, ast.Constant)
        and isinstance(expr.value, (int, float))
        and not isinstance(expr.value, bool)
        and expr.value == 0
    )


def _has_literal_zero_timeout(call: ast.Call) -> bool:
    return _is_literal_zero(_timeout_keyword(call))


def _short_uid(uid: str) -> str:
    return uid.rpartition(":")[2]


def describe_chain(chain: Sequence[str]) -> str:
    """Human-readable call chain: ``submit -> get -> _load``."""
    return " -> ".join(_short_uid(uid) for uid in chain)
