"""Distributed LR-TDDFT Hamiltonian construction — the paper's Algorithm 1.

The rank program follows the paper line by line:

1. wavefunctions arrive row-block distributed (grid rows),
2. the face-splitting product is computed locally (row-block pairs),
3. ``MPI_Alltoall`` converts to column-block so each rank owns whole pairs,
4. each rank FFTs its pairs, applies the Hartree operator in reciprocal
   space, transforms back (and applies the real-space f_xc),
5. ``MPI_Alltoall`` back to row-block,
6. a local GEMM forms the partial ``V_Hxc`` contribution of this rank's
   grid rows,
7. ``MPI_Allreduce`` sums the partials,
8. the Hamiltonian diagonal is added and the matrix diagonalized (dense on
   the root for the naive version, LOBPCG on the ISDF-compressed operator
   for the optimized version).

The ISDF variant (:func:`distributed_isdf_vtilde`) runs the same transpose
/ FFT / GEMM / Allreduce pattern on the ``N_mu`` interpolation vectors
instead of the ``N_cv`` pairs — that is the entire point of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.core.isdf import ISDFDecomposition
from repro.core.kernel import HxcKernel
from repro.core.pair_products import pair_energies
from repro.eigen.dense import dense_lowest
from repro.parallel.comm import Communicator
from repro.parallel.distributions import BlockDistribution1D
from repro.parallel.redistribute import (
    transpose_to_column_block,
    transpose_to_row_block,
)
from repro.utils.linalg import symmetrize
from repro.utils.validation import require


def _apply_kernel_column_block(
    kernel: HxcKernel, pair_fields: np.ndarray
) -> np.ndarray:
    """Apply f_Hxc to whole-pair columns ``(N_r, my_pairs)`` (lines 4-5)."""
    if pair_fields.shape[1] == 0:
        return pair_fields
    return kernel.apply(pair_fields.T).T


def distributed_build_vhxc(
    comm: Communicator,
    psi_v_local: np.ndarray,
    psi_c_local: np.ndarray,
    kernel: HxcKernel,
    row_dist: BlockDistribution1D,
) -> np.ndarray:
    """Algorithm 1, lines 2-8: build the replicated ``V_Hxc`` matrix.

    Parameters
    ----------
    psi_v_local / psi_c_local:
        Row-block slabs of the orbitals: ``(N_v, my_rows)`` / ``(N_c, my_rows)``.
    kernel:
        The f_Hxc operator (holds the replicated basis).
    row_dist:
        Grid-row distribution (``n_global == N_r``).
    """
    n_v, my_rows = psi_v_local.shape
    n_c = psi_c_local.shape[0]
    require(my_rows == row_dist.count(comm.rank), "slab/distribution mismatch")
    n_pairs = n_v * n_c
    pair_dist = BlockDistribution1D(n_pairs, comm.size)

    # Line 2: local face-splitting product (row-block pairs).
    z_local = (
        psi_v_local[:, None, :] * psi_c_local[None, :, :]
    ).reshape(n_pairs, my_rows).T  # (my_rows, N_cv)

    # Line 3: row-block -> column-block (MPI_Alltoall).
    z_cols = transpose_to_column_block(comm, z_local, row_dist, pair_dist)

    # Lines 4-5: FFT, Hartree in reciprocal space, back; f_xc in real space.
    k_cols = _apply_kernel_column_block(kernel, z_cols)

    # Line 6: column-block -> row-block (MPI_Alltoall).
    k_local = transpose_to_row_block(comm, k_cols, row_dist, pair_dist)

    # Line 7: local GEMM over my grid rows.
    vhxc_partial = (z_local.T @ k_local) * kernel.basis.grid.dv

    # Line 8: MPI_Allreduce over grid-row contributions.
    vhxc = comm.allreduce(vhxc_partial)
    return symmetrize(vhxc)


def distributed_lrtddft_solve(
    comm: Communicator,
    psi_v_local: np.ndarray,
    psi_c_local: np.ndarray,
    eps_v: np.ndarray,
    eps_c: np.ndarray,
    kernel: HxcKernel,
    row_dist: BlockDistribution1D,
    n_excitations: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Full naive distributed solve: Algorithm 1 end-to-end.

    The diagonalization (line 11) runs as the dense SYEVD stand-in on every
    rank (replicated ``V_Hxc``), mirroring how the 2-D block-cyclic solve
    returns replicated eigenpairs.
    """
    vhxc = distributed_build_vhxc(
        comm, psi_v_local, psi_c_local, kernel, row_dist
    )
    h = 2.0 * vhxc
    h[np.diag_indices_from(h)] += pair_energies(
        np.asarray(eps_v, float), np.asarray(eps_c, float)
    )
    return dense_lowest(h, n_excitations)


def distributed_isdf_vtilde(
    comm: Communicator,
    theta_local: np.ndarray,
    kernel: HxcKernel,
    row_dist: BlockDistribution1D,
) -> np.ndarray:
    """Projected kernel ``Vtilde = Theta^T f_Hxc Theta`` from row-distributed
    interpolation vectors — the optimized version's communication pattern.

    ``theta_local`` is ``(my_rows, N_mu)``; the same transpose -> FFT ->
    transpose -> GEMM -> Allreduce pipeline as Algorithm 1, but over
    ``N_mu`` columns instead of ``N_cv``.
    """
    my_rows, n_mu = theta_local.shape
    require(my_rows == row_dist.count(comm.rank), "slab/distribution mismatch")
    mu_dist = BlockDistribution1D(n_mu, comm.size)

    theta_cols = transpose_to_column_block(comm, theta_local, row_dist, mu_dist)
    k_cols = _apply_kernel_column_block(kernel, theta_cols)
    k_local = transpose_to_row_block(comm, k_cols, row_dist, mu_dist)
    vtilde_partial = (theta_local.T @ k_local) * kernel.basis.grid.dv
    return symmetrize(comm.allreduce(vtilde_partial))


def distributed_implicit_solve(
    comm: Communicator,
    isdf: ISDFDecomposition,
    eps_v: np.ndarray,
    eps_c: np.ndarray,
    kernel: HxcKernel,
    row_dist: BlockDistribution1D,
    n_excitations: int,
    *,
    tol: float = 1e-9,
    max_iter: int = 300,
    checkpoint=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Optimized distributed path: row-distributed Theta -> Vtilde ->
    replicated implicit LOBPCG (the O(N_mu^2) state is tiny by design).

    Every rank returns identical eigenpairs.

    ``checkpoint`` (optional
    :class:`~repro.resilience.checkpoint.LoopCheckpointer`) snapshots the
    replicated LOBPCG state.  All ranks may share one checkpointer: the
    iterate is replicated, so every rank writes identical snapshots (the
    atomic staging uses per-thread temp names) and every rank resumes from
    the same file, keeping the restarted solve in lockstep.
    """
    from repro.core.implicit import ImplicitCasidaOperator
    from repro.eigen.lobpcg import lobpcg
    from repro.utils.rng import default_rng

    theta_local = isdf.theta[row_dist.local_slice(comm.rank)]
    vtilde = distributed_isdf_vtilde(comm, theta_local, kernel, row_dist)
    op = ImplicitCasidaOperator(isdf, eps_v, eps_c, vtilde=vtilde)

    diag = op.diagonal_d
    k = n_excitations
    x0 = np.zeros((diag.shape[0], k))
    lowest = np.argsort(diag)[:k]
    x0[lowest, np.arange(k)] = 1.0
    x0 += 1e-3 * default_rng(0).standard_normal(x0.shape)
    res = lobpcg(
        op.apply, x0, preconditioner=op.preconditioner, tol=tol,
        max_iter=max_iter, checkpoint=checkpoint,
    )
    return res.eigenvalues, res.eigenvectors
