"""The SPMD executor: run one function on N virtual ranks.

Thread-per-rank (numpy releases the GIL inside BLAS/FFT, so virtual ranks
even overlap for real).  A rank that raises aborts the shared barrier;
every surviving rank unwinds with :class:`~repro.parallel.comm.SpmdAbort`
and the *original* exception is re-raised to the caller.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.parallel.comm import CommTraffic, Communicator, SpmdAbort, _SharedState
from repro.utils.validation import require


def spmd_run(
    n_ranks: int,
    fn: Callable[..., object],
    *args,
    return_traffic: bool = False,
):
    """Execute ``fn(comm, *args)`` on ``n_ranks`` virtual ranks.

    Parameters
    ----------
    fn:
        The rank program; receives its :class:`Communicator` first.
    return_traffic:
        Also return the :class:`CommTraffic` accumulated by the run.

    Returns
    -------
    ``results`` — list of per-rank return values (rank order) — or
    ``(results, traffic)`` when ``return_traffic`` is set.
    """
    require(n_ranks >= 1, f"need at least one rank, got {n_ranks}")
    shared = _SharedState(n_ranks)
    results: list = [None] * n_ranks

    def worker(rank: int) -> None:
        comm = Communicator(rank, shared)
        try:
            results[rank] = fn(comm, *args)
        except SpmdAbort:
            pass  # secondary failure; the original error is in shared.error
        except BaseException as exc:  # noqa: BLE001 - must not deadlock peers
            shared.abort(exc)

    threads = [
        threading.Thread(target=worker, args=(rank,), name=f"spmd-rank-{rank}")
        for rank in range(n_ranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if shared.error is not None:
        raise shared.error
    if return_traffic:
        return results, shared.traffic
    return results


def spmd_traffic(n_ranks: int, fn: Callable[..., object], *args) -> CommTraffic:
    """Convenience: run and return only the traffic trace."""
    _, traffic = spmd_run(n_ranks, fn, *args, return_traffic=True)
    return traffic
