"""Tests for the SCF driver: convergence and silicon/water physics."""

import numpy as np
import pytest

from repro.atoms import silicon_primitive_cell
from repro.constants import HARTREE_TO_EV
from repro.dft import run_scf
from repro.dft.scf import SCFOptions, _occupations


class TestOccupations:
    def test_integer_fill(self):
        occ = _occupations(np.array([-1.0, -0.5, 0.5, 1.0]), 4.0, width=0.0)
        np.testing.assert_allclose(occ, [2, 2, 0, 0])

    def test_odd_electron_count_needs_smearing(self):
        with pytest.raises(ValueError, match="smearing"):
            _occupations(np.array([-1.0, 0.0]), 3.0, width=0.0)

    def test_smearing_conserves_electron_count(self):
        e = np.linspace(-1, 1, 10)
        occ = _occupations(e, 7.0, width=0.05)
        assert occ.sum() == pytest.approx(7.0)

    def test_smearing_is_monotone_decreasing(self):
        e = np.linspace(-1, 1, 12)
        occ = _occupations(e, 8.0, width=0.1)
        assert (np.diff(occ) <= 1e-12).all()

    def test_zero_width_matches_small_width_for_gapped(self):
        e = np.array([-1.0, -0.9, 0.9, 1.0])
        cold = _occupations(e, 4.0, width=0.0)
        warm = _occupations(e, 4.0, width=0.01)
        np.testing.assert_allclose(cold, warm, atol=1e-10)

    def test_too_few_bands(self):
        with pytest.raises(ValueError):
            _occupations(np.array([0.0]), 4.0, width=0.0)


class TestSiliconSCF:
    def test_converges(self, si2_ground_state):
        assert si2_ground_state.converged

    def test_band_degeneracies(self, si2_ground_state):
        """Gamma point of diamond Si: triply degenerate VBM (Gamma_25')
        and triply degenerate low conduction states (Gamma_15)."""
        e = si2_ground_state.energies
        assert e[1] == pytest.approx(e[3], abs=2e-4)
        assert e[4] == pytest.approx(e[6], abs=2e-4)

    def test_gap_in_physical_range(self, si2_ground_state):
        """Gamma->Gamma LDA gap of Si is ~2.5 eV; coarse Ecut shifts it some."""
        gap_ev = si2_ground_state.homo_lumo_gap() * HARTREE_TO_EV
        assert 1.0 < gap_ev < 4.0

    def test_density_integrates_to_8(self, si2_ground_state):
        gs = si2_ground_state
        assert gs.density.sum() * gs.basis.grid.dv == pytest.approx(8.0)

    def test_orbitals_real_and_orthonormal(self, si2_ground_state):
        gs = si2_ground_state
        assert gs.orbitals_real.dtype == np.float64
        overlap = gs.orbitals_real @ gs.orbitals_real.T * gs.basis.grid.dv
        np.testing.assert_allclose(overlap, np.eye(gs.n_bands), atol=1e-10)

    def test_energies_ascending(self, si2_ground_state):
        assert (np.diff(si2_ground_state.energies) >= -1e-10).all()

    def test_seed_reproducibility(self):
        cell = silicon_primitive_cell()
        a = run_scf(cell, ecut=6.0, n_bands=6, tol=1e-6, seed=5)
        b = run_scf(cell, ecut=6.0, n_bands=6, tol=1e-6, seed=5)
        np.testing.assert_allclose(a.energies, b.energies, atol=1e-9)

    def test_total_energy_decreases_with_cutoff(self):
        """Variational property: richer basis lowers the total energy."""
        cell = silicon_primitive_cell()
        e_lo = run_scf(cell, ecut=5.0, n_bands=6, tol=1e-6, seed=1).total_energy
        e_hi = run_scf(cell, ecut=9.0, n_bands=6, tol=1e-6, seed=1).total_energy
        assert e_hi < e_lo

    def test_linear_mixer_also_converges(self):
        cell = silicon_primitive_cell()
        gs = run_scf(
            cell, ecut=6.0, n_bands=6, tol=1e-6, mixer="linear",
            mixing_beta=0.4, max_iter=80, seed=1,
        )
        assert gs.converged


class TestWaterSCF:
    def test_converges(self, water_ground_state):
        assert water_ground_state.converged

    def test_four_occupied_orbitals(self, water_ground_state):
        assert water_ground_state.n_occupied == 4

    def test_homo_in_physical_range(self, water_ground_state):
        """LDA HOMO of water is around -7.3 eV; allow coarse-grid slack."""
        homo_ev = water_ground_state.energies[3] * HARTREE_TO_EV
        assert -10.0 < homo_ev < -4.0

    def test_gap_in_physical_range(self, water_ground_state):
        gap_ev = water_ground_state.homo_lumo_gap() * HARTREE_TO_EV
        assert 4.0 < gap_ev < 10.0


class TestOptions:
    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError, match="unknown SCF option"):
            run_scf(silicon_primitive_cell(), not_an_option=1)

    def test_too_many_bands_rejected(self):
        with pytest.raises(ValueError, match="exceeds basis size"):
            run_scf(silicon_primitive_cell(), ecut=2.0, n_bands=1000)

    def test_options_dataclass_defaults(self):
        opts = SCFOptions()
        assert opts.mixer == "anderson"
        assert opts.smearing_width == 0.0
