"""Synthetic ground states: silicon-like orbitals without running SCF.

The paper's Table 3 and the scaling studies operate on systems (Si_64 at
Ecut = 20 Ha, N_mu up to 2048) for which a full Python SCF would dominate
benchmark time without affecting what is being measured — the ISDF point
selection and Hamiltonian machinery only consume *some* set of smooth
orthonormal orbitals with energies.  This module manufactures exactly that:
band-limited random orbitals, orthonormal under the grid metric, localized
in bonding regions like real valence states, with a gapped spectrum.

Every knob is deterministic given the seed, so benchmark workloads are
reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.dft.groundstate import GroundState
from repro.pw.basis import PlaneWaveBasis
from repro.pw.cell import UnitCell
from repro.utils.rng import default_rng
from repro.utils.validation import check_positive, require


def _smooth_random_fields(
    basis: PlaneWaveBasis,
    n_fields: int,
    rng: np.random.Generator,
    *,
    correlation_length: float = 2.0,
    envelope: np.ndarray | None = None,
) -> np.ndarray:
    """Band-limited real random fields ``(n_fields, N_r)``.

    White noise filtered by ``exp(-|G|^2 l^2 / 4)`` in reciprocal space —
    smooth on the scale ``l`` (Bohr) like real pseudo-orbitals; an optional
    real-space envelope localizes them (atomic regions).
    """
    noise = rng.standard_normal((n_fields, basis.n_r))
    noise_g = basis.fft.forward(noise.astype(complex))
    damp = np.exp(-0.25 * basis.gvectors.g2 * correlation_length**2)
    fields = basis.fft.backward_real(noise_g * damp)
    if envelope is not None:
        fields = fields * envelope
    return fields


def _atomic_envelope(basis: PlaneWaveBasis, width: float = 2.5) -> np.ndarray:
    """Sum of Gaussians centred on the atoms (periodically, via G-space)."""
    cell = basis.cell
    if cell.n_atoms == 0:
        return np.ones(basis.n_r)
    g2 = basis.gvectors.g2
    env_g = np.zeros(basis.n_r, dtype=complex)
    for index in range(cell.n_atoms):
        phase = basis.gvectors.structure_factor(cell.fractional_positions[index])
        env_g += np.exp(-0.25 * g2 * width * width) * phase
    env = basis.fft.backward_real(env_g)
    env -= env.min()
    peak = env.max()
    return 0.1 + 0.9 * env / max(peak, 1e-30)


def _orthonormalize_rows(fields: np.ndarray, dv: float) -> np.ndarray:
    """Lowdin-orthonormalize rows under the grid inner product."""
    gram = (fields @ fields.T) * dv
    evals, evecs = np.linalg.eigh(gram)
    require(
        evals.min() > 1e-10 * evals.max(),
        "synthetic fields are numerically dependent; increase grid or "
        "decrease band count",
    )
    transform = evecs / np.sqrt(evals)
    return transform.T @ fields


def synthetic_ground_state(
    cell: UnitCell,
    *,
    ecut: float = 5.0,
    n_valence: int | None = None,
    n_conduction: int | None = None,
    gap: float = 0.1,
    valence_width: float = 0.3,
    conduction_width: float = 0.4,
    correlation_length: float = 2.0,
    localized: bool = True,
    seed: int | None = None,
) -> GroundState:
    """Manufacture a silicon-like :class:`GroundState` for benchmarks.

    Parameters
    ----------
    cell:
        Geometry; defaults for band counts follow its valence electrons
        (4 per Si-like atom -> ``n_valence = 2 * n_atoms``).
    gap:
        KS gap between valence and conduction manifolds (Hartree).
    localized:
        Multiply orbitals by an atomic-Gaussian envelope so the K-Means
        weight function has the spatial structure real systems have.
    """
    check_positive(ecut, "ecut")
    basis = PlaneWaveBasis(cell, ecut)
    rng = default_rng(seed)
    n_v = n_valence if n_valence is not None else max(2 * cell.n_atoms, 4)
    n_c = n_conduction if n_conduction is not None else max(n_v // 2, 4)
    n_bands = n_v + n_c
    require(
        n_bands <= basis.n_r // 4,
        f"{n_bands} bands on {basis.n_r} grid points cannot stay independent",
    )

    envelope = _atomic_envelope(basis) if localized and cell.n_atoms else None
    fields = _smooth_random_fields(
        basis, n_bands, rng,
        correlation_length=correlation_length, envelope=envelope,
    )
    orbitals = _orthonormalize_rows(fields, basis.grid.dv)

    energies = np.concatenate(
        [
            np.sort(-valence_width * rng.random(n_v))[::-1] - gap / 2.0,
            np.sort(conduction_width * rng.random(n_c)) + gap / 2.0,
        ]
    )
    # Strictly ascending for clean degeneracy handling downstream.
    energies = np.sort(energies)
    energies[:n_v] = np.sort(energies[:n_v])

    occupations = np.zeros(n_bands)
    occupations[:n_v] = 2.0
    density = np.einsum("b,br->r", occupations, orbitals**2)

    return GroundState(
        basis=basis,
        energies=energies,
        orbitals_real=orbitals,
        occupations=occupations,
        density=density,
        total_energy=0.0,
        converged=True,
    )
