"""A small client over the job server's wire-format boundary.

:class:`ServeClient` talks to a :class:`~repro.serve.server.
CalculationServer` exclusively through JSON-able payloads and job-id
strings — never through shared Python objects on the request path.  Every
submission round-trips the request through its canonical JSON
(``to_dict -> json -> from_dict``) before it reaches the server, which

* proves the wire format is complete (anything lost in serialization
  would change the result), and
* guarantees a network transport added later cannot change cache keys:
  the server hashes exactly what a remote client would have sent.

The transport itself is in-process by design; see ``docs/serving.md`` for
the scope discussion.
"""

from __future__ import annotations

import json

from repro.api.request import CalculationRequest

__all__ = ["ServeClient"]


class ServeClient:
    """Submit / inspect / fetch / cancel jobs by id through payloads."""

    def __init__(self, server) -> None:
        self._server = server

    def submit(
        self,
        request: CalculationRequest | dict,
        *,
        tenant: str = "default",
        priority: int = 0,
    ) -> str:
        """Submit a request (object or ``to_dict`` payload); returns job id.

        Raises :class:`~repro.serve.queue.AdmissionError` when the server
        refuses the submission (inspect ``.reason``).
        """
        if isinstance(request, CalculationRequest):
            payload = request.canonical_json()
        else:
            payload = json.dumps(request)
        # The wire boundary: the server only ever sees the re-parsed copy.
        wire_request = CalculationRequest.from_dict(json.loads(payload))
        handle = self._server.submit(wire_request, tenant=tenant, priority=priority)
        return handle.id

    def status(self, job_id: str) -> dict:
        """JSON-able status record (state, cache_hit, warm, iteration counts)."""
        return self._server.handle(job_id).record()

    def result(self, job_id: str, timeout: float | None = None):
        """Block for the job's result object (raises on failed/cancelled)."""
        return self._server.handle(job_id).result(timeout=timeout)

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; see :meth:`CalculationServer.cancel`."""
        return self._server.handle(job_id).cancel()

    def events(self, job_id: str) -> list[dict]:
        """The job's event history as JSON-able dicts."""
        return [e.to_dict() for e in self._server.handle(job_id).history()]
