"""Abstract interpretation of numpy shapes, dtypes and layouts (PR 9).

This module infers three kinds of facts for the numpy values flowing
through the project call graph (:mod:`repro.lint.callgraph`):

* **symbolic shapes** — tuples of :class:`Dim`, each a literal size, a
  named symbol (``n_grid``, ``n_pairs``, ...) or unknown, optionally
  tagged *rank-dependent* when its value derives from ``comm.rank``
  (composing with the PR-7 rank taint in :mod:`repro.lint.flow`);
* **a dtype lattice** — ``bool < int64 < float32 < float64 < complex128``
  with join = widest (numpy names canonicalize onto these buckets);
* **layout facts** — C-contiguous, plain view, transposed (F-contiguous),
  strided (neither), or a reshape that must copy.

Ground truth comes from ``@array_contract`` declarations
(:func:`repro.utils.hot.array_contract`, re-exported by
:mod:`repro.lint.hotpaths`): contracts seed parameter facts inside the
declaring function, and resolved call sites are checked against the
callee's contract.  On top of the interpreter sit five project rules:

* ``silent-upcast-in-hot`` — a float64 value acquires complex128 (or
  float32 acquires float64) inside a hot kernel via ``astype``, a complex
  literal / ``1j``, or a mixed-operand broadcast; also raised when a call
  site passes a wider dtype than the callee's contract allows.
* ``undeclared-downcast-in-hot`` — the mirror rule for mixed precision: a
  float64 value is cast to float32 (``astype``, or a narrowing ``dtype=``
  on ``asarray``/``array``/``ascontiguousarray``) inside a hot kernel
  whose ``@array_contract`` does *not* declare a ``precision_policy``.
  Sanctioned mixed-precision stages (see :mod:`repro.precision`) declare
  ``precision_policy="fp32-compute"`` (or ``"fp32-wire"`` /
  ``"fp32-scratch"``) on their contract, turning the downcast into a
  reviewed policy; anything else is treated as accidental precision loss.
* ``hidden-copy-into-kernel`` — a non-contiguous view (strided slice, or
  a reshape that must copy; a bare transpose of a contiguous block is
  *allowed* into GEMM, where BLAS consumes F-contiguous operands
  natively, but not into FFT entries) reaching ``rfftn``/``fftn``-family
  calls, ``@``/``matmul``/``einsum``/``dot``, a ``SharedSlab`` publish,
  or a parameter the callee's contract declares contiguous.
* ``shape-mismatch`` — symbolic-dim conflicts against a callee's
  contract, malformed/unconfirmable contracts, and broadcasts inside hot
  kernels that materialize a temporary larger than both operands
  (mutual ``(n, 1) x (1, m)`` outer-product style).
* ``collective-buffer-contract`` — buffers fed to the reducing
  collectives (``reduce``/``allreduce``/``ireduce``/
  ``verified_allreduce``) must have rank-invariant shape: a buffer whose
  inferred shape contains a rank-dependent dim is statically the
  allreduce-on-ragged-buffer class the runtime sanitizer only sees live.
  (The ragged-tolerant collectives — gather/allgather/scatter/alltoall/
  bcast — accept per-rank shapes by design and are not constrained.)

Precision policy: every rule fires only on facts the interpreter *knows*;
unknown shapes/dtypes/layouts never produce findings.  That keeps the
committed tree lintable without a flood of suppressions at the cost of
missing dynamically-constructed hazards — the same precision-first stance
as the branch rules (see ``docs/static-analysis.md``).
"""

from __future__ import annotations

import ast
import dataclasses
import weakref
from pathlib import PurePosixPath
from typing import Iterator, Sequence

from repro.lint.callgraph import FunctionInfo, Project
from repro.lint.engine import (
    Finding,
    ProjectRule,
    SourceModule,
    dotted_name,
    register_project_rule,
)
from repro.lint.flow import rank_tainted_names
from repro.lint.hotpaths import (
    ARRAY_CONTRACT_DECORATORS,
    HOT_DECORATORS,
    hot_functions_for,
)
from repro.utils.hot import DTYPE_LATTICE, canonical_dtype

__all__ = [
    "ARRAY_RULE_NAMES",
    "ArrayAnalysis",
    "ArrayFact",
    "Dim",
    "analyze_arrays",
    "join_dtypes",
    "unify_dims",
]

#: The rule names this module registers (CLI ``--no-arrays`` filter).
ARRAY_RULE_NAMES = (
    "collective-buffer-contract",
    "hidden-copy-into-kernel",
    "shape-mismatch",
    "silent-upcast-in-hot",
    "undeclared-downcast-in-hot",
)

#: Conventional ``precision_policy`` values (informational — any non-empty
#: string is accepted, matching the runtime decorator).
PRECISION_POLICIES = ("fp32-compute", "fp32-wire", "fp32-scratch")

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_NUMPY_ALIASES = frozenset({"np", "numpy"})

#: Layout lattice values.
CONTIG = "contiguous"
VIEW = "view"
TRANSPOSED = "transposed"
STRIDED = "strided"
COPIED = "copied-reshape"
UNKNOWN = "unknown"

#: Layouts that force a silent materialization when fed to a GEMM (BLAS
#: packs strided operands; transposes are consumed natively).
_GEMM_BAD = frozenset({STRIDED, COPIED})
#: Layouts that force a copy inside pocketfft / a slab publish.
_COPY_BAD = frozenset({TRANSPOSED, STRIDED, COPIED})

_FFT_LEAVES = frozenset({"fftn", "ifftn", "rfftn", "irfftn"})
_GEMM_LEAVES = frozenset({"matmul", "dot"})
_SLAB_PUBLISH_QUALNAMES = frozenset(
    {"SharedSlab.write", "SlabArena.write_array"}
)
#: Collectives whose buffers must be shape-identical on every rank.
_REDUCING_COLLECTIVES = frozenset(
    {"allreduce", "ireduce", "reduce", "verified_allreduce"}
)

_DTYPE_RANK = {name: rank for rank, name in enumerate(DTYPE_LATTICE)}

#: dtype "kinds" for numpy's weak-scalar promotion (NEP 50): a python
#: scalar only widens an array when its kind is strictly higher.
_DTYPE_KIND = {
    "bool": 0,
    "int64": 1,
    "float32": 2,
    "float64": 2,
    "complex128": 3,
}


def join_dtypes(a: str | None, b: str | None) -> str | None:
    """Lattice join (widest); unknown joins to unknown."""
    if a is None or b is None:
        return None
    return a if _DTYPE_RANK[a] >= _DTYPE_RANK[b] else b


@dataclasses.dataclass(frozen=True)
class Dim:
    """One axis extent: literal value, symbolic name, or unknown."""

    name: str | None = None
    value: int | None = None
    rank_dependent: bool = False

    def render(self) -> str:
        if self.value is not None:
            return str(self.value)
        if self.name is not None:
            return self.name
        return "?"


UNKNOWN_DIM = Dim()


def unify_dims(a: Dim, b: Dim) -> tuple[Dim, bool]:
    """Merge two dims; returns ``(merged, conflict)``.

    Conflict only when both extents are *literally* known and differ —
    two distinct symbols may well be equal at runtime, so they merge to
    the first symbol without conflict (precision-first).
    """
    if a.value is not None and b.value is not None:
        if a.value != b.value:
            return a, True
    merged = Dim(
        name=a.name if a.name is not None else b.name,
        value=a.value if a.value is not None else b.value,
        rank_dependent=a.rank_dependent or b.rank_dependent,
    )
    return merged, False


@dataclasses.dataclass(frozen=True)
class ArrayFact:
    """What the interpreter knows about one value.

    ``shape is None`` means unknown rank; ``dtype is None`` unknown bucket.
    ``weak`` marks python scalar literals, which follow NEP-50 weak
    promotion (a ``3.0`` does not widen a float32 array; a ``1j`` widens
    any real array to complex128).
    """

    shape: tuple[Dim, ...] | None = None
    dtype: str | None = None
    layout: str = UNKNOWN
    weak: bool = False

    @property
    def is_scalar(self) -> bool:
        return self.shape is not None and len(self.shape) == 0

    def rank_dependent_dims(self) -> tuple[Dim, ...]:
        if self.shape is None:
            return ()
        return tuple(d for d in self.shape if d.rank_dependent)

    def render_shape(self) -> str:
        if self.shape is None:
            return "?"
        return "(" + ", ".join(d.render() for d in self.shape) + ")"


_SCALAR_FACTS = {
    bool: ArrayFact(shape=(), dtype="bool", layout=CONTIG, weak=True),
    int: ArrayFact(shape=(), dtype="int64", layout=CONTIG, weak=True),
    float: ArrayFact(shape=(), dtype="float64", layout=CONTIG, weak=True),
    complex: ArrayFact(shape=(), dtype="complex128", layout=CONTIG, weak=True),
}


def _broadcast_shapes(
    a: tuple[Dim, ...] | None, b: tuple[Dim, ...] | None
) -> tuple[Dim, ...] | None:
    if a is None or b is None:
        return None
    out: list[Dim] = []
    for i in range(max(len(a), len(b))):
        da = a[len(a) - 1 - i] if i < len(a) else Dim(value=1)
        db = b[len(b) - 1 - i] if i < len(b) else Dim(value=1)
        if da.value == 1:
            out.append(db)
        elif db.value == 1:
            out.append(da)
        else:
            merged, _ = unify_dims(da, db)
            out.append(merged)
    return tuple(reversed(out))


def _promote(a: ArrayFact, b: ArrayFact) -> str | None:
    """Result dtype of a binary op under weak-scalar promotion."""
    if a.dtype is None or b.dtype is None:
        return None
    if a.weak and b.weak:
        return join_dtypes(a.dtype, b.dtype)
    if a.weak or b.weak:
        weak, strong = (a, b) if a.weak else (b, a)
        if _DTYPE_KIND[weak.dtype] > _DTYPE_KIND[strong.dtype]:
            return join_dtypes(weak.dtype, strong.dtype)
        return strong.dtype
    return join_dtypes(a.dtype, b.dtype)


# ---------------------------------------------------------------------------
# Contracts (static side)
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class ContractFacts:
    """One ``@array_contract`` declaration read straight off the AST."""

    node: ast.expr  #: the decorator expression (finding anchor)
    shapes: dict[str, object] = dataclasses.field(default_factory=dict)
    dtypes: dict[str, tuple[str, ...]] = dataclasses.field(default_factory=dict)
    contiguous: tuple[str, ...] = ()
    returns: dict[str, object] = dataclasses.field(default_factory=dict)
    precision_policy: str | None = None
    problems: list[str] = dataclasses.field(default_factory=list)

    @property
    def well_formed(self) -> bool:
        return not self.problems


def _literal(node: ast.expr) -> tuple[object, bool]:
    try:
        return ast.literal_eval(node), True
    except (ValueError, TypeError, SyntaxError, MemoryError):
        return None, False


def _shape_spec_problems(name: str, spec: object) -> list[str]:
    if isinstance(spec, str):
        return [] if spec == "any" else [
            f"shape for {name!r} must be a dim tuple or 'any', got {spec!r}"
        ]
    if not isinstance(spec, (tuple, list)):
        return [f"shape for {name!r} must be a tuple, got {spec!r}"]
    problems = []
    for index, dim in enumerate(spec):
        if dim == "...":
            if index != 0:
                problems.append(
                    f"shape for {name!r}: '...' only allowed leading"
                )
        elif not isinstance(dim, (str, int)):
            problems.append(
                f"shape for {name!r}: dim {dim!r} is neither a symbol nor an int"
            )
    return problems


def _parse_contract(dec: ast.expr) -> ContractFacts | None:
    """Read an ``@array_contract(...)`` decorator; ``None`` if some other
    decorator."""
    if not isinstance(dec, ast.Call):
        return None
    leaf = dotted_name(dec.func).rpartition(".")[2]
    if leaf not in ARRAY_CONTRACT_DECORATORS:
        return None
    facts = ContractFacts(node=dec)
    if dec.args:
        facts.problems.append("array_contract takes keyword arguments only")
    for kw in dec.keywords:
        if kw.arg is None:
            facts.problems.append("array_contract does not accept **kwargs")
            continue
        value, ok = _literal(kw.value)
        if not ok:
            facts.problems.append(
                f"{kw.arg}= must be a literal the static pass can read"
            )
            continue
        if kw.arg == "shapes":
            if not isinstance(value, dict):
                facts.problems.append("shapes= must be a dict")
                continue
            for name, spec in value.items():
                facts.problems.extend(_shape_spec_problems(str(name), spec))
            facts.shapes = {str(k): v for k, v in value.items()}
        elif kw.arg == "dtypes":
            if not isinstance(value, dict):
                facts.problems.append("dtypes= must be a dict")
                continue
            out: dict[str, tuple[str, ...]] = {}
            for name, spec in value.items():
                names = (spec,) if isinstance(spec, str) else tuple(spec)
                for dtype_name in names:
                    if dtype_name not in DTYPE_LATTICE:
                        facts.problems.append(
                            f"dtype {dtype_name!r} for {name!r} is not on "
                            f"the lattice {DTYPE_LATTICE}"
                        )
                out[str(name)] = tuple(str(n) for n in names)
            facts.dtypes = out
        elif kw.arg == "contiguous":
            if not isinstance(value, (tuple, list)) or not all(
                isinstance(v, str) for v in value
            ):
                facts.problems.append("contiguous= must be a tuple of names")
                continue
            facts.contiguous = tuple(value)
        elif kw.arg == "returns":
            if not isinstance(value, dict):
                facts.problems.append("returns= must be a dict")
                continue
            unknown = set(value) - {"contiguous", "dtype", "shape"}
            if unknown:
                facts.problems.append(
                    f"returns= keys {sorted(unknown)} unknown"
                )
            if "shape" in value:
                facts.problems.extend(
                    _shape_spec_problems("return", value["shape"])
                )
            if "dtype" in value:
                spec = value["dtype"]
                names = (spec,) if isinstance(spec, str) else tuple(spec)
                for dtype_name in names:
                    if dtype_name not in DTYPE_LATTICE:
                        facts.problems.append(
                            f"return dtype {dtype_name!r} not on the lattice"
                        )
                value = {**value, "dtype": tuple(str(n) for n in names)}
            facts.returns = {str(k): v for k, v in value.items()}
        elif kw.arg == "precision_policy":
            if not isinstance(value, str) or not value:
                facts.problems.append(
                    "precision_policy= must be a non-empty string"
                )
                continue
            facts.precision_policy = value
        else:
            facts.problems.append(f"unknown array_contract keyword {kw.arg!r}")
    return facts


def _signature_params(info: FunctionInfo) -> tuple[str, ...]:
    node = info.node
    if not isinstance(node, _FUNC_NODES):
        return ()
    args = node.args
    names = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return tuple(names)


def _seed_fact(contract: ContractFacts, name: str) -> ArrayFact:
    """Entry fact of a contracted parameter (the contract's assumption)."""
    shape_spec = contract.shapes.get(name)
    shape: tuple[Dim, ...] | None = None
    if isinstance(shape_spec, (tuple, list)) and "..." not in shape_spec:
        shape = tuple(
            Dim(value=d) if isinstance(d, int) else Dim(name=str(d))
            for d in shape_spec
        )
    allowed = contract.dtypes.get(name)
    dtype = allowed[0] if allowed is not None and len(allowed) == 1 else None
    layout = CONTIG if name in contract.contiguous else UNKNOWN
    return ArrayFact(shape=shape, dtype=dtype, layout=layout)


# ---------------------------------------------------------------------------
# Events
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class _Event:
    rule: str
    path: str
    node: ast.AST
    message: str


class ArrayAnalysis:
    """Shared result of one interpretation pass over a project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.events: list[_Event] = []
        self.contracts: dict[str, ContractFacts] = {}
        self.verified: dict[str, bool] = {}
        self.hot: set[str] = set()
        self._collect_contracts()
        self._collect_hot()
        for uid, info in sorted(project.functions.items()):
            if isinstance(info.node, _FUNC_NODES):
                _Interpreter(self, info).run()

    # -- scope discovery -----------------------------------------------------

    def _collect_contracts(self) -> None:
        for uid, info in self.project.functions.items():
            node = info.node
            if not isinstance(node, _FUNC_NODES):
                continue
            for dec in node.decorator_list:
                contract = _parse_contract(dec)
                if contract is None:
                    continue
                self.contracts[uid] = contract
                self.verified[uid] = contract.well_formed
                params = set(_signature_params(info))
                for name in (
                    *contract.shapes,
                    *contract.dtypes,
                    *contract.contiguous,
                ):
                    if name not in params:
                        contract.problems.append(
                            f"contract names unknown parameter {name!r}"
                        )
                for problem in contract.problems:
                    self.verified[uid] = False
                    self.events.append(
                        _Event(
                            "shape-mismatch",
                            info.path,
                            contract.node,
                            f"unconfirmable @array_contract on "
                            f"{info.qualname}: {problem}",
                        )
                    )
                break

    def _collect_hot(self) -> None:
        for uid, info in self.project.functions.items():
            posix = PurePosixPath(info.path).as_posix()
            if info.qualname in hot_functions_for(posix):
                self.hot.add(uid)
                continue
            leaves = {d.rpartition(".")[2] for d in info.decorators}
            if leaves & HOT_DECORATORS:
                self.hot.add(uid)
            elif uid in self.contracts:
                # A declared contract opts the function into the hot-path
                # dtype discipline: its declared-real parameters must not
                # silently acquire complex inside.
                self.hot.add(uid)

    # -- event emission ------------------------------------------------------

    def emit(self, rule: str, info: FunctionInfo, node: ast.AST, message: str) -> None:
        self.events.append(_Event(rule, info.path, node, message))
        if rule == "shape-mismatch" and info.uid in self.verified:
            self.verified[info.uid] = False


_ANALYSES: "weakref.WeakKeyDictionary[Project, ArrayAnalysis]" = (
    weakref.WeakKeyDictionary()
)


def analyze_arrays(project: Project) -> ArrayAnalysis:
    """The memoized analysis for ``project`` (all four rules share it)."""
    analysis = _ANALYSES.get(project)
    if analysis is None:
        analysis = ArrayAnalysis(project)
        _ANALYSES[project] = analysis
    return analysis


# ---------------------------------------------------------------------------
# The interpreter
# ---------------------------------------------------------------------------


class _Interpreter:
    """Forward pass over one function body, accumulating events."""

    def __init__(self, analysis: ArrayAnalysis, info: FunctionInfo) -> None:
        self.analysis = analysis
        self.project = analysis.project
        self.info = info
        self.hot = info.uid in analysis.hot
        contract = analysis.contracts.get(info.uid)
        #: A declared ``precision_policy`` sanctions fp64 -> fp32 downcasts.
        self.precision_policy = (
            contract.precision_policy if contract is not None else None
        )
        self.env: dict[str, ArrayFact] = {}
        self.return_fact: ArrayFact | None = None
        self.tainted = frozenset(rank_tainted_names(self.project, info))
        #: call AST node id -> resolved callee uids.
        self.callees: dict[int, list[str]] = {}
        for edge in self.project.edges_from.get(info.uid, []):
            if edge.kind == "call" and isinstance(edge.node, ast.Call):
                self.callees.setdefault(id(edge.node), []).append(edge.callee)
        self._seen_calls: set[int] = set()

    # -- entry ---------------------------------------------------------------

    def run(self) -> None:
        contract = self.analysis.contracts.get(self.info.uid)
        if contract is not None:
            for name in {
                *contract.shapes,
                *contract.dtypes,
                *contract.contiguous,
            }:
                self.env[name] = _seed_fact(contract, name)
        node = self.info.node
        assert isinstance(node, _FUNC_NODES)
        self._exec_block(node.body)
        if contract is not None and contract.returns:
            self._check_return_contract(contract)

    def _check_return_contract(self, contract: ContractFacts) -> None:
        fact = self.return_fact
        if fact is None:
            return
        allowed = contract.returns.get("dtype")
        if (
            isinstance(allowed, tuple)
            and fact.dtype is not None
            and fact.dtype not in allowed
        ):
            self.analysis.emit(
                "shape-mismatch",
                self.info,
                self.info.node,
                f"{self.info.qualname}: contract declares return dtype "
                f"{allowed} but the body returns {fact.dtype}",
            )
        if contract.returns.get("contiguous") and fact.layout in _COPY_BAD:
            self.analysis.emit(
                "shape-mismatch",
                self.info,
                self.info.node,
                f"{self.info.qualname}: contract declares a contiguous "
                f"return but the body returns a {fact.layout} value",
            )

    # -- statements ----------------------------------------------------------

    def _exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (*_FUNC_NODES, ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign):
            fact = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, fact)
        elif isinstance(stmt, ast.AnnAssign):
            fact = self._eval(stmt.value) if stmt.value is not None else None
            if isinstance(stmt.target, ast.Name):
                self._bind_name(stmt.target.id, fact)
        elif isinstance(stmt, ast.AugAssign):
            self._eval(stmt.value)
            # In-place ops keep the target's dtype (numpy raises on a
            # genuinely widening in-place op), so no upcast event here.
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                fact = self._eval(stmt.value)
                if fact is not None:
                    self.return_fact = fact
        elif isinstance(stmt, ast.For):
            iter_fact = self._eval(stmt.iter)
            if isinstance(stmt.target, ast.Name):
                element = None
                if iter_fact is not None and iter_fact.shape:
                    element = ArrayFact(
                        shape=iter_fact.shape[1:],
                        dtype=iter_fact.dtype,
                        layout=VIEW,
                    )
                self._bind_name(stmt.target.id, element)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)

    def _bind(self, target: ast.expr, fact: ArrayFact | None) -> None:
        if isinstance(target, ast.Name):
            self._bind_name(target.id, fact)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, None)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            self._eval(target.value)

    def _bind_name(self, name: str, fact: ArrayFact | None) -> None:
        if fact is None:
            self.env.pop(name, None)
        else:
            self.env[name] = fact

    # -- expressions ---------------------------------------------------------

    def _eval(self, expr: ast.expr | None) -> ArrayFact | None:
        if expr is None:
            return None
        if isinstance(expr, ast.Constant):
            fact = _SCALAR_FACTS.get(type(expr.value))
            return fact
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr)
        if isinstance(expr, ast.Subscript):
            return self._eval_subscript(expr)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr)
        if isinstance(expr, ast.UnaryOp):
            inner = self._eval(expr.operand)
            if isinstance(expr.op, ast.Not):
                return _SCALAR_FACTS[bool]
            return inner
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            a = self._eval(expr.body)
            b = self._eval(expr.orelse)
            if a is None or b is None:
                return None
            return ArrayFact(
                shape=a.shape if a.shape == b.shape else None,
                dtype=join_dtypes(a.dtype, b.dtype),
                layout=a.layout if a.layout == b.layout else UNKNOWN,
                weak=a.weak and b.weak,
            )
        if isinstance(expr, (ast.Compare, ast.BoolOp)):
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    self._eval(child)
            if isinstance(expr, ast.Compare):
                left = self._eval(expr.left)
                if left is not None and left.shape is not None and left.shape:
                    return ArrayFact(
                        shape=left.shape, dtype="bool", layout=CONTIG
                    )
            return _SCALAR_FACTS[bool]
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        if isinstance(expr, ast.Lambda):
            return None  # analyzed as its own FunctionInfo
        if isinstance(
            expr,
            (
                ast.ListComp,
                ast.SetComp,
                ast.DictComp,
                ast.GeneratorExp,
            ),
        ):
            for generator in expr.generators:
                self._eval(generator.iter)
                if isinstance(generator.target, ast.Name):
                    self._bind_name(generator.target.id, None)
                for condition in generator.ifs:
                    self._eval(condition)
            if isinstance(expr, ast.DictComp):
                self._eval(expr.key)
                self._eval(expr.value)
            else:
                self._eval(expr.elt)
            return None
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._eval(child)
        return None

    def _eval_attribute(self, expr: ast.Attribute) -> ArrayFact | None:
        base = self._eval(expr.value)
        if expr.attr == "T":
            if base is None:
                return None
            if base.shape is not None and len(base.shape) <= 1:
                return base
            shape = None if base.shape is None else tuple(reversed(base.shape))
            layout = TRANSPOSED if base.layout in (CONTIG, VIEW) else base.layout
            if base.layout == UNKNOWN:
                layout = TRANSPOSED
            return ArrayFact(shape=shape, dtype=base.dtype, layout=layout)
        if expr.attr in ("real", "imag"):
            if base is None:
                return None
            if base.dtype == "complex128":
                return ArrayFact(
                    shape=base.shape, dtype="float64", layout=STRIDED
                )
            if base.dtype is not None:
                # real view of a real array is the array itself.
                return base
            return ArrayFact(shape=base.shape, dtype=None, layout=UNKNOWN)
        return None

    # -- subscripts ----------------------------------------------------------

    def _eval_subscript(self, expr: ast.Subscript) -> ArrayFact | None:
        base = self._eval(expr.value)
        index = expr.slice
        elements = list(index.elts) if isinstance(index, ast.Tuple) else [index]
        for element in elements:
            if isinstance(element, ast.Slice):
                self._eval(element.lower)
                self._eval(element.upper)
                self._eval(element.step)
            else:
                self._eval(element)
        if base is None or base.shape == ():
            return None

        dims: list[Dim] = []
        layout = base.layout
        shape = list(base.shape) if base.shape is not None else None
        axis = 0
        advanced_copy = False
        for position, element in enumerate(elements):
            if isinstance(element, ast.Slice):
                full = (
                    element.lower is None
                    and element.upper is None
                    and (
                        element.step is None
                        or (
                            isinstance(element.step, ast.Constant)
                            and element.step.value in (1, None)
                        )
                    )
                )
                step_known_unit = element.step is None or (
                    isinstance(element.step, ast.Constant)
                    and element.step.value in (1, None)
                )
                if not step_known_unit:
                    layout = STRIDED
                elif not full and position > 0:
                    layout = STRIDED
                dims.append(self._slice_dim(element, shape, axis, full))
                axis += 1
            elif isinstance(element, ast.Constant) and element.value is None:
                dims.append(Dim(value=1))
            elif isinstance(element, ast.Constant) and element.value is Ellipsis:
                # Give up on precise axes past an ellipsis.
                shape = None
                dims = []
                layout = layout if layout != CONTIG else VIEW
                break
            else:
                fact = self._eval(element)
                if fact is not None and fact.shape is not None and fact.shape:
                    # Integer/boolean array index: advanced indexing copies.
                    advanced_copy = True
                    dims.append(UNKNOWN_DIM)
                    axis += 1
                elif isinstance(element, ast.Constant) and isinstance(
                    element.value, int
                ):
                    if position > 0:
                        layout = STRIDED
                    axis += 1  # dim removed
                else:
                    # Unknown scalar-or-slice index.
                    if position > 0:
                        layout = STRIDED
                    rank_dep = _expr_rank_dependent(element, self.tainted)
                    dims.append(Dim(rank_dependent=rank_dep))
                    shape = None
                    axis += 1
        if advanced_copy:
            return ArrayFact(shape=None, dtype=base.dtype, layout=CONTIG)
        if shape is not None and axis <= len(shape):
            dims.extend(shape[axis:])
            result_shape: tuple[Dim, ...] | None = tuple(dims)
        else:
            result_shape = None
        if layout == CONTIG:
            layout = VIEW if result_shape is None else CONTIG
        return ArrayFact(shape=result_shape, dtype=base.dtype, layout=layout)

    def _slice_dim(
        self,
        element: ast.Slice,
        shape: list[Dim] | None,
        axis: int,
        full: bool,
    ) -> Dim:
        if full:
            if shape is not None and axis < len(shape):
                return shape[axis]
            return UNKNOWN_DIM
        lower_dep = _expr_rank_dependent(element.lower, self.tainted)
        upper_dep = _expr_rank_dependent(element.upper, self.tainted)
        # ``a[:rank]`` / ``a[rank:]`` have rank-dependent extents; a slice
        # with *both* bounds rank-dependent may still have constant extent
        # (``a[rank:rank+2]``), so it stays unknown rather than tainted.
        rank_dep = lower_dep != upper_dep
        lower = element.lower
        upper = element.upper
        if (
            (lower is None or (isinstance(lower, ast.Constant) and lower.value == 0))
            and isinstance(upper, ast.Constant)
            and isinstance(upper.value, int)
            and upper.value >= 0
        ):
            return Dim(value=upper.value, rank_dependent=rank_dep)
        return Dim(rank_dependent=rank_dep)

    # -- binary operators ----------------------------------------------------

    def _eval_binop(self, expr: ast.BinOp) -> ArrayFact | None:
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        if isinstance(expr.op, ast.MatMult):
            self._check_gemm_operand(expr, expr.left, left, "left operand of @")
            self._check_gemm_operand(expr, expr.right, right, "right operand of @")
            return self._gemm_fact(expr, left, right)
        if left is None or right is None:
            return None
        dtype = _promote(left, right)
        self._check_upcast_binop(expr, left, right, dtype)
        shape = _broadcast_shapes(left.shape, right.shape)
        self._check_broadcast_blowup(expr, left, right)
        weak = left.weak and right.weak
        layout = CONTIG if not weak else left.layout
        return ArrayFact(shape=shape, dtype=dtype, layout=layout, weak=weak)

    def _gemm_fact(
        self, expr: ast.BinOp, left: ArrayFact | None, right: ArrayFact | None
    ) -> ArrayFact:
        shape: tuple[Dim, ...] | None = None
        if (
            left is not None
            and right is not None
            and left.shape is not None
            and right.shape is not None
            and len(left.shape) == 2
            and len(right.shape) == 2
        ):
            _, conflict = unify_dims(left.shape[1], right.shape[0])
            if conflict:
                self.analysis.emit(
                    "shape-mismatch",
                    self.info,
                    expr,
                    f"{self.info.qualname}: matmul inner dims disagree: "
                    f"{left.render_shape()} @ {right.render_shape()}",
                )
            shape = (left.shape[0], right.shape[1])
        dtype = None
        if left is not None and right is not None:
            dtype = _promote(left, right)
        return ArrayFact(shape=shape, dtype=dtype, layout=CONTIG)

    def _check_upcast_binop(
        self,
        expr: ast.BinOp,
        left: ArrayFact,
        right: ArrayFact,
        result: str | None,
    ) -> None:
        if not self.hot or result not in ("complex128", "float64"):
            return
        for narrow, wide in ((left, right), (right, left)):
            if narrow.weak or narrow.dtype is None or wide.dtype is None:
                continue
            if narrow.dtype == result:
                continue
            if result == "complex128" and narrow.dtype in ("float32", "float64"):
                source = (
                    "a complex literal"
                    if wide.weak
                    else f"a {wide.dtype} operand"
                )
                self.analysis.emit(
                    "silent-upcast-in-hot",
                    self.info,
                    expr,
                    f"{self.info.qualname}: {narrow.dtype} value acquires "
                    f"complex128 through {source} in a mixed-operand "
                    "broadcast — the real-FFT fast path and half-precision "
                    "memory budget are lost silently",
                )
                return
            if result == "float64" and narrow.dtype == "float32" and not wide.weak:
                self.analysis.emit(
                    "silent-upcast-in-hot",
                    self.info,
                    expr,
                    f"{self.info.qualname}: float32 value acquires float64 "
                    f"through a {wide.dtype} operand in a mixed-operand "
                    "broadcast",
                )
                return

    def _check_broadcast_blowup(
        self, expr: ast.BinOp, left: ArrayFact, right: ArrayFact
    ) -> None:
        if not self.hot:
            return
        if left.shape is None or right.shape is None:
            return
        if len(left.shape) != len(right.shape) or len(left.shape) < 2:
            return
        left_expands = any(
            a.value == 1 and b.value not in (1, None)
            for a, b in zip(left.shape, right.shape)
        )
        right_expands = any(
            b.value == 1 and a.value not in (1, None)
            for a, b in zip(left.shape, right.shape)
        )
        if left_expands and right_expands:
            self.analysis.emit(
                "shape-mismatch",
                self.info,
                expr,
                f"{self.info.qualname}: broadcasting "
                f"{left.render_shape()} against {right.render_shape()} "
                "materializes a temporary larger than both operands",
            )

    def _check_gemm_operand(
        self,
        site: ast.AST,
        operand_expr: ast.expr,
        fact: ArrayFact | None,
        role: str,
    ) -> None:
        if fact is None or fact.layout not in _GEMM_BAD:
            return
        self.analysis.emit(
            "hidden-copy-into-kernel",
            self.info,
            site,
            f"{self.info.qualname}: {role} is a {fact.layout} view "
            f"({ast.unparse(operand_expr)}) — BLAS must pack a hidden "
            "copy; stage it into a contiguous buffer explicitly",
        )

    # -- calls ---------------------------------------------------------------

    def _eval_call(self, call: ast.Call) -> ArrayFact | None:
        if id(call) in self._seen_calls:
            return None
        self._seen_calls.add(id(call))
        name = dotted_name(call.func)
        head, _, leaf = name.rpartition(".")
        root = head.split(".")[0] if head else ""

        method_base: ArrayFact | None = None
        if isinstance(call.func, ast.Attribute):
            method_base = self._eval(call.func.value)
        arg_facts = [self._eval(a) for a in call.args]
        kw_facts = {
            kw.arg: self._eval(kw.value) for kw in call.keywords if kw.arg
        }

        self._check_collective(call, leaf, arg_facts)
        self._check_fft_entry(call, leaf, arg_facts)
        self._check_gemm_call(call, leaf, root, arg_facts, kw_facts, name)
        self._check_resolved_call(call, arg_facts, kw_facts)

        return self._constructor_fact(
            call, name, head, leaf, root, method_base, arg_facts, kw_facts
        )

    # .. collective buffers ..................................................

    def _check_collective(
        self, call: ast.Call, leaf: str, arg_facts: list[ArrayFact | None]
    ) -> None:
        if leaf not in _REDUCING_COLLECTIVES or not call.args:
            return
        fact = arg_facts[0]
        if fact is None:
            return
        bad = fact.rank_dependent_dims()
        if bad:
            self.analysis.emit(
                "collective-buffer-contract",
                self.info,
                call,
                f"{self.info.qualname}: buffer fed to {leaf} has a "
                f"rank-dependent shape {fact.render_shape()} — reducing "
                "collectives require every rank to contribute identical "
                "shapes (the runtime sanitizer would only catch this live)",
            )

    # .. FFT entries .........................................................

    def _check_fft_entry(
        self, call: ast.Call, leaf: str, arg_facts: list[ArrayFact | None]
    ) -> None:
        if leaf not in _FFT_LEAVES or not call.args:
            return
        fact = arg_facts[0]
        if fact is None or fact.layout not in _COPY_BAD:
            return
        self.analysis.emit(
            "hidden-copy-into-kernel",
            self.info,
            call,
            f"{self.info.qualname}: {fact.layout} view passed to {leaf} — "
            "pocketfft copies non-contiguous input axes silently; pass a "
            "C-contiguous block",
        )

    # .. GEMM-shaped calls ...................................................

    def _check_gemm_call(
        self,
        call: ast.Call,
        leaf: str,
        root: str,
        arg_facts: list[ArrayFact | None],
        kw_facts: dict[str, ArrayFact | None],
        name: str,
    ) -> None:
        is_gemm = leaf in _GEMM_LEAVES and (root in _NUMPY_ALIASES or not root)
        is_einsum = leaf == "einsum" and (root in _NUMPY_ALIASES or not root)
        if not (is_gemm or is_einsum):
            return
        operands = arg_facts[1:] if is_einsum else arg_facts[:2]
        exprs = call.args[1:] if is_einsum else call.args[:2]
        for expr, fact in zip(exprs, operands):
            if fact is not None and fact.layout in _GEMM_BAD:
                self.analysis.emit(
                    "hidden-copy-into-kernel",
                    self.info,
                    call,
                    f"{self.info.qualname}: {fact.layout} operand "
                    f"({ast.unparse(expr)}) in {leaf} — BLAS/einsum must "
                    "pack a hidden copy",
                )
        out_fact = kw_facts.get("out")
        if out_fact is not None and out_fact.layout in _GEMM_BAD:
            self.analysis.emit(
                "hidden-copy-into-kernel",
                self.info,
                call,
                f"{self.info.qualname}: out= buffer of {leaf} is "
                f"{out_fact.layout} — the kernel writes a temporary and "
                "copies it back",
            )

    # .. resolved project calls (contract checking) ..........................

    def _check_resolved_call(
        self,
        call: ast.Call,
        arg_facts: list[ArrayFact | None],
        kw_facts: dict[str, ArrayFact | None],
    ) -> None:
        for callee_uid in self.callees.get(id(call), []):
            callee = self.project.functions.get(callee_uid)
            if callee is None:
                continue
            if callee.qualname in _SLAB_PUBLISH_QUALNAMES and call.args:
                fact = arg_facts[0]
                if fact is not None and fact.layout in _COPY_BAD:
                    self.analysis.emit(
                        "hidden-copy-into-kernel",
                        self.info,
                        call,
                        f"{self.info.qualname}: {fact.layout} view published "
                        f"to {callee.qualname} (call chain: "
                        f"{self.info.qualname} -> {callee.qualname}) — the "
                        "slab write materializes a contiguous copy",
                    )
            contract = self.analysis.contracts.get(callee_uid)
            if contract is None or not contract.well_formed:
                continue
            self._check_contract_call(call, callee, contract, arg_facts, kw_facts)

    def _check_contract_call(
        self,
        call: ast.Call,
        callee: FunctionInfo,
        contract: ContractFacts,
        arg_facts: list[ArrayFact | None],
        kw_facts: dict[str, ArrayFact | None],
    ) -> None:
        params = list(_signature_params(callee))
        facts = arg_facts
        if params and params[0] in ("self", "cls"):
            base = call.func
            if isinstance(base, ast.Attribute) and dotted_name(base.value) == (
                callee.class_name or ""
            ):
                facts = arg_facts[1:]  # unbound ClassName.method(obj, ...)
            params = params[1:]
        bound: list[tuple[str, ArrayFact | None]] = list(zip(params, facts))
        bound.extend((n, f) for n, f in kw_facts.items() if n in set(params))
        chain = f"{self.info.qualname} -> {callee.qualname}"
        dims: dict[str, Dim] = {}
        for name, fact in bound:
            if fact is None:
                continue
            self._check_contract_dtype(call, callee, contract, name, fact, chain)
            self._check_contract_layout(call, callee, contract, name, fact, chain)
            self._check_contract_shape(
                call, callee, contract, name, fact, dims, chain
            )

    def _check_contract_dtype(
        self,
        call: ast.Call,
        callee: FunctionInfo,
        contract: ContractFacts,
        name: str,
        fact: ArrayFact,
        chain: str,
    ) -> None:
        allowed = contract.dtypes.get(name)
        if allowed is None or fact.dtype is None or fact.weak:
            return
        if fact.dtype in allowed:
            return
        widest = max(_DTYPE_RANK[d] for d in allowed)
        if _DTYPE_RANK[fact.dtype] > widest:
            self.analysis.emit(
                "silent-upcast-in-hot",
                self.info,
                call,
                f"{fact.dtype} value passed for {name!r} of "
                f"{callee.qualname}, whose contract allows {allowed} "
                f"(call chain: {chain})",
            )

    def _check_contract_layout(
        self,
        call: ast.Call,
        callee: FunctionInfo,
        contract: ContractFacts,
        name: str,
        fact: ArrayFact,
        chain: str,
    ) -> None:
        if name not in contract.contiguous or fact.layout not in _COPY_BAD:
            return
        self.analysis.emit(
            "hidden-copy-into-kernel",
            self.info,
            call,
            f"{fact.layout} view passed for {name!r} of {callee.qualname}, "
            f"whose contract requires C-contiguity (call chain: {chain})",
        )

    def _check_contract_shape(
        self,
        call: ast.Call,
        callee: FunctionInfo,
        contract: ContractFacts,
        name: str,
        fact: ArrayFact,
        dims: dict[str, Dim],
        chain: str,
    ) -> None:
        spec = contract.shapes.get(name)
        if not isinstance(spec, (tuple, list)) or fact.shape is None:
            return
        declared = list(spec)
        ellipsis = bool(declared) and declared[0] == "..."
        if ellipsis:
            declared = declared[1:]
            if len(fact.shape) < len(declared):
                self.analysis.emit(
                    "shape-mismatch",
                    self.info,
                    call,
                    f"rank-{len(fact.shape)} value passed for {name!r} of "
                    f"{callee.qualname}, whose contract requires at least "
                    f"{len(declared)} trailing dims (call chain: {chain})",
                )
                return
            actual = fact.shape[len(fact.shape) - len(declared) :]
        else:
            if len(fact.shape) != len(declared):
                self.analysis.emit(
                    "shape-mismatch",
                    self.info,
                    call,
                    f"rank-{len(fact.shape)} value "
                    f"{fact.render_shape()} passed for {name!r} of "
                    f"{callee.qualname}, whose contract declares rank "
                    f"{len(declared)} (call chain: {chain})",
                )
                return
            actual = fact.shape
        for spec_dim, dim in zip(declared, actual):
            if isinstance(spec_dim, int):
                if dim.value is not None and dim.value != spec_dim:
                    self.analysis.emit(
                        "shape-mismatch",
                        self.info,
                        call,
                        f"dim {spec_dim} of {name!r} in {callee.qualname} "
                        f"got extent {dim.value} (call chain: {chain})",
                    )
                continue
            known = dims.get(str(spec_dim))
            if known is None:
                dims[str(spec_dim)] = dim
                continue
            merged, conflict = unify_dims(known, dim)
            if conflict:
                self.analysis.emit(
                    "shape-mismatch",
                    self.info,
                    call,
                    f"symbolic dim {spec_dim!r} of {callee.qualname} binds "
                    f"to both {known.render()} and {dim.render()} in one "
                    f"call (call chain: {chain})",
                )
            dims[str(spec_dim)] = merged

    # .. constructors / transforms ..........................................

    def _constructor_fact(
        self,
        call: ast.Call,
        name: str,
        head: str,
        leaf: str,
        root: str,
        method_base: ArrayFact | None,
        arg_facts: list[ArrayFact | None],
        kw_facts: dict[str, ArrayFact | None],
    ) -> ArrayFact | None:
        is_np = root in _NUMPY_ALIASES
        dtype_kw = self._dtype_from_kwarg(call)

        if is_np and leaf in ("zeros", "ones", "empty", "full"):
            shape = self._shape_from_expr(call.args[0]) if call.args else None
            dtype = dtype_kw
            if dtype is None:
                if leaf == "full" and len(call.args) > 1:
                    fill = arg_facts[1]
                    dtype = fill.dtype if fill is not None else None
                else:
                    dtype = "float64"
            return ArrayFact(shape=shape, dtype=dtype, layout=CONTIG)
        if is_np and leaf in ("zeros_like", "ones_like", "empty_like", "full_like"):
            base = arg_facts[0] if arg_facts else None
            dtype = dtype_kw or (base.dtype if base is not None else None)
            shape = base.shape if base is not None else None
            return ArrayFact(shape=shape, dtype=dtype, layout=CONTIG)
        if is_np and leaf == "asarray":
            base = arg_facts[0] if arg_facts else None
            if base is None:
                return ArrayFact(shape=None, dtype=dtype_kw, layout=UNKNOWN)
            self._check_constructor_downcast(call, leaf, base, dtype_kw)
            return ArrayFact(
                shape=base.shape,
                dtype=dtype_kw or base.dtype,
                layout=base.layout,
            )
        if is_np and leaf in ("array", "ascontiguousarray"):
            base = arg_facts[0] if arg_facts else None
            if base is not None:
                self._check_constructor_downcast(call, leaf, base, dtype_kw)
            return ArrayFact(
                shape=base.shape if base is not None else None,
                dtype=dtype_kw or (base.dtype if base is not None else None),
                layout=CONTIG,
            )
        if is_np and leaf == "copy":
            base = arg_facts[0] if arg_facts else None
            return ArrayFact(
                shape=base.shape if base is not None else None,
                dtype=base.dtype if base is not None else None,
                layout=CONTIG,
            )
        if is_np and leaf in ("rfftn", "fftn", "ifftn"):
            return ArrayFact(shape=None, dtype="complex128", layout=CONTIG)
        if is_np and leaf == "irfftn":
            return ArrayFact(shape=None, dtype="float64", layout=CONTIG)
        if is_np and leaf in ("matmul", "dot", "einsum"):
            facts = [f for f in arg_facts if f is not None]
            dtype = None
            if facts:
                dtype = facts[0].dtype
                for fact in facts[1:]:
                    promoted = _promote(
                        ArrayFact(dtype=dtype), fact
                    ) if dtype is not None else None
                    dtype = promoted
            return ArrayFact(shape=None, dtype=dtype, layout=CONTIG)
        if is_np and leaf in ("maximum", "minimum", "abs", "conj", "conjugate"):
            base = arg_facts[0] if arg_facts else None
            if base is None:
                return None
            return ArrayFact(shape=base.shape, dtype=base.dtype, layout=CONTIG)

        # Method calls on tracked values.
        if method_base is not None:
            if leaf == "astype":
                return self._astype_fact(call, method_base)
            if leaf == "copy":
                return ArrayFact(
                    shape=method_base.shape,
                    dtype=method_base.dtype,
                    layout=CONTIG,
                )
            if leaf == "reshape":
                shape = self._reshape_shape(call)
                if method_base.layout in (TRANSPOSED, STRIDED):
                    layout = COPIED
                elif method_base.layout == CONTIG:
                    layout = CONTIG
                else:
                    layout = UNKNOWN
                return ArrayFact(
                    shape=shape, dtype=method_base.dtype, layout=layout
                )
            if leaf == "transpose":
                shape = (
                    tuple(reversed(method_base.shape))
                    if method_base.shape is not None and not call.args
                    else None
                )
                return ArrayFact(
                    shape=shape, dtype=method_base.dtype, layout=TRANSPOSED
                )
            if leaf in ("ravel", "flatten"):
                layout = CONTIG if leaf == "flatten" else (
                    CONTIG if method_base.layout == CONTIG else COPIED
                )
                return ArrayFact(shape=None, dtype=method_base.dtype, layout=layout)
            if leaf == "conj":
                if method_base.dtype is not None and method_base.dtype != "complex128":
                    return method_base
                return ArrayFact(
                    shape=method_base.shape,
                    dtype=method_base.dtype,
                    layout=CONTIG if method_base.dtype == "complex128" else UNKNOWN,
                )

        # Calls into contracted project functions propagate return facts.
        for callee_uid in self.callees.get(id(call), []):
            contract = self.analysis.contracts.get(callee_uid)
            if contract is None or not contract.returns:
                continue
            dtype_spec = contract.returns.get("dtype")
            dtype = (
                dtype_spec[0]
                if isinstance(dtype_spec, tuple) and len(dtype_spec) == 1
                else None
            )
            layout = CONTIG if contract.returns.get("contiguous") else UNKNOWN
            return ArrayFact(shape=None, dtype=dtype, layout=layout)
        return None

    def _astype_fact(self, call: ast.Call, base: ArrayFact) -> ArrayFact:
        target = (
            self._dtype_from_expr(call.args[0]) if call.args else None
        )
        if self.hot and target is not None:
            widening_complex = target == "complex128" and base.dtype in (
                None,
                "float32",
                "float64",
            )
            widening_double = target == "float64" and base.dtype == "float32"
            if widening_complex or widening_double:
                origin = base.dtype or "a real-typed"
                self.analysis.emit(
                    "silent-upcast-in-hot",
                    self.info,
                    call,
                    f"{self.info.qualname}: astype({target}) widens "
                    f"{origin} value inside a hot kernel — doubles the "
                    "memory traffic and disables the real-FFT fast path",
                )
            elif target == "float32" and base.dtype == "float64":
                self._check_downcast(call, "astype(float32)")
        return ArrayFact(shape=base.shape, dtype=target, layout=CONTIG)

    def _check_constructor_downcast(
        self,
        call: ast.Call,
        leaf: str,
        base: ArrayFact,
        dtype_kw: str | None,
    ) -> None:
        if (
            self.hot
            and dtype_kw == "float32"
            and base.dtype == "float64"
        ):
            self._check_downcast(call, f"{leaf}(..., dtype=float32)")

    def _check_downcast(self, node: ast.AST, how: str) -> None:
        """fp64 -> fp32 in a hot kernel needs a declared precision policy."""
        if self.precision_policy is not None:
            return
        self.analysis.emit(
            "undeclared-downcast-in-hot",
            self.info,
            node,
            f"{self.info.qualname}: {how} narrows a float64 value inside a "
            "hot kernel with no declared precision policy — sanctioned "
            "mixed-precision stages must set precision_policy= on their "
            f"@array_contract (conventional values: {PRECISION_POLICIES})",
        )

    # -- literal helpers -----------------------------------------------------

    def _dtype_from_kwarg(self, call: ast.Call) -> str | None:
        for kw in call.keywords:
            if kw.arg == "dtype":
                return self._dtype_from_expr(kw.value)
        return None

    def _dtype_from_expr(self, expr: ast.expr) -> str | None:
        text = dotted_name(expr)
        leaf = text.rpartition(".")[2]
        if leaf:
            return canonical_dtype(leaf)
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return canonical_dtype(expr.value)
        return None

    def _shape_from_expr(self, expr: ast.expr) -> tuple[Dim, ...] | None:
        if isinstance(expr, (ast.Tuple, ast.List)):
            return tuple(self._dim_from_expr(e) for e in expr.elts)
        return (self._dim_from_expr(expr),)

    def _reshape_shape(self, call: ast.Call) -> tuple[Dim, ...] | None:
        if len(call.args) == 1:
            return self._shape_from_expr(call.args[0])
        if len(call.args) > 1:
            return tuple(self._dim_from_expr(a) for a in call.args)
        return None

    def _dim_from_expr(self, expr: ast.expr) -> Dim:
        rank_dep = _expr_rank_dependent(expr, self.tainted)
        if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
            if expr.value >= 0:
                return Dim(value=expr.value)
            return Dim(rank_dependent=rank_dep)  # -1 reshape wildcard
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
            return Dim(rank_dependent=rank_dep)
        name = dotted_name(expr)
        if name:
            return Dim(name=name, rank_dependent=rank_dep or name in self.tainted)
        return Dim(rank_dependent=rank_dep)


def _expr_rank_dependent(
    expr: ast.expr | None, tainted: frozenset[str]
) -> bool:
    if expr is None:
        return False
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name) and (sub.id == "rank" or sub.id in tainted):
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in ("rank", "_rank"):
            return True
    return False


# ---------------------------------------------------------------------------
# The four registered rules
# ---------------------------------------------------------------------------


class _ArrayRule(ProjectRule):
    """Base: run the shared analysis, yield this rule's events."""

    def check(
        self, project: Project, modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        analysis = analyze_arrays(project)
        for event in analysis.events:
            if event.rule == self.name:
                yield self.finding_at(event.path, event.node, event.message)


@register_project_rule
class SilentUpcastInHot(_ArrayRule):
    """A float64 hot path acquiring complex128 (or float32 acquiring
    float64) silently doubles memory traffic and poisons the real-FFT fast
    path — exactly the migration hazard of complex-orbital / GPU modes."""

    name = "silent-upcast-in-hot"
    description = (
        "dtype widens silently inside a hot kernel (astype, complex "
        "literal, or mixed-operand broadcast)"
    )


@register_project_rule
class UndeclaredDowncastInHot(_ArrayRule):
    """The mirror hazard of :class:`SilentUpcastInHot`: a float64 value
    narrowed to float32 inside a hot kernel loses ~8 significant digits.
    Mixed-precision stages are *sanctioned* by declaring
    ``precision_policy=`` on the kernel's ``@array_contract`` (making the
    downcast a reviewed policy with an error-bounded fallback — see
    :mod:`repro.precision`); any other downcast fails lint."""

    name = "undeclared-downcast-in-hot"
    description = (
        "float64 value cast to float32 inside a hot kernel whose contract "
        "declares no precision_policy"
    )


@register_project_rule
class HiddenCopyIntoKernel(_ArrayRule):
    """Non-contiguous views reaching FFT/GEMM entries or a SharedSlab
    publish force silent materializations inside the kernel — the data-
    movement tax NDFT-style analyses show dominates plane-wave DFT."""

    name = "hidden-copy-into-kernel"
    description = (
        "non-contiguous view passed to an FFT/GEMM entry, a SharedSlab "
        "publish, or a contract-contiguous parameter"
    )


@register_project_rule
class ShapeMismatch(_ArrayRule):
    """Symbolic-dim conflicts across call boundaries, unconfirmable
    ``@array_contract`` declarations, and hot-path broadcasts that
    materialize a temporary larger than both operands."""

    name = "shape-mismatch"
    description = (
        "symbolic shape conflict across a call boundary, an unconfirmable "
        "array contract, or a temporary-materializing broadcast"
    )


@register_project_rule
class CollectiveBufferContract(_ArrayRule):
    """Reducing collectives combine buffers elementwise: a rank-dependent
    buffer shape is the allreduce-on-ragged-buffer class the runtime
    sanitizer only catches live.  Composes with the PR-7 rank taint."""

    name = "collective-buffer-contract"
    description = (
        "buffer with rank-dependent shape fed to a reducing collective "
        "(reduce/allreduce/ireduce/verified_allreduce)"
    )
