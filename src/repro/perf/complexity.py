"""Symbolic and numeric complexity tables (paper Tables 2 and 4).

Two views of the same content:

* the *symbolic* strings exactly as the paper prints them (for the bench
  harness to render), and
* a *numeric* evaluator that substitutes a workload's sizes into each term,
  used by the tests to verify the claimed orderings (e.g. the implicit
  version's memory is ~2 orders of magnitude below the naive version for
  paper-scale systems).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.workloads import LRTDDFTWorkload


@dataclass(frozen=True)
class ComplexityRow:
    """One version's asymptotic costs, symbolic and numeric."""

    version: str
    construct_compute: str
    construct_memory: str
    diag_compute: str
    diag_memory: str


#: Paper Table 2: phase-by-phase costs of the naive implementation.
TABLE_2_ROWS: tuple[tuple[str, str, str], ...] = (
    ("Face-splitting product", "O(Nv Nc Nr)", "O(Nv Nc Nr)"),
    ("Fast Fourier transform (FFT)", "O(Nv^2 Nc^2 Nr)", "O(Nv Nc Nr)"),
    ("General matrix multiply (GEMM)", "O(Nv^2 Nc^2 Nr)", "O(Nv^2 Nc^2)"),
    ("f_Hxc kernel", "O(Nv Nc Nr)", "O(Nv Nc Nr)"),
    ("ScaLAPACK::Syevd", "O(Nv^3 Nc^3)", "O(Nv^2 Nc^2)"),
)

#: Paper Table 4: the five optimization levels.
TABLE_4_ROWS: tuple[ComplexityRow, ...] = (
    ComplexityRow(
        "naive",
        "O(Nv^2 Nc^2 Nr + Nv Nc Nr)",
        "O(Nv^2 Nc^2 + Nr Nv Nc)",
        "O(Nr^2 Nv^2 Nc^2)",
        "O(Nv^2 Nc^2)",
    ),
    ComplexityRow(
        "qrcp-isdf",
        "O(Nr Nmu^2 + Nmu Nv^2 Nc^2 + Nmu Nr^2)",
        "O(Nv^2 Nc^2 + Nmu Nv Nc)",
        "O(Nr^2 Nv^2 Nc^2)",
        "O(Nv^2 Nc^2)",
    ),
    ComplexityRow(
        "kmeans-isdf",
        "O(Nr Nmu^2 + Nmu Nv^2 Nc^2 + Nmu Nr'^2)",
        "O(Nv^2 Nc^2 + Nmu Nv Nc)",
        "O(Nr^2 Nv^2 Nc^2)",
        "O(Nv^2 Nc^2)",
    ),
    ComplexityRow(
        "kmeans-isdf-lobpcg",
        "O(Nr Nmu^2 + Nmu Nv^2 Nc^2 + Nmu Nr'^2)",
        "O(Nv^2 Nc^2 + Nmu Nv Nc)",
        "k O(Nv^2 Nc^2)",
        "O(Nv^2 Nc^2)",
    ),
    ComplexityRow(
        "implicit-kmeans-isdf-lobpcg",
        "O(Nr Nmu^2 + Nmu Nv Nc + Nmu Nr'^2)",
        "O(Nv^2 Nc^2 + Nmu Nv Nc)",
        "k O(Nmu Nv Nc)",
        "O(Nmu^2)",
    ),
)


def complexity_table_2() -> tuple[tuple[str, str, str], ...]:
    """The naive phase table (operation, computation, memory)."""
    return TABLE_2_ROWS


def complexity_table_4() -> tuple[ComplexityRow, ...]:
    """The five-version table."""
    return TABLE_4_ROWS


def evaluate_complexity(
    version: str, w: LRTDDFTWorkload
) -> dict[str, float]:
    """Numeric leading-order operation/element counts for a workload.

    Returns ``construct_compute``, ``construct_memory``, ``diag_compute``
    and ``diag_memory`` with the paper's leading terms substituted.
    """
    nv, nc, nr = float(w.n_v), float(w.n_c), float(w.n_r)
    nmu, nrp, k = float(w.n_mu), float(w.n_r_pruned), float(w.n_k)
    ncv = nv * nc
    if version == "naive":
        return {
            "construct_compute": ncv**2 * nr + ncv * nr,
            "construct_memory": ncv**2 + nr * ncv,
            "diag_compute": ncv**3,
            "diag_memory": ncv**2,
        }
    if version == "qrcp-isdf":
        return {
            "construct_compute": nr * nmu**2 + nmu * ncv**2 + nmu * nr**2,
            "construct_memory": ncv**2 + nmu * ncv,
            "diag_compute": ncv**3,
            "diag_memory": ncv**2,
        }
    if version == "kmeans-isdf":
        return {
            "construct_compute": nr * nmu**2 + nmu * ncv**2 + nmu * nrp**2,
            "construct_memory": ncv**2 + nmu * ncv,
            "diag_compute": ncv**3,
            "diag_memory": ncv**2,
        }
    if version == "kmeans-isdf-lobpcg":
        return {
            "construct_compute": nr * nmu**2 + nmu * ncv**2 + nmu * nrp**2,
            "construct_memory": ncv**2 + nmu * ncv,
            "diag_compute": k * ncv**2,
            "diag_memory": ncv**2,
        }
    if version == "implicit-kmeans-isdf-lobpcg":
        return {
            "construct_compute": nr * nmu**2 + nmu * ncv + nmu * nrp**2,
            "construct_memory": nmu * ncv + nmu**2,
            "diag_compute": k * nmu * ncv,
            "diag_memory": nmu**2,
        }
    raise ValueError(f"unknown version {version!r}")
