"""Property-based tests for linear-algebra helpers and eigensolvers."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.eigen import lobpcg
from repro.utils.linalg import (
    orthonormalize,
    stable_generalized_eigh,
    symmetrize,
)
from repro.utils.rng import default_rng


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10**6), st.integers(2, 30), st.integers(1, 6))
def test_orthonormalize_produces_orthonormal_columns(seed, n, k):
    k = min(k, n)
    rng = default_rng(seed)
    x = rng.standard_normal((n, k))
    q = orthonormalize(x)
    np.testing.assert_allclose(q.T @ q, np.eye(k), atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10**6), st.integers(2, 20))
def test_symmetrize_idempotent(seed, n):
    rng = default_rng(seed)
    a = rng.standard_normal((n, n))
    s = symmetrize(a)
    np.testing.assert_allclose(symmetrize(s), s, atol=1e-14)
    # Symmetrization preserves the diagonal and the symmetric part.
    np.testing.assert_allclose(np.diag(s), np.diag(a), atol=1e-14)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10**6), st.integers(3, 15))
def test_generalized_eigh_residuals(seed, n):
    """A v = lambda B v holds for every returned pair."""
    rng = default_rng(seed)
    a = rng.standard_normal((n, n))
    a = symmetrize(a)
    b = rng.standard_normal((n, n))
    b = b @ b.T + n * np.eye(n)
    evals, vecs = stable_generalized_eigh(a, b)
    for j in range(len(evals)):
        residual = a @ vecs[:, j] - evals[j] * (b @ vecs[:, j])
        assert np.linalg.norm(residual) < 1e-7 * max(1.0, abs(evals[j])) * n


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10**6), st.integers(10, 40), st.integers(1, 4))
def test_lobpcg_eigenvalues_above_spectrum_floor(seed, n, k):
    """Ritz values never undershoot the true minimum eigenvalue (variational
    property — the regression the divergence bug violated)."""
    rng = default_rng(seed)
    a = rng.standard_normal((n, n))
    a = symmetrize(a) + np.diag(np.linspace(0, n, n))
    floor = np.linalg.eigvalsh(a)[0]
    res = lobpcg(lambda x: a @ x, rng.standard_normal((n, k)), tol=1e-8, max_iter=150)
    assert res.eigenvalues.min() >= floor - 1e-6


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10**6), st.integers(8, 30))
def test_lobpcg_invariant_to_spectral_shift(seed, n):
    """Eigenvalues of A + c I are those of A shifted by c."""
    rng = default_rng(seed)
    a = rng.standard_normal((n, n))
    a = symmetrize(a) + np.diag(np.arange(n, dtype=float))
    x0 = rng.standard_normal((n, 3))
    r1 = lobpcg(lambda x: a @ x, x0, tol=1e-9, max_iter=200)
    shift = 7.5
    r2 = lobpcg(lambda x: a @ x + shift * x, x0, tol=1e-9, max_iter=200)
    if r1.converged and r2.converged:
        np.testing.assert_allclose(
            r2.eigenvalues, r1.eigenvalues + shift, atol=1e-6
        )
