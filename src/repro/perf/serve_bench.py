"""Job-server cache / warm-start benchmark (``repro bench-serve``).

Exercises the three reuse tiers of :class:`repro.serve.CalculationServer`
on one system and emits ``BENCH_serve.json`` with the evidence for each:

* **cache hit** — the same SCF request submitted twice: the second must be
  served from the content-addressed store with **zero** SCF iterations and
  a **bit-identical** result (same energy, same density and orbital
  arrays), in effectively zero wall time;
* **warm start** — a near-duplicate request (same lattice/species/config,
  perturbed positions): the nearest cached ground state seeds the SCF,
  which must converge in *measurably fewer* iterations than the identical
  request on a cold, warm-start-disabled server — to the same physics
  (energy agreement bounded by the SCF tolerance);
* **SCF-subrequest hit** — an LR-TDDFT request on the already-cached
  structure: its embedded ground-state stage is skipped outright
  (``scf_iterations == 0``) and only the excitation solve runs.

Both the warm and the reference cold pass run in-process back to back, so
process-level caches (FFT plans) are shared; the plans warm up during the
*cold* passes, which biases wall-clock numbers against the cache — the
reported ratios are conservative.
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

__all__ = ["format_summary", "run_serve_bench", "write_report"]


def _perturbed(cell, amplitude: float, seed: int):
    """The reference cell with every atom displaced by ``~N(0, amplitude)``."""
    from repro.pw.cell import UnitCell
    from repro.utils.rng import default_rng

    rng = default_rng(seed)
    lattice = np.asarray(cell.lattice, dtype=float)
    cart = rng.normal(0.0, amplitude, size=(len(cell.species), 3))
    frac = np.asarray(cell.fractional_positions, dtype=float) + cart @ np.linalg.inv(
        lattice
    )
    return UnitCell(lattice, cell.species, frac)


def _submit_timed(server, request):
    t0 = time.perf_counter()
    handle = request.submit(server)
    result = handle.result(timeout=600)
    return handle, result, time.perf_counter() - t0


def run_serve_bench(
    *,
    smoke: bool = False,
    amplitude: float = 0.012,
    seed: int = 11,
) -> dict:
    """Benchmark the server's reuse tiers; returns a JSON-ready dict."""
    from repro.api import CalculationRequest, SCFConfig, TDDFTConfig
    from repro.atoms import silicon_primitive_cell
    from repro.serve import CalculationServer

    if smoke:
        scf = SCFConfig(ecut=6.0, n_bands=8, tol=1e-6, seed=0)
        tddft = TDDFTConfig(n_excitations=3, seed=0)
    else:
        scf = SCFConfig(ecut=10.0, n_bands=10, tol=1e-6, seed=0)
        tddft = TDDFTConfig(n_excitations=4, seed=0)

    cell_a = silicon_primitive_cell()
    cell_b = _perturbed(cell_a, amplitude, seed)
    req_a = CalculationRequest(kind="scf", structure=cell_a, scf=scf)
    req_b = CalculationRequest(kind="scf", structure=cell_b, scf=scf)
    req_td = CalculationRequest(
        kind="tddft", structure=cell_a, scf=scf, tddft=tddft
    )

    with CalculationServer() as server:
        h_cold, gs_cold, s_cold = _submit_timed(server, req_a)
        h_hit, gs_hit, s_hit = _submit_timed(server, req_a)
        h_warm, gs_warm, s_warm = _submit_timed(server, req_b)
        h_td, td_result, s_td = _submit_timed(server, req_td)
        stats = server.stats()

    # Independent cold reference for the perturbed structure: a fresh
    # server with warm starts disabled (nothing cached can leak in).
    with CalculationServer(warm_start=False) as reference:
        h_ref, gs_ref, s_ref = _submit_timed(reference, req_b)

    bit_identical = bool(
        gs_hit is gs_cold
        or (
            gs_hit.total_energy == gs_cold.total_energy
            and np.array_equal(gs_hit.density, gs_cold.density)
            and np.array_equal(gs_hit.orbitals_real, gs_cold.orbitals_real)
        )
    )
    rec_warm = h_warm.record()
    rec_ref = h_ref.record()
    d_energy = float(abs(gs_warm.total_energy - gs_ref.total_energy))

    return {
        "meta": {
            "mode": "smoke" if smoke else "full",
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count() or 1,
            "system": "si2",
            "amplitude_bohr": amplitude,
            "perturbation_seed": seed,
            "scf": scf.to_dict(),
            "tddft": tddft.to_dict(),
            "request_key_a": req_a.cache_key(),
            "request_key_b": req_b.cache_key(),
        },
        "cache_hit": {
            "cold_wall_seconds": s_cold,
            "hit_wall_seconds": s_hit,
            "speedup": s_cold / max(s_hit, 1e-9),
            "scf_iterations_cold": h_cold.record()["scf_iterations"],
            "scf_iterations_hit": h_hit.record()["scf_iterations"],
            "cache_hit_flag": h_hit.cache_hit,
            "bit_identical": bit_identical,
        },
        "warm_start": {
            "rms_displacement_bohr": rec_warm["warm_rms"],
            "warm_flag": h_warm.warm,
            "scf_iterations_warm": rec_warm["scf_iterations"],
            "scf_iterations_cold": rec_ref["scf_iterations"],
            "iterations_saved": rec_ref["scf_iterations"]
            - rec_warm["scf_iterations"],
            "warm_wall_seconds": s_warm,
            "cold_wall_seconds": s_ref,
            "equivalence": {
                "total_energy_delta_ha": d_energy,
                "tolerance_bound_ha": 10.0 * scf.tol,
                "within_tolerance": bool(d_energy <= 10.0 * scf.tol),
            },
        },
        "scf_subrequest": {
            "tddft_scf_iterations": h_td.record()["scf_iterations"],
            "tddft_eigensolver_iterations": h_td.record()[
                "eigensolver_iterations"
            ],
            "tddft_wall_seconds": s_td,
        },
        "server_stats": stats,
    }


def format_summary(report: dict) -> str:
    """Terse human-readable digest of :func:`run_serve_bench` output."""
    meta = report["meta"]
    hit = report["cache_hit"]
    warm = report["warm_start"]
    sub = report["scf_subrequest"]
    eq = warm["equivalence"]
    return "\n".join(
        [
            f"serve bench ({meta['mode']} mode, {meta['system']}, "
            f"{meta['cpu_count']} cpu(s))",
            f"  cache hit: cold {hit['cold_wall_seconds']:.3f}s "
            f"({hit['scf_iterations_cold']} scf iters) -> hit "
            f"{hit['hit_wall_seconds'] * 1e3:.2f}ms "
            f"({hit['scf_iterations_hit']} iters), "
            f"bit_identical={hit['bit_identical']}",
            f"  warm start: rms {warm['rms_displacement_bohr']:.4f} bohr, "
            f"scf iters {warm['scf_iterations_cold']} cold -> "
            f"{warm['scf_iterations_warm']} warm "
            f"(saved {warm['iterations_saved']}), "
            f"dE={eq['total_energy_delta_ha']:.1e} Ha "
            f"(bound {eq['tolerance_bound_ha']:.0e}, "
            f"within={eq['within_tolerance']})",
            f"  tddft on cached structure: scf iters "
            f"{sub['tddft_scf_iterations']} (ground state reused), "
            f"eig iters {sub['tddft_eigensolver_iterations']}",
        ]
    )


def write_report(report: dict, path) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
