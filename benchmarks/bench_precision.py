"""Measured strict64 vs mixed precision-tier benchmark.

Times the three ISDF-pipeline stages the mixed tier accelerates — K-Means
point selection, the interpolation-vector fit, and pair-product assembly —
in strict64 and mixed precision (see ``repro.precision``), with a per-stage
a-posteriori error column checked against the tier's documented tolerance.

Writes a machine-readable report (default ``BENCH_precision.json`` at the
repo root) whose composite speedup and error columns are gated by
``tools/check_bench.py``; see ``docs/performance.md`` for how to read it.

Usage::

    PYTHONPATH=src python benchmarks/bench_precision.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import pathlib
import sys


def main(argv=None) -> int:
    from repro.perf.precision_bench import (
        format_summary,
        run_precision_bench,
        write_report,
    )

    default_out = (
        pathlib.Path(__file__).resolve().parent.parent / "BENCH_precision.json"
    )
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI (seconds, not minutes)")
    parser.add_argument("--out", default=str(default_out),
                        help=f"JSON report path (default: {default_out})")
    args = parser.parse_args(argv)

    report = run_precision_bench(smoke=args.smoke)
    print(format_summary(report))
    write_report(report, args.out)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
