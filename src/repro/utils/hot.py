"""Markers for allocation-disciplined hot kernels and their array contracts.

``@hot_kernel`` is a zero-overhead annotation: it tags the function so the
``no-alloc-in-hot`` lint pass (:mod:`repro.lint.rules`) holds it to the
allocation-free contract of ``docs/performance.md`` — no fresh numpy
buffers or operator temporaries per call/iteration beyond the documented
(suppressed-with-reason) ones.  Seed-era kernels that predate the decorator
are enrolled via :data:`repro.lint.hotpaths.HOT_PATH_MANIFEST` instead.

``@array_contract`` declares the shape/dtype/layout preconditions of a hot
kernel's array parameters (and optionally its return value).  The contract
is double-checked:

* **statically** — the abstract interpreter in :mod:`repro.lint.arrays`
  verifies declared contracts against inferred facts and checks resolved
  call sites against them, and
* **at runtime** — with ``REPRO_ARRAY_CONTRACTS=1`` in the environment at
  import time the decorator wraps the function with cheap entry asserts
  (dtype membership, C-contiguity, rank and named-dim consistency).  The
  gate is decided once at decoration time, so the default mode returns the
  function object unchanged: zero overhead, bit-identical behaviour.

Contract vocabulary (all values must be literals so the static pass can
read them straight off the AST):

* ``shapes={"x": ("n", "k")}`` — symbolic dims unify *within one call*:
  every occurrence of ``"n"`` across the declared parameters must agree.
  Integer entries pin a dim exactly; a leading ``"..."`` matches any
  number of extra leading axes; the string ``"any"`` (instead of a tuple)
  declares an array-typed parameter without constraining its shape.
* ``dtypes={"x": "float64"}`` or ``("float64", "complex128")`` — allowed
  dtype names on the lint lattice (bool, int64, float32, float64,
  complex128); inputs canonicalize through the same buckets (e.g. int32
  counts as int64, complex64 as complex128).
* ``contiguous=("x",)`` — the named parameters must be C-contiguous.
* ``returns={"contiguous": True, "dtype": "float64", "shape": (...)}`` —
  validated on exit in runtime mode; statically checked only when the
  return fact is inferable.
* ``precision_policy="fp32-compute"`` — declares that this kernel hosts a
  *sanctioned* mixed-precision path (see :mod:`repro.precision`): it may
  downcast float64 operands to float32 internally, guarded by an
  a-posteriori error estimate.  The ``silent-upcast-in-hot`` lint rule
  rejects undeclared float64 -> float32 casts in hot kernels; this field
  is the static declaration that makes the downcast reviewed policy
  rather than an accident.  Conventional values: ``"fp32-compute"``
  (fp32 GEMM/classification with fp64 accumulation), ``"fp32-wire"``
  (fp32 collective payloads with fp64 reduction buffers),
  ``"fp32-scratch"`` (fp32 FFT scratch with fp64 results).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Mapping, Sequence, TypeVar, overload

__all__ = [
    "ArrayContractError",
    "ContractSpec",
    "array_contract",
    "array_contracts_enabled",
    "get_array_contract",
    "hot_kernel",
    "is_hot_kernel",
    "validate_contract_value",
]

F = TypeVar("F", bound=Callable)

#: Environment flag enabling runtime contract validation (read at import /
#: decoration time, not per call — flipping it mid-process has no effect).
CONTRACTS_ENV = "REPRO_ARRAY_CONTRACTS"

#: Numpy dtype names folded onto the lint dtype lattice.
_DTYPE_BUCKETS: dict[str, str] = {
    "bool": "bool",
    "bool_": "bool",
    "int8": "int64",
    "int16": "int64",
    "int32": "int64",
    "int64": "int64",
    "uint8": "int64",
    "uint16": "int64",
    "uint32": "int64",
    "uint64": "int64",
    "intp": "int64",
    "int": "int64",
    "float16": "float32",
    "float32": "float32",
    "single": "float32",
    "float64": "float64",
    "float": "float64",
    "double": "float64",
    "complex64": "complex128",
    "complex128": "complex128",
    "complex": "complex128",
    "cdouble": "complex128",
}

#: The lattice order (join = max index); exported for the lint layer.
DTYPE_LATTICE: tuple[str, ...] = (
    "bool",
    "int64",
    "float32",
    "float64",
    "complex128",
)


def canonical_dtype(name: object) -> str | None:
    """Fold a dtype (or its name) onto the lattice; ``None`` when foreign."""
    return _DTYPE_BUCKETS.get(str(name))


def array_contracts_enabled() -> bool:
    """Whether ``REPRO_ARRAY_CONTRACTS`` requests runtime validation."""
    return os.environ.get(CONTRACTS_ENV, "").strip().lower() not in (
        "",
        "0",
        "false",
        "off",
    )


class ArrayContractError(AssertionError):
    """A runtime array-contract violation (subclass of AssertionError so
    existing "asserts on entry" expectations hold)."""


class ContractSpec:
    """Parsed, immutable form of one ``@array_contract`` declaration."""

    __slots__ = ("shapes", "dtypes", "contiguous", "returns", "precision_policy")

    def __init__(
        self,
        shapes: Mapping[str, Any],
        dtypes: Mapping[str, tuple[str, ...]],
        contiguous: tuple[str, ...],
        returns: Mapping[str, Any] | None,
        precision_policy: str | None = None,
    ) -> None:
        self.shapes = dict(shapes)
        self.dtypes = dict(dtypes)
        self.contiguous = contiguous
        self.returns = dict(returns) if returns else None
        self.precision_policy = precision_policy

    @property
    def param_names(self) -> tuple[str, ...]:
        """Every parameter the contract constrains (sorted, stable)."""
        return tuple(
            sorted({*self.shapes, *self.dtypes, *self.contiguous})
        )

    def is_vacuous(self) -> bool:
        return not (self.shapes or self.dtypes or self.contiguous or self.returns)


def _normalize_dtypes(
    dtypes: Mapping[str, str | Sequence[str]] | None,
) -> dict[str, tuple[str, ...]]:
    out: dict[str, tuple[str, ...]] = {}
    for name, spec in (dtypes or {}).items():
        names = (spec,) if isinstance(spec, str) else tuple(spec)
        for dtype_name in names:
            if dtype_name not in DTYPE_LATTICE:
                raise ValueError(
                    f"array_contract dtype {dtype_name!r} for parameter "
                    f"{name!r} is not on the lattice {DTYPE_LATTICE}"
                )
        out[name] = names
    return out


def _check_shape_spec(name: str, spec: object) -> None:
    if isinstance(spec, str):
        if spec != "any":
            raise ValueError(
                f"array_contract shape for {name!r} must be a tuple of dims "
                f"or the string 'any', got {spec!r}"
            )
        return
    if not isinstance(spec, (tuple, list)):
        raise ValueError(
            f"array_contract shape for {name!r} must be a tuple, got {spec!r}"
        )
    for index, dim in enumerate(spec):
        if dim == "...":
            if index != 0:
                raise ValueError(
                    f"array_contract shape for {name!r}: '...' is only "
                    "allowed as the leading entry"
                )
        elif not isinstance(dim, (str, int)):
            raise ValueError(
                f"array_contract shape for {name!r}: dims must be symbolic "
                f"names or ints, got {dim!r}"
            )


def _describe_value(value: Any) -> str:
    """Compact actual-state description: ``float32 array of shape (4, 8)``."""
    flags = getattr(value, "flags", None)
    layout = ""
    if flags is not None:
        layout = ", C-contiguous" if flags["C_CONTIGUOUS"] else ", non-contiguous"
    return f"{value.dtype} array of shape {tuple(value.shape)}{layout}"


def _where(qualname: str, name: str) -> str:
    """Who violated: names both the kernel and the offending argument, so a
    failure surfaced from a nested kernel still reads unambiguously."""
    what = "return value" if name == "return" else f"argument {name!r}"
    return f"array contract of {qualname}() violated by {what}"


def validate_contract_value(
    spec: ContractSpec,
    qualname: str,
    name: str,
    value: Any,
    dims: dict[str, int],
) -> None:
    """Validate one parameter (or ``"return"``) against the contract.

    ``dims`` accumulates symbolic-dim bindings across the parameters of a
    single call so cross-parameter dims unify.  Non-array values are
    skipped (duck-typed payload parameters stay unconstrained).  Every
    violation message names the kernel, the offending argument and the
    expected-vs-actual dtype/shape/layout.
    """
    if not hasattr(value, "dtype") or not hasattr(value, "shape"):
        return
    if name == "return" and spec.returns is not None:
        allowed = spec.returns.get("dtype")
    else:
        allowed = spec.dtypes.get(name)
    if allowed is not None:
        bucket = canonical_dtype(value.dtype)
        if bucket not in allowed:
            expected = " or ".join(allowed)
            raise ArrayContractError(
                f"{_where(qualname, name)}: expected dtype {expected}, "
                f"got {_describe_value(value)} "
                f"(dtype {value.dtype} is lattice bucket {bucket})"
            )
    if name in spec.contiguous or (
        name == "return" and spec.returns is not None and spec.returns.get("contiguous")
    ):
        flags = getattr(value, "flags", None)
        if flags is not None and not flags["C_CONTIGUOUS"]:
            raise ArrayContractError(
                f"{_where(qualname, name)}: expected a C-contiguous layout, "
                f"got {_describe_value(value)} with strides "
                f"{getattr(value, 'strides', None)}"
            )
    shape_spec = spec.shapes.get(name)
    if name == "return" and spec.returns is not None:
        shape_spec = spec.returns.get("shape", shape_spec)
    if shape_spec is None or shape_spec == "any":
        return
    declared = tuple(shape_spec)
    ellipsis = bool(declared) and declared[0] == "..."
    if ellipsis:
        declared = declared[1:]
        if len(value.shape) < len(declared):
            raise ArrayContractError(
                f"{_where(qualname, name)}: expected at least "
                f"{len(declared)} trailing dims "
                f"('...', {', '.join(map(repr, declared))}), "
                f"got {_describe_value(value)}"
            )
        actual = tuple(value.shape)[len(value.shape) - len(declared) :]
    else:
        if len(value.shape) != len(declared):
            raise ArrayContractError(
                f"{_where(qualname, name)}: expected shape "
                f"{tuple(declared)} (rank {len(declared)}), "
                f"got {_describe_value(value)}"
            )
        actual = tuple(value.shape)
    for dim, size in zip(declared, actual):
        if isinstance(dim, int):
            if size != dim:
                raise ArrayContractError(
                    f"{_where(qualname, name)}: expected dim {dim} where the "
                    f"contract declares {tuple(declared)}, "
                    f"got {_describe_value(value)}"
                )
            continue
        bound = dims.setdefault(dim, int(size))
        if bound != size:
            raise ArrayContractError(
                f"{_where(qualname, name)}: symbolic dim {dim!r} is "
                f"{bound} elsewhere in this call, but {_describe_value(value)} "
                f"puts {size} there (contract shape {tuple(declared)})"
            )


def _runtime_wrapper(fn: Callable, spec: ContractSpec) -> Callable:
    import functools

    code = fn.__code__
    positional = code.co_varnames[: code.co_argcount]
    qualname = fn.__qualname__
    watched = set(spec.param_names)
    check_return = spec.returns is not None

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        dims: dict[str, int] = {}
        for name, value in zip(positional, args):
            if name in watched:
                validate_contract_value(spec, qualname, name, value, dims)
        for name, value in kwargs.items():
            if name in watched:
                validate_contract_value(spec, qualname, name, value, dims)
        result = fn(*args, **kwargs)
        if check_return:
            validate_contract_value(spec, qualname, "return", result, dims)
        return result

    return wrapper


def array_contract(
    *,
    shapes: Mapping[str, Any] | None = None,
    dtypes: Mapping[str, str | Sequence[str]] | None = None,
    contiguous: Sequence[str] = (),
    returns: Mapping[str, Any] | None = None,
    precision_policy: str | None = None,
) -> Callable[[F], F]:
    """Declare the array contract of a hot kernel (see module docstring).

    Always attaches the parsed :class:`ContractSpec` as
    ``__repro_array_contract__``; wraps the function with entry asserts
    only when ``REPRO_ARRAY_CONTRACTS`` was set at decoration time.
    ``precision_policy`` statically sanctions an internal float64 ->
    float32 downcast (mixed-precision stage); it adds no runtime checks.
    """
    if precision_policy is not None and (
        not isinstance(precision_policy, str) or not precision_policy
    ):
        raise ValueError(
            "array_contract precision_policy must be a non-empty string, "
            f"got {precision_policy!r}"
        )
    for name, spec in (shapes or {}).items():
        _check_shape_spec(name, spec)
    if returns is not None:
        unknown = set(returns) - {"contiguous", "dtype", "shape"}
        if unknown:
            raise ValueError(f"array_contract returns= keys {sorted(unknown)} unknown")
        if "shape" in returns:
            _check_shape_spec("return", returns["shape"])
        if "dtype" in returns:
            returns = {
                **returns,
                "dtype": _normalize_dtypes({"return": returns["dtype"]})["return"],
            }
    parsed = ContractSpec(
        shapes or {},
        _normalize_dtypes(dtypes),
        tuple(contiguous),
        returns,
        precision_policy,
    )

    def mark(fn: F) -> F:
        out: Callable = fn
        if array_contracts_enabled() and not parsed.is_vacuous():
            out = _runtime_wrapper(fn, parsed)
        out.__repro_array_contract__ = parsed  # type: ignore[attr-defined]
        return out  # type: ignore[return-value]

    return mark


def get_array_contract(fn: Callable) -> ContractSpec | None:
    """The :class:`ContractSpec` attached to ``fn`` (``None`` when bare)."""
    return getattr(fn, "__repro_array_contract__", None)


@overload
def hot_kernel(fn: F) -> F: ...
@overload
def hot_kernel(fn: str | None = None, *, label: str | None = None) -> Callable[[F], F]: ...


def hot_kernel(fn: Callable | str | None = None, *, label: str | None = None):
    """Mark ``fn`` as a hot kernel.

    Usable bare (``@hot_kernel``), with a keyword label
    (``@hot_kernel(label="...")``) or a positional one
    (``@hot_kernel("...")``).
    """
    if isinstance(fn, str):
        fn, label = None, fn

    def mark(f: F) -> F:
        f.__repro_hot__ = True  # type: ignore[attr-defined]
        f.__repro_hot_label__ = label or f.__qualname__  # type: ignore[attr-defined]
        return f

    return mark if fn is None else mark(fn)


def is_hot_kernel(fn: Callable) -> bool:
    """Whether ``fn`` (or the function under a bound method) is marked."""
    return bool(getattr(fn, "__repro_hot__", False))
