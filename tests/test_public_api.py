"""The exported public surfaces must match the committed manifest.

Covers every tracked module (``repro.api``, ``repro.serve``): exports,
dataclass field defaults, function signatures, and public method
signatures on classes (the job-server client surface).
"""

import importlib.util
import json
import pathlib

import pytest

_TOOL = pathlib.Path(__file__).resolve().parents[1] / "tools" / "check_public_api.py"


@pytest.fixture(scope="module")
def tool():
    spec = importlib.util.spec_from_file_location("check_public_api", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestManifest:
    def test_surface_matches_committed_manifest(self, tool):
        drift = tool.check()
        assert drift == [], "\n".join(drift)

    def test_manifest_covers_all_exports(self, tool):
        from repro import api, serve

        with open(tool.MANIFEST_PATH) as fh:
            manifest = json.load(fh)
        assert sorted(manifest) == sorted(tool.TRACKED_MODULES)
        assert sorted(manifest["repro.api"]) == sorted(api.__all__)
        assert sorted(manifest["repro.serve"]) == sorted(serve.__all__)


class TestDescribe:
    def test_dataclasses_record_field_defaults(self, tool):
        surface = tool.describe_api()
        scf = surface["SCFConfig"]
        assert scf["kind"] == "dataclass"
        assert scf["fields"]["ecut"] == "10.0"
        assert scf["fields"]["mixer"] == "'anderson'"

    def test_functions_record_signatures(self, tool):
        surface = tool.describe_api()
        assert surface["run_scf"]["kind"] == "function"
        assert "resilience" in surface["run_scf"]["signature"]

    def test_request_methods_are_covered(self, tool):
        surface = tool.describe_api()
        request = surface["CalculationRequest"]
        assert request["kind"] == "dataclass"
        assert "compute" in request["methods"]
        assert "cache_key" in request["methods"]
        assert "tenant" in request["methods"]["submit"]

    def test_serve_client_surface_is_covered(self, tool):
        surface = tool.describe_api("repro.serve")
        client = surface["ServeClient"]
        assert client["kind"] == "class"
        for method in ("submit", "status", "result", "cancel", "events"):
            assert method in client["methods"], method
        assert "priority" in client["methods"]["submit"]
        server = surface["CalculationServer"]
        for method in ("submit", "handle", "cancel", "stats", "shutdown"):
            assert method in server["methods"], method

    def test_diff_reports_removed_and_changed(self, tool):
        expected = {"a": {"kind": "class"}, "b": {"kind": "function", "signature": "()"}}
        actual = {"b": {"kind": "function", "signature": "(x)"}, "c": {"kind": "class"}}
        drift = tool.diff_surfaces(expected, actual)
        assert any("removed export: a" in line for line in drift)
        assert any("new unblessed export: c" in line for line in drift)
        assert any(line.startswith("changed: b") for line in drift)

    def test_main_ok_exit_code(self, tool, capsys):
        assert tool.main([]) == 0
        assert "matches" in capsys.readouterr().out

    def test_main_detects_drift(self, tool, capsys, tmp_path, monkeypatch):
        stale = tmp_path / "manifest.json"
        stale.write_text(
            json.dumps({"repro.api": {"Ghost": {"kind": "class"}}, "repro.serve": {}})
        )
        monkeypatch.setattr(tool, "MANIFEST_PATH", str(stale))
        assert tool.main([]) == 1
        out = capsys.readouterr().out
        assert "drift" in out
        assert "Ghost" in out
