"""XYZ structure file I/O.

Minimal but standards-following: the comment line carries the lattice in
the extended-XYZ ``Lattice="..."`` convention so periodic cells round-trip.
Coordinates are written in Angstrom (the XYZ convention) and converted to
Bohr on read.
"""

from __future__ import annotations

import pathlib
import re

import numpy as np

from repro.constants import ANGSTROM_TO_BOHR, BOHR_TO_ANGSTROM
from repro.pw.cell import UnitCell
from repro.utils.validation import require


def write_xyz(cell: UnitCell, path: str | pathlib.Path, comment: str = "") -> pathlib.Path:
    """Write ``cell`` as an (extended) XYZ file."""
    path = pathlib.Path(path)
    lattice_angstrom = cell.lattice * BOHR_TO_ANGSTROM
    lattice_str = " ".join(f"{x:.10f}" for x in lattice_angstrom.ravel())
    header = f'Lattice="{lattice_str}"'
    if comment:
        require("\n" not in comment, "comment must be a single line")
        header += f" comment={comment!r}"
    lines = [str(cell.n_atoms), header]
    cart_angstrom = cell.cartesian_positions * BOHR_TO_ANGSTROM
    for symbol, xyz in zip(cell.species, cart_angstrom):
        lines.append(
            f"{symbol:<3s} {xyz[0]:16.10f} {xyz[1]:16.10f} {xyz[2]:16.10f}"
        )
    path.write_text("\n".join(lines) + "\n")
    return path


def read_xyz(path: str | pathlib.Path, *, box: float | None = None) -> UnitCell:
    """Read an XYZ file into a :class:`UnitCell`.

    Periodic files written by :func:`write_xyz` (or any extended-XYZ with a
    ``Lattice="..."`` field) reconstruct their cell; plain XYZ files need
    ``box`` (cubic edge in Bohr) to place the molecule in.
    """
    path = pathlib.Path(path)
    lines = path.read_text().splitlines()
    require(len(lines) >= 2, f"{path} is not an XYZ file")
    n_atoms = int(lines[0].strip())
    require(
        len(lines) >= 2 + n_atoms, f"{path}: expected {n_atoms} atom lines"
    )

    match = re.search(r'Lattice="([^"]+)"', lines[1])
    if match:
        values = np.array([float(x) for x in match.group(1).split()])
        require(values.size == 9, "Lattice field must hold 9 numbers")
        lattice = values.reshape(3, 3) * ANGSTROM_TO_BOHR
    else:
        require(box is not None, f"{path} has no Lattice field; pass box=")
        lattice = box * np.eye(3)

    species = []
    cart = []
    for line in lines[2 : 2 + n_atoms]:
        parts = line.split()
        require(len(parts) >= 4, f"malformed atom line: {line!r}")
        species.append(parts[0])
        cart.append([float(x) for x in parts[1:4]])
    cart_bohr = np.asarray(cart) * ANGSTROM_TO_BOHR
    frac = cart_bohr @ np.linalg.inv(lattice)
    return UnitCell(lattice, tuple(species), frac)
