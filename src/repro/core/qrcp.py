"""Interpolation-point selection by QR with column pivoting (Section 4.1.1).

The reference ISDF point selection: pivoted QR on ``Z^T`` (pairs x grid
points) ranks grid points by how much new information their row of ``Z``
carries; the first ``N_mu`` pivots are the interpolation points.

Two cost regimes:

* ``sketch="none"`` — exact QRCP on the full ``Z^T``; the expensive
  baseline the paper measures in Table 3 (O(N_r N_cv^2), ~90% of ISDF time).
* ``sketch="gaussian"`` (default) — randomized sampling QRCP (paper ref
  [10]): compress the pair dimension with a Gaussian sketch
  ``Y = G Z^T`` of ``l = n_mu + oversample`` rows, then pivot on the small
  ``(l, N_r)`` matrix.  The sketch is built *separably* from the orbital
  factors, so the full ``Z`` is never formed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla

from repro.utils.rng import default_rng
from repro.utils.validation import require


@dataclass(frozen=True)
class QRCPResult:
    """Outcome of interpolation-point selection.

    Attributes
    ----------
    indices:
        ``(n_mu,)`` selected grid-point indices (pivot order).
    r_diagonal:
        ``|diag(R)|`` of the pivoted factorization — the nonincreasing
        significance sequence the paper uses for its rank-truncation
        threshold.
    """

    indices: np.ndarray
    r_diagonal: np.ndarray

    @property
    def n_points(self) -> int:
        return int(self.indices.size)


def _separable_sketch(
    psi_v: np.ndarray, psi_c: np.ndarray, n_rows: int, rng: np.random.Generator
) -> np.ndarray:
    """Gaussian sketch of ``Z^T`` built from the orbital factors.

    Rows are ``(g_v^T Psi)(r) * (g_c^T Phi)(r)`` with independent Gaussian
    vectors g_v, g_c — distributed like a rank-one-projected sketch of the
    Khatri-Rao product, at ``O(n_rows (N_v + N_c) N_r)`` cost.
    """
    g_v = rng.standard_normal((n_rows, psi_v.shape[0]))
    g_c = rng.standard_normal((n_rows, psi_c.shape[0]))
    return (g_v @ psi_v) * (g_c @ psi_c)


def select_points_qrcp(
    psi_v: np.ndarray,
    psi_c: np.ndarray,
    n_mu: int,
    *,
    sketch: str = "gaussian",
    oversample: int = 10,
    rng: np.random.Generator | None = None,
    rank_tol: float = 0.0,
) -> QRCPResult:
    """Select ``n_mu`` interpolation points by (randomized) QRCP.

    Parameters
    ----------
    psi_v, psi_c:
        ``(N_v, N_r)`` / ``(N_c, N_r)`` real-space orbitals.
    n_mu:
        Number of interpolation points requested.
    sketch:
        ``"gaussian"`` (randomized, default) or ``"none"`` (exact QRCP on
        the full pair matrix — the Table 3 baseline).
    oversample:
        Extra sketch rows beyond ``n_mu`` (randomized mode only).
    rank_tol:
        Optional early-termination threshold on ``|R_kk| / |R_11|`` — the
        paper's "minimum numerical threshold"; points past the first
        diagonal entry below it are dropped.
    """
    require(psi_v.shape[1] == psi_c.shape[1], "orbital grid mismatch")
    n_r = psi_v.shape[1]
    n_cv = psi_v.shape[0] * psi_c.shape[0]
    require(0 < n_mu <= min(n_r, n_cv), f"n_mu must be in [1, {min(n_r, n_cv)}]")

    if sketch == "none":
        z_t = (
            psi_v[:, None, :] * psi_c[None, :, :]
        ).reshape(n_cv, n_r)
        work = z_t
    elif sketch == "gaussian":
        rng = rng or default_rng()
        n_rows = min(n_mu + oversample, n_cv)
        work = _separable_sketch(psi_v, psi_c, n_rows, rng)
    else:
        raise ValueError(f"unknown sketch mode {sketch!r}")

    # Pivoted QR over grid-point columns.
    _, r, piv = sla.qr(work, mode="economic", pivoting=True)
    r_diag = np.abs(np.diag(r))
    n_take = min(n_mu, r_diag.size)
    if rank_tol > 0.0 and r_diag.size:
        significant = r_diag >= rank_tol * r_diag[0]
        n_take = min(n_take, max(int(significant.sum()), 1))
    return QRCPResult(indices=piv[:n_take].copy(), r_diagonal=r_diag[:n_take].copy())
