"""CheckpointManager / LoopCheckpointer: versioning, pruning, validation."""

import numpy as np
import pytest

from repro.resilience import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    CheckpointManager,
    LoopCheckpointer,
)
from repro.utils.serialization import save_payload


def _state(i):
    return {"x": np.full(3, float(i)), "note": f"step {i}"}


class TestCheckpointManager:
    def test_save_load_round_trip(self, tmp_path):
        mgr = CheckpointManager(tmp_path, tag="loop")
        mgr.save(3, _state(3))
        state = mgr.load(3)
        np.testing.assert_array_equal(state["x"], np.full(3, 3.0))
        assert state["note"] == "step 3"

    def test_steps_sorted(self, tmp_path):
        mgr = CheckpointManager(tmp_path, tag="loop")
        for step in (5, 1, 3):
            mgr.save(step, _state(step))
        assert mgr.steps() == [1, 3, 5]

    def test_latest_returns_newest(self, tmp_path):
        mgr = CheckpointManager(tmp_path, tag="loop")
        for step in (1, 2, 3):
            mgr.save(step, _state(step))
        step, state = mgr.latest()
        assert step == 3
        np.testing.assert_array_equal(state["x"], np.full(3, 3.0))

    def test_latest_skips_corrupt_newest(self, tmp_path):
        mgr = CheckpointManager(tmp_path, tag="loop")
        mgr.save(1, _state(1))
        mgr.path(9).write_bytes(b"half-written garbage")
        step, _ = mgr.latest()
        assert step == 1

    def test_latest_none_when_empty(self, tmp_path):
        assert CheckpointManager(tmp_path, tag="loop").latest() is None

    def test_missing_step_raises(self, tmp_path):
        mgr = CheckpointManager(tmp_path, tag="loop")
        with pytest.raises(CheckpointError, match="no snapshot"):
            mgr.load(7)

    def test_tag_isolation(self, tmp_path):
        a = CheckpointManager(tmp_path, tag="scf")
        b = CheckpointManager(tmp_path, tag="lobpcg")
        a.save(1, _state(1))
        assert b.steps() == []
        assert b.latest() is None

    def test_format_version_enforced(self, tmp_path):
        mgr = CheckpointManager(tmp_path, tag="loop")
        save_payload(
            mgr.path(2),
            {
                "format": CHECKPOINT_FORMAT_VERSION + 1,
                "tag": "loop",
                "step": 2,
                "state": {},
            },
        )
        with pytest.raises(CheckpointError, match="format"):
            mgr.load(2)

    def test_tag_mismatch_rejected(self, tmp_path):
        CheckpointManager(tmp_path, tag="other").save(4, _state(4))
        mgr = CheckpointManager(tmp_path, tag="loop")
        # Forge a file under loop's name carrying other's payload.
        mgr.path(4).write_bytes(
            CheckpointManager(tmp_path, tag="other").path(4).read_bytes()
        )
        with pytest.raises(CheckpointError, match="mismatch"):
            mgr.load(4)

    def test_unsafe_tag_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="filesystem-safe"):
            CheckpointManager(tmp_path, tag="../escape")

    def test_prune_keeps_newest(self, tmp_path):
        mgr = CheckpointManager(tmp_path, tag="loop")
        for step in range(1, 6):
            mgr.save(step, _state(step))
        mgr.prune(keep_last=2)
        assert mgr.steps() == [4, 5]

    def test_save_with_keep_last(self, tmp_path):
        mgr = CheckpointManager(tmp_path, tag="loop")
        for step in range(1, 5):
            mgr.save(step, _state(step), keep_last=2)
        assert mgr.steps() == [3, 4]

    def test_clear(self, tmp_path):
        mgr = CheckpointManager(tmp_path, tag="loop")
        mgr.save(1, _state(1))
        mgr.clear()
        assert mgr.steps() == []


class TestLoopCheckpointer:
    def test_interval(self, tmp_path):
        mgr = CheckpointManager(tmp_path, tag="loop")
        ck = LoopCheckpointer(mgr, every=2)
        for step in range(1, 6):
            ck.save(step, _state(step))
        assert mgr.steps() == [2, 4]

    def test_force_overrides_interval(self, tmp_path):
        mgr = CheckpointManager(tmp_path, tag="loop")
        ck = LoopCheckpointer(mgr, every=10)
        ck.save(3, _state(3), force=True)
        assert mgr.steps() == [3]

    def test_resume_only_when_restarting(self, tmp_path):
        mgr = CheckpointManager(tmp_path, tag="loop")
        mgr.save(2, _state(2))
        assert LoopCheckpointer(mgr).resume() is None
        step, state = LoopCheckpointer(mgr, restart=True).resume()
        assert step == 2
        np.testing.assert_array_equal(state["x"], np.full(3, 2.0))

    def test_keep_last_pruning(self, tmp_path):
        mgr = CheckpointManager(tmp_path, tag="loop")
        ck = LoopCheckpointer(mgr, keep_last=1)
        for step in range(1, 4):
            ck.save(step, _state(step))
        assert mgr.steps() == [3]
