"""Tests for the naive explicit Casida/TDA solver."""

import numpy as np
import pytest

from repro.core import (
    HxcKernel,
    build_casida_hamiltonian,
    build_vhxc,
    solve_casida_dense,
    transition_diagonal,
)


@pytest.fixture(scope="module")
def setup(si8_synthetic):
    gs = si8_synthetic
    psi_v, eps_v, psi_c, eps_c = gs.select_transition_space(4, 4)
    kernel = HxcKernel(gs.basis, gs.density)
    return gs, psi_v, eps_v, psi_c, eps_c, kernel


def test_transition_diagonal_values():
    d = transition_diagonal(np.array([-0.3]), np.array([0.2, 0.4]))
    np.testing.assert_allclose(d, [0.5, 0.7])


def test_vhxc_is_symmetric(setup):
    _, psi_v, _, psi_c, _, kernel = setup
    vhxc = build_vhxc(psi_v, psi_c, kernel)
    np.testing.assert_allclose(vhxc, vhxc.T, atol=1e-12)


def test_vhxc_matches_elementwise_integrals(setup):
    """Spot-check V_Hxc entries against direct kernel matrix elements."""
    _, psi_v, _, psi_c, _, kernel = setup
    vhxc = build_vhxc(psi_v, psi_c, kernel)
    from repro.core import pair_products

    z = pair_products(psi_v, psi_c)
    direct = kernel.matrix_elements(z[:, [0, 5, 9]].T, z[:, [0, 5, 9]].T)
    sub = vhxc[np.ix_([0, 5, 9], [0, 5, 9])]
    np.testing.assert_allclose(sub, direct, atol=1e-10)


def test_hamiltonian_diagonal_contains_transitions(setup):
    _, psi_v, eps_v, psi_c, eps_c, kernel = setup
    h = build_casida_hamiltonian(psi_v, eps_v, psi_c, eps_c, kernel)
    vhxc = build_vhxc(psi_v, psi_c, kernel)
    d = transition_diagonal(eps_v, eps_c)
    np.testing.assert_allclose(np.diag(h), d + 2 * np.diag(vhxc), atol=1e-12)


def test_hamiltonian_symmetric(setup):
    _, psi_v, eps_v, psi_c, eps_c, kernel = setup
    h = build_casida_hamiltonian(psi_v, eps_v, psi_c, eps_c, kernel)
    np.testing.assert_allclose(h, h.T, atol=1e-12)


def test_excitations_exceed_gap_minus_binding(setup):
    """Lowest excitation should be positive for a gapped reference."""
    _, psi_v, eps_v, psi_c, eps_c, kernel = setup
    h = build_casida_hamiltonian(psi_v, eps_v, psi_c, eps_c, kernel)
    evals, _ = solve_casida_dense(h)
    assert evals[0] > 0.0


def test_solve_dense_truncation(setup):
    _, psi_v, eps_v, psi_c, eps_c, kernel = setup
    h = build_casida_hamiltonian(psi_v, eps_v, psi_c, eps_c, kernel)
    evals, evecs = solve_casida_dense(h, 3)
    assert evals.shape == (3,)
    assert evecs.shape == (h.shape[0], 3)
    full, _ = solve_casida_dense(h)
    np.testing.assert_allclose(evals, full[:3])


def test_solve_dense_invalid_truncation(setup):
    _, psi_v, eps_v, psi_c, eps_c, kernel = setup
    h = build_casida_hamiltonian(psi_v, eps_v, psi_c, eps_c, kernel)
    with pytest.raises(ValueError):
        solve_casida_dense(h, 0)


def test_mismatched_energies_rejected(setup):
    _, psi_v, eps_v, psi_c, eps_c, kernel = setup
    with pytest.raises(ValueError):
        build_casida_hamiltonian(psi_v, eps_v[:-1], psi_c, eps_c, kernel)


def test_rpa_kernel_gives_higher_first_excitation(setup):
    """Dropping the (attractive) ALDA fxc raises excitation energies."""
    gs, psi_v, eps_v, psi_c, eps_c, _ = setup
    full = HxcKernel(gs.basis, gs.density, include_xc=True)
    rpa = HxcKernel(gs.basis, gs.density, include_xc=False)
    h_full = build_casida_hamiltonian(psi_v, eps_v, psi_c, eps_c, full)
    h_rpa = build_casida_hamiltonian(psi_v, eps_v, psi_c, eps_c, rpa)
    e_full, _ = solve_casida_dense(h_full, 1)
    e_rpa, _ = solve_casida_dense(h_rpa, 1)
    assert e_rpa[0] > e_full[0]
