"""repro — reproduction of "Accelerating Parallel First-Principles
Excited-State Calculation by Low-Rank Approximation with K-Means
Clustering" (ICPP 2022).

Layers (bottom up):

* :mod:`repro.pw`, :mod:`repro.atoms`, :mod:`repro.pseudo` — plane-wave
  discretization, structures, HGH pseudopotentials,
* :mod:`repro.dft` — the Kohn-Sham ground-state substrate (PWDFT's role),
* :mod:`repro.eigen` — LOBPCG / Davidson / dense eigensolvers,
* :mod:`repro.core` — the paper's contribution: ISDF with K-Means point
  selection and the implicit LR-TDDFT Hamiltonian (Table 4 versions 1-5),
* :mod:`repro.parallel` — SPMD runtime + the paper's distributed
  algorithms (Algorithm 1, pipelined GEMM+Reduce),
* :mod:`repro.perf` — Cori-calibrated cost model for the scaling figures,
* :mod:`repro.analysis`, :mod:`repro.data` — DOS/accuracy post-processing
  and the paper's reported numbers.

Quick start (the typed facade — see :mod:`repro.api` and ``docs/api.md``)::

    from repro import api, silicon_primitive_cell

    gs = api.run_scf(silicon_primitive_cell(), api.SCFConfig(ecut=10.0, n_bands=10))
    result = api.solve_tddft(gs, api.TDDFTConfig(n_excitations=5))
    print(result.energies)
"""

from repro import api
from repro.atoms import (
    bulk_silicon,
    graphene_bilayer,
    silicon_primitive_cell,
    twisted_bilayer_graphene,
    water_molecule,
)
from repro.core import LRTDDFTResult, LRTDDFTSolver, isdf_decompose
from repro.dft import GroundState, run_scf
from repro.pw import PlaneWaveBasis, UnitCell
from repro.synthetic import synthetic_ground_state

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "api",
    "UnitCell",
    "PlaneWaveBasis",
    "run_scf",
    "GroundState",
    "LRTDDFTSolver",
    "LRTDDFTResult",
    "isdf_decompose",
    "synthetic_ground_state",
    "silicon_primitive_cell",
    "bulk_silicon",
    "water_molecule",
    "graphene_bilayer",
    "twisted_bilayer_graphene",
]
