"""Tests for the synthetic ground-state generator."""

import numpy as np
import pytest

from repro.atoms import bulk_silicon, silicon_primitive_cell
from repro.synthetic import synthetic_ground_state


class TestSyntheticGroundState:
    def test_orbitals_orthonormal(self, si8_synthetic):
        gs = si8_synthetic
        overlap = gs.orbitals_real @ gs.orbitals_real.T * gs.basis.grid.dv
        np.testing.assert_allclose(overlap, np.eye(gs.n_bands), atol=1e-10)

    def test_energies_ascending_with_gap(self):
        gs = synthetic_ground_state(
            silicon_primitive_cell(), ecut=5.0, n_valence=4, n_conduction=4,
            gap=0.2, seed=3,
        )
        assert (np.diff(gs.energies) >= -1e-12).all()
        assert gs.homo_lumo_gap() >= 0.2 - 1e-9

    def test_occupations(self, si8_synthetic):
        assert si8_synthetic.n_occupied == 16
        assert si8_synthetic.n_electrons == 32.0

    def test_density_consistent_with_orbitals(self, si8_synthetic):
        gs = si8_synthetic
        expect = np.einsum("b,br->r", gs.occupations, gs.orbitals_real**2)
        np.testing.assert_allclose(gs.density, expect)

    def test_deterministic_given_seed(self):
        cell = silicon_primitive_cell()
        a = synthetic_ground_state(cell, ecut=5.0, seed=9)
        b = synthetic_ground_state(cell, ecut=5.0, seed=9)
        np.testing.assert_array_equal(a.orbitals_real, b.orbitals_real)

    def test_different_seeds_differ(self):
        cell = silicon_primitive_cell()
        a = synthetic_ground_state(cell, ecut=5.0, seed=1)
        b = synthetic_ground_state(cell, ecut=5.0, seed=2)
        assert not np.array_equal(a.orbitals_real, b.orbitals_real)

    def test_localized_orbitals_have_structured_weights(self):
        """With localization on, pair weights concentrate: the max/mean
        ratio must clearly exceed the delocalized case."""
        from repro.core import pair_weights

        cell = bulk_silicon(8)
        loc = synthetic_ground_state(cell, ecut=5.0, localized=True, seed=4)
        deloc = synthetic_ground_state(cell, ecut=5.0, localized=False, seed=4)

        def concentration(gs):
            psi_v, _, psi_c, _ = gs.select_transition_space()
            w = pair_weights(psi_v, psi_c)
            return w.max() / w.mean()

        assert concentration(loc) > concentration(deloc)

    def test_too_many_bands_rejected(self):
        with pytest.raises(ValueError):
            synthetic_ground_state(
                silicon_primitive_cell(), ecut=3.0, n_valence=500, n_conduction=500
            )

    def test_select_transition_space_works(self, si8_synthetic):
        psi_v, eps_v, psi_c, eps_c = si8_synthetic.select_transition_space(8, 4)
        assert psi_v.shape[0] == 8
        assert psi_c.shape[0] == 4
        assert eps_c.min() > eps_v.max()
