#!/usr/bin/env python
"""Perf-regression gate over the committed ``BENCH_*.json`` reports.

Benchmark wall-seconds on a shared 1-CPU container are far too noisy to
gate on directly, so this check gates on what *is* stable:

* **structure** — every committed report parses and carries the fields
  downstream consumers read (including the null-with-reason semantics of
  ``meets_2x_target``: ``null`` is only acceptable alongside a
  machine-readable ``meets_2x_target_reason``);
* **correctness flags** — equivalence/bit-identity verdicts must hold in
  the committed reports *and* in a fresh smoke re-run (a perf "win" that
  breaks numerics must fail here, not ship);
* **dimensionless ratios with generous floors** — a fresh smoke re-run
  of the batch bench must still show the warm pass beating cold by at
  least ``--min-batch-speedup`` (default 1.2: far below the committed
  full-mode number, so only a real regression — e.g. warm-start plumbing
  silently disconnected — trips it, not timing noise), and the warm pass
  must show the *mechanism* (fewer SCF iterations than cold on warm
  frames, interpolation-point reuse actually occurring).

``--update-bench`` re-runs the full-mode benchmarks and rewrites the
committed reports (use after intentional perf-relevant changes, then
commit the diff).

Exit code 0 = gate passes, 1 = regression or malformed report.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

_FAILURES: list[str] = []


def _fail(message: str) -> None:
    _FAILURES.append(message)
    print(f"check-bench: FAIL: {message}")


def _ok(message: str) -> None:
    print(f"check-bench: ok: {message}")


def _load(path: pathlib.Path) -> dict | None:
    if not path.exists():
        _fail(f"{path.name} is missing")
        return None
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        _fail(f"{path.name} is not valid JSON: {exc}")
        return None


# -- committed-report structure checks ---------------------------------------


def check_committed_spmd() -> None:
    report = _load(REPO / "BENCH_spmd.json")
    if report is None:
        return
    target = report.get("meets_2x_target", "absent")
    reason = report.get("meets_2x_target_reason")
    if target is None:
        if reason != "insufficient_cores":
            _fail(
                "BENCH_spmd.json: meets_2x_target is null but "
                f"meets_2x_target_reason is {reason!r} (expected "
                "'insufficient_cores')"
            )
        else:
            _ok("BENCH_spmd.json: 2x target n/a with machine-readable reason")
    elif isinstance(target, bool):
        _ok(f"BENCH_spmd.json: meets_2x_target={target}")
    else:
        _fail(f"BENCH_spmd.json: meets_2x_target must be bool or null, got {target!r}")
    for workload, data in report.get("workloads", {}).items():
        if not data.get("backends_agree", False):
            _fail(f"BENCH_spmd.json: workload {workload!r} backends disagree")


def check_committed_backend() -> None:
    report = _load(REPO / "BENCH_backend.json")
    if report is None:
        return
    fft = report.get("fft_coulomb_apply", {})
    if not fft.get("within_1e-10", False):
        _fail("BENCH_backend.json: FFT backends disagree beyond 1e-10")
    km = report.get("kmeans_selection", {})
    for flag in ("centroids_identical", "labels_identical", "inertia_identical"):
        if not km.get(flag, False):
            _fail(f"BENCH_backend.json: kmeans_selection.{flag} is false")
    if not _FAILURES:
        _ok("BENCH_backend.json: equivalence flags hold")


def check_committed_precision(min_composite_speedup: float) -> None:
    report = _load(REPO / "BENCH_precision.json")
    if report is None:
        return
    for name, stage in report.get("stages", {}).items():
        if not stage.get("within_tolerance", False):
            _fail(
                f"BENCH_precision.json: stage {name!r} error "
                f"{stage.get('error')!r} exceeds tolerance "
                f"{stage.get('tolerance')!r}"
            )
    composite = report.get("composite", {})
    speedup = float(composite.get("speedup", 0.0))
    mode = report.get("meta", {}).get("mode")
    if mode == "full" and speedup < min_composite_speedup:
        _fail(
            f"BENCH_precision.json: committed full-mode composite speedup "
            f"{speedup:.2f}x < {min_composite_speedup:.1f}x"
        )
    elif not composite.get("meets_target", False) and mode == "full":
        _fail("BENCH_precision.json: meets_target is false in full mode")
    else:
        _ok(
            f"BENCH_precision.json: composite {speedup:.2f}x ({mode} mode), "
            "per-stage errors within tolerance"
        )


def check_committed_batch(min_full_speedup: float) -> None:
    report = _load(REPO / "BENCH_batch.json")
    if report is None:
        return
    eq = report.get("equivalence", {})
    if not eq.get("within_tolerance", False):
        _fail("BENCH_batch.json: warm pass out of tolerance vs cold")
    if not eq.get("frame0_bit_identical", False):
        _fail("BENCH_batch.json: frame 0 not bit-identical (warm-start leak)")
    speedup = float(report.get("speedup_end_to_end", 0.0))
    mode = report.get("meta", {}).get("mode")
    if mode == "full" and speedup < min_full_speedup:
        _fail(
            f"BENCH_batch.json: committed full-mode speedup {speedup:.2f}x "
            f"< {min_full_speedup:.1f}x"
        )
    else:
        _ok(f"BENCH_batch.json: committed speedup {speedup:.2f}x ({mode} mode)")


def check_committed_serve() -> None:
    report = _load(REPO / "BENCH_serve.json")
    if report is None:
        return
    hit = report.get("cache_hit", {})
    if not hit.get("bit_identical", False):
        _fail("BENCH_serve.json: cache hit not bit-identical")
    if hit.get("scf_iterations_hit", -1) != 0:
        _fail(
            "BENCH_serve.json: cache hit ran "
            f"{hit.get('scf_iterations_hit')!r} SCF iterations (expected 0)"
        )
    warm = report.get("warm_start", {})
    if not warm.get("equivalence", {}).get("within_tolerance", False):
        _fail("BENCH_serve.json: warm-started result out of tolerance")
    if int(warm.get("iterations_saved", -1)) < 1:
        _fail(
            "BENCH_serve.json: warm start saved "
            f"{warm.get('iterations_saved')!r} SCF iterations (expected >= 1)"
        )
    sub = report.get("scf_subrequest", {})
    if sub.get("tddft_scf_iterations", -1) != 0:
        _fail(
            "BENCH_serve.json: tddft on cached structure re-ran its SCF "
            f"({sub.get('tddft_scf_iterations')!r} iterations, expected 0)"
        )
    if not _FAILURES:
        _ok(
            "BENCH_serve.json: cache hit bit-identical at 0 iterations, "
            f"warm start saved {warm.get('iterations_saved')} iteration(s)"
        )


# -- fresh smoke re-runs ------------------------------------------------------


def rerun_batch_smoke(min_speedup: float) -> None:
    from repro.perf.batch_bench import run_batch_bench

    report = run_batch_bench(smoke=True)
    eq = report["equivalence"]
    if not eq["within_tolerance"]:
        _fail(
            "fresh batch smoke: warm/cold deviation "
            f"dE={eq['max_total_energy_delta_ha']:.1e} Ha exceeds "
            f"{eq['tolerance_bound_ha']:.0e}"
        )
    if not eq["frame0_bit_identical"]:
        _fail("fresh batch smoke: frame 0 not bit-identical to cold")
    speedup = float(report["speedup_end_to_end"])
    if speedup < min_speedup:
        _fail(
            f"fresh batch smoke: warm-vs-cold speedup {speedup:.2f}x "
            f"< floor {min_speedup:.2f}x"
        )
    else:
        _ok(f"fresh batch smoke: speedup {speedup:.2f}x >= {min_speedup:.2f}x")

    cold_frames = report["cold"]["frames"]
    warm_frames = report["warm"]["frames"]
    warm_only = [w for w in warm_frames if w["warm"]]
    if not warm_only:
        _fail("fresh batch smoke: no frame actually ran warm")
    cold_iters = sum(f["scf_iterations"] for f in cold_frames[1:])
    warm_iters = sum(f["scf_iterations"] for f in warm_frames[1:])
    if warm_iters >= cold_iters:
        _fail(
            "fresh batch smoke: warm SCF iterations "
            f"({warm_iters}) not below cold ({cold_iters}) — "
            "warm start is not reaching the SCF"
        )
    else:
        _ok(f"fresh batch smoke: SCF iterations {cold_iters} -> {warm_iters}")
    if not any(not f["isdf_reselected"] for f in warm_frames):
        _fail(
            "fresh batch smoke: interpolation points were never reused — "
            "the drift check is not reaching ISDF"
        )


def rerun_serve_smoke() -> None:
    from repro.perf.serve_bench import run_serve_bench

    report = run_serve_bench(smoke=True)
    hit = report["cache_hit"]
    if not hit["bit_identical"] or hit["scf_iterations_hit"] != 0:
        _fail(
            "fresh serve smoke: cache hit not bit-identical/zero-work "
            f"(bit_identical={hit['bit_identical']}, "
            f"iterations={hit['scf_iterations_hit']})"
        )
    warm = report["warm_start"]
    if not warm["warm_flag"]:
        _fail("fresh serve smoke: near-duplicate request did not warm-start")
    if warm["scf_iterations_warm"] >= warm["scf_iterations_cold"]:
        _fail(
            "fresh serve smoke: warm SCF iterations "
            f"({warm['scf_iterations_warm']}) not below cold "
            f"({warm['scf_iterations_cold']})"
        )
    if not warm["equivalence"]["within_tolerance"]:
        _fail("fresh serve smoke: warm-started result out of tolerance")
    if report["scf_subrequest"]["tddft_scf_iterations"] != 0:
        _fail("fresh serve smoke: tddft did not reuse the cached ground state")
    if not _FAILURES:
        _ok(
            "fresh serve smoke: cache hit + warm start + subrequest reuse "
            f"(scf iterations {warm['scf_iterations_cold']} -> "
            f"{warm['scf_iterations_warm']})"
        )


def rerun_precision_smoke() -> None:
    """Fresh smoke of the precision bench: numerics only, no perf floor.

    Smoke-sized workloads are too small for a stable speedup on a shared
    1-CPU container, so only the dimensionless facts are gated: every
    stage's error column must sit inside its documented tolerance and no
    precision fallback may fire (a fallback in the bench means the mixed
    tier is silently running fp64 redo work).
    """
    from repro.perf.precision_bench import run_precision_bench

    report = run_precision_bench(smoke=True)
    for name, stage in report["stages"].items():
        if not stage["within_tolerance"]:
            _fail(
                f"fresh precision smoke: stage {name!r} error "
                f"{stage['error']:.3e} exceeds tolerance "
                f"{stage['tolerance']:.0e}"
            )
    if report["fallback_events"]:
        _fail(
            "fresh precision smoke: precision fallback(s) fired: "
            f"{report['fallback_events']}"
        )
    if not _FAILURES:
        _ok("fresh precision smoke: all stage errors within tolerance")


def rerun_spmd_smoke() -> None:
    from repro.perf.spmd_bench import run_spmd_bench

    report = run_spmd_bench(smoke=True, ranks=(1, 2))
    for workload, data in report["workloads"].items():
        if not data["backends_agree"]:
            _fail(f"fresh spmd smoke: workload {workload!r} backends disagree")
    target = report["meets_2x_target"]
    if target is None and report.get("meets_2x_target_reason") is None:
        _fail("fresh spmd smoke: null meets_2x_target without a reason")
    else:
        _ok("fresh spmd smoke: backends agree, target field well-formed")


# -- full regeneration --------------------------------------------------------


def update_bench() -> None:
    """Re-run the full-mode benchmarks and rewrite the committed reports."""
    from repro.perf.batch_bench import run_batch_bench
    from repro.perf.batch_bench import write_report as write_batch
    from repro.perf.spmd_bench import run_spmd_bench
    from repro.perf.spmd_bench import write_report as write_spmd

    print("check-bench: regenerating BENCH_batch.json (full mode)...")
    write_batch(run_batch_bench(smoke=False), REPO / "BENCH_batch.json")
    print("check-bench: regenerating BENCH_spmd.json (full mode)...")
    write_spmd(run_spmd_bench(smoke=False), REPO / "BENCH_spmd.json")
    from repro.perf.serve_bench import run_serve_bench
    from repro.perf.serve_bench import write_report as write_serve

    print("check-bench: regenerating BENCH_serve.json (full mode)...")
    write_serve(run_serve_bench(smoke=False), REPO / "BENCH_serve.json")
    from repro.perf.precision_bench import run_precision_bench
    from repro.perf.precision_bench import write_report as write_precision

    print("check-bench: regenerating BENCH_precision.json (full mode)...")
    write_precision(
        run_precision_bench(smoke=False), REPO / "BENCH_precision.json"
    )
    print(
        "check-bench: BENCH_backend.json is regenerated via "
        "'python benchmarks/bench_backend.py' (slow); not rerun here."
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min-batch-speedup", type=float, default=1.2,
        help="floor on the fresh smoke warm-vs-cold ratio (default 1.2)",
    )
    parser.add_argument(
        "--min-full-speedup", type=float, default=2.0,
        help="floor on the committed full-mode batch speedup (default 2.0)",
    )
    parser.add_argument(
        "--min-precision-speedup", type=float, default=1.5,
        help="floor on the committed full-mode mixed-precision composite "
             "speedup (default 1.5)",
    )
    parser.add_argument(
        "--skip-rerun", action="store_true",
        help="only validate the committed reports (no fresh smoke runs)",
    )
    parser.add_argument(
        "--update-bench", action="store_true",
        help="re-run full-mode benchmarks and rewrite the committed reports",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO / "src"))

    if args.update_bench:
        update_bench()

    check_committed_spmd()
    check_committed_backend()
    check_committed_precision(args.min_precision_speedup)
    check_committed_batch(args.min_full_speedup)
    check_committed_serve()
    if not args.skip_rerun:
        rerun_batch_smoke(args.min_batch_speedup)
        rerun_spmd_smoke()
        rerun_serve_smoke()
        rerun_precision_smoke()

    if _FAILURES:
        print(f"check-bench: {len(_FAILURES)} failure(s)")
        return 1
    print("check-bench: all gates pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
