"""FFT transforms with Fourier-series normalization.

Conventions (the only place they are defined):

* ``forward(f_r) -> f_G`` returns Fourier-series coefficients
  ``f_G = (1/N_r) sum_r f(r) exp(-i G . r)`` so that
  ``f(r) = sum_G f_G exp(i G . r)`` exactly on the grid.
* ``backward`` is the exact inverse.

With these conventions the Poisson solve is simply
``V_H(G) = 4 pi / |G|^2 * n(G)`` and the convolution theorem holds without
stray volume factors.  Batched transforms operate on the *leading* axes so a
block of orbitals ``(n_bands, n1, n2, n3)`` is transformed in one call —
this is the numpy analogue of the batched FFTW plans used by PWDFT.

The actual transforms are delegated to a pluggable :class:`FFTEngine`
(:mod:`repro.backend.fft_engine`): the default engine is selected from the
``REPRO_FFT_BACKEND`` / ``REPRO_FFT_WORKERS`` environment (scipy's
multi-worker pocketfft when available, numpy otherwise), and engines that
advertise a real fast path route :meth:`FourierGrid.convolve_real` through
``rfftn``/``irfftn`` — half the transform work for the real Γ-point fields
dominating the Coulomb apply of the paper's Algorithm 1.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.backend.fft_engine import FFTEngine, default_fft_engine
from repro.pw.grid import RealSpaceGrid
from repro.utils.hot import array_contract

_AXES = (-3, -2, -1)


@dataclass(frozen=True)
class FourierGrid:
    """Forward/backward FFTs bound to one :class:`RealSpaceGrid`.

    ``engine=None`` (the default) resolves the process-wide default engine
    at call time, so a ``set_default_fft_backend`` switch applies to every
    grid already constructed.
    """

    grid: RealSpaceGrid
    engine: FFTEngine | None = None

    @property
    def fft_engine(self) -> FFTEngine:
        """The engine actually used for transforms."""
        return self.engine if self.engine is not None else default_fft_engine()

    @array_contract(
        shapes={"f_real": ("...", "n_r")},
        dtypes={"f_real": ("float64", "complex128")},
        returns={"dtype": "complex128"},
    )
    def forward(self, f_real: np.ndarray) -> np.ndarray:
        """Real space -> Fourier-series coefficients on the full grid."""
        f = self.grid.reshape_to_grid(np.asarray(f_real))
        out = self.fft_engine.fftn(f, axes=_AXES)
        out /= self.grid.n_points
        return self.grid.flatten_from_grid(out)

    @array_contract(
        shapes={"f_recip": ("...", "n_r")},
        dtypes={"f_recip": ("float64", "complex128")},
        returns={"dtype": "complex128"},
    )
    def backward(self, f_recip: np.ndarray) -> np.ndarray:
        """Fourier-series coefficients -> real space on the full grid."""
        f = self.grid.reshape_to_grid(np.asarray(f_recip))
        out = self.fft_engine.ifftn(f, axes=_AXES)
        out *= self.grid.n_points
        return self.grid.flatten_from_grid(out)

    def backward_real(self, f_recip: np.ndarray) -> np.ndarray:
        """:meth:`backward` for coefficients with Hermitian symmetry.

        Returns the real part; use when the result is known to be a real
        field (densities, potentials) to halve downstream memory traffic.
        """
        return self.backward(f_recip).real

    # -- real-field convolution fast path ----------------------------------

    def half_kernel(self, kernel: np.ndarray) -> np.ndarray:
        """Slice a full-grid G-diagonal kernel onto the rfftn half-spectrum.

        Precompute once per kernel and pass to :meth:`convolve_real` as
        ``kernel_half`` to skip the per-call slice.
        """
        k = self.grid.reshape_to_grid(np.asarray(kernel, dtype=float))
        n3 = self.grid.shape[2]
        return np.ascontiguousarray(k[..., : n3 // 2 + 1])

    @array_contract(
        shapes={"fields": ("...", "n_r"), "kernel": ("n_r",)},
        dtypes={"fields": ("float64", "complex128"), "kernel": "float64"},
        returns={"dtype": "float64"},
    )
    def convolve_real(
        self,
        fields: np.ndarray,
        kernel: np.ndarray,
        *,
        kernel_half: np.ndarray | None = None,
    ) -> np.ndarray:
        """Apply a G-diagonal kernel to real fields: ``F^-1[K * F[f]]``.

        Equivalent to ``backward(forward(f) * kernel).real`` — exactly
        lines 4-5 of the paper's Algorithm 1 — but routed through the
        engine's real-to-complex transforms when available, which halves
        the flop count and spectrum traffic.  ``kernel`` must be real and
        inversion symmetric (``K(-G) = K(G)``; both Coulomb kernels are),
        otherwise the half-spectrum product is not equivalent.
        """
        fields = np.asarray(fields)
        eng = self.fft_engine
        if eng.supports_real and np.isrealobj(fields):
            f = self.grid.reshape_to_grid(fields)
            if kernel_half is None:
                kernel_half = self.half_kernel(kernel)
            spec = eng.rfftn(f, axes=_AXES)
            spec *= kernel_half
            out = eng.irfftn(spec, s=self.grid.shape, axes=_AXES)
            return self.grid.flatten_from_grid(out)
        # Reference path: bit-identical to the seed implementation.
        f_g = self.forward(fields.astype(complex))  # repro-lint: disable=silent-upcast-in-hot -- deliberate complex round-trip: the reference path must reproduce the seed's full-spectrum numerics bit-for-bit; the real fast path above is the production route
        f_g *= kernel
        return self.backward(f_g).real


class ConvolutionPlan:
    """A prepared G-diagonal convolution: kernel plus its half-spectrum cut.

    Bundles everything :meth:`FourierGrid.convolve_real` can precompute for
    a fixed ``(grid, kernel)`` pair — the ``rfftn`` half-spectrum slice of
    the kernel, and for ``dtype=float32`` plans its single-precision copy —
    so repeat appliers (the SCF Hartree solve runs one per iteration, the
    f_Hxc Coulomb half one per operator application) pay the slice exactly
    once.  Plans are immutable after construction apart from the
    mixed-precision degradation latch and safe to share across threads:
    ``apply`` only reads (the one-shot ``degraded`` flip is idempotent).

    ``dtype=float32`` plans route real fields through single-precision FFT
    scratch (half the transform flops and spectrum bytes on engines with a
    real fast path) and upcast the result to float64.  The first fp32 apply
    is cross-checked against the fp64 path; a relative deviation above
    ``tol`` permanently degrades the plan to fp64 — the same latch pattern
    as :class:`repro.resilience.ResilientFFTEngine` — and records a
    ``fft-convolve`` event in the resilience log.
    """

    __slots__ = (
        "fourier",
        "kernel",
        "kernel_half",
        "kernel_half32",
        "dtype",
        "tol",
        "verify",
        "stage",
        "degraded",
        "_verified",
    )

    def __init__(
        self,
        fourier: FourierGrid,
        kernel: np.ndarray,
        *,
        dtype=np.float64,
        tol: float = 1e-5,
        verify: bool = True,
        stage: str = "fft-convolve",
    ) -> None:
        self.fourier = fourier
        self.kernel = np.asarray(kernel, dtype=float)
        self.kernel_half = fourier.half_kernel(self.kernel)
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(
                f"ConvolutionPlan dtype must be float64 or float32, "
                f"got {self.dtype}"
            )
        self.kernel_half32 = (
            self.kernel_half.astype(np.float32)
            if self.dtype == np.float32
            else None
        )
        self.tol = float(tol)
        self.verify = bool(verify)
        self.stage = str(stage)
        self.degraded = False
        self._verified = False

    @array_contract(
        shapes={"fields": ("...", "n_r")},
        dtypes={"fields": ("float64", "complex128")},
        returns={"dtype": "float64"},
        precision_policy="fp32-scratch",
    )
    def apply(self, fields: np.ndarray) -> np.ndarray:
        """Convolve real ``(..., N_r)`` fields with the planned kernel."""
        if self.dtype == np.float32 and not self.degraded:
            out = self._apply_fp32(fields)
            if out is not None:
                return out
        return self.fourier.convolve_real(
            fields, self.kernel, kernel_half=self.kernel_half
        )

    def _apply_fp32(self, fields: np.ndarray) -> np.ndarray | None:
        """The fp32-scratch apply; ``None`` defers to the fp64 path.

        Only engines with a real fast path benefit (the reference complex
        round-trip would upcast anyway), so other engines defer.
        """
        fields = np.asarray(fields)
        eng = self.fourier.fft_engine
        if not (eng.supports_real and np.isrealobj(fields)):
            return None
        grid = self.fourier.grid
        f32 = grid.reshape_to_grid(fields).astype(np.float32)
        spec = eng.rfftn(f32, axes=_AXES)
        spec *= self.kernel_half32
        out = eng.irfftn(spec, s=grid.shape, axes=_AXES)
        result = grid.flatten_from_grid(out.astype(np.float64))
        if self.verify and not self._verified:
            self._verified = True
            reference = self.fourier.convolve_real(
                fields, self.kernel, kernel_half=self.kernel_half
            )
            scale = float(np.abs(reference).max()) or 1.0
            error = float(np.abs(result - reference).max()) / scale
            if not np.isfinite(error) or error > self.tol:
                self.degraded = True
                from repro.resilience.events import resilience_log

                resilience_log().record(
                    self.stage,
                    "fallback-fp64",
                    f"fp32 FFT scratch error {error:.3e} exceeds "
                    f"tolerance {self.tol:.1e}; plan degraded to fp64",
                    error=error,
                    tol=self.tol,
                    grid=tuple(grid.shape),
                )
                return reference
        return result


class PlanCache:
    """Process-wide LRU cache of :class:`ConvolutionPlan` objects.

    Keyed by ``(tag, grid shape, lattice bytes, engine name, plan dtype)``
    so plans are reused across *calculations* — consecutive trajectory
    frames that share a lattice and cutoff hit the same plan even though
    each frame builds a fresh basis — while any change that alters the
    kernel values (different lattice, different grid, a kernel-variant tag
    such as a truncation radius), the transform layout (engine switch) or
    the compute precision (an fp32 plan and an fp64 plan for the same
    kernel must never collide) misses and rebuilds.

    Thread-safe: lookups and insertions hold a lock; the ``build`` callback
    runs outside it, so two threads may race to build the same plan, in
    which case the last insert wins (both plans are correct — the kernels
    are deterministic functions of the key).
    """

    def __init__(self, max_plans: int = 16) -> None:
        if max_plans < 1:
            raise ValueError(f"max_plans must be >= 1, got {max_plans}")
        self.max_plans = int(max_plans)
        self._lock = threading.Lock()
        self._plans: OrderedDict[tuple, ConvolutionPlan] = OrderedDict()
        self._hits = 0
        self._misses = 0

    def get(
        self,
        tag: str,
        fourier: FourierGrid,
        build,
        *,
        dtype=np.float64,
        tol: float = 1e-5,
        verify: bool = True,
        stage: str = "fft-convolve",
    ) -> ConvolutionPlan:
        """Return the cached plan for ``tag`` on this grid, building on miss.

        ``build`` is a zero-argument callable returning the full-spectrum
        kernel array; it is only invoked when the cache misses.  ``dtype``
        selects the plan's compute precision and participates in the cache
        key, so fp32 and fp64 plans for the same kernel coexist; ``tol``,
        ``verify`` and ``stage`` configure the fp32 cross-check and do not
        key the cache (one fp32 plan per kernel, first caller's bound wins).
        """
        grid = fourier.grid
        key = (
            tag,
            grid.shape,
            grid.cell.lattice.tobytes(),
            fourier.fft_engine.name,
            np.dtype(dtype).str,
        )
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self._hits += 1
                return plan
            self._misses += 1
        plan = ConvolutionPlan(
            fourier, build(), dtype=dtype, tol=tol, verify=verify, stage=stage
        )
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.max_plans:
                self._plans.popitem(last=False)
        return plan

    def stats(self) -> dict[str, int]:
        """Current occupancy and hit/miss counters."""
        with self._lock:
            return {
                "plans": len(self._plans),
                "hits": self._hits,
                "misses": self._misses,
            }

    def clear(self) -> None:
        """Drop every cached plan and reset the counters."""
        with self._lock:
            self._plans.clear()
            self._hits = 0
            self._misses = 0


_DEFAULT_PLAN_CACHE = PlanCache()


def default_plan_cache() -> PlanCache:
    """The process-wide plan cache used by the Hartree and f_Hxc appliers."""
    return _DEFAULT_PLAN_CACHE
