"""Tests for spin-resolved LSDA and the triplet kernel.

Every analytic derivative is validated against finite differences of the
analytic energy — the strongest internal check available.
"""

import numpy as np
import pytest

from repro.dft.xc import lda_energy_density, lda_kernel
from repro.dft.xc_spin import (
    FPP0,
    _vbh_interpolation,
    lda_kernel_triplet,
    lsda_energy_density,
    lsda_potentials,
)

DENSITIES = np.array([1e-3, 1e-2, 0.05, 0.1, 0.5, 1.0, 5.0])


class TestLSDAEnergy:
    def test_reduces_to_lda_at_zero_polarization(self):
        np.testing.assert_allclose(
            lsda_energy_density(DENSITIES, np.zeros_like(DENSITIES)),
            lda_energy_density(DENSITIES),
            rtol=1e-12,
        )

    def test_polarization_symmetry(self):
        zeta = np.full_like(DENSITIES, 0.37)
        np.testing.assert_allclose(
            lsda_energy_density(DENSITIES, zeta),
            lsda_energy_density(DENSITIES, -zeta),
            rtol=1e-12,
        )

    def test_exchange_enhanced_at_full_polarization(self):
        """|eps_x| grows by 2^(1/3) at zeta = 1; correlation weakens —
        net eps_xc(1) < eps_xc(0) for dense electron gases."""
        n = np.array([1.0])
        e0 = lsda_energy_density(n, np.array([0.0]))[0]
        e1 = lsda_energy_density(n, np.array([1.0]))[0]
        assert e1 < e0  # more negative

    def test_interpolation_endpoints(self):
        assert _vbh_interpolation(np.array([0.0]))[0] == pytest.approx(0.0)
        assert _vbh_interpolation(np.array([1.0]))[0] == pytest.approx(1.0)
        assert _vbh_interpolation(np.array([-1.0]))[0] == pytest.approx(1.0)

    def test_fpp0_value(self):
        """f''(0) = 8 / (9 (2^{4/3} - 2)) ~ 1.70992."""
        assert FPP0 == pytest.approx(1.70992, abs=1e-4)


class TestPotentials:
    def test_symmetric_at_zero_polarization(self):
        v_up, v_down = lsda_potentials(DENSITIES / 2, DENSITIES / 2)
        np.testing.assert_allclose(v_up, v_down, rtol=1e-8)

    def test_matches_unpolarized_vxc(self):
        from repro.dft.xc import lda_potential

        v_up, _ = lsda_potentials(DENSITIES / 2, DENSITIES / 2)
        np.testing.assert_allclose(v_up, lda_potential(DENSITIES), rtol=1e-4)

    def test_majority_spin_more_bound(self):
        """The majority channel sees a deeper exchange potential."""
        v_up, v_down = lsda_potentials(
            0.8 * DENSITIES, 0.2 * DENSITIES
        )
        assert (v_up < v_down).all()


class TestTripletKernel:
    def test_matches_finite_difference_in_m(self):
        """f_xc^T = d^2 [n eps_xc(n, m/n)] / d m^2 at m = 0."""
        n = DENSITIES
        h = 1e-4 * n

        def energy(m):
            return n * lsda_energy_density(n, m / n)

        numeric = (energy(h) - 2 * energy(np.zeros_like(n)) + energy(-h)) / h**2
        analytic = lda_kernel_triplet(n)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4)

    def test_negative(self):
        """Spin-flip kernel is attractive (triplets below singlets)."""
        assert (lda_kernel_triplet(DENSITIES) < 0).all()

    def test_exchange_parts_coincide(self):
        """Slater exchange gives identical singlet and triplet kernels:
        d^2 e_x/d n^2 = d^2 e_x/d m^2 = (4/9) C_x n^{-2/3}.  (The
        singlet-triplet splitting of excitations therefore comes from the
        Hartree term, not from exchange.)  Checked by finite differences of
        the exact spin-scaled exchange energy in both directions."""
        cx = -0.75 * (3 / np.pi) ** (1 / 3)
        n = DENSITIES
        expected = (4.0 / 9.0) * cx * n ** (-2.0 / 3.0)

        def e_x(nu, nd):
            # Exact spin scaling: e_x = 2^{1/3} C_x (nu^{4/3} + nd^{4/3}).
            return 2.0 ** (1.0 / 3.0) * cx * (nu ** (4 / 3) + nd ** (4 / 3))

        h = 1e-4 * n
        half = n / 2
        d2_dn2 = (
            e_x(half + h / 2, half + h / 2)
            - 2 * e_x(half, half)
            + e_x(half - h / 2, half - h / 2)
        ) / h**2
        d2_dm2 = (
            e_x(half + h / 2, half - h / 2)
            - 2 * e_x(half, half)
            + e_x(half - h / 2, half + h / 2)
        ) / h**2
        np.testing.assert_allclose(d2_dn2, expected, rtol=1e-4)
        np.testing.assert_allclose(d2_dm2, expected, rtol=1e-4)

    def test_vacuum_floor(self):
        out = lda_kernel_triplet(np.array([0.0, 1e-14]))
        np.testing.assert_array_equal(out, 0.0)


class TestSingletKernelConsistency:
    def test_singlet_kernel_from_spin_formula(self):
        """d^2 e/d n^2 at zeta = 0 computed from the spin-resolved energy
        must equal the spin-restricted lda_kernel."""
        n = DENSITIES
        h = 1e-4 * n

        def energy(nn):
            return nn * lsda_energy_density(nn, np.zeros_like(nn))

        numeric = (energy(n + h) - 2 * energy(n) + energy(n - h)) / h**2
        np.testing.assert_allclose(lda_kernel(n), numeric, rtol=1e-4)
