"""Pipelined GEMM + MPI_Reduce (paper Section 5.3, Figures 4-5).

The optimization: instead of one monolithic GEMM followed by one blocking
``MPI_Allreduce`` of the full ``V_Hxc``, split the output into row blocks;
as soon as a block's partial GEMM finishes, reduce it to the single rank
that owns that block.  Two wins the paper claims, both realized here:

* **memory** — each rank stores only its ``N_cv / P`` rows of ``V_Hxc``
  (Figure 4's data-partitioning change), and
* **overlap** — compute of block ``b+1`` proceeds while block ``b`` is in
  flight.  The reduce is posted with the nonblocking
  :meth:`~repro.parallel.comm.Communicator.ireduce` and only waited on
  after the loop: under the process backend
  (``spmd_run(..., backend="process")``) the owner's combine genuinely
  runs while other ranks are still in their next GEMM; under the thread
  backend the schedule, message sizes and reduction roots are identical,
  which is what the cost model and the bit-identity tests consume.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.comm import Communicator, ReduceHandle
from repro.parallel.distributions import BlockDistribution1D
from repro.utils.hot import array_contract
from repro.utils.validation import require


@array_contract(
    shapes={
        "z_local": ("n_rows_local", "n_pairs"),
        "k_local": ("n_rows_local", "n_pairs"),
    },
    dtypes={"z_local": "float64", "k_local": "float64"},
    contiguous=("z_local", "k_local"),
    precision_policy="fp32-wire",
)
def pipelined_vhxc_rows(
    comm: Communicator,
    z_local: np.ndarray,
    k_local: np.ndarray,
    dv: float,
    *,
    out_dist: BlockDistribution1D | None = None,
    precision=None,
) -> tuple[np.ndarray, BlockDistribution1D]:
    """Blocked ``V_Hxc = dV * Z^T K`` with per-block Reduce to the owner.

    Parameters
    ----------
    z_local / k_local:
        Row-block slabs ``(my_rows, N_cv)`` of the pair matrix and the
        kernel-applied pair matrix.
    out_dist:
        Ownership of the output rows; defaults to the near-even block split
        of ``N_cv`` over the communicator.
    precision:
        A precision mode string or :class:`repro.precision.PrecisionConfig`,
        identical on every rank.  With ``wire_fp32`` the partial GEMM still
        runs in fp64, but each block crosses the wire as fp32
        (``ireduce(..., wire_dtype=float32)`` — the zero-copy byte counts
        halve) while the owner accumulates in fp64.  Each rank tracks a
        cheap a-posteriori bound on its cast error (``eps_fp32 / 2`` when
        every block stayed finite and inside fp32 range, ``inf``
        otherwise); one unconditional ``allreduce(max)`` after the loop
        makes the verdict SPMD-uniform, and a bound above ``wire_tol``
        re-runs the whole build with the fp64 wire on every rank (recorded
        once as a ``wire-reduce`` degradation event).

    Returns
    -------
    ``(my_vhxc_rows, out_dist)`` — this rank's owned rows of ``V_Hxc``
    (shape ``(out_dist.count(rank), N_cv)``).
    """
    from repro.precision import resolve_precision

    precision = resolve_precision(precision)
    wire32 = bool(precision.wire_fp32)
    require(z_local.shape == k_local.shape, "Z/K slab shape mismatch")
    n_pairs = z_local.shape[1]
    if out_dist is None:
        out_dist = BlockDistribution1D(n_pairs, comm.size)
    require(out_dist.n_global == n_pairs, "output distribution mismatch")

    my_handle: ReduceHandle | None = None
    partial: np.ndarray | None = None
    zt_block: np.ndarray | None = None
    peak = 0.0  # largest |entry| posted to the fp32 wire (finite-range check)
    for owner in range(comm.size):
        rows = out_dist.local_slice(owner)
        n_block = rows.stop - rows.start  # repro-lint: disable=no-alloc-in-hot -- scalar slice arithmetic, no array temporary
        # Partial GEMM for this block only (Figure 5's per-block compute),
        # written into a buffer reused across blocks of equal height so the
        # pipeline allocates O(1) blocks regardless of the rank count...
        if partial is None or partial.shape[0] != n_block:
            partial = np.empty((n_block, n_pairs))  # repro-lint: disable=no-alloc-in-hot -- guarded buffer (re)allocation: runs only when the block height changes, O(1) times per run
            zt_block = np.empty((n_block, z_local.shape[0]))  # repro-lint: disable=no-alloc-in-hot -- guarded staging buffer, same O(1) reallocation policy as `partial`
        # Stage the column-block transpose into a C-contiguous buffer so
        # the GEMM consumes contiguous operands instead of an lda-strided
        # view (the hidden copy BLAS would otherwise pack per call).
        np.copyto(zt_block, z_local[:, rows].T)
        np.matmul(zt_block, k_local, out=partial)
        partial *= dv
        # ...posted as a nonblocking Reduce to the owning rank (MPI_Reduce
        # + overlap, not Allreduce: nobody else needs these rows — Figure
        # 4).  The contribution is captured at post time, so reusing
        # ``partial`` for the next block is safe, and the next GEMM starts
        # while this block is still in flight.
        handle = comm.ireduce(
            partial, root=owner, wire_dtype=np.float32 if wire32 else None
        )
        if wire32 and partial.size:
            # Scalar min/max only — no array temporary in the hot loop.
            peak = max(peak, abs(float(partial.max())), abs(float(partial.min())))
        if comm.rank == owner:
            my_handle = handle
    my_rows = my_handle.wait() if my_handle is not None else None
    assert my_rows is not None or out_dist.count(comm.rank) == 0
    if my_rows is None:
        my_rows = np.zeros((0, n_pairs))  # repro-lint: disable=no-alloc-in-hot -- empty placeholder for ranks owning zero rows
    if wire32 and precision.verify:
        # A-posteriori cast-error bound: every fp32 rounding is relative to
        # its own entry, so max|x - fl32(x)| / max|x| <= eps_fp32 / 2 as
        # long as every entry stayed finite and inside fp32 range; outside
        # it, the cast saturated and the bound is vacuous (inf).  One
        # *unconditional* allreduce keeps the verdict SPMD-uniform — a
        # collective inside a data-dependent branch would deadlock.
        safe = np.isfinite(peak) and peak <= float(np.finfo(np.float32).max)
        local_err = 0.5 * float(np.finfo(np.float32).eps) if safe else np.inf
        err = float(comm.allreduce(np.float64(local_err), op="max"))
        if err > precision.wire_tol:
            if comm.rank == 0:
                from repro.resilience.events import resilience_log

                resilience_log().record(
                    "wire-reduce",
                    "fallback-fp64",
                    f"fp32 wire cast-error bound {err:.3e} exceeds "
                    f"tolerance {precision.wire_tol:.1e}; re-running "
                    "pipelined reduce with the fp64 wire",
                    error=err,
                    tol=precision.wire_tol,
                    n_pairs=int(n_pairs),
                )
            # Uniform fp64 redo on every rank: discard the fp32-wire rows.
            return pipelined_vhxc_rows(
                comm, z_local, k_local, dv, out_dist=out_dist
            )
    return my_rows, out_dist


def pipelined_vhxc_full(
    comm: Communicator,
    z_local: np.ndarray,
    k_local: np.ndarray,
    dv: float,
    *,
    precision=None,
) -> np.ndarray:
    """Convenience: pipelined build followed by an Allgather of the rows
    (for tests comparing against the monolithic Allreduce path)."""
    my_rows, out_dist = pipelined_vhxc_rows(
        comm, z_local, k_local, dv, precision=precision
    )
    pieces = comm.allgather(my_rows)
    return np.concatenate(pieces, axis=0)
