"""Locally Optimal Block Preconditioned Conjugate Gradient (LOBPCG).

This is the paper's Algorithm 2: iterate the three-block trial subspace
``S_i = [X, W, P]`` where ``W`` is the preconditioned residual and ``P`` the
aggregated search direction, project ``H`` onto ``S_i`` (Rayleigh-Ritz) and
update.  The operator is only ever used through block applications
``H @ S``, so the same code drives

* the Kohn-Sham band solve (operator = plane-wave Hamiltonian),
* the explicit Casida matrix (operator = dense GEMM), and
* the *implicit* ISDF-factored LR-TDDFT Hamiltonian of Section 4.3.

Robustness follows Duersch, Shao, Yang & Gu (SISC 2018, the paper's ref
[11]): W and P are orthonormalized against the current X-block before the
Rayleigh-Ritz solve, and the projected pencil is solved with a rank-revealing
whitening that tolerates the near-dependence that appears at convergence.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.eigen.results import EigenResult
from repro.utils.hot import array_contract
from repro.utils.linalg import (
    orthonormalize,
    orthonormalize_against,
    stable_generalized_eigh,
    symmetrize,
)

# repro-lint: disable=no-alloc-in-hot -- Rayleigh-Ritz subspace assembly
# reallocates each iteration by design: block widths shrink with soft
# locking, so [X, W, P] and the projected pencil cannot use fixed-shape
# workspaces.  Per-iteration cost is dominated by the O(N k) operator
# applications, not these O(k^2) temporaries.

ApplyFn = Callable[[np.ndarray], np.ndarray]
PrecondFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


@array_contract(
    shapes={"x0": ("n", "k")},
    dtypes={"x0": ("float64", "complex128")},
)
def lobpcg(
    apply_h: ApplyFn,
    x0: np.ndarray,
    *,
    preconditioner: PrecondFn | None = None,
    tol: float = 1e-8,
    max_iter: int = 200,
    verbose: bool = False,
    checkpoint=None,
    callback=None,
) -> EigenResult:
    """Find the lowest-``k`` eigenpairs of a Hermitian operator.

    Parameters
    ----------
    apply_h:
        Block operator ``X (n, m) -> H X``; must be Hermitian.
    x0:
        ``(n, k)`` initial block; its column count sets how many pairs are
        computed.
    preconditioner:
        Optional ``(R, theta) -> W`` map applied to the residual block; the
        paper's Eq. 17 preconditioner for LR-TDDFT divides by
        ``(eps_c - eps_v) - theta``.
    tol:
        Convergence on ``||H x - theta x||_2 <= tol * max(1, |theta|)``
        per pair.
    max_iter:
        Maximum outer iterations.
    checkpoint:
        Optional :class:`~repro.resilience.checkpoint.LoopCheckpointer`.
        The full iteration-boundary state (``X``, ``H X``, ``P``, ``H P``,
        best-residual watermark, residual history) is snapshotted after
        each iteration, and a run started with a restart-enabled
        checkpointer resumes from the newest snapshot — continuing
        *bit-identically* to the uninterrupted run, since every quantity
        the remaining iterations consume round-trips exactly.
    callback:
        Optional per-iteration observer ``callback(iteration, theta,
        residual_norms)`` invoked after each Rayleigh-Ritz step with the
        current eigenvalue estimates — this is how the job server streams
        partial spectra while a solve is still running.  Purely
        observational: it must not mutate its arguments.

    Notes
    -----
    Soft locking: once a Ritz pair converges its residual column is removed
    from the W/P expansion blocks (saving operator applications) but the
    vector stays in the subspace so later rotations keep it accurate.
    """
    x = np.array(x0, dtype=complex if np.iscomplexobj(x0) else float, copy=True)
    n, k = x.shape
    if k == 0:
        raise ValueError("x0 must contain at least one column")
    if k > n:
        raise ValueError(f"requested {k} pairs from an order-{n} operator")

    x = orthonormalize(x)
    p: np.ndarray | None = None
    hp: np.ndarray | None = None
    history: list[float] = []
    best_residual = np.inf
    start_iteration = 0

    resumed = checkpoint.resume() if checkpoint is not None else None
    if resumed is not None:
        start_iteration, state = resumed
        x = np.array(state["x"])
        hx = np.array(state["hx"])
        p = np.array(state["p"]) if state.get("p") is not None else None
        hp = np.array(state["hp"]) if state.get("hp") is not None else None
        best_residual = float(state["best_residual"])
        history = [float(v) for v in state["history"]]
    else:
        hx = apply_h(x)

    theta = np.zeros(k)
    residual_norms = np.full(k, np.inf)
    iteration = start_iteration
    for iteration in range(start_iteration + 1, max_iter + 1):
        # Rayleigh-Ritz on the current X block keeps theta and X consistent
        # (X is B-orthonormal from the whitened subspace solve, so this is a
        # plain symmetric eigenproblem).
        h_xx = symmetrize(x.conj().T @ hx)
        theta, rot = np.linalg.eigh(h_xx)
        x = x @ rot
        hx = hx @ rot

        residual = hx - x * theta
        residual_norms = np.linalg.norm(residual, axis=0)
        max_residual = float(residual_norms.max())
        history.append(max_residual)
        if callback is not None:
            callback(iteration, theta, residual_norms)
        active = residual_norms > tol * np.maximum(1.0, np.abs(theta))
        if verbose:  # pragma: no cover - diagnostic path
            print(
                f"lobpcg iter {iteration:3d}: max|r| = {max_residual:.3e}, "
                f"active = {int(active.sum())}/{k}"
            )
        if not active.any():
            return EigenResult(
                theta, x, iteration, residual_norms, True, tuple(history)
            )

        # Divergence guard: if the residual has grown far past its best
        # value, the P recurrence has accumulated rounding noise — restart
        # the conjugate direction and recompute H X exactly.
        if max_residual > 1e3 * best_residual and p is not None:
            p = None
            hp = None
            hx = apply_h(x)
            continue
        best_residual = min(best_residual, max_residual)

        w = residual[:, active]
        if preconditioner is not None:
            w = preconditioner(w, theta[active])
        w = orthonormalize_against(w, x)

        blocks = [x, w]
        h_blocks = [hx, apply_h(w)]
        if p is not None and p.shape[1] > 0:
            # Column-normalize P (pure scaling: the H P recurrence stays an
            # exact linear combination, no cancellation); near-zero columns
            # carry no new direction and are dropped.
            col_norms = np.linalg.norm(p, axis=0)
            keep = col_norms > 1e-12
            if keep.any():
                scale = 1.0 / col_norms[keep]
                blocks.append(p[:, keep] * scale)
                h_blocks.append(hp[:, keep] * scale)

        subspace = np.hstack(blocks)
        h_subspace = np.hstack(h_blocks)

        h_proj = symmetrize(subspace.conj().T @ h_subspace)
        s_proj = symmetrize(subspace.conj().T @ subspace)
        evals, coeffs = stable_generalized_eigh(h_proj, s_proj)
        coeffs = coeffs[:, :k]

        # Split the coefficient rows into the X part and the (W, P) part:
        # the latter defines the next aggregated direction P (paper Eq. 18).
        c_x = coeffs[:k, :]
        c_rest = coeffs[k:, :]
        rest = subspace[:, k:]
        h_rest = h_subspace[:, k:]

        p = rest @ c_rest
        hp = h_rest @ c_rest
        x = blocks[0] @ c_x + p
        hx = h_blocks[0] @ c_x + hp

        if checkpoint is not None:
            checkpoint.save(
                iteration,
                {
                    "x": x,
                    "hx": hx,
                    "p": p,
                    "hp": hp,
                    "best_residual": np.float64(best_residual),
                    "history": np.asarray(history),
                },
            )

    # Final Rayleigh-Ritz for a consistent return state.
    h_xx = symmetrize(x.conj().T @ hx)
    theta, rot = np.linalg.eigh(h_xx)
    x = x @ rot
    hx = hx @ rot
    residual_norms = np.linalg.norm(hx - x * theta, axis=0)
    converged = bool(
        (residual_norms <= tol * np.maximum(1.0, np.abs(theta))).all()
    )
    return EigenResult(theta, x, iteration, residual_norms, converged, tuple(history))
