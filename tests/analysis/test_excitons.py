"""Tests for excitation character analysis."""

import numpy as np
import pytest

from repro.analysis import (
    dominant_transitions,
    electron_hole_densities,
    participation_ratio,
)


class TestDominantTransitions:
    def test_single_transition(self):
        x = np.zeros(12)
        x[7] = 1.0  # pair (v=2, c=1) for n_c = 3
        top = dominant_transitions(x, n_v=4, n_c=3, n_top=2)
        assert top[0].valence == 2
        assert top[0].conduction == 1
        assert top[0].weight == pytest.approx(1.0)

    def test_weights_normalized(self, rng):
        x = rng.standard_normal(20)
        top = dominant_transitions(x, n_v=4, n_c=5, n_top=20)
        assert sum(t.weight for t in top) == pytest.approx(1.0)

    def test_descending_order(self, rng):
        x = rng.standard_normal(15)
        top = dominant_transitions(x, n_v=3, n_c=5, n_top=5)
        weights = [t.weight for t in top]
        assert weights == sorted(weights, reverse=True)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            dominant_transitions(np.ones(10), n_v=3, n_c=4)

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            dominant_transitions(np.zeros(12), n_v=4, n_c=3)


class TestParticipationRatio:
    def test_single_transition_is_one(self):
        x = np.zeros(10)
        x[3] = 5.0
        assert participation_ratio(x) == pytest.approx(1.0)

    def test_uniform_is_n(self):
        x = np.ones(16)
        assert participation_ratio(x) == pytest.approx(16.0)

    def test_between_bounds(self, rng):
        x = rng.standard_normal(30)
        pr = participation_ratio(x)
        assert 1.0 <= pr <= 30.0


class TestElectronHoleDensities:
    @pytest.fixture()
    def orbitals(self, si8_synthetic):
        gs = si8_synthetic
        psi_v, _, psi_c, _ = gs.select_transition_space(4, 3)
        return gs, psi_v, psi_c

    def test_densities_integrate_to_one(self, orbitals, rng):
        gs, psi_v, psi_c = orbitals
        x = rng.standard_normal(12)
        n_e, n_h = electron_hole_densities(x, psi_v, psi_c)
        dv = gs.basis.grid.dv
        assert n_e.sum() * dv == pytest.approx(1.0, rel=1e-8)
        assert n_h.sum() * dv == pytest.approx(1.0, rel=1e-8)

    def test_pure_transition_gives_orbital_densities(self, orbitals):
        gs, psi_v, psi_c = orbitals
        x = np.zeros(12)
        x[1 * 3 + 2] = 1.0  # v=1 -> c=2
        n_e, n_h = electron_hole_densities(x, psi_v, psi_c)
        np.testing.assert_allclose(n_e, psi_c[2] ** 2, atol=1e-12)
        np.testing.assert_allclose(n_h, psi_v[1] ** 2, atol=1e-12)

    def test_densities_nonnegative(self, orbitals, rng):
        gs, psi_v, psi_c = orbitals
        x = rng.standard_normal(12)
        n_e, n_h = electron_hole_densities(x, psi_v, psi_c)
        assert n_e.min() > -1e-12
        assert n_h.min() > -1e-12

    def test_real_excitation_hole_lives_in_valence_region(self, si2_ground_state):
        """For real silicon the hole density of the lowest excitation must
        track the valence (bond) density, not empty space."""
        from repro.core import LRTDDFTSolver

        solver = LRTDDFTSolver(si2_ground_state, seed=0)
        res = solver.solve("naive", n_excitations=1)
        n_e, n_h = electron_hole_densities(
            res.wavefunctions[:, 0], solver.psi_v, solver.psi_c
        )
        valence_density = (solver.psi_v**2).sum(axis=0)
        # Correlation between the hole and the valence density is positive.
        corr = np.corrcoef(n_h, valence_density)[0, 1]
        assert corr > 0.5
