"""Tests for the face-splitting pair products."""

import numpy as np
import pytest

from repro.core import pair_index, pair_products, pair_weights
from repro.core.pair_products import pair_energies


class TestPairProducts:
    def test_shape_and_ordering(self, rng):
        psi_v = rng.standard_normal((3, 50))
        psi_c = rng.standard_normal((4, 50))
        z = pair_products(psi_v, psi_c)
        assert z.shape == (50, 12)
        for v in range(3):
            for c in range(4):
                np.testing.assert_allclose(
                    z[:, pair_index(v, c, 4)], psi_v[v] * psi_c[c]
                )

    def test_grid_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="grid"):
            pair_products(rng.standard_normal((2, 10)), rng.standard_normal((2, 11)))

    def test_one_dimensional_input_rejected(self, rng):
        with pytest.raises(ValueError):
            pair_products(rng.standard_normal(10), rng.standard_normal((2, 10)))

    def test_contiguous_output(self, rng):
        z = pair_products(rng.standard_normal((2, 20)), rng.standard_normal((3, 20)))
        assert z.flags["C_CONTIGUOUS"]


class TestPairWeights:
    def test_equals_row_norms_of_z(self, rng):
        """Eq. 14: w(r) is exactly the squared 2-norm of row r of Z."""
        psi_v = rng.standard_normal((3, 40))
        psi_c = rng.standard_normal((5, 40))
        z = pair_products(psi_v, psi_c)
        w = pair_weights(psi_v, psi_c)
        np.testing.assert_allclose(w, np.einsum("rp,rp->r", z, z))

    def test_nonnegative(self, rng):
        w = pair_weights(rng.standard_normal((2, 30)), rng.standard_normal((2, 30)))
        assert (w >= 0).all()


class TestPairEnergies:
    def test_ordering_matches_pairs(self):
        eps_v = np.array([-0.5, -0.2])
        eps_c = np.array([0.1, 0.3, 0.4])
        d = pair_energies(eps_v, eps_c)
        assert d.shape == (6,)
        assert d[pair_index(0, 0, 3)] == pytest.approx(0.6)
        assert d[pair_index(1, 2, 3)] == pytest.approx(0.6)

    def test_all_positive_for_gapped_system(self):
        d = pair_energies(np.array([-1.0, -0.5]), np.array([0.5, 1.0]))
        assert (d > 0).all()
