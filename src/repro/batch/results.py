"""Result containers for batched trajectory runs.

Kept free of any :mod:`repro.api` import so the facade can re-export these
classes at module level without an import cycle (the engine imports the
facade's config types lazily instead).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["BatchResult", "FrameRecord", "FrameResult"]


@dataclass(frozen=True)
class FrameRecord:
    """Per-frame accounting: what ran, how warm it was, what it cost.

    Attributes
    ----------
    index:
        Position of the frame in the input sequence.
    rank:
        SPMD rank that computed the frame (0 for serial runs).
    warm:
        Whether *any* warm-start information was applied to this frame.
    reused_identical:
        The frame's fingerprint matched an earlier frame and its results
        were replayed bit-identically without recomputing.
    scf_iterations / eigensolver_iterations:
        SCF loop length and Casida LOBPCG iteration count.
    kmeans_iterations:
        K-Means iterations spent selecting ISDF points — 0 when the
        previous frame's interpolation points were reused outright.
    isdf_reselected:
        True when interpolation points were (re)selected for this frame,
        False when carried forward under the drift threshold.
    seconds_scf / seconds_tddft:
        Wall-clock seconds of the two pipeline stages.
    total_energy:
        Converged ground-state total energy (Ha).
    excitation_energies:
        LR-TDDFT excitation energies (Ha).
    """

    index: int
    rank: int = 0
    warm: bool = False
    reused_identical: bool = False
    scf_iterations: int = 0
    eigensolver_iterations: int = 0
    kmeans_iterations: int = 0
    isdf_reselected: bool = True
    scf_converged: bool = False
    tddft_converged: bool = False
    seconds_scf: float = 0.0
    seconds_tddft: float = 0.0
    total_energy: float = 0.0
    excitation_energies: tuple[float, ...] = ()

    @property
    def seconds(self) -> float:
        """Total wall-clock seconds for the frame."""
        return self.seconds_scf + self.seconds_tddft

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "rank": self.rank,
            "warm": self.warm,
            "reused_identical": self.reused_identical,
            "scf_iterations": self.scf_iterations,
            "eigensolver_iterations": self.eigensolver_iterations,
            "kmeans_iterations": self.kmeans_iterations,
            "isdf_reselected": self.isdf_reselected,
            "scf_converged": self.scf_converged,
            "tddft_converged": self.tddft_converged,
            "seconds_scf": self.seconds_scf,
            "seconds_tddft": self.seconds_tddft,
            "total_energy": self.total_energy,
            "excitation_energies": list(self.excitation_energies),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FrameRecord":
        payload = dict(data)
        payload["excitation_energies"] = tuple(
            float(v) for v in payload.get("excitation_energies", ())
        )
        return cls(**payload)


@dataclass(frozen=True)
class FrameResult:
    """One frame's record plus (optionally) its full result objects.

    ``ground_state`` / ``tddft`` are ``None`` when the batch ran with
    ``store_results=False`` (records only — the memory-lean mode for long
    trajectories).
    """

    record: FrameRecord
    ground_state: object | None = None
    tddft: object | None = None


@dataclass(frozen=True)
class BatchResult:
    """Outcome of a batched trajectory run.

    ``records`` always covers every input frame in order; ``results``
    aligns with it (entries hold ``None`` result objects when
    ``store_results=False``).
    """

    records: tuple[FrameRecord, ...]
    results: tuple[FrameResult, ...] = field(repr=False, default=())
    n_ranks: int = 1
    spmd_backend: str = "thread"
    warm_start: bool = True

    @property
    def n_frames(self) -> int:
        return len(self.records)

    @property
    def seconds(self) -> float:
        """Summed per-frame wall-clock seconds (compute time, not span)."""
        return float(sum(r.seconds for r in self.records))

    @property
    def total_energies(self) -> np.ndarray:
        return np.array([r.total_energy for r in self.records])

    @property
    def excitation_energies(self) -> np.ndarray:
        """``(n_frames, n_excitations)`` excitation energies."""
        return np.array([r.excitation_energies for r in self.records])

    def summary(self) -> str:
        """Human-readable per-frame table."""
        lines = [
            "frame  rank  warm  reuse  scf  eig  km  resel  "
            "t_scf[s]  t_td[s]   E_total[Ha]"
        ]
        for r in self.records:
            lines.append(
                f"{r.index:5d}  {r.rank:4d}  {str(r.warm):>4}  "
                f"{str(r.reused_identical):>5}  {r.scf_iterations:3d}  "
                f"{r.eigensolver_iterations:3d}  {r.kmeans_iterations:2d}  "
                f"{str(r.isdf_reselected):>5}  {r.seconds_scf:8.3f}  "
                f"{r.seconds_tddft:7.3f}  {r.total_energy:13.8f}"
            )
        lines.append(
            f"total: {self.n_frames} frames, {self.seconds:.3f} s "
            f"({self.n_ranks} rank(s), {self.spmd_backend} backend, "
            f"warm_start={self.warm_start})"
        )
        return "\n".join(lines)
