"""Paper Table 3: QRCP vs K-Means interpolation-point selection time.

The paper measures both selectors on Si_64 (single Xeon core) at
N_mu in {512, 1024, 2048}: QRCP grows quadratically with rank (10.1 ->
42.2 -> 147.3 s), K-Means linearly (1.6 -> 2.9 -> 5.6 s), so the K-Means
advantage grows from ~6x to ~26x.

We *measure* (not model) both selectors on a Si_64-like synthetic workload
scaled down by the factor recorded in EXPERIMENTS.md.  The QRCP baseline is
the randomized-sampling QRCP of the paper's Section 4.1.1 (sketch rows
~ N_mu, hence the quadratic rank dependence the paper reports; LAPACK's
dgeqp3 cannot stop early, so a fixed full factorization would hide it).
"""

import time

import numpy as np
import pytest

from repro.core import select_points_kmeans, select_points_qrcp
from repro.data import PAPER_TABLE3
from repro.utils.rng import default_rng

#: Scaled-down rank sweep (same 1:2:4 geometric ladder as the paper).
RANKS = (128, 256, 512)


@pytest.fixture(scope="module")
def workload(si64_like_state):
    gs = si64_like_state
    psi_v, _, psi_c, _ = gs.select_transition_space()
    return gs, psi_v, psi_c


def _run_qrcp(psi_v, psi_c, n_mu):
    return select_points_qrcp(
        psi_v, psi_c, n_mu, sketch="gaussian",
        oversample=max(10, n_mu // 10), rng=default_rng(0),
    )


def _run_kmeans(gs, psi_v, psi_c, n_mu):
    # Production settings: weight pruning at 1e-2 of the peak and a bounded
    # Lloyd iteration budget (the paper's K-Means is run the same way).
    return select_points_kmeans(
        psi_v, psi_c, n_mu,
        grid_points=gs.basis.grid.cartesian_points,
        prune_threshold=1e-2, max_iter=30, rng=default_rng(0),
    )


def _measure(fn, repeats: int = 3) -> float:
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_table3_rank_sweep(benchmark, workload, save_table):
    gs, psi_v, psi_c = workload

    rows = []
    for n_mu in RANKS:
        t_qrcp = _measure(lambda: _run_qrcp(psi_v, psi_c, n_mu))
        t_kmeans = _measure(lambda: _run_kmeans(gs, psi_v, psi_c, n_mu))
        rows.append((n_mu, t_qrcp, t_kmeans, t_qrcp / t_kmeans))

    # The benchmark fixture times the largest-rank comparison point.
    benchmark.pedantic(
        lambda: _run_kmeans(gs, psi_v, psi_c, RANKS[-1]), rounds=2, iterations=1
    )

    lines = [
        "Paper Table 3 — interpolation-point selection time (seconds)",
        "",
        f"workload: {gs.basis.describe()}, N_v={psi_v.shape[0]}, "
        f"N_c={psi_c.shape[0]} (scaled from the paper's Si_64 @ 20 Ha)",
        "",
        f"{'N_mu':>6s} {'QRCP (meas)':>12s} {'KMeans (meas)':>14s} "
        f"{'ratio':>7s} | {'paper N_mu':>10s} {'QRCP':>8s} {'KMeans':>8s} "
        f"{'ratio':>7s}",
    ]
    for (n_mu, t_q, t_k, ratio), (paper_n_mu, (q_ref, k_ref)) in zip(
        rows, PAPER_TABLE3.items()
    ):
        lines.append(
            f"{n_mu:6d} {t_q:12.4f} {t_k:14.4f} {ratio:7.2f} | "
            f"{paper_n_mu:10d} {q_ref:8.2f} {k_ref:8.2f} {q_ref / k_ref:7.2f}"
        )
    lines += [
        "",
        "shape claims reproduced: K-Means faster at every rank; its",
        "advantage grows with rank (QRCP ~ N_mu^2, K-Means ~ N_mu).",
    ]
    save_table("table3_interpolation", "\n".join(lines))

    ratios = [r[3] for r in rows]
    assert all(r > 1.0 for r in ratios), "K-Means must beat QRCP at every rank"
    assert ratios[-1] > ratios[0], "K-Means advantage must grow with rank"
    # QRCP's rank-quadratic growth: 4x rank -> clearly superlinear time.
    assert rows[-1][1] / rows[0][1] > 3.0
    # K-Means linear-ish growth: 4x rank -> well below 4x quadratic blowup.
    assert rows[-1][2] / rows[0][2] < 10.0


@pytest.mark.parametrize("n_mu", RANKS)
def test_bench_qrcp(benchmark, workload, n_mu):
    gs, psi_v, psi_c = workload
    benchmark.pedantic(
        lambda: _run_qrcp(psi_v, psi_c, n_mu), rounds=3, iterations=1
    )


@pytest.mark.parametrize("n_mu", RANKS)
def test_bench_kmeans(benchmark, workload, n_mu):
    gs, psi_v, psi_c = workload
    benchmark.pedantic(
        lambda: _run_kmeans(gs, psi_v, psi_c, n_mu), rounds=3, iterations=1
    )


def test_bench_exact_qrcp_context(benchmark, workload):
    """Full (non-randomized) QRCP for context: rank-independent and far
    slower — the cost the randomized sketch avoids."""
    gs, psi_v, psi_c = workload
    benchmark.pedantic(
        lambda: select_points_qrcp(psi_v, psi_c, 128, sketch="none"),
        rounds=1, iterations=1,
    )
