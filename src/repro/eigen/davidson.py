"""Block Davidson eigensolver.

The paper cites Davidson (ref [8]) as the classic iterative alternative to
LOBPCG for extracting the lowest excitations; we provide it both as a
baseline for the eigensolver benchmarks and as an independent cross-check of
LOBPCG results in the test-suite.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.eigen.results import EigenResult
from repro.utils.linalg import orthonormalize, orthonormalize_against, symmetrize

ApplyFn = Callable[[np.ndarray], np.ndarray]


def davidson(
    apply_h: ApplyFn,
    x0: np.ndarray,
    diagonal: np.ndarray,
    *,
    tol: float = 1e-8,
    max_iter: int = 200,
    max_subspace: int | None = None,
    verbose: bool = False,
) -> EigenResult:
    """Find the lowest-``k`` eigenpairs with a block Davidson iteration.

    Parameters
    ----------
    apply_h:
        Hermitian block operator ``X -> H X``.
    x0:
        ``(n, k)`` initial block.
    diagonal:
        ``(n,)`` diagonal of ``H`` used for the Davidson correction
        ``t = r / (diag(H) - theta)``.
    max_subspace:
        Restart threshold; defaults to ``max(4 * k, k + 20)``.
    """
    x = np.array(x0, dtype=complex if np.iscomplexobj(x0) else float, copy=True)
    n, k = x.shape
    if k == 0:
        raise ValueError("x0 must contain at least one column")
    diagonal = np.asarray(diagonal)
    if diagonal.shape != (n,):
        raise ValueError(f"diagonal must have shape ({n},), got {diagonal.shape}")
    if max_subspace is None:
        max_subspace = min(n, max(4 * k, k + 20))

    v = orthonormalize(x)
    hv = apply_h(v)
    history: list[float] = []
    theta = np.zeros(k)
    ritz = v
    residual_norms = np.full(k, np.inf)

    iteration = 0
    for iteration in range(1, max_iter + 1):
        h_proj = symmetrize(v.conj().T @ hv)
        evals, coeffs = np.linalg.eigh(h_proj)
        theta = evals[:k]
        ritz = v @ coeffs[:, :k]
        h_ritz = hv @ coeffs[:, :k]

        residual = h_ritz - ritz * theta
        residual_norms = np.linalg.norm(residual, axis=0)
        history.append(float(residual_norms.max()))
        active = residual_norms > tol * np.maximum(1.0, np.abs(theta))
        if verbose:  # pragma: no cover
            print(
                f"davidson iter {iteration:3d}: dim = {v.shape[1]:4d}, "
                f"max|r| = {residual_norms.max():.3e}"
            )
        if not active.any():
            return EigenResult(
                theta, ritz, iteration, residual_norms, True, tuple(history)
            )

        # Davidson diagonal correction for the active residuals.
        denom = diagonal[:, None] - theta[active][None, :]
        denom = np.where(np.abs(denom) < 1e-4, np.copysign(1e-4, denom), denom)
        correction = residual[:, active] / denom

        if v.shape[1] + correction.shape[1] > max_subspace:
            # Restart: collapse to the current Ritz block.
            v = orthonormalize(ritz)
            hv = apply_h(v)
        new_dirs = orthonormalize_against(correction, v)
        v = np.hstack([v, new_dirs])
        hv = np.hstack([hv, apply_h(new_dirs)])

    converged = bool(
        (residual_norms <= tol * np.maximum(1.0, np.abs(theta))).all()
    )
    return EigenResult(
        theta, ritz, iteration, residual_norms, converged, tuple(history)
    )
