"""Naive explicit LR-TDDFT within the Tamm-Dancoff approximation.

This is version (1) of the paper's Table 4: build the Casida/TDA
Hamiltonian

    H = D + 2 V_Hxc,      V_Hxc = P_vc^T f_Hxc P_vc            (Eqs. 2-3)

explicitly at ``O(N_v^2 N_c^2 N_r)`` cost and ``O(N_v^2 N_c^2)`` memory,
then diagonalize densely (the SYEVD stand-in).  The factor 2 is the singlet
spin factor for a closed-shell reference.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernel import HxcKernel
from repro.core.pair_products import pair_energies, pair_products
from repro.eigen.dense import dense_eigh
from repro.utils.linalg import symmetrize
from repro.utils.timers import TimerRegistry
from repro.utils.validation import require


def transition_diagonal(eps_v: np.ndarray, eps_c: np.ndarray) -> np.ndarray:
    """The diagonal ``D`` of independent-particle transition energies."""
    return pair_energies(np.asarray(eps_v, float), np.asarray(eps_c, float))


def build_vhxc(
    psi_v: np.ndarray,
    psi_c: np.ndarray,
    kernel: HxcKernel,
    *,
    timers: TimerRegistry | None = None,
) -> np.ndarray:
    """Explicit Hartree-exchange-correlation matrix ``(N_cv, N_cv)``.

    Follows Algorithm 1: face-splitting product, batched FFT application of
    the Hartree operator, real-space GEMM against the pair matrix.
    """
    timers = timers or TimerRegistry()
    with timers.scope("pair_products"):
        z = pair_products(psi_v, psi_c)  # (N_r, N_cv)
    with timers.scope("kernel_fft"):
        k = kernel.apply(z.T).T  # (N_r, N_cv)
    with timers.scope("gemm"):
        vhxc = (z.T @ k) * kernel.basis.grid.dv
    return symmetrize(vhxc)


def build_casida_hamiltonian(
    psi_v: np.ndarray,
    eps_v: np.ndarray,
    psi_c: np.ndarray,
    eps_c: np.ndarray,
    kernel: HxcKernel,
    *,
    timers: TimerRegistry | None = None,
) -> np.ndarray:
    """Explicit TDA Hamiltonian ``H = D + 2 V_Hxc`` (Eq. 2)."""
    require(psi_v.shape[0] == eps_v.shape[0], "psi_v / eps_v mismatch")
    require(psi_c.shape[0] == eps_c.shape[0], "psi_c / eps_c mismatch")
    vhxc = build_vhxc(psi_v, psi_c, kernel, timers=timers)
    h = 2.0 * vhxc
    diag = transition_diagonal(eps_v, eps_c)
    h[np.diag_indices_from(h)] += diag
    return h


def solve_casida_dense(
    hamiltonian: np.ndarray, n_excitations: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Dense diagonalization; returns the lowest ``n_excitations`` pairs.

    The full spectrum is computed (that is the point of the naive version's
    ``O(N_cv^3)`` cost) and then truncated.
    """
    evals, evecs = dense_eigh(hamiltonian)
    if n_excitations is not None:
        require(
            0 < n_excitations <= evals.shape[0],
            f"n_excitations must be in [1, {evals.shape[0]}]",
        )
        return evals[:n_excitations], evecs[:, :n_excitations]
    return evals, evecs
