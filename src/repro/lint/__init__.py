"""``repro.lint`` — whole-program lint passes for this codebase's hazards.

The generic engine (rule registry, suppression comments, text/JSON output)
lives in :mod:`repro.lint.engine`.  Per-file passes encoding the
invariants the reproduction relies on live in :mod:`repro.lint.rules`:

* ``no-alloc-in-hot`` — per-call allocations inside hot kernels,
* ``collective-in-branch`` — collectives guarded by rank-dependent
  branches (``if``/``while``/conditional expressions/short-circuits/
  comprehension filters),
* ``nondeterminism-in-replay`` — wall-clock/global-RNG/dict-order inside
  checkpoint-replayed loops,
* ``mutated-recv-buffer`` — in-place writes to arrays received through the
  comm layer without a defensive copy,
* ``no-blind-except`` — ``except Exception`` handlers that swallow
  everything.

Whole-program passes run over the project call graph
(:mod:`repro.lint.callgraph` + :mod:`repro.lint.flow`) and live in
:mod:`repro.lint.project_rules`:

* ``transitive-collective-in-branch`` — collectives reachable through
  helper calls from rank-dependent branches,
* ``impure-cache-key`` — nondeterminism reachable from
  ``CalculationRequest`` serialization (the content-addressed cache key),
* ``lock-order-cycle`` / ``blocking-under-lock`` — the static lock graph
  of the serving layer.

The array-contract pass (:mod:`repro.lint.arrays`) abstractly interprets
numpy code against the ``@array_contract`` declarations on hot kernels —
symbolic shapes, a dtype lattice, and layout (contiguity) facts:

* ``silent-upcast-in-hot`` — a hot kernel's float64 data widening to
  complex128 (or float32 to float64) without an explicit cast,
* ``hidden-copy-into-kernel`` — strided/copied views passed where a
  contract requires C-contiguity (BLAS packing, pocketfft input copies),
* ``shape-mismatch`` — inferred shapes contradicting a contract or a
  GEMM's inner dimension,
* ``collective-buffer-contract`` — rank-dependent buffer shapes fed to
  reducing collectives.

Set ``REPRO_ARRAY_CONTRACTS=1`` to also enforce the same contracts at
runtime (:mod:`repro.utils.hot`); the default is off with zero overhead.

Run it via ``repro lint [paths]``, ``python tools/run_checks.py``, or the
API below.  ``repro lint --check-suppressions`` audits for suppression
comments that no longer match a live finding.  See
``docs/static-analysis.md`` for rule rationale and suppression syntax.
"""

from repro.lint.engine import (
    Finding,
    LintRule,
    ProjectRule,
    all_project_rules,
    all_rules,
    check_suppressions,
    format_findings,
    get_rules,
    lint_file,
    lint_paths,
    lint_source,
    register_project_rule,
    register_rule,
    rule_inventory,
)
from repro.lint.hotpaths import (
    ARRAY_CONTRACT_DECORATORS,
    HOT_DECORATORS,
    HOT_PATH_MANIFEST,
    array_contract,
    hot_functions_for,
)

# Importing the rule modules populates both registries.
from repro.lint import arrays as _arrays  # noqa: F401  (registration side effect)
from repro.lint import project_rules as _project_rules  # noqa: F401
from repro.lint import rules as _rules  # noqa: F401  (registration side effect)
from repro.lint.arrays import ARRAY_RULE_NAMES, analyze_arrays

__all__ = [
    "Finding",
    "LintRule",
    "ProjectRule",
    "all_project_rules",
    "all_rules",
    "check_suppressions",
    "format_findings",
    "get_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register_project_rule",
    "register_rule",
    "rule_inventory",
    "ARRAY_CONTRACT_DECORATORS",
    "ARRAY_RULE_NAMES",
    "HOT_DECORATORS",
    "HOT_PATH_MANIFEST",
    "analyze_arrays",
    "array_contract",
    "hot_functions_for",
]
