"""Distributed LOBPCG must reproduce the serial eigensolve."""

import numpy as np
import pytest

from repro.core import HxcKernel, ImplicitCasidaOperator, isdf_decompose
from repro.eigen import dense_lowest, lobpcg
from repro.parallel import BlockDistribution1D, spmd_run
from repro.parallel.parallel_lobpcg import (
    distributed_lobpcg,
    make_distributed_implicit_apply,
)
from repro.utils.rng import default_rng


def _dense_apply_local(comm, matrix, dist):
    """Generic row-distributed apply for a dense test matrix: each rank
    allgathers the block and multiplies its row slab."""
    rows = dist.local_slice(comm.rank)
    a_rows = matrix[rows]

    def apply_local(x_local):
        pieces = comm.allgather(x_local)
        x_full = np.concatenate(pieces, axis=0)
        return a_rows @ x_full

    return apply_local


class TestGenericOperator:
    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 4])
    def test_matches_dense_reference(self, n_ranks):
        rng = default_rng(0)
        n, k = 120, 4
        a = rng.standard_normal((n, n))
        a = (a + a.T) / 2 + np.diag(np.arange(n, dtype=float))
        ref, _ = dense_lowest(a, k)
        x0 = rng.standard_normal((n, k))
        dist = BlockDistribution1D(n, n_ranks)

        def prog(comm):
            apply_local = _dense_apply_local(comm, a, dist)
            res = distributed_lobpcg(
                comm, apply_local, x0[dist.local_slice(comm.rank)],
                tol=1e-9, max_iter=300,
            )
            return res.eigenvalues, res.converged

        results = spmd_run(n_ranks, prog)
        for evals, converged in results:
            assert converged
            np.testing.assert_allclose(evals, ref, atol=1e-7)

    def test_eigenvalues_replicated(self):
        rng = default_rng(1)
        n = 60
        a = rng.standard_normal((n, n))
        a = (a + a.T) / 2 + np.diag(np.arange(n, dtype=float))
        x0 = rng.standard_normal((n, 3))
        dist = BlockDistribution1D(n, 3)

        def prog(comm):
            apply_local = _dense_apply_local(comm, a, dist)
            return distributed_lobpcg(
                comm, apply_local, x0[dist.local_slice(comm.rank)], tol=1e-9
            ).eigenvalues

        results = spmd_run(3, prog)
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[0], results[2])

    def test_distributed_eigenvectors_assemble_to_global(self):
        rng = default_rng(2)
        n = 80
        a = rng.standard_normal((n, n))
        a = (a + a.T) / 2 + np.diag(np.arange(n, dtype=float))
        x0 = rng.standard_normal((n, 3))
        dist = BlockDistribution1D(n, 4)

        def prog(comm):
            apply_local = _dense_apply_local(comm, a, dist)
            res = distributed_lobpcg(
                comm, apply_local, x0[dist.local_slice(comm.rank)], tol=1e-10
            )
            return res.eigenvalues, res.eigenvectors

        results = spmd_run(4, prog)
        evals = results[0][0]
        vectors = np.concatenate([r[1] for r in results], axis=0)
        for j in range(3):
            v = vectors[:, j]
            np.testing.assert_allclose(a @ v, evals[j] * v, atol=1e-7)


class TestImplicitCasidaDistributed:
    @pytest.fixture(scope="class")
    def problem(self, si8_synthetic):
        gs = si8_synthetic
        psi_v, eps_v, psi_c, eps_c = gs.select_transition_space(8, 6)
        kernel = HxcKernel(gs.basis, gs.density)
        isdf = isdf_decompose(
            psi_v, psi_c, 40, method="qrcp", rng=default_rng(3)
        )
        op = ImplicitCasidaOperator(isdf, eps_v, eps_c, kernel)
        return isdf, eps_v, eps_c, op

    @pytest.mark.parametrize("n_ranks", [1, 2, 4])
    def test_matches_serial_implicit_solve(self, problem, n_ranks):
        isdf, eps_v, eps_c, op = problem
        k = 4
        rng = default_rng(4)
        x0 = rng.standard_normal((op.n_pairs, k))
        serial = lobpcg(
            op.apply, x0, preconditioner=op.preconditioner,
            tol=1e-10, max_iter=300,
        )
        dist = BlockDistribution1D(op.n_pairs, n_ranks)

        def prog(comm):
            apply_local, precond_local, _ = make_distributed_implicit_apply(
                comm, isdf, eps_v, eps_c, op.vtilde, dist
            )
            res = distributed_lobpcg(
                comm, apply_local, x0[dist.local_slice(comm.rank)],
                preconditioner_local=precond_local, tol=1e-10, max_iter=300,
            )
            return res.eigenvalues

        for evals in spmd_run(n_ranks, prog):
            np.testing.assert_allclose(evals, serial.eigenvalues, atol=1e-8)

    def test_communication_is_small_gram_traffic(self, problem):
        """Per iteration the distributed solver only moves O(k N_mu + k^2)
        floats, never O(N_cv) vectors."""
        isdf, eps_v, eps_c, op = problem
        dist = BlockDistribution1D(op.n_pairs, 4)
        rng = default_rng(5)
        x0 = rng.standard_normal((op.n_pairs, 3))

        def prog(comm):
            apply_local, precond_local, _ = make_distributed_implicit_apply(
                comm, isdf, eps_v, eps_c, op.vtilde, dist
            )
            res = distributed_lobpcg(
                comm, apply_local, x0[dist.local_slice(comm.rank)],
                preconditioner_local=precond_local, tol=1e-8, max_iter=100,
            )
            return res.iterations

        _, traffic = spmd_run(4, prog, return_traffic=True)
        assert "allgather" not in traffic.bytes_by_op  # no full-vector moves
        assert traffic.bytes_by_op["allreduce"] > 0
