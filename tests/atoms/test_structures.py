"""Tests for the structure builders (the paper's test systems)."""

import numpy as np
import pytest

from repro.atoms import (
    bulk_silicon,
    graphene_bilayer,
    graphene_monolayer,
    silicon_conventional_cell,
    silicon_label,
    silicon_primitive_cell,
    twisted_bilayer_graphene,
    water_molecule,
)
from repro.atoms.structures import SILICON_A_BOHR, twist_angle
from repro.constants import ANGSTROM_TO_BOHR, BOHR_TO_ANGSTROM


class TestSilicon:
    @pytest.mark.parametrize("n", [8, 64, 216, 512, 1000, 1728, 2744, 4096])
    def test_paper_series_atom_counts(self, n):
        assert bulk_silicon(n).n_atoms == n

    def test_invalid_atom_count(self):
        with pytest.raises(ValueError):
            bulk_silicon(100)

    def test_label(self):
        assert silicon_label(bulk_silicon(64)) == "Si64"

    def test_nearest_neighbour_distance(self):
        """Diamond bond length: a * sqrt(3) / 4 = 2.35 Angstrom."""
        cell = silicon_conventional_cell()
        cart = cell.cartesian_positions
        d = np.linalg.norm(cart[0] - cart[4], axis=-1)
        assert d * BOHR_TO_ANGSTROM == pytest.approx(2.352, abs=0.01)

    def test_primitive_and_conventional_consistent_density(self):
        prim = silicon_primitive_cell()
        conv = silicon_conventional_cell()
        assert prim.n_atoms / prim.volume == pytest.approx(conv.n_atoms / conv.volume)

    def test_si64_box_matches_paper(self):
        """Table 5 quotes a 20.525^3 box for Si_64 (2x2x2 conventional cells)."""
        cell = bulk_silicon(64)
        assert cell.lengths[0] == pytest.approx(2 * SILICON_A_BOHR)
        assert cell.lengths[0] == pytest.approx(20.525, abs=1e-3)


class TestWater:
    def test_composition(self):
        cell = water_molecule()
        assert sorted(cell.species) == ["H", "H", "O"]

    def test_oh_bond_length(self):
        cell = water_molecule()
        cart = cell.cartesian_positions
        d = np.linalg.norm(cart[1] - cart[0])
        assert d * BOHR_TO_ANGSTROM == pytest.approx(0.9572, abs=1e-4)

    def test_hoh_angle(self):
        cell = water_molecule()
        cart = cell.cartesian_positions
        v1, v2 = cart[1] - cart[0], cart[2] - cart[0]
        angle = np.degrees(
            np.arccos(v1 @ v2 / (np.linalg.norm(v1) * np.linalg.norm(v2)))
        )
        assert angle == pytest.approx(104.52, abs=0.01)

    def test_default_box_is_11_angstrom(self):
        cell = water_molecule()
        assert cell.lengths[0] == pytest.approx(11.0 * ANGSTROM_TO_BOHR)

    def test_molecule_centred(self):
        cell = water_molecule()
        centre = cell.cartesian_positions.mean(axis=0)
        np.testing.assert_allclose(centre, cell.lengths / 2, atol=1.0)


class TestGraphene:
    def test_monolayer_two_atoms(self):
        assert graphene_monolayer().n_atoms == 2

    def test_cc_bond_length(self):
        cell = graphene_monolayer()
        cart = cell.cartesian_positions
        d = np.linalg.norm(cart[1] - cart[0])
        assert d * BOHR_TO_ANGSTROM == pytest.approx(1.42, abs=0.01)

    def test_bilayer_interlayer_distance(self):
        dist = 6.0
        cell = graphene_bilayer(interlayer_distance=dist)
        z = cell.cartesian_positions[:, 2]
        assert np.ptp(z) == pytest.approx(dist)

    def test_bilayer_stacking_validation(self):
        with pytest.raises(ValueError, match="stacking"):
            graphene_bilayer(stacking="ABC")


class TestTwistedBilayer:
    @pytest.mark.parametrize("m,n,atoms", [(1, 2, 28), (2, 3, 76), (1, 3, 52)])
    def test_commensurate_atom_counts(self, m, n, atoms):
        cell = twisted_bilayer_graphene(m, n)
        assert cell.n_atoms == atoms

    def test_twist_angle_1_2(self):
        assert np.degrees(twist_angle(1, 2)) == pytest.approx(21.787, abs=0.01)

    def test_twist_angle_decreases_toward_magic(self):
        angles = [np.degrees(twist_angle(m, m + 1)) for m in (1, 2, 3)]
        assert angles[0] > angles[1] > angles[2]

    def test_layers_have_equal_atom_counts(self):
        cell = twisted_bilayer_graphene(1, 2, interlayer_distance=6.0)
        z = cell.cartesian_positions[:, 2]
        lo = (z < z.mean()).sum()
        assert lo == cell.n_atoms // 2

    def test_invalid_indices(self):
        with pytest.raises(ValueError):
            twisted_bilayer_graphene(2, 2)

    def test_minimum_cc_distance_physical(self):
        cell = twisted_bilayer_graphene(1, 2)
        cart = cell.cartesian_positions
        d = np.linalg.norm(cart[:, None] - cart[None, :], axis=2)
        d[np.diag_indices_from(d)] = np.inf
        assert d.min() * BOHR_TO_ANGSTROM > 1.3  # no overlapping atoms
