"""The unified typed entry points: ``run_scf`` / ``solve_tddft`` / ``run_rt``.

Every pipeline stage is driven by a frozen config object
(:class:`~repro.api.config.SCFConfig`, :class:`~repro.api.config.TDDFTConfig`)
plus an optional :class:`~repro.api.config.ResilienceConfig` that switches on
checkpoint/restart and the graceful-degradation policies (FFT backend
fallback, K-Means -> QRCP selection fallback, iterative -> dense eigensolver
fallback).  The old kwarg signatures keep working through deprecation shims
that warn exactly once per process.
"""

from __future__ import annotations

import os

from repro.api.config import BatchConfig, ResilienceConfig, SCFConfig, TDDFTConfig
from repro.batch.results import BatchResult
from repro.core.driver import LRTDDFTResult, LRTDDFTSolver
from repro.dft.groundstate import GroundState
from repro.dft.scf import SCFOptions
from repro.dft.scf import run_scf as _run_scf_core
from repro.rt.tddft import RealTimeTDDFT, RTResult
from repro.utils.deprecation import reset_deprecation_warnings, warn_once
from repro.utils.serialization import SerializationError, load_payload
from repro.utils.timers import TimerRegistry
from repro.utils.validation import require

__all__ = [
    "SCFResult",
    "install_fft_fallback",
    "load_result",
    "reset_deprecation_warnings",
    "run_batch",
    "run_rt",
    "run_scf",
    "solve_tddft",
]

#: The facade's name for the ground-state result object.
SCFResult = GroundState


def install_fft_fallback():
    """Wrap the process-wide FFT engine in the scipy -> numpy fallback.

    Idempotent: an already-resilient default is returned unchanged.
    """
    from repro.backend.fft_engine import default_fft_engine, set_default_fft_engine
    from repro.resilience.policies import ResilientFFTEngine

    engine = default_fft_engine()
    if isinstance(engine, ResilientFFTEngine):
        return engine
    return set_default_fft_engine(ResilientFFTEngine(engine))


def _apply_resilience_process_policies(resilience: ResilienceConfig | None) -> None:
    if resilience is not None and resilience.fft_fallback:
        install_fft_fallback()


def run_scf(
    cell,
    config: SCFConfig | None = None,
    *,
    resilience: ResilienceConfig | None = None,
    timers: TimerRegistry | None = None,
    **legacy,
) -> GroundState:
    """Ground-state SCF from an :class:`~repro.api.config.SCFConfig`.

    ``run_scf(cell, ecut=8.0, ...)`` (bare keywords instead of a config)
    is the legacy signature — still supported, but it emits a one-time
    ``DeprecationWarning``.
    """
    if legacy:
        if config is None:
            warn_once(
                "api.run_scf:kwargs",
                "passing SCF options as keywords to repro.api.run_scf() is "
                "deprecated; build a repro.api.SCFConfig instead",
            )
            config = SCFConfig.from_dict(legacy)
        else:
            require(
                False,
                "run_scf(cell, config) does not accept additional option "
                f"keywords (got {sorted(legacy)}); use config.replace(...)",
            )
    config = config or SCFConfig()
    _apply_resilience_process_policies(resilience)
    checkpoint = resilience.checkpointer("scf") if resilience is not None else None
    opts = SCFOptions(**config.to_dict())
    return _run_scf_core(cell, opts, timers=timers, checkpoint=checkpoint)


def _dense_equivalent(method: str) -> str:
    """The dense-diagonalization twin of an iterative method string."""
    m = method
    if m.startswith("implicit-"):
        m = m[len("implicit-"):]
    for suffix in ("-lobpcg", "-davidson"):
        if m.endswith(suffix):
            m = m[: -len(suffix)]
    return m


def solve_tddft(
    ground_state: GroundState,
    config: TDDFTConfig | None = None,
    *,
    resilience: ResilienceConfig | None = None,
    **legacy,
) -> LRTDDFTResult:
    """LR-TDDFT excitations from a :class:`~repro.api.config.TDDFTConfig`.

    With a :class:`~repro.api.config.ResilienceConfig` the solve gains
    checkpoint/restart (ISDF stages + LOBPCG iterations) and graceful
    degradation; in particular, an iterative eigensolve that does *not*
    converge within its budget is transparently re-run with the dense
    eigensolver whenever the pair space is small enough
    (``dense_fallback_max_pairs``).
    """
    if legacy:
        if config is None:
            warn_once(
                "api.solve_tddft:kwargs",
                "passing solver options as keywords to repro.api.solve_tddft() "
                "is deprecated; build a repro.api.TDDFTConfig instead",
            )
            config = TDDFTConfig.from_dict(legacy)
        else:
            require(
                False,
                "solve_tddft(gs, config) does not accept additional option "
                f"keywords (got {sorted(legacy)}); use config.replace(...)",
            )
    config = config or TDDFTConfig()
    _apply_resilience_process_policies(resilience)

    solver = LRTDDFTSolver(
        ground_state,
        n_valence=config.n_valence,
        n_conduction=config.n_conduction,
        include_xc=config.include_xc,
        spin=config.spin,
        seed=config.seed,
    )
    result = solver.solve(config, resilience=resilience)

    if (
        resilience is not None
        and not result.converged
        and 0 < solver.n_pairs <= resilience.dense_fallback_max_pairs
    ):
        dense_method = _dense_equivalent(config.method)
        if dense_method != config.method:
            # Fresh (non-restart) solve: the dense path must not consume the
            # iterative run's checkpoints.
            dense_resilience = resilience.replace(checkpoint_dir=None)
            result = solver.solve(
                config.replace(method=dense_method),
                resilience=dense_resilience,
            )
    return result


def run_batch(
    cells,
    config: BatchConfig | None = None,
    *,
    resilience: ResilienceConfig | None = None,
    on_result=None,
) -> BatchResult:
    """Warm-started pipeline over an ordered sequence of related structures.

    Each frame runs SCF -> K-Means/ISDF -> LR-TDDFT; consecutive frames
    reuse converged densities/orbitals, K-Means centroids, ISDF
    interpolation points (under a drift threshold) and Casida
    eigenvectors.  See :func:`repro.batch.run_batch` for semantics and
    ``docs/batching.md`` for the reuse policy.
    """
    from repro.batch.engine import run_batch as _run_batch_core

    _apply_resilience_process_policies(resilience)
    return _run_batch_core(
        cells, config, resilience=resilience, on_result=on_result
    )


def run_rt(
    ground_state: GroundState,
    *,
    dt: float = 0.2,
    n_steps: int = 600,
    kick_strength: float = 1e-3,
    kick_direction=(0.0, 0.0, 1.0),
    krylov_dim: int = 10,
    etrs: bool = True,
    record_every: int = 1,
    self_consistent: bool = True,
    resilience: ResilienceConfig | None = None,
) -> RTResult:
    """Kick-and-propagate real-time TDDFT run (checkpointable)."""
    _apply_resilience_process_policies(resilience)
    checkpoint = resilience.checkpointer("rt") if resilience is not None else None
    rt = RealTimeTDDFT(ground_state, self_consistent=self_consistent)
    if kick_strength:
        rt.kick(kick_strength, kick_direction)
    return rt.propagate(
        dt,
        n_steps,
        krylov_dim=krylov_dim,
        etrs=etrs,
        record_every=record_every,
        checkpoint=checkpoint,
    )


#: Result classes :func:`load_result` can dispatch to, by class tag.
_RESULT_CLASSES = {
    "GroundState": GroundState,
    "LRTDDFTResult": LRTDDFTResult,
    "RTResult": RTResult,
}


def load_result(path: str | os.PathLike):
    """Load any saved result file, dispatching on its embedded class tag."""
    payload = load_payload(path)
    tag = payload.get("class")
    cls = _RESULT_CLASSES.get(tag)
    if cls is None:
        raise SerializationError(
            f"{path}: unknown result class {tag!r}; "
            f"expected one of {sorted(_RESULT_CLASSES)}"
        )
    return cls.from_dict(payload["data"])
