"""The rank-branch collective-matching pass."""

from repro.lint import lint_source

import pytest

pytestmark = pytest.mark.lint

RULE = ["collective-in-branch"]


def findings_in(src: str):
    return lint_source(src, rules=RULE)


class TestPositive:
    def test_collective_on_one_arm_only(self):
        src = (
            "def prog(comm):\n"
            "    if comm.rank == 0:\n"
            "        comm.bcast(1, root=0)\n"
        )
        (finding,) = findings_in(src)
        assert "bcast" in finding.message
        assert finding.line == 3

    def test_unbalanced_ops_across_arms(self):
        src = (
            "def prog(comm):\n"
            "    if comm.rank == 0:\n"
            "        comm.gather(1, root=0)\n"
            "    else:\n"
            "        comm.allreduce(1)\n"
        )
        flagged = {f.line for f in findings_in(src)}
        assert flagged == {3, 5}  # neither arm's op has a partner

    def test_bare_rank_name_counts(self):
        src = (
            "def prog(comm, rank):\n"
            "    if rank > 0:\n"
            "        comm.barrier()\n"
        )
        assert len(findings_in(src)) == 1

    def test_extra_repetition_on_one_arm(self):
        src = (
            "def prog(comm):\n"
            "    if comm.rank:\n"
            "        comm.barrier()\n"
            "        comm.barrier()\n"
            "    else:\n"
            "        comm.barrier()\n"
        )
        assert len(findings_in(src)) >= 1


class TestNegative:
    def test_matched_ops_on_both_arms_are_clean(self):
        src = (
            "def prog(comm):\n"
            "    if comm.rank == 0:\n"
            "        out = comm.bcast(make(), root=0)\n"
            "    else:\n"
            "        out = comm.bcast(None, root=0)\n"
        )
        assert findings_in(src) == []

    def test_non_rank_branch_is_out_of_scope(self):
        src = (
            "def prog(comm, flag):\n"
            "    if flag:\n"
            "        comm.barrier()\n"
        )
        assert findings_in(src) == []

    def test_collective_outside_any_branch_is_clean(self):
        src = "def prog(comm):\n    return comm.allreduce(comm.rank)\n"
        assert findings_in(src) == []

    def test_rank_branch_without_collectives_is_clean(self):
        src = (
            "def prog(comm):\n"
            "    if comm.rank == 0:\n"
            "        print('root')\n"
        )
        assert findings_in(src) == []
