"""Non-self-consistent band structures: diagonalize H(k) on a converged
density.

The Gamma-point SCF fixes the density/potential; Bloch bands at any other
k follow from one diagonalization of

    H(k) = 1/2 |G + k|^2 + V_eff(r) + V_nl(k),

with the Kleinman-Bylander projectors evaluated at ``G + k``.  This is the
standard band-structure post-processing step of every plane-wave code and
a sharp validation of the substrate: silicon must come out with its
indirect gap (CBM along Gamma-X) and the correct Gamma degeneracies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dft.groundstate import GroundState
from repro.dft.hamiltonian import KohnShamHamiltonian
from repro.eigen.lobpcg import lobpcg
from repro.pseudo.hgh import get_pseudopotential, projector_radial_recip
from repro.pseudo.kb import NonlocalProjectors, _real_spherical_harmonics
from repro.pw.basis import PlaneWaveBasis
from repro.utils.rng import default_rng
from repro.utils.validation import require


def build_projectors_at_k(
    basis: PlaneWaveBasis, k_cart: np.ndarray
) -> NonlocalProjectors:
    """KB projectors evaluated at ``G + k`` (see repro.pseudo.kb)."""
    cell = basis.cell
    gk = basis.gvectors.g_sphere + k_cart[None, :]
    gk_norm = np.linalg.norm(gk, axis=1)
    inv_sqrt_volume = 1.0 / np.sqrt(basis.volume)

    columns = []
    strengths = []
    labels = []
    for atom_index, symbol in enumerate(cell.species):
        params = get_pseudopotential(symbol)
        if not params.projectors:
            continue
        # Structure factor at G + k: exp(-i (G + k) . tau).
        tau = cell.fractional_positions[atom_index] @ cell.lattice
        phase = np.exp(-1j * (gk @ tau))
        for l, (_, h_list) in sorted(params.projectors.items()):
            ylm = _real_spherical_harmonics(l, gk)
            for i, h in enumerate(h_list, start=1):
                if abs(h) < 1e-14:
                    continue
                radial = projector_radial_recip(params, l, i, gk_norm)
                base = ((-1j) ** l) * inv_sqrt_volume * radial * phase
                for m in range(2 * l + 1):
                    columns.append(base * ylm[m])
                    strengths.append(h)
                    labels.append((atom_index, symbol, l, i, m - l))
    if columns:
        beta = np.column_stack(columns)
        h = np.asarray(strengths, dtype=float)
    else:
        beta = np.zeros((basis.n_pw, 0), dtype=complex)
        h = np.zeros(0)
    return NonlocalProjectors(beta, h, tuple(labels))


class BlochHamiltonian:
    """``H(k)`` bound to a converged effective potential."""

    def __init__(self, ground_state: GroundState, k_fractional) -> None:
        self.basis = ground_state.basis
        k_fractional = np.asarray(k_fractional, dtype=float)
        require(k_fractional.shape == (3,), "k must be a 3-vector")
        self.k_fractional = k_fractional
        self.k_cart = k_fractional @ self.basis.cell.reciprocal_lattice

        ham = KohnShamHamiltonian(self.basis)
        ham.update_density(ground_state.density)
        self._v_eff = ham.v_effective
        gk = self.basis.gvectors.g_sphere + self.k_cart[None, :]
        self._kinetic = 0.5 * np.einsum("ij,ij->i", gk, gk)
        self._projectors = build_projectors_at_k(self.basis, self.k_cart)

    def apply(self, coeffs: np.ndarray) -> np.ndarray:
        """``H(k) @ u`` for cell-periodic coefficient blocks ``(..., N_pw)``."""
        out = coeffs * self._kinetic
        psi_real = self.basis.to_real(coeffs)
        out += self.basis.to_recip(psi_real * self._v_eff)
        out += self._projectors.apply(coeffs)
        return out

    def apply_columns(self, x: np.ndarray) -> np.ndarray:
        return self.apply(x.T).T

    def preconditioner(self, residual: np.ndarray, theta: np.ndarray) -> np.ndarray:
        kinetic = self._kinetic[:, None]
        scale = np.maximum(
            np.einsum("gk,g,gk->k", residual.conj(), self._kinetic, residual).real
            / np.maximum(np.einsum("gk,gk->k", residual.conj(), residual).real, 1e-30),
            1e-3,
        )
        x = kinetic / scale[None, :]
        poly = 27.0 + 18.0 * x + 12.0 * x**2 + 8.0 * x**3
        return residual * (poly / (poly + 16.0 * x**4))


@dataclass(frozen=True)
class BandStructure:
    """Bands along a k-path."""

    k_fractional: np.ndarray  #: (n_k, 3)
    energies: np.ndarray  #: (n_k, n_bands), Hartree, ascending per k
    labels: tuple[tuple[int, str], ...] = ()  #: (index, name) of named points

    @property
    def n_k(self) -> int:
        return self.k_fractional.shape[0]

    def valence_maximum(self, n_occupied: int) -> float:
        return float(self.energies[:, :n_occupied].max())

    def conduction_minimum(self, n_occupied: int) -> float:
        return float(self.energies[:, n_occupied:].min())

    def indirect_gap(self, n_occupied: int) -> float:
        """min over k' of CBM minus max over k of VBM."""
        return self.conduction_minimum(n_occupied) - self.valence_maximum(n_occupied)


def bands_at_k(
    ground_state: GroundState,
    k_fractional,
    n_bands: int,
    *,
    tol: float = 1e-8,
    seed: int = 0,
) -> np.ndarray:
    """Lowest ``n_bands`` eigenvalues of ``H(k)`` (Hartree, ascending)."""
    ham = BlochHamiltonian(ground_state, k_fractional)
    rng = default_rng(seed)
    x0 = ground_state.basis.random_coefficients(n_bands, rng).T
    result = lobpcg(
        ham.apply_columns, x0, preconditioner=ham.preconditioner,
        tol=tol, max_iter=300,
    )
    return result.eigenvalues


def band_structure(
    ground_state: GroundState,
    k_points: list[tuple[str, np.ndarray]],
    n_bands: int,
    *,
    n_interpolate: int = 5,
    tol: float = 1e-7,
) -> BandStructure:
    """Bands along straight segments between named k-points.

    ``k_points`` is a list of ``(label, fractional_k)`` corners; each
    segment is sampled with ``n_interpolate`` points (corners included).
    """
    require(len(k_points) >= 2, "need at least two k-path corners")
    path: list[np.ndarray] = []
    labels: list[tuple[int, str]] = []
    for (name_a, ka), (name_b, kb) in zip(k_points, k_points[1:]):
        start_index = len(path)
        labels.append((start_index, name_a))
        for t in np.linspace(0.0, 1.0, n_interpolate, endpoint=False):
            path.append((1 - t) * np.asarray(ka, float) + t * np.asarray(kb, float))
    path.append(np.asarray(k_points[-1][1], dtype=float))
    labels.append((len(path) - 1, k_points[-1][0]))

    energies = np.vstack(
        [bands_at_k(ground_state, k, n_bands, tol=tol) for k in path]
    )
    return BandStructure(
        k_fractional=np.vstack(path), energies=energies, labels=tuple(labels)
    )
