"""Adversarial inputs for the array analyzer's traversal and fact model.

Two families: constructs the interpreter must still see through
(``np.empty_like`` dtype propagation, ``out=`` keyword operands, views of
views), and constructs where precision-first means *deliberate silence* —
facts that die through comprehensions or merged branches must never
surface as findings, and none of it may crash the pass.
"""

import ast

import pytest

from repro.lint.arrays import ARRAY_RULE_NAMES
from repro.lint.callgraph import build_project
from repro.lint.engine import SourceModule, all_project_rules

pytestmark = pytest.mark.lint

HEADER = (
    "import numpy as np\n"
    "from repro.utils.hot import array_contract, hot_kernel\n"
)


def one_module(text, rule_name):
    module = SourceModule(
        path="src/app/mod.py", text=text, tree=ast.parse(text)
    )
    graph = build_project([module])
    rule = next(r for r in all_project_rules() if r.name == rule_name)
    return list(rule.check(graph, [module]))


def all_array_findings(text):
    return [
        f
        for name in ARRAY_RULE_NAMES
        for f in one_module(text, name)
    ]


class TestEmptyLike:
    def test_empty_like_inherits_dtype_for_upcast_detection(self):
        findings = one_module(
            HEADER
            + "@array_contract(dtypes={'x': 'float64'})\n"
            "def apply(x):\n"
            "    y = np.empty_like(x)\n"
            "    return y.astype(np.complex128)\n",
            "silent-upcast-in-hot",
        )
        assert len(findings) == 1

    def test_empty_like_with_dtype_override_resets_the_fact(self):
        # np.empty_like(x, dtype=...) starts a NEW dtype; a later astype
        # back to that same dtype is not a widening.
        findings = one_module(
            HEADER
            + "@array_contract(dtypes={'x': 'float64'})\n"
            "def apply(x):\n"
            "    y = np.empty_like(x, dtype=np.complex128)\n"
            "    return y.astype(np.complex128)\n",
            "silent-upcast-in-hot",
        )
        assert findings == []

    def test_zeros_like_inherits_shape_for_gemm_check(self):
        findings = one_module(
            HEADER
            + "@hot_kernel\n"
            "def bad():\n"
            "    a = np.zeros((3, 4))\n"
            "    b = np.zeros_like(a)\n"
            "    return a @ b\n",  # (3,4) @ (3,4): inner dims 4 != 3
            "shape-mismatch",
        )
        assert len(findings) == 1


class TestOutKwarg:
    def test_strided_out_buffer_in_matmul_flags(self):
        findings = one_module(
            HEADER
            + "@hot_kernel\n"
            "def gemm():\n"
            "    a = np.zeros((4, 4))\n"
            "    b = np.zeros((4, 4))\n"
            "    c = np.zeros((4, 8))\n"
            "    np.matmul(a, b, out=c[:, ::2])\n",
            "hidden-copy-into-kernel",
        )
        assert len(findings) == 1

    def test_contiguous_out_buffer_is_clean(self):
        findings = one_module(
            HEADER
            + "@hot_kernel\n"
            "def gemm():\n"
            "    a = np.zeros((4, 4))\n"
            "    b = np.zeros((4, 4))\n"
            "    c = np.zeros((4, 4))\n"
            "    np.matmul(a, b, out=c)\n",
            "hidden-copy-into-kernel",
        )
        assert findings == []


class TestViewsOfViews:
    def test_slice_of_slice_composes_to_strided(self):
        findings = one_module(
            HEADER
            + "@array_contract(shapes={'z': 'any'}, contiguous=('z',))\n"
            "def kern(z):\n"
            "    return z\n"
            "def caller():\n"
            "    a = np.zeros((8, 8))\n"
            "    v = a[::2]\n"  # strided view
            "    w = v[1:]\n"   # slicing a strided view stays strided
            "    return kern(w)\n",
            "hidden-copy-into-kernel",
        )
        assert len(findings) == 1

    def test_transpose_of_strided_view_into_fft(self):
        findings = one_module(
            HEADER
            + "@hot_kernel\n"
            "def spectrum():\n"
            "    g = np.zeros((8, 8, 8))\n"
            "    v = g[:, ::2]\n"
            "    return np.fft.fftn(v.T)\n",
            "hidden-copy-into-kernel",
        )
        assert len(findings) == 1

    def test_leading_axis_slice_of_contiguous_stays_clean(self):
        # a[lo:hi] of a C-contiguous block is itself C-contiguous.
        findings = one_module(
            HEADER
            + "@array_contract(shapes={'z': 'any'}, contiguous=('z',))\n"
            "def kern(z):\n"
            "    return z\n"
            "def caller():\n"
            "    a = np.zeros((8, 8))\n"
            "    return kern(a[2:6])\n",
            "hidden-copy-into-kernel",
        )
        assert findings == []

    def test_advanced_indexing_yields_a_fresh_copy(self):
        # Fancy indexing materializes a new contiguous array: clean.
        findings = one_module(
            HEADER
            + "@array_contract(shapes={'z': 'any'}, contiguous=('z',))\n"
            "def kern(z):\n"
            "    return z\n"
            "def caller(idx):\n"
            "    a = np.zeros((8, 8))\n"
            "    return kern(a[idx])\n",
            "hidden-copy-into-kernel",
        )
        assert findings == []


class TestPrecisionFirstSilence:
    """Facts that die must stay silent — no false positives, no crashes."""

    def test_comprehension_targets_bind_unknown(self):
        assert (
            all_array_findings(
                HEADER
                + "@array_contract(dtypes={'x': 'float64'})\n"
                "def apply(x):\n"
                "    return [1j * v for v in x]\n"
            )
            == []
        )

    def test_branch_merge_kills_conflicting_facts(self):
        # The two branches disagree about z's layout; the merged fact is
        # unknown and must not flag on either path's behalf.
        assert (
            all_array_findings(
                HEADER
                + "@array_contract(shapes={'z': 'any'}, contiguous=('z',))\n"
                "def kern(z):\n"
                "    return z\n"
                "def caller(flag):\n"
                "    a = np.zeros((8, 8))\n"
                "    if flag:\n"
                "        v = a[::2]\n"
                "    else:\n"
                "        v = a\n"
                "    return kern(v)\n"
            )
            == []
        )

    def test_augmented_assign_does_not_upcast(self):
        # x *= 1j would raise at runtime (cannot cast complex into the
        # float64 buffer) — the in-place form is not a *silent* upcast,
        # so the rule leaves it to the interpreter's runtime error.
        assert (
            all_array_findings(
                HEADER
                + "@array_contract(dtypes={'x': 'float64'})\n"
                "def apply(x):\n"
                "    x *= 2.0\n"
                "    return x\n"
            )
            == []
        )

    def test_facts_die_through_unresolved_calls(self):
        assert (
            all_array_findings(
                HEADER
                + "@array_contract(dtypes={'x': 'float64'})\n"
                "def apply(x, helper):\n"
                "    y = helper(x)\n"
                "    return 1j * y\n"  # y unknown: silent
            )
            == []
        )

    def test_ellipsis_subscript_gives_up_precise_axes(self):
        assert (
            all_array_findings(
                HEADER
                + "@array_contract(shapes={'z': 'any'}, contiguous=('z',))\n"
                "def kern(z):\n"
                "    return z\n"
                "def caller():\n"
                "    a = np.zeros((4, 4, 4))\n"
                "    return kern(a[..., 0])\n"
            )
            == []
        )

    def test_both_bounds_rank_dependent_slice_is_not_ragged(self):
        # a[rank:rank+2] has rank-INVARIANT extent 2; only one-sided
        # rank-dependent bounds make a ragged buffer.
        assert (
            all_array_findings(
                "import numpy as np\n"
                "def prog(comm):\n"
                "    a = np.zeros(64)\n"
                "    lo = comm.rank\n"
                "    return comm.allreduce(a[lo:lo + 2])\n"
            )
            == []
        )

    def test_one_sided_rank_slice_is_ragged(self):
        findings = one_module(
            "import numpy as np\n"
            "def prog(comm):\n"
            "    a = np.zeros(64)\n"
            "    return comm.allreduce(a[comm.rank:])\n",
            "collective-buffer-contract",
        )
        assert len(findings) == 1
