"""Krylov (Lanczos) approximation of the short-time propagator.

``psi(t + dt) = exp(-i dt H) psi(t)`` evaluated in a small Krylov subspace:
for Hermitian ``H`` the Lanczos recurrence builds an orthonormal basis
``V_m`` with tridiagonal projection ``T_m``, and

    exp(-i dt H) psi  ~=  ||psi||  V_m  exp(-i dt T_m) e_1.

Matrix-free (only ``H @ psi`` applications), spectrally accurate in the
Krylov dimension, and unconditionally norm-conserving up to the subspace
truncation — the standard propagator for plane-wave RT-TDDFT.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.linalg as sla

from repro.utils.validation import check_positive


def expm_krylov(
    apply_h: Callable[[np.ndarray], np.ndarray],
    psi: np.ndarray,
    dt: float,
    *,
    krylov_dim: int = 10,
    breakdown_tol: float = 1e-12,
) -> np.ndarray:
    """Propagate one state: ``exp(-i dt H) psi`` via Lanczos.

    Parameters
    ----------
    apply_h:
        Hermitian operator application on a single coefficient vector.
    psi:
        ``(n,)`` complex state.
    dt:
        Time step (atomic units).
    krylov_dim:
        Maximum Krylov dimension m (8-12 is ample for dt ~ 0.1 a.u.).
    breakdown_tol:
        A Lanczos beta below this means the Krylov space is invariant —
        the propagation is then exact and the recurrence stops early.
    """
    check_positive(krylov_dim, "krylov_dim")
    norm0 = np.linalg.norm(psi)
    if norm0 == 0.0:
        return psi.copy()

    n = psi.shape[0]
    m = min(krylov_dim, n)
    basis = np.empty((m, n), dtype=complex)
    alphas = np.zeros(m)
    betas = np.zeros(max(m - 1, 0))

    basis[0] = psi / norm0
    w = apply_h(basis[0])
    alphas[0] = np.real(np.vdot(basis[0], w))
    w -= alphas[0] * basis[0]
    # One scratch vector serves every axpy/projection of the recurrence so
    # the inner loop allocates nothing beyond the operator applications.
    scratch = np.empty(n, dtype=complex)
    used = 1
    for j in range(1, m):
        beta = np.linalg.norm(w)
        if beta < breakdown_tol:
            break
        betas[j - 1] = beta
        np.divide(w, beta, out=basis[j])
        # Full reorthogonalization: cheap at these m, removes Lanczos drift.
        overlaps = basis[:j] @ basis[j].conj()
        np.matmul(overlaps.conj(), basis[:j], out=scratch)
        basis[j] -= scratch
        basis[j] /= np.linalg.norm(basis[j])
        w = apply_h(basis[j])
        alphas[j] = np.real(np.vdot(basis[j], w))
        np.multiply(basis[j], alphas[j], out=scratch)
        w -= scratch
        np.multiply(basis[j - 1], beta, out=scratch)
        w -= scratch
        used = j + 1

    t_mat = (
        np.diag(alphas[:used])
        + np.diag(betas[: used - 1], 1)
        + np.diag(betas[: used - 1], -1)
    )
    small = sla.expm(-1j * dt * t_mat)[:, 0]
    return norm0 * (small @ basis[:used])


def expm_krylov_block(
    apply_h_block: Callable[[np.ndarray], np.ndarray],
    psi_block: np.ndarray,
    dt: float,
    *,
    krylov_dim: int = 10,
) -> np.ndarray:
    """Propagate a band block ``(n_bands, n)`` one state at a time.

    The operator is applied per state; KS bands are propagated
    independently (the Hamiltonian update between steps couples them
    through the density, not here).
    """
    out = np.empty_like(psi_block)
    for i in range(psi_block.shape[0]):
        out[i] = expm_krylov(
            lambda v: apply_h_block(v[None, :])[0],
            psi_block[i], dt, krylov_dim=krylov_dim,
        )
    return out
