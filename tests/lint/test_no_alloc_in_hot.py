"""The allocation-discipline pass over hot kernels."""

import pytest

from repro.lint import lint_source
from repro.lint.hotpaths import HOT_PATH_MANIFEST, hot_functions_for
from repro.utils import hot_kernel, is_hot_kernel

pytestmark = pytest.mark.lint

RULE = ["no-alloc-in-hot"]


def findings_in(src: str, path: str = "mod.py"):
    return lint_source(src, path=path, rules=RULE)


class TestScope:
    def test_undecorated_function_is_not_checked(self):
        src = "import numpy as np\ndef cold():\n    return np.zeros(3)\n"
        assert findings_in(src) == []

    def test_decorated_function_is_checked(self):
        src = (
            "import numpy as np\n"
            "from repro.utils import hot_kernel\n"
            "@hot_kernel\n"
            "def k():\n"
            "    return np.zeros(3)\n"
        )
        (finding,) = findings_in(src)
        assert finding.line == 5
        assert "np.zeros" in finding.message

    def test_labelled_decorator_form_is_recognized(self):
        src = (
            "import numpy as np\n"
            "from repro.utils import hot_kernel\n"
            "@hot_kernel('my-label')\n"
            "def k():\n"
            "    return np.empty(3)\n"
        )
        assert len(findings_in(src)) == 1

    def test_manifest_enrolls_seed_era_files_by_path(self):
        src = "import numpy as np\ndef lobpcg():\n    return np.zeros(3)\n"
        assert findings_in(src, path="other/file.py") == []
        assert len(findings_in(src, path="src/repro/eigen/lobpcg.py")) == 1

    def test_manifest_matches_qualnames_not_everything_in_file(self):
        src = "import numpy as np\ndef helper():\n    return np.zeros(3)\n"
        assert findings_in(src, path="src/repro/eigen/lobpcg.py") == []

    def test_hot_functions_for_suffix_match(self):
        assert hot_functions_for("x/y/repro/eigen/lobpcg.py") == \
            HOT_PATH_MANIFEST["repro/eigen/lobpcg.py"]
        assert hot_functions_for("unrelated.py") == frozenset()


HOT_HEADER = (
    "import numpy as np\n"
    "from repro.utils import hot_kernel\n"
    "@hot_kernel\n"
)



class TestAllocationKinds:
    def test_constructors_flagged_anywhere(self):
        for call in ("np.empty((3, 3))", "np.concatenate([x, x])",
                     "np.hstack([x, x])", "numpy.ones(4)"):
            src = (
                "import numpy\n" + HOT_HEADER +
                f"def k(x):\n    return {call}\n"
            )
            assert len(findings_in(src)) == 1, call

    def test_copy_method_flagged(self):
        src = HOT_HEADER + "def k(x):\n    return x.copy()\n"
        (finding,) = findings_in(src)
        assert "copies 'x'" in finding.message

    def test_non_numpy_zeros_not_flagged(self):
        src = HOT_HEADER + "def k(torch, x):\n    return torch.zeros(3)\n"
        assert findings_in(src) == []

    def test_binop_assignment_flagged_only_in_loops(self):
        outside = HOT_HEADER + "def k(a, b):\n    c = a + b\n    return c\n"
        assert findings_in(outside) == []
        inside = HOT_HEADER + (
            "def k(a, b):\n"
            "    for _ in range(3):\n"
            "        c = a + b\n"
            "    return c\n"
        )
        (finding,) = findings_in(inside)
        assert "every loop iteration" in finding.message

    def test_augmented_assignment_is_the_sanctioned_idiom(self):
        src = HOT_HEADER + (
            "def k(a, b):\n"
            "    for _ in range(3):\n"
            "        a += b\n"
            "    return a\n"
        )
        assert findings_in(src) == []

    def test_out_kwarg_contraction_is_clean(self):
        src = HOT_HEADER + (
            "def k(a, b, ws):\n"
            "    for _ in range(3):\n"
            "        np.matmul(a, b, out=ws)\n"
            "    return ws\n"
        )
        assert findings_in(src) == []


class TestAcceptanceScenario:
    """ISSUE acceptance: regressing a sanctioned in-place idiom in a real
    hot kernel must produce a nonzero lint result with the right rule."""

    def test_pipeline_allocation_regression_is_caught(self):
        import repro.parallel.pipeline as pipeline

        source = open(pipeline.__file__).read()
        assert findings_in(source, path="src/repro/parallel/pipeline.py") == []
        # Simulate the regression: the augmented in-place scale becomes a
        # fresh per-iteration allocation.
        assert "partial *= dv" in source
        regressed = source.replace("partial *= dv", "partial = partial * dv", 1)
        findings = lint_source(
            regressed, path="src/repro/parallel/pipeline.py", rules=RULE
        )
        assert findings, "regression not caught"
        assert all(f.rule == "no-alloc-in-hot" for f in findings)


class TestDecoratorRuntime:
    def test_marker_is_zero_overhead_and_introspectable(self):
        @hot_kernel
        def bare(x):
            return x

        @hot_kernel("labelled")
        def named(x):
            return x

        @hot_kernel(label="kw")
        def kw(x):
            return x

        assert bare(5) == 5 and named(5) == 5 and kw(5) == 5
        assert is_hot_kernel(bare) and is_hot_kernel(named) and is_hot_kernel(kw)
        assert named.__repro_hot_label__ == "labelled"
        assert kw.__repro_hot_label__ == "kw"
        assert not is_hot_kernel(lambda x: x)
