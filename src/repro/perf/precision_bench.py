"""Measured strict64 vs mixed precision-tier comparison.

The mixed tier (see :mod:`repro.precision`) runs the compute-bound stages
of the ISDF pipeline in fp32 while keeping every accumulation and every
convergence-critical solve in fp64.  This bench measures the three stages
the tier actually accelerates, each with the per-stage a-posteriori error
column the tier's documented tolerances gate on:

* **K-Means point selection** — fp32 distance/assignment classification
  with fp64 centroid accumulators and a converged-assignment fp64
  recheck (:func:`repro.core.kmeans.weighted_kmeans`),
* **ISDF least-squares fit** — fp32 tall-skinny GEMMs with the fp64
  Gram/ridge/Cholesky solve and a sampled fp64 residual check
  (:func:`repro.core.fitting.fit_interpolation_vectors`),
* **pair-product assembly** — :func:`repro.core.pair_products.pair_products`
  with fp32 output (the memory-bound ``Z`` build).

The composite speedup (total strict64 seconds / total mixed seconds) is
the number ``tools/check_bench.py`` gates on (floor 1.5x in the committed
full-mode report); the per-stage error columns double as numerics checks —
a "win" outside its tolerance fails the gate rather than shipping.
"""

from __future__ import annotations

import json
import platform

import numpy as np

from repro.core.fitting import fit_interpolation_vectors
from repro.core.kmeans import weighted_kmeans
from repro.core.pair_products import pair_products
from repro.perf.backend_bench import (
    _figure8_like_weights,
    _time_best,
    blas_info,
)
from repro.precision import resolve_precision
from repro.pw import RealSpaceGrid, UnitCell
from repro.resilience import resilience_log

#: Composite-speedup floor the committed full-mode report must meet.
COMPOSITE_TARGET = 1.5

#: Per-stage error bounds (documented in docs/performance.md).  The kmeans
#: bound is on the relative inertia difference — fp32 classification may
#: legally take a different iteration *trajectory*, so bit-identity is the
#: wrong metric; clustering quality is the right one.  The fit and
#: pair-product bounds are straight fp32-rounding bounds.
STAGE_TOLERANCES = {
    "kmeans": 1e-2,
    "isdf_fit": 1e-4,
    "pair_product": 1e-5,
}


def bench_kmeans_precision(
    *,
    shape: tuple[int, int, int] = (40, 40, 40),
    box: float = 20.0,
    n_clusters: int = 196,
    n_bumps: int = 48,
    prune_threshold: float = 1e-6,
    max_iter: int = 300,
    repeats: int = 2,
    seed: int = 13,
) -> dict:
    """strict64 vs mixed K-Means on the Figure-8-like candidate set."""
    grid = RealSpaceGrid(UnitCell.cubic(box), shape)
    weights_full = _figure8_like_weights(grid, n_bumps, seed)
    keep = np.flatnonzero(weights_full >= prune_threshold * weights_full.max())
    points = grid.cartesian_points[keep]
    weights = weights_full[keep]

    tiers: dict[str, dict] = {}
    results: dict[str, tuple] = {}
    for tier in ("strict64", "mixed"):
        seconds, res = _time_best(
            lambda tier=tier: weighted_kmeans(
                points, weights, n_clusters,
                init="greedy-weight", max_iter=max_iter, tol=0.0,
                algorithm="hamerly", precision=tier,
            ),
            repeats,
        )
        results[tier] = res
        tiers[tier] = {
            "seconds": seconds,
            "n_iter": int(res[3]),
            "converged": bool(res[4]),
        }
    strict, mixed = results["strict64"], results["mixed"]
    inertia_strict, inertia_mixed = float(strict[2]), float(mixed[2])
    error = abs(inertia_mixed - inertia_strict) / max(abs(inertia_strict), 1e-300)
    tol = STAGE_TOLERANCES["kmeans"]
    return {
        "workload": {
            "grid": list(shape),
            "n_candidates": int(points.shape[0]),
            "n_clusters": n_clusters,
            "max_iter": max_iter,
            "repeats": repeats,
        },
        "tiers": tiers,
        "speedup": tiers["strict64"]["seconds"] / tiers["mixed"]["seconds"],
        "error": error,
        "error_metric": "relative inertia difference, mixed vs strict64",
        "tolerance": tol,
        "within_tolerance": bool(error <= tol),
    }


def bench_fit_precision(
    *,
    n_r: int = 32768,
    n_v: int = 24,
    n_c: int = 24,
    n_mu: int = 240,
    repeats: int = 3,
    seed: int = 3,
) -> dict:
    """strict64 vs mixed interpolation-vector fit on synthetic orbitals."""
    rng = np.random.default_rng(seed)
    psi_v = rng.standard_normal((n_v, n_r))
    psi_c = rng.standard_normal((n_c, n_r))
    indices = np.sort(rng.choice(n_r, size=n_mu, replace=False))

    tiers: dict[str, dict] = {}
    thetas: dict[str, np.ndarray] = {}
    for tier in ("strict64", "mixed"):
        seconds, theta = _time_best(
            lambda tier=tier: fit_interpolation_vectors(
                psi_v, psi_c, indices, precision=tier
            ),
            repeats,
        )
        tiers[tier] = {"seconds": seconds}
        thetas[tier] = np.asarray(theta)
    scale = float(np.linalg.norm(thetas["strict64"])) or 1.0
    error = float(np.linalg.norm(thetas["mixed"] - thetas["strict64"])) / scale
    tol = STAGE_TOLERANCES["isdf_fit"]
    return {
        "workload": {
            "n_r": n_r, "n_v": n_v, "n_c": n_c, "n_mu": n_mu,
            "repeats": repeats,
        },
        "tiers": tiers,
        "speedup": tiers["strict64"]["seconds"] / tiers["mixed"]["seconds"],
        "error": error,
        "error_metric": "relative Frobenius difference of Theta vs strict64",
        "tolerance": tol,
        "within_tolerance": bool(error <= tol),
    }


def bench_pair_product_precision(
    *,
    n_r: int = 32768,
    n_v: int = 12,
    n_c: int = 12,
    repeats: int = 3,
    seed: int = 5,
) -> dict:
    """fp64 vs fp32 pair-product assembly (``Z``, the memory-bound build)."""
    rng = np.random.default_rng(seed)
    psi_v = rng.standard_normal((n_v, n_r))
    psi_c = rng.standard_normal((n_c, n_r))

    tiers: dict[str, dict] = {}
    outputs: dict[str, np.ndarray] = {}
    for tier, dtype in (("strict64", None), ("mixed", np.float32)):
        seconds, z = _time_best(
            lambda dtype=dtype: pair_products(psi_v, psi_c, dtype=dtype),
            repeats,
        )
        tiers[tier] = {"seconds": seconds}
        outputs[tier] = np.asarray(z)
    scale = float(np.abs(outputs["strict64"]).max()) or 1.0
    error = (
        float(np.abs(outputs["mixed"].astype(np.float64)
                     - outputs["strict64"]).max()) / scale
    )
    tol = STAGE_TOLERANCES["pair_product"]
    return {
        "workload": {"n_r": n_r, "n_v": n_v, "n_c": n_c, "repeats": repeats},
        "tiers": tiers,
        "speedup": tiers["strict64"]["seconds"] / tiers["mixed"]["seconds"],
        "error": error,
        "error_metric": "max abs difference / max abs, fp32 vs fp64",
        "tolerance": tol,
        "within_tolerance": bool(error <= tol),
    }


def run_precision_bench(*, smoke: bool = False) -> dict:
    """Full (or smoke-sized) strict64-vs-mixed composite, JSON-ready."""
    log = resilience_log()
    events_before = len(log)
    if smoke:
        kmeans = bench_kmeans_precision(
            shape=(16, 16, 16), box=8.0, n_clusters=24, n_bumps=12,
            max_iter=100, repeats=1,
        )
        fit = bench_fit_precision(n_r=4096, n_v=8, n_c=8, n_mu=64, repeats=1)
        pair = bench_pair_product_precision(n_r=4096, n_v=6, n_c=6, repeats=1)
    else:
        kmeans = bench_kmeans_precision()
        fit = bench_fit_precision()
        pair = bench_pair_product_precision()
    stages = {"kmeans": kmeans, "isdf_fit": fit, "pair_product": pair}
    strict_total = sum(
        s["tiers"]["strict64"]["seconds"] for s in stages.values()
    )
    mixed_total = sum(s["tiers"]["mixed"]["seconds"] for s in stages.values())
    composite = strict_total / mixed_total
    fallbacks = [
        {"stage": e.stage, "action": e.action, "reason": e.reason}
        for e in log.events()[events_before:]
    ]
    mixed_config = resolve_precision("mixed")
    return {
        "meta": {
            "mode": "smoke" if smoke else "full",
            "python": platform.python_version(),
            "numpy": np.__version__,
            "blas": blas_info(),
            "mixed_config": {
                "kmeans_fp32": mixed_config.kmeans_fp32,
                "fit_fp32": mixed_config.fit_fp32,
                "pair_fp32": mixed_config.pair_fp32,
                "wire_fp32": mixed_config.wire_fp32,
                "fft_fp32": mixed_config.fft_fp32,
                "fit_tol": mixed_config.fit_tol,
                "fft_tol": mixed_config.fft_tol,
                "wire_tol": mixed_config.wire_tol,
            },
        },
        "stages": stages,
        "composite": {
            "strict64_seconds": strict_total,
            "mixed_seconds": mixed_total,
            "speedup": composite,
            "target": COMPOSITE_TARGET,
            "meets_target": bool(composite >= COMPOSITE_TARGET),
        },
        "all_within_tolerance": bool(
            all(s["within_tolerance"] for s in stages.values())
        ),
        "fallback_events": fallbacks,
    }


def format_summary(report: dict) -> str:
    """Terse human-readable digest of :func:`run_precision_bench` output."""
    lines = [f"precision bench ({report['meta']['mode']} mode)"]
    for name, stage in report["stages"].items():
        strict = stage["tiers"]["strict64"]["seconds"] * 1e3
        mixed = stage["tiers"]["mixed"]["seconds"] * 1e3
        lines.append(
            f"  {name:<13s} {strict:9.2f} ms -> {mixed:9.2f} ms  "
            f"({stage['speedup']:.2f}x, err {stage['error']:.2e} "
            f"<= {stage['tolerance']:.0e}: {stage['within_tolerance']})"
        )
    comp = report["composite"]
    lines.append(
        f"  composite speedup {comp['speedup']:.2f}x "
        f"(target {comp['target']:.1f}x, meets={comp['meets_target']})"
    )
    if report["fallback_events"]:
        lines.append(
            f"  WARNING: {len(report['fallback_events'])} precision "
            "fallback(s) fired during the bench — mixed-tier timings "
            "include fp64 redo work"
        )
    return "\n".join(lines)


def write_report(report: dict, path) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
