"""The implicit (matrix-free) LR-TDDFT Hamiltonian of Section 4.3.

Version (5) of Table 4: never materialize the ``N_cv x N_cv`` Hamiltonian.
With the ISDF factorization the block application needed by LOBPCG is

    H @ X = D ∘ X + 2 C^T ( Vtilde ( C X ) )

with per-iteration cost ``k O(N_mu N_v N_c + N_mu^2)`` and **state memory
O(N_mu^2)** — the two-orders-of-magnitude reduction the paper reports.
The preconditioner is the paper's Eq. 17: divide the residual by
``(eps_c - eps_v) - theta``.
"""

from __future__ import annotations

import numpy as np

from repro.core.isdf import ISDFDecomposition
from repro.core.isdf_hamiltonian import project_kernel
from repro.core.kernel import HxcKernel
from repro.core.pair_products import pair_energies
from repro.utils.hot import hot_kernel
from repro.utils.timers import TimerRegistry
from repro.utils.validation import require


class ImplicitCasidaOperator:
    """Matrix-free TDA Hamiltonian ``H = D + 2 C^T Vtilde C``.

    Parameters
    ----------
    isdf:
        The ISDF decomposition of the pair products (supplies ``C`` in its
        separable factored form).
    eps_v, eps_c:
        Valence/conduction KS energies building the diagonal ``D``.
    kernel:
        f_Hxc operator; the projected ``Vtilde`` (Eq. 7) is computed once in
        the constructor — the only O(N_mu N_r) work.
    """

    def __init__(
        self,
        isdf: ISDFDecomposition,
        eps_v: np.ndarray,
        eps_c: np.ndarray,
        kernel: HxcKernel | None = None,
        *,
        vtilde: np.ndarray | None = None,
        timers: TimerRegistry | None = None,
    ) -> None:
        require(
            (kernel is None) != (vtilde is None),
            "pass exactly one of kernel (to project) or vtilde (precomputed)",
        )
        self.isdf = isdf
        self.diagonal_d = pair_energies(np.asarray(eps_v, float), np.asarray(eps_c, float))
        if vtilde is None:
            vtilde = project_kernel(isdf, kernel, timers=timers)
        else:
            require(
                vtilde.shape == (isdf.n_mu, isdf.n_mu),
                f"vtilde must be ({isdf.n_mu}, {isdf.n_mu}), got {vtilde.shape}",
            )
        self.vtilde = vtilde
        self.n_apply = 0  #: number of block applications (cost accounting)
        self.timers = timers
        # Per-block-width workspaces for the factored contraction chain so
        # the LOBPCG inner loop allocates only its output block, never the
        # (N_v, N_mu, k) / (N_mu, k) temporaries.
        self._workspace_k = -1
        self._ws: dict[str, np.ndarray] = {}

    @property
    def n_pairs(self) -> int:
        return self.diagonal_d.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_pairs, self.n_pairs)

    def _workspaces(self, k: int) -> dict[str, np.ndarray]:
        """Reusable contraction buffers for block width ``k``."""
        if k != self._workspace_k:
            n_v = self.isdf.psi_v_mu.shape[0]
            n_c = self.isdf.psi_c_mu.shape[0]
            n_mu = self.isdf.n_mu
            self._ws = {
                "vmk": np.empty((n_v, n_mu, k)),
                "cx": np.empty((n_mu, k)),
                "vcx": np.empty((n_mu, k)),
                "ct": np.empty((n_v, n_c, k)),
            }
            self._workspace_k = k
        return self._ws

    @hot_kernel("implicit-casida-apply")
    def apply(self, x: np.ndarray) -> np.ndarray:
        """``H @ X`` for column blocks ``(N_cv, k)`` (also accepts 1-D).

        All intermediates of ``D ∘ X + 2 C^T (Vtilde (C X))`` land in
        preallocated workspaces (``out=`` contractions); only the returned
        output block is a fresh allocation.
        """
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        require(x.shape[0] == self.n_pairs, "block/pair dimension mismatch")
        if np.iscomplexobj(x):
            # Rare path (the TDA problem is real): skip the real-typed
            # workspaces rather than duplicating them per dtype.
            cx = self.isdf.apply_c(x)
            out = self.diagonal_d[:, None] * x
            out += 2.0 * self.isdf.apply_ct(self.vtilde @ cx)
            self.n_apply += 1
            return out[:, 0] if squeeze else out
        k = x.shape[1]
        ws = self._workspaces(k)
        psi_v_mu = self.isdf.psi_v_mu
        psi_c_mu = self.isdf.psi_c_mu
        n_v = psi_v_mu.shape[0]
        n_c = psi_c_mu.shape[0]
        x3 = x.reshape(n_v, n_c, k)
        # C @ X in factored form (conduction first, then valence).
        np.einsum("cm,vck->vmk", psi_c_mu, x3, out=ws["vmk"], optimize=True)
        np.einsum("vm,vmk->mk", psi_v_mu, ws["vmk"], out=ws["cx"], optimize=True)
        np.matmul(self.vtilde, ws["cx"], out=ws["vcx"])
        # C^T @ (Vtilde C X), reusing the (N_v, N_mu, k) buffer.
        np.einsum("vm,mk->vmk", psi_v_mu, ws["vcx"], out=ws["vmk"], optimize=True)
        np.einsum("cm,vmk->vck", psi_c_mu, ws["vmk"], out=ws["ct"], optimize=True)
        out = np.multiply(x, self.diagonal_d[:, None])
        correction = ws["ct"].reshape(self.n_pairs, k)
        correction *= 2.0
        out += correction
        self.n_apply += 1
        if self.timers is not None:
            n_mu = self.isdf.n_mu
            self.timers.add_flops(
                2 * k * (n_v * n_c * n_mu * 2 + n_mu * n_mu) + 4 * self.n_pairs * k,
                name="implicit/apply",
            )
        return out[:, 0] if squeeze else out

    __call__ = apply

    def preconditioner(self, residual: np.ndarray, theta: np.ndarray) -> np.ndarray:
        """Paper Eq. 17 preconditioner ``W = K^{-1} R`` with ``K = D - theta``.

        LOBPCG requires a positive-definite preconditioner, so we take the
        magnitude ``|D - theta|`` with a floor — same spectral scaling as
        Eq. 17, but provably safe (an indefinite K can stall or diverge the
        iteration).
        """
        denom = np.maximum(
            np.abs(self.diagonal_d[:, None] - theta[None, :]), 1e-2
        )
        return residual / denom

    def diagonal(self) -> np.ndarray:
        """Exact operator diagonal, cheap thanks to the factored form.

        ``H_ii = D_i + 2 sum_{mu nu} C_mu,i Vtilde_mu,nu C_nu,i``; used by
        the Davidson baseline and by diagnostics.
        """
        c = self.isdf.coefficients()  # (N_mu, N_cv)
        corr = np.einsum("mi,mn,ni->i", c, self.vtilde, c, optimize=True)
        return self.diagonal_d + 2.0 * corr

    def materialize(self) -> np.ndarray:
        """Dense ``H`` for testing/diagnostics (O(N_cv^2) memory!)."""
        c = self.isdf.coefficients()
        h = 2.0 * (c.T @ (self.vtilde @ c))
        h = 0.5 * (h + h.T)
        h[np.diag_indices_from(h)] += self.diagonal_d
        return h
