"""Interpolation vectors: the least-squares step of ISDF (Section 4.1.2).

Given interpolation points ``{r_mu}``, the interpolating vectors solve the
overdetermined system ``Z = Theta C`` in the Galerkin/least-squares sense
(Eqs. 9-10):

    Theta = Z C^T (C C^T)^{-1}.

Both Gram products are evaluated *separably* — the defining trick of ISDF:
with ``P_v = Psi^T Psi_mu`` and ``P_c = Phi^T Phi_mu`` (tall-skinny GEMMs of
the orbital factors),

    Z C^T   = P_v ∘ P_c                       (N_r  x N_mu, Hadamard)
    C C^T   = (Psi_mu^T Psi_mu) ∘ (Phi_mu^T Phi_mu)   (N_mu x N_mu)

so the full ``Z`` is never formed and the cost is
``O((N_v + N_c) N_r N_mu + N_mu^2 N_r)`` instead of ``O(N_v N_c N_r N_mu)``.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from repro.utils.validation import require


def coefficient_matrix(
    psi_v: np.ndarray, psi_c: np.ndarray, indices: np.ndarray
) -> np.ndarray:
    """Expansion coefficients ``C[mu, (v c)] = psi_v(r_mu) psi_c(r_mu)``.

    Shape ``(N_mu, N_v * N_c)`` in the library's pair ordering.
    """
    v_pts = psi_v[:, indices]  # (N_v, N_mu)
    c_pts = psi_c[:, indices]  # (N_c, N_mu)
    n_mu = indices.shape[0]
    c = v_pts.T[:, :, None] * c_pts.T[:, None, :]  # (N_mu, N_v, N_c)
    return c.reshape(n_mu, -1)


def fit_interpolation_vectors(
    psi_v: np.ndarray,
    psi_c: np.ndarray,
    indices: np.ndarray,
    *,
    regularization: float = 1e-12,
) -> np.ndarray:
    """Interpolation vectors ``Theta`` of shape ``(N_r, N_mu)``.

    Parameters
    ----------
    indices:
        ``(N_mu,)`` grid-point indices of the interpolation points.
    regularization:
        Relative Tikhonov ridge on ``C C^T`` — interpolation points selected
        by K-Means can be mildly collinear in the orbital values, and the
        ridge keeps the solve stable without visibly perturbing the fit.
    """
    require(psi_v.shape[1] == psi_c.shape[1], "orbital grid mismatch")
    indices = np.asarray(indices)
    require(indices.ndim == 1 and indices.size > 0, "indices must be 1-D, non-empty")

    v_pts = psi_v[:, indices]  # (N_v, N_mu)
    c_pts = psi_c[:, indices]  # (N_c, N_mu)

    # Z C^T via the separable Hadamard identity.  The two tall-skinny GEMM
    # outputs are the only O(N_r N_mu) temporaries; the Hadamard products
    # fold in place so no third matrix of that size ever exists.
    zct = psi_v.T @ v_pts  # (N_r, N_mu)
    p_c = psi_c.T @ c_pts  # (N_r, N_mu)
    zct *= p_c

    # C C^T likewise, folded in place.
    cct = v_pts.T @ v_pts  # (N_mu, N_mu)
    g_c = c_pts.T @ c_pts
    cct *= g_c

    scale = float(np.trace(cct)) / max(cct.shape[0], 1)
    ridge = regularization * max(scale, 1e-300)
    cct_reg = cct
    cct_reg[np.diag_indices_from(cct_reg)] += ridge
    try:
        chol = sla.cho_factor(cct_reg, lower=False)
        theta = sla.cho_solve(chol, zct.T).T
    except sla.LinAlgError:
        theta = np.linalg.lstsq(cct_reg, zct.T, rcond=None)[0].T
    return theta
