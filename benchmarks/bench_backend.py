"""Measured backend A/B benchmark (not a cost-model regeneration).

Unlike the other benches in this directory — which regenerate the paper's
tables from the calibrated cost model — this one *measures* the repo's own
hot paths on the local machine:

* batch-FFT Coulomb apply: numpy reference engine vs the scipy engine
  (multi-worker pocketfft + rfftn real fast path),
* weighted K-Means point selection: naive Lloyd vs bound-pruned Hamerly.

Writes a machine-readable report (default ``BENCH_backend.json`` at the
repo root) whose equivalence flags double as a numerics check; see
``docs/performance.md`` for how to read it.

Usage::

    PYTHONPATH=src python benchmarks/bench_backend.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import pathlib
import sys


def main(argv=None) -> int:
    from repro.perf.backend_bench import (
        format_summary,
        run_backend_bench,
        write_report,
    )

    default_out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_backend.json"
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI (seconds, not minutes)")
    parser.add_argument("--out", default=str(default_out),
                        help=f"JSON report path (default: {default_out})")
    args = parser.parse_args(argv)

    report = run_backend_bench(smoke=args.smoke)
    print(format_summary(report))
    write_report(report, args.out)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
